//! The paper's §6.3 experiment as a library walkthrough: a design
//! recommended from one captured trace (W1) is replayed against similar
//! -but-not-identical workloads (W2: faster minor shifts; W3: minor
//! shifts out of phase).
//!
//! The punchline (Figure 3): the *constrained* design, precisely
//! because it ignores W1's minor details, transfers better to W2 and
//! W3 than the unconstrained design that is optimal for W1 itself.
//!
//! ```sh
//! cargo run --release --example workload_drift
//! ```

use cdpd::engine::{Database, IndexSpec};
use cdpd::replay::replay_recommendation;
use cdpd::types::{ColumnDef, Schema, Value};
use cdpd::workload::{generate, paper};
use cdpd::{Advisor, AdvisorOptions, Algorithm};
use cdpd_testkit::Prng;

const ROWS: i64 = 25_000;
const WINDOW: usize = 100;

fn main() -> cdpd::types::Result<()> {
    let domain = ROWS / 5;
    let db = Database::new();
    db.create_table(
        "t",
        Schema::new(vec![
            ColumnDef::int("a"),
            ColumnDef::int("b"),
            ColumnDef::int("c"),
            ColumnDef::int("d"),
        ]),
    )?;
    let mut rng = Prng::seed_from_u64(11);
    for _ in 0..ROWS {
        let row: Vec<Value> = (0..4)
            .map(|_| Value::Int(rng.gen_range(0..domain)))
            .collect();
        db.insert("t", &row)?;
    }
    db.analyze("t")?;

    let params = paper::PaperParams {
        table: "t".into(),
        domain,
        window_len: WINDOW,
    };
    let w1 = generate(&paper::w1_with(&params), 42);
    let w2 = generate(&paper::w2_with(&params), 43);
    let w3 = generate(&paper::w3_with(&params), 44);

    // Both designs are derived from W1 only.
    let structures: Vec<IndexSpec> = vec![
        IndexSpec::new("t", &["a"]),
        IndexSpec::new("t", &["b"]),
        IndexSpec::new("t", &["c"]),
        IndexSpec::new("t", &["d"]),
        IndexSpec::new("t", &["a", "b"]),
        IndexSpec::new("t", &["c", "d"]),
    ];
    let opts = |k| AdvisorOptions {
        k,
        window_len: WINDOW,
        structures: Some(structures.clone()),
        max_structures_per_config: Some(1),
        end_empty: true,
        algorithm: Algorithm::KAware,
        ..Default::default()
    };
    let unconstrained = Advisor::new(&db, "t").options(opts(None)).recommend(&w1)?;
    let constrained = Advisor::new(&db, "t")
        .options(opts(Some(2)))
        .recommend(&w1)?;
    println!("designs recommended from W1:");
    println!("  unconstrained: {}", unconstrained.schedule);
    println!("  k = 2:         {}\n", constrained.schedule);

    // Replay all three workloads under both designs; report measured
    // I/O relative to W1-under-unconstrained, like Figure 3.
    let mut baseline = None;
    println!(
        "{:<4} {:>16} {:>16} {:>10}",
        "", "unconstrained", "constrained", "drift"
    );
    for (name, trace) in [("W1", &w1), ("W2", &w2), ("W3", &w3)] {
        let unc_io = replay_recommendation(&db, trace, &unconstrained)?.total_io();
        let con_io = replay_recommendation(&db, trace, &constrained)?.total_io();
        let base = *baseline.get_or_insert(unc_io) as f64;
        println!(
            "{:<4} {:>14.1}% {:>14.1}% {:>10}",
            name,
            100.0 * unc_io as f64 / base - 100.0,
            100.0 * con_io as f64 / base - 100.0,
            if con_io < unc_io {
                "constrained wins"
            } else {
                "unconstrained wins"
            }
        );
    }
    println!("\n(percentages are measured I/O relative to W1 under the unconstrained design)");
    Ok(())
}

//! Compare every solver in the crate on one constrained-design problem:
//! solution quality (estimated cost, changes used) and optimizer
//! runtime — a miniature of the paper's §6.4 comparison plus the
//! techniques it only sketches (§4.1 greedy, §5 ranking).
//!
//! ```sh
//! cargo run --release --example advisor_comparison
//! ```

use cdpd::engine::{Database, IndexSpec};
use cdpd::types::{ColumnDef, Schema, Value};
use cdpd::workload::{generate, paper};
use cdpd::{Advisor, AdvisorOptions, Algorithm};
use cdpd_testkit::Prng;
use std::time::Instant;

const ROWS: i64 = 30_000;
const WINDOW: usize = 250;
const K: usize = 2;

fn main() -> cdpd::types::Result<()> {
    let domain = ROWS / 5;
    let db = Database::new();
    db.create_table(
        "t",
        Schema::new(vec![
            ColumnDef::int("a"),
            ColumnDef::int("b"),
            ColumnDef::int("c"),
            ColumnDef::int("d"),
        ]),
    )?;
    let mut rng = Prng::seed_from_u64(5);
    for _ in 0..ROWS {
        let row: Vec<Value> = (0..4)
            .map(|_| Value::Int(rng.gen_range(0..domain)))
            .collect();
        db.insert("t", &row)?;
    }
    db.analyze("t")?;

    let params = paper::PaperParams {
        table: "t".into(),
        domain,
        window_len: WINDOW,
    };
    let trace = generate(&paper::w1_with(&params), 42);
    let structures: Vec<IndexSpec> = vec![
        IndexSpec::new("t", &["a"]),
        IndexSpec::new("t", &["b"]),
        IndexSpec::new("t", &["c"]),
        IndexSpec::new("t", &["d"]),
        IndexSpec::new("t", &["a", "b"]),
        IndexSpec::new("t", &["c", "d"]),
    ];

    let algorithms: Vec<(&str, Algorithm)> = vec![
        ("k-aware graph (§3, optimal)", Algorithm::KAware),
        ("merging (§4.2, heuristic)", Algorithm::Merging),
        ("greedy-seq (§4.1, heuristic)", Algorithm::Greedy),
        (
            "ranking (§5, anytime optimal)",
            Algorithm::Ranking { max_paths: 50_000 },
        ),
        ("hybrid (§6.4)", Algorithm::Hybrid),
    ];

    println!("constrained design for W1, k = {K}:\n");
    println!(
        "{:<32} {:>14} {:>8} {:>12}",
        "solver", "est. cost", "changes", "runtime"
    );
    for (name, alg) in algorithms {
        let start = Instant::now();
        let result = Advisor::new(&db, "t")
            .options(AdvisorOptions {
                k: Some(K),
                window_len: WINDOW,
                structures: Some(structures.clone()),
                max_structures_per_config: Some(1),
                end_empty: true,
                algorithm: alg,
                ..Default::default()
            })
            .recommend(&trace);
        let elapsed = start.elapsed();
        match result {
            Ok(rec) => println!(
                "{:<32} {:>14} {:>8} {:>12?}",
                name,
                rec.schedule.total_cost().to_string(),
                rec.schedule.changes,
                elapsed
            ),
            Err(e) => println!("{name:<32} {e} (after {elapsed:?})"),
        }
    }
    println!(
        "\nNote: ranking exhausting its path budget at small k is the §5 \
         worst case the paper warns about — the hybrid exists because \
         the k-aware graph is cheap exactly there."
    );
    Ok(())
}

//! Answering the paper's open question §8 — "how to choose an
//! appropriate change constraint (k)?" — with the cost-curve extension:
//! sweep k, plot constrained-optimal cost against it, and take the knee.
//!
//! For W1 (two major shifts) the knee lands at k = 2 without any domain
//! knowledge about the workload's phase structure.
//!
//! ```sh
//! cargo run --release --example pick_k
//! ```

use cdpd::core::{enumerate_configs, kselect, Problem};
use cdpd::engine::{Database, IndexSpec, WhatIfEngine};
use cdpd::types::{ColumnDef, Schema, Value};
use cdpd::workload::{generate, paper, summarize};
use cdpd::EngineOracle;
use cdpd_testkit::Prng;

const ROWS: i64 = 30_000;
const WINDOW: usize = 250;

fn main() -> cdpd::types::Result<()> {
    let domain = ROWS / 5;
    let db = Database::new();
    db.create_table(
        "t",
        Schema::new(vec![
            ColumnDef::int("a"),
            ColumnDef::int("b"),
            ColumnDef::int("c"),
            ColumnDef::int("d"),
        ]),
    )?;
    let mut rng = Prng::seed_from_u64(17);
    for _ in 0..ROWS {
        let row: Vec<Value> = (0..4)
            .map(|_| Value::Int(rng.gen_range(0..domain)))
            .collect();
        db.insert("t", &row)?;
    }
    db.analyze("t")?;

    let params = paper::PaperParams {
        table: "t".into(),
        domain,
        window_len: WINDOW,
    };
    let trace = generate(&paper::w1_with(&params), 42);
    let workload = summarize(&trace, WINDOW)?;
    let structures: Vec<IndexSpec> = vec![
        IndexSpec::new("t", &["a"]),
        IndexSpec::new("t", &["b"]),
        IndexSpec::new("t", &["c"]),
        IndexSpec::new("t", &["d"]),
        IndexSpec::new("t", &["a", "b"]),
        IndexSpec::new("t", &["c", "d"]),
    ];

    let oracle =
        EngineOracle::new(WhatIfEngine::snapshot(&db, "t")?, structures, &workload)?.into_shared();
    let problem = Problem::paper_experiment();
    let candidates = enumerate_configs(&oracle, None, Some(1))?;

    let k_max = 10;
    let curve = kselect::cost_curve(&oracle, &problem, &candidates, k_max)?;

    println!("constrained-optimal cost vs change budget k (workload W1):\n");
    let max = curve[0].cost.raw() as f64;
    for p in &curve {
        let bar = "█".repeat((60.0 * p.cost.raw() as f64 / max) as usize);
        println!("k={:<2} {:>12} I/Os  {bar}", p.k, p.cost.to_string());
    }

    let knee = kselect::suggest_k_elbow(&curve).expect("curve is non-empty");
    println!(
        "\nknee of the curve: k = {knee}  \
         (W1 has exactly {knee} major shifts — the §2 rule of thumb, derived from data)"
    );
    let tol = kselect::suggest_k(&curve, 0.10);
    println!("within-10%-of-floor rule suggests: k = {tol:?}");

    // Third opinion, and the most principled: cross-validation against
    // perturbed tomorrows (re-sampled literals + out-of-phase drift).
    let spec = paper::w1_with(&params);
    let advice = cdpd::suggest_k_robust(
        &db,
        &spec,
        &cdpd::KAdviceOptions {
            structures: Some(structures_vec()),
            k_max,
            ..Default::default()
        },
    )?;
    println!(
        "cross-validated (train W1, hold out perturbed variants): k = {}",
        advice.k
    );

    // Fourth opinion, needing no cost model at all: changepoint
    // detection on the trace's per-window statement profiles.
    let from_trace = cdpd::workload::analysis::suggest_k_from_trace(&trace, WINDOW)?;
    println!("trace-side shift detection (no cost model): k = {from_trace}");
    println!("\n{:>3} {:>14} {:>16}", "k", "train cost", "holdout cost");
    for p in &advice.curve {
        println!(
            "{:>3} {:>14} {:>16}",
            p.k,
            p.train_cost.to_string(),
            p.mean_test_cost.to_string()
        );
    }
    println!("\ncost-curve oracle: {}", oracle.stats_snapshot());
    println!("k-sweep train oracle: {}", advice.oracle_stats);
    Ok(())
}

fn structures_vec() -> Vec<IndexSpec> {
    vec![
        IndexSpec::new("t", &["a"]),
        IndexSpec::new("t", &["b"]),
        IndexSpec::new("t", &["c"]),
        IndexSpec::new("t", &["d"]),
        IndexSpec::new("t", &["a", "b"]),
        IndexSpec::new("t", &["c", "d"]),
    ]
}

//! Calibration quickstart: replay a paper workload with the
//! predicted-vs-actual loop closed, sample the metrics registry into
//! time series while it runs, and emit the final
//! [`cdpd::CalibrationReport`] as JSON.
//!
//! ```sh
//! cargo run --release --example calibrate > calibration.json
//! ```
//!
//! The narrative goes to stderr; **stdout carries exactly one line of
//! JSON** (the report), so the output can be piped straight into a
//! schema check — ci.sh does exactly that.

use cdpd::engine::{Database, IndexSpec};
use cdpd::replay::replay_calibrated;
use cdpd::types::{ColumnDef, Schema, Value};
use cdpd::workload::{generate, paper};
use cdpd::{CalibrationMode, CalibrationOptions};
use cdpd_testkit::Prng;
use std::time::Duration;

fn main() -> cdpd::types::Result<()> {
    // 1. The usual paper-shaped table: four integer columns, ~5 rows
    //    per distinct value.
    const ROWS: i64 = 20_000;
    const WINDOW: usize = 200;
    let domain = ROWS / 5;
    let db = Database::new();
    db.create_table(
        "t",
        Schema::new(vec![
            ColumnDef::int("a"),
            ColumnDef::int("b"),
            ColumnDef::int("c"),
            ColumnDef::int("d"),
        ]),
    )?;
    let mut rng = Prng::seed_from_u64(7);
    for _ in 0..ROWS {
        let row: Vec<Value> = (0..4)
            .map(|_| Value::Int(rng.gen_range(0..domain)))
            .collect();
        db.insert("t", &row)?;
    }
    db.analyze("t")?;
    eprintln!("loaded {ROWS} rows ({} pages)", db.page_count());

    // 2. The paper's W1 trace and a design schedule that alternates
    //    between indexed and bare windows, so the calibration sees both
    //    index seeks and sequential scans.
    let params = paper::PaperParams {
        domain,
        window_len: WINDOW,
        ..Default::default()
    };
    let trace = generate(&paper::w1_with(&params), 42);
    let windows = trace.len().div_ceil(WINDOW);
    let schedule: Vec<Vec<IndexSpec>> = (0..windows)
        .map(|w| {
            if w % 2 == 0 {
                vec![IndexSpec::new("t", &["a"]), IndexSpec::new("t", &["c"])]
            } else {
                vec![]
            }
        })
        .collect();
    eprintln!("trace: {} statements over {windows} windows", trace.len());

    // 3. Sample the global metrics registry into ring-buffer time
    //    series while the replay runs: the `calibration.*` counters the
    //    replay emits become inspectable trajectories.
    let sampler = cdpd::obs::timeseries::sample_every(Duration::from_millis(2), 4096);

    // 4. Replay under ModelAccount calibration: the oracle predicts
    //    from the live materialized shapes, the executor keeps its own
    //    model account, and the two must reconcile exactly.
    let report = replay_calibrated(
        &db,
        &trace,
        WINDOW,
        &schedule,
        Some(&[]),
        2,
        CalibrationOptions {
            mode: CalibrationMode::ModelAccount,
            ..Default::default()
        },
    )?;
    let sampler = sampler.stop();

    let calib = report
        .calibration
        .expect("calibrated replay always reports");
    eprintln!(
        "calibration: {} samples, {} exact, drift {:.4} (band ±{:.1}), {} watchdog trip(s)",
        calib.samples, calib.exact, calib.drift, calib.band, calib.alerts
    );
    for name in ["calibration.samples", "calibration.exact"] {
        if let Some(series) = sampler.series(name) {
            let w = series.window();
            eprintln!(
                "series {name}: {} points, {} -> {} (delta {})",
                w.len,
                w.first,
                w.last,
                w.delta()
            );
        }
    }

    // 5. The report itself: one line of JSON on stdout.
    println!("{}", calib.to_json());
    Ok(())
}

//! Quickstart: load a table, record a workload trace, and ask the
//! advisor for a change-constrained dynamic physical design.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cdpd::engine::Database;
use cdpd::replay::replay_recommendation;
use cdpd::types::{ColumnDef, Schema, Value};
use cdpd::workload::{generate, paper};
use cdpd::{Advisor, AdvisorOptions};
use cdpd_testkit::Prng;

fn main() -> cdpd::types::Result<()> {
    // Set CDPD_TRACE=1 (and optionally CDPD_TRACE_FILE=trace.jsonl) to
    // capture a span profile of the whole run; it prints at the end.
    let run_span = cdpd::obs::span!("quickstart.run");

    // 1. A table in the shape of the paper's experiments: four integer
    //    columns, uniformly random values, ~5 rows per distinct value.
    const ROWS: i64 = 50_000;
    let domain = ROWS / 5;
    let db = Database::new();
    db.create_table(
        "t",
        Schema::new(vec![
            ColumnDef::int("a"),
            ColumnDef::int("b"),
            ColumnDef::int("c"),
            ColumnDef::int("d"),
        ]),
    )?;
    let mut rng = Prng::seed_from_u64(7);
    for _ in 0..ROWS {
        let row: Vec<Value> = (0..4)
            .map(|_| Value::Int(rng.gen_range(0..domain)))
            .collect();
        db.insert("t", &row)?;
    }
    db.analyze("t")?;
    println!("loaded {ROWS} rows ({} pages)", db.page_count());

    // 2. A workload trace: the paper's W1 (three phases, minor shifts).
    let params = paper::PaperParams {
        domain,
        window_len: 250,
        ..Default::default()
    };
    let trace = generate(&paper::w1_with(&params), 42);
    println!(
        "trace: {} statements, e.g. `{}`",
        trace.len(),
        trace.statements()[0]
    );

    // 3. Recommend a dynamic design with at most k = 2 changes. The
    //    advisor derives candidate indexes from the trace, costs them
    //    with the engine's what-if optimizer, and solves the k-aware
    //    sequence graph.
    let rec = Advisor::new(&db, "t")
        .options(AdvisorOptions {
            k: Some(2),
            window_len: 250,
            end_empty: true,
            ..Default::default()
        })
        .recommend(&trace)?;
    println!("\nrecommended design:\n{}", rec.describe());

    // 4. Apply it for real: replay the trace, building and dropping
    //    indexes exactly where the schedule says, and measure I/O.
    let report = replay_recommendation(&db, &trace, &rec)?;
    println!(
        "replayed {} statements: {} exec I/Os + {} transition I/Os (wall {:.1} ms)",
        report.statements,
        report.exec_io(),
        report.trans_io(),
        report.wall.as_secs_f64() * 1e3,
    );

    // 5. With tracing on, render the span-tree profile of the run.
    drop(run_span);
    if let Some(profile) = cdpd::obs::profile_since(0) {
        println!("\nspan profile (CDPD_TRACE=1):\n{profile}");
    }
    Ok(())
}

//! Indexes are not free once the workload writes: every UPDATE pays
//! per-row maintenance on each index covering a written column. This
//! example extends the paper's Definition 1 ("a sequence of queries
//! *and updates*") to a day with a nightly ETL window:
//!
//! * daytime — read-heavy point queries on `balance`;
//! * night — an ETL burst of `UPDATE accounts SET balance = … WHERE
//!   account_id = …`;
//! * next morning — read-heavy again.
//!
//! A static design keeps `I(balance)` all day and bleeds maintenance
//! I/O all night. The constrained dynamic advisor (k = 2) drops
//! `I(balance)` when the ETL starts — switching to `I(account_id)`,
//! which accelerates the update's WHERE clause and is never written —
//! and rebuilds `I(balance)` for the morning.
//!
//! ```sh
//! cargo run --release --example etl_window
//! ```

use cdpd::engine::{Database, IndexSpec};
use cdpd::replay::{replay, replay_recommendation};
use cdpd::types::{ColumnDef, Schema, Value};
use cdpd::workload::{generate, QueryMix, Template, WorkloadSpec};
use cdpd::{Advisor, AdvisorOptions, Algorithm};
use cdpd_testkit::Prng;

const ROWS: i64 = 30_000;
const WINDOW: usize = 150;

fn load_accounts(seed: u64) -> cdpd::types::Result<Database> {
    let domain = ROWS / 5;
    let db = Database::new();
    db.create_table(
        "accounts",
        Schema::new(vec![
            ColumnDef::int("account_id"),
            ColumnDef::int("balance"),
            ColumnDef::int("branch"),
            ColumnDef::int("flags"),
        ]),
    )?;
    let mut rng = Prng::seed_from_u64(seed);
    for _ in 0..ROWS {
        let row: Vec<Value> = (0..4)
            .map(|_| Value::Int(rng.gen_range(0..domain)))
            .collect();
        db.insert("accounts", &row)?;
    }
    db.analyze("accounts")?;
    Ok(db)
}

fn day_with_etl() -> cdpd::workload::Trace {
    let domain = ROWS / 5;
    let daytime = QueryMix::new("day", &[("balance", 75), ("account_id", 25)]).expect("weights");
    let etl = QueryMix::with_templates(
        "etl",
        vec![
            (
                Template::Update {
                    set_column: "balance".into(),
                    where_column: "account_id".into(),
                },
                85,
            ),
            (
                Template::Point {
                    column: "account_id".into(),
                },
                15,
            ),
        ],
    )
    .expect("weights");
    let mut windows = Vec::new();
    for _ in 0..7 {
        windows.push(daytime.clone());
    }
    for _ in 0..6 {
        windows.push(etl.clone());
    }
    for _ in 0..7 {
        windows.push(daytime.clone());
    }
    let spec = WorkloadSpec::new("accounts", domain, WINDOW, windows).expect("valid spec");
    generate(&spec, 2024)
}

fn main() -> cdpd::types::Result<()> {
    let trace = day_with_etl();
    println!(
        "workload: {} statements, {:.0}% writes during the ETL window\n",
        trace.len(),
        100.0 * trace.write_fraction() * (20.0 / 6.0) // writes concentrated in 6 of 20 windows
    );

    let db = load_accounts(1)?;
    let rec = Advisor::new(&db, "accounts")
        .options(AdvisorOptions {
            k: Some(2),
            window_len: WINDOW,
            max_structures_per_config: Some(1),
            end_empty: false,
            algorithm: Algorithm::KAware,
            ..Default::default()
        })
        .recommend(&trace)?;
    println!("k = 2 recommendation:\n{}", rec.describe());

    // Measure against the static alternative on identically loaded DBs.
    let db_dynamic = load_accounts(7)?;
    let dynamic = replay_recommendation(&db_dynamic, &trace, &rec)?;

    let db_static = load_accounts(7)?;
    let stages = trace.len().div_ceil(WINDOW);
    let static_specs = vec![vec![IndexSpec::new("accounts", &["balance"])]; stages];
    let pinned = replay(&db_static, &trace, WINDOW, &static_specs, None)?;

    println!("measured I/O over the whole day:");
    println!(
        "  dynamic (advisor):      {:>9} I/Os  ({} design changes)",
        dynamic.total_io(),
        rec.schedule.changes
    );
    println!(
        "  static I(balance):      {:>9} I/Os  (maintained through the ETL)",
        pinned.total_io()
    );
    let saved = 100.0 * (1.0 - dynamic.total_io() as f64 / pinned.total_io() as f64);
    println!("  dynamic design saves {saved:.1}%");
    Ok(())
}

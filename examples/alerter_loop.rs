//! The §7 deployment loop, end to end:
//!
//! > *"Design alerters periodically check the quality of the existing
//! > physical configuration … Within our framework, we might rely on
//! > these technologies to trigger an off-line dynamic optimizer such
//! > as the one presented here."*
//!
//! A live system executes statements; an [`Alerter`](cdpd::Alerter)
//! watches the recent window. When the workload drifts and the current
//! design deteriorates, the alert fires, carrying the recent trace —
//! which is fed straight to the offline advisor, whose recommendation
//! is applied with online DDL. Rinse, repeat.
//!
//! ```sh
//! cargo run --release --example alerter_loop
//! ```

use cdpd::engine::{Database, IndexSpec};
use cdpd::types::{ColumnDef, Schema, Value};
use cdpd::workload::{generate, QueryMix, WorkloadSpec};
use cdpd::{Advisor, AdvisorOptions, Alerter};
use cdpd_testkit::Prng;

const ROWS: i64 = 30_000;
const CHECK_EVERY: usize = 200;

fn main() -> cdpd::types::Result<()> {
    let domain = ROWS / 5;
    let db = Database::new();
    db.create_table(
        "t",
        Schema::new(vec![
            ColumnDef::int("a"),
            ColumnDef::int("b"),
            ColumnDef::int("c"),
            ColumnDef::int("d"),
        ]),
    )?;
    let mut rng = Prng::seed_from_u64(23);
    for _ in 0..ROWS {
        let row: Vec<Value> = (0..4)
            .map(|_| Value::Int(rng.gen_range(0..domain)))
            .collect();
        db.insert("t", &row)?;
    }
    db.analyze("t")?;
    // Start with a design tuned for the morning workload.
    db.create_index(&IndexSpec::new("t", &["a"]))?;
    println!("initial design: I(a)\n");

    // The day's workload drifts: a-heavy, then c-heavy, then b-heavy.
    let spec = WorkloadSpec::new(
        "t",
        domain,
        400,
        vec![
            QueryMix::new("morning", &[("a", 80), ("b", 20)])?,
            QueryMix::new("midday", &[("c", 80), ("d", 20)])?,
            QueryMix::new("evening", &[("b", 80), ("a", 20)])?,
        ],
    )?;
    let day = generate(&spec, 99);

    let candidates: Vec<IndexSpec> = ["a", "b", "c", "d"]
        .iter()
        .map(|c| IndexSpec::new("t", &[*c]))
        .collect();
    let mut alerter = Alerter::new(&db, "t", candidates, 150, 0.5)?;

    let mut alerts = 0;
    for (i, stmt) in day.statements().iter().enumerate() {
        db.execute_dml(stmt)?;
        alerter.observe(stmt);

        if (i + 1) % CHECK_EVERY != 0 {
            continue;
        }
        if let Some(alert) = alerter.check(&db)? {
            alerts += 1;
            println!(
                "statement {:>5}: ALERT — current design {:.0}% worse than achievable",
                i + 1,
                alert.degradation * 100.0
            );
            // The §7 loop: feed the alert's trace to the offline
            // advisor and apply its (here: static, k = 0) answer.
            let rec = Advisor::new(&db, "t")
                .options(AdvisorOptions {
                    k: Some(0),
                    window_len: alert.recent_trace.len(),
                    max_structures_per_config: Some(1),
                    ..Default::default()
                })
                .recommend(&alert.recent_trace)?;
            let specs = rec.specs_at(0);
            let report = db.apply_configuration("t", &specs)?;
            println!(
                "                 re-tuned: +[{}] -[{}] ({} I/Os)",
                report.created.join(", "),
                report.dropped.join(", "),
                report.io.total()
            );
        }
    }
    println!(
        "\nday finished: {} statements, {alerts} alert-triggered re-tunings",
        day.len()
    );
    println!(
        "final design: [{}]",
        db.index_specs("t")?
            .iter()
            .map(IndexSpec::display_short)
            .collect::<Vec<_>>()
            .join(", ")
    );
    Ok(())
}

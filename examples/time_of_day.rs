//! The paper's §2 motivating scenario: a business-day workload with
//! known time-of-day phenomena.
//!
//! > *"if we are aware of time-of-day phenomena that cause the workload
//! > to change at lunchtime and in the evening, we can choose a value
//! > of k equal to or a bit larger than the number of anticipated
//! > fluctuations."*
//!
//! The day has three regimes — morning OLTP on `order_id`, a lunchtime
//! reporting burst on `(region, amount)`, and an evening batch on
//! `customer_id` — i.e. two anticipated shifts, so the DBA picks k = 2.
//! Noise queries inside each regime are exactly what an unconstrained
//! advisor overfits and a k = 2 advisor ignores.
//!
//! ```sh
//! cargo run --release --example time_of_day
//! ```

use cdpd::engine::Database;
use cdpd::types::{ColumnDef, Schema, Value};
use cdpd::workload::{generate, QueryMix, Trace, WorkloadSpec};
use cdpd::{Advisor, AdvisorOptions};
use cdpd_testkit::Prng;

fn build_day_trace(domain: i64) -> Trace {
    let mix = |name: &str, dominant: &str, secondary: &str| {
        let others: Vec<&str> = ["order_id", "customer_id", "region", "amount"]
            .into_iter()
            .filter(|c| *c != dominant && *c != secondary)
            .collect();
        QueryMix::new(
            name,
            &[
                (dominant, 55),
                (secondary, 25),
                (others[0], 10),
                (others[1], 10),
            ],
        )
        .expect("weights")
    };
    // Within each regime the *dominant* column flickers between two
    // related columns — the noise an unconstrained advisor chases.
    let morning_a = mix("morning/orders", "order_id", "customer_id");
    let morning_b = mix("morning/lookups", "customer_id", "order_id");
    let lunch_a = mix("lunch/by-region", "region", "amount");
    let lunch_b = mix("lunch/by-amount", "amount", "region");
    let evening_a = mix("evening/batch", "customer_id", "order_id");
    let evening_b = mix("evening/audit", "order_id", "customer_id");

    // Morning (8 windows), lunchtime burst (4), evening batch (6).
    let mut windows = Vec::new();
    for i in 0..8 {
        windows.push(if i % 2 == 0 {
            morning_a.clone()
        } else {
            morning_b.clone()
        });
    }
    for i in 0..4 {
        windows.push(if i % 2 == 0 {
            lunch_a.clone()
        } else {
            lunch_b.clone()
        });
    }
    for i in 0..6 {
        windows.push(if i % 2 == 0 {
            evening_a.clone()
        } else {
            evening_b.clone()
        });
    }
    let spec = WorkloadSpec::new("orders", domain, 200, windows).expect("valid spec");
    generate(&spec, 99)
}

fn main() -> cdpd::types::Result<()> {
    const ROWS: i64 = 40_000;
    let domain = ROWS / 5;
    let db = Database::new();
    db.create_table(
        "orders",
        Schema::new(vec![
            ColumnDef::int("order_id"),
            ColumnDef::int("customer_id"),
            ColumnDef::int("region"),
            ColumnDef::int("amount"),
        ]),
    )?;
    let mut rng = Prng::seed_from_u64(3);
    for _ in 0..ROWS {
        let row: Vec<Value> = (0..4)
            .map(|_| Value::Int(rng.gen_range(0..domain)))
            .collect();
        db.insert("orders", &row)?;
    }
    db.analyze("orders")?;

    let trace = build_day_trace(domain);
    println!(
        "one business day: {} queries in {} windows\n",
        trace.len(),
        18
    );

    // Unconstrained: fits every fluctuation of this particular day.
    let unconstrained = Advisor::new(&db, "orders")
        .options(AdvisorOptions {
            window_len: 200,
            end_empty: true,
            ..Default::default()
        })
        .recommend(&trace)?;
    println!(
        "unconstrained advisor (overfits the noise):\n{}",
        unconstrained.describe()
    );

    // Two anticipated shifts (lunchtime, evening) ⇒ k = 2.
    let k2 = Advisor::new(&db, "orders")
        .options(AdvisorOptions {
            k: Some(2),
            window_len: 200,
            end_empty: true,
            ..Default::default()
        })
        .recommend(&trace)?;
    println!("k = 2 advisor (tracks the regimes):\n{}", k2.describe());

    println!(
        "estimated cost of regularity: {:.1}% (worth paying if tomorrow's \
         noise differs from today's — see the workload_drift example)",
        100.0
            * (k2.schedule.total_cost().raw() as f64
                / unconstrained.schedule.total_cost().raw() as f64
                - 1.0)
    );
    Ok(())
}

//! Structured tracing: thread-local span stacks, monotonic timing,
//! per-span tracked-counter deltas, and two sinks — a bounded in-memory
//! ring and an optional JSONL file.
//!
//! Tracing is **off by default** and costs one relaxed atomic load to
//! check. It is enabled programmatically with [`set_enabled`] or from
//! the environment (`CDPD_TRACE=1`, optionally `CDPD_TRACE_FILE=path`
//! bounded by `CDPD_TRACE_MAX_BYTES`), which is consulted lazily on the
//! first [`enabled`] call.
//!
//! Span records are emitted at span *close*; the closing timestamp and
//! sequence number are assigned under the sink lock, so both the ring
//! and the JSONL file are strictly ordered by `seq` with nondecreasing
//! `ts`. Because a child span always closes before its parent on the
//! same thread, per-thread records are well-nested by construction.

use std::cell::RefCell;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Capacity of the in-memory ring sink; older records are dropped.
pub const RING_CAPACITY: usize = 65_536;

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// Is tracing currently enabled? One relaxed atomic load on the fast
/// path; the first call consults `CDPD_TRACE`/`CDPD_TRACE_FILE`.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_OFF => false,
        STATE_ON => true,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("CDPD_TRACE")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    if on {
        if let Ok(path) = std::env::var("CDPD_TRACE_FILE") {
            let _ = set_file_sink(Some(Path::new(&path)));
            if let Some(limit) = std::env::var("CDPD_TRACE_MAX_BYTES")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
            {
                set_file_limit(Some(limit));
            }
        }
    }
    // Keep an explicit set_enabled() that raced us.
    let _ = STATE.compare_exchange(
        STATE_UNINIT,
        if on { STATE_ON } else { STATE_OFF },
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    STATE.load(Ordering::Relaxed) == STATE_ON
}

/// Turn tracing on or off programmatically (overrides the environment).
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// Re-read `CDPD_TRACE`/`CDPD_TRACE_FILE` and reapply them, as if the
/// process were starting fresh. Intended for tests and long-lived
/// processes that change their environment.
pub fn reinit_from_env() {
    STATE.store(STATE_UNINIT, Ordering::Relaxed);
    let _ = set_file_sink(None);
    init_from_env();
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process trace epoch (first call). Monotonic.
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

/// A span attribute value.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    Uint(u64),
    /// Floating point.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl From<i32> for AttrValue {
    fn from(v: i32) -> Self {
        AttrValue::Int(v as i64)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::Uint(v as u64)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::Uint(v)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::Uint(v as u64)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}
impl From<char> for AttrValue {
    fn from(v: char) -> Self {
        AttrValue::Str(v.to_string())
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Int(v) => write!(f, "{v}"),
            AttrValue::Uint(v) => write!(f, "{v}"),
            AttrValue::Float(v) => write!(f, "{v}"),
            AttrValue::Bool(v) => write!(f, "{v}"),
            AttrValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl AttrValue {
    fn to_json(&self) -> String {
        match self {
            AttrValue::Int(v) => v.to_string(),
            AttrValue::Uint(v) => v.to_string(),
            AttrValue::Float(v) if v.is_finite() => v.to_string(),
            AttrValue::Float(v) => format!("\"{v}\""),
            AttrValue::Bool(v) => v.to_string(),
            AttrValue::Str(v) => json_string(v),
        }
    }
}

/// Escape `s` as a JSON string literal (with quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A completed span, as stored in the ring sink and serialized to JSONL.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Span name (the macro's literal).
    pub name: &'static str,
    /// Slash-joined path of enclosing span names on this thread.
    pub path: String,
    /// Small per-process thread id (not the OS id).
    pub thread: u64,
    /// Number of enclosing spans still open when this one closed.
    pub depth: usize,
    /// Global close order (assigned under the sink lock).
    pub seq: u64,
    /// Open timestamp, ns since the trace epoch.
    pub start_ns: u64,
    /// Close timestamp, ns since the trace epoch (assigned under the
    /// sink lock, so records are ordered by it).
    pub end_ns: u64,
    /// Attributes captured at open.
    pub attrs: Vec<(&'static str, AttrValue)>,
    /// Deltas of *tracked* counters bumped on this thread while the
    /// span was open (including inside children).
    pub counters: Vec<(&'static str, u64)>,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Delta of tracked counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    fn to_jsonl(&self) -> String {
        let mut line = String::with_capacity(160);
        line.push_str("{\"type\":\"span\"");
        line.push_str(&format!(",\"seq\":{}", self.seq));
        line.push_str(&format!(",\"ts\":{}", self.end_ns));
        line.push_str(&format!(",\"start_ns\":{}", self.start_ns));
        line.push_str(&format!(",\"dur_ns\":{}", self.dur_ns()));
        line.push_str(&format!(",\"thread\":{}", self.thread));
        line.push_str(&format!(",\"depth\":{}", self.depth));
        line.push_str(&format!(",\"name\":{}", json_string(self.name)));
        line.push_str(&format!(",\"path\":{}", json_string(&self.path)));
        line.push_str(",\"attrs\":{");
        for (i, (k, v)) in self.attrs.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("{}:{}", json_string(k), v.to_json()));
        }
        line.push_str("},\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("{}:{}", json_string(k), v));
        }
        line.push_str("}}\n");
        line
    }
}

struct Frame {
    name: &'static str,
    path: String,
    start_ns: u64,
    attrs: Vec<(&'static str, AttrValue)>,
    entry_counts: HashMap<&'static str, u64>,
}

#[derive(Default)]
struct LocalTrace {
    id: u64,
    stack: Vec<Frame>,
    counts: HashMap<&'static str, u64>,
}

thread_local! {
    static LOCAL: RefCell<LocalTrace> = RefCell::new(LocalTrace::default());
}

/// Bump the per-thread shadow count of tracked counter `name` — called
/// by [`crate::metrics::Counter::add`] for tracked counters only.
#[inline]
pub(crate) fn note_tracked(name: &'static str, n: u64) {
    if !enabled() {
        return;
    }
    LOCAL.with(|l| {
        if let Ok(mut l) = l.try_borrow_mut() {
            *l.counts.entry(name).or_insert(0) += n;
        }
    });
}

fn thread_id(l: &mut LocalTrace) -> u64 {
    if l.id == 0 {
        l.id = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
    }
    l.id
}

/// RAII guard for an open span. Create via the
/// [`span!`](crate::span) macro; the span closes (and its record is
/// emitted) when the guard drops.
#[must_use = "a span closes when its guard drops; bind it with `let _span = ...`"]
pub struct Span {
    active: bool,
}

impl Span {
    /// A no-op span, returned by `span!` when tracing is disabled.
    pub fn disabled() -> Span {
        Span { active: false }
    }

    /// Open a span on this thread's stack. Prefer the
    /// [`span!`](crate::span) macro, which skips attribute evaluation
    /// entirely when tracing is off.
    pub fn enter(name: &'static str, attrs: Vec<(&'static str, AttrValue)>) -> Span {
        let start_ns = now_ns();
        LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            let path = match l.stack.last() {
                Some(parent) => format!("{}/{}", parent.path, name),
                None => name.to_string(),
            };
            let entry_counts = l.counts.clone();
            l.stack.push(Frame {
                name,
                path,
                start_ns,
                attrs,
                entry_counts,
            });
        });
        Span { active: true }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let rec = LOCAL.with(|l| {
            let mut l = l.borrow_mut();
            let frame = l.stack.pop()?;
            let depth = l.stack.len();
            let mut counters: Vec<(&'static str, u64)> = l
                .counts
                .iter()
                .filter_map(|(&k, &v)| {
                    let before = frame.entry_counts.get(k).copied().unwrap_or(0);
                    (v > before).then_some((k, v - before))
                })
                .collect();
            counters.sort_unstable_by_key(|&(k, _)| k);
            let thread = thread_id(&mut l);
            Some(SpanRecord {
                name: frame.name,
                path: frame.path,
                thread,
                depth,
                seq: 0,
                start_ns: frame.start_ns,
                end_ns: 0,
                attrs: frame.attrs,
                counters,
            })
        });
        if let Some(rec) = rec {
            sink_record(rec);
        }
    }
}

struct SinkState {
    ring: VecDeque<SpanRecord>,
    file: Option<BufWriter<File>>,
    /// Remaining byte budget for the file sink (`CDPD_TRACE_MAX_BYTES`
    /// or [`set_file_limit`]); `None` means unbounded.
    file_budget: Option<u64>,
    seq: u64,
}

fn sinks() -> &'static Mutex<SinkState> {
    static SINKS: OnceLock<Mutex<SinkState>> = OnceLock::new();
    SINKS.get_or_init(|| {
        Mutex::new(SinkState {
            ring: VecDeque::new(),
            file: None,
            file_budget: None,
            seq: 0,
        })
    })
}

/// Write one JSONL line to the file sink, honouring the byte budget.
/// When the budget cannot cover the line, a final truncation-marker
/// event (which may overshoot the cap by its own ~100 bytes) is written
/// instead and the file sink is closed; the ring sink keeps recording.
fn write_file_line(s: &mut SinkState, ts: u64, line: &str) {
    if s.file.is_none() {
        return;
    }
    let fits = s.file_budget.is_none_or(|b| line.len() as u64 <= b);
    if fits {
        if let Some(f) = &mut s.file {
            let _ = f.write_all(line.as_bytes());
            let _ = f.flush();
        }
        if let Some(b) = &mut s.file_budget {
            *b -= line.len() as u64;
        }
        return;
    }
    let seq = s.seq;
    s.seq += 1;
    let marker = format!(
        "{{\"type\":\"event\",\"seq\":{seq},\"ts\":{ts},\"msg\":{}}}\n",
        json_string("trace truncated: CDPD_TRACE_MAX_BYTES reached")
    );
    if let Some(f) = &mut s.file {
        let _ = f.write_all(marker.as_bytes());
        let _ = f.flush();
    }
    s.file = None;
    s.file_budget = None;
}

fn sink_record(mut rec: SpanRecord) {
    let mut s = sinks().lock().expect("trace sink poisoned");
    rec.end_ns = now_ns();
    rec.seq = s.seq;
    s.seq += 1;
    let line = rec.to_jsonl();
    write_file_line(&mut s, rec.end_ns, &line);
    if s.ring.len() == RING_CAPACITY {
        s.ring.pop_front();
    }
    s.ring.push_back(rec);
}

/// Install (`Some(path)`, truncating) or remove (`None`) the JSONL file
/// sink.
pub fn set_file_sink(path: Option<&Path>) -> io::Result<()> {
    let file = match path {
        Some(p) => Some(BufWriter::new(File::create(p)?)),
        None => None,
    };
    let mut s = sinks().lock().expect("trace sink poisoned");
    if let Some(old) = &mut s.file {
        let _ = old.flush();
    }
    s.file = file;
    s.file_budget = None;
    Ok(())
}

/// Cap the JSONL file sink at roughly `limit` bytes from this point on
/// (`None` removes the cap). When the budget runs out, one final
/// truncation-marker event is written and the file sink closes; the
/// in-memory ring keeps recording. Set from the environment via
/// `CDPD_TRACE_MAX_BYTES` alongside `CDPD_TRACE_FILE`.
pub fn set_file_limit(limit: Option<u64>) {
    sinks().lock().expect("trace sink poisoned").file_budget = limit;
}

/// Copy of the ring sink's records, oldest first.
pub fn ring() -> Vec<SpanRecord> {
    sinks()
        .lock()
        .expect("trace sink poisoned")
        .ring
        .iter()
        .cloned()
        .collect()
}

/// Drain the ring sink, returning its records oldest first.
pub fn drain() -> Vec<SpanRecord> {
    sinks()
        .lock()
        .expect("trace sink poisoned")
        .ring
        .drain(..)
        .collect()
}

/// Emit a diagnostic event: always printed to stderr (the successor of
/// scattered `eprintln!`s), and also serialized to the JSONL sink when
/// tracing is enabled. Prefer the [`event!`](crate::event) macro.
pub fn emit_event(msg: &str) {
    eprintln!("{msg}");
    if !enabled() {
        return;
    }
    let mut s = sinks().lock().expect("trace sink poisoned");
    let ts = now_ns();
    let seq = s.seq;
    s.seq += 1;
    let line = format!(
        "{{\"type\":\"event\",\"seq\":{seq},\"ts\":{ts},\"msg\":{}}}\n",
        json_string(msg)
    );
    write_file_line(&mut s, ts, &line);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn attr_value_conversions() {
        assert_eq!(AttrValue::from(3i32), AttrValue::Int(3));
        assert_eq!(AttrValue::from(3u64), AttrValue::Uint(3));
        assert_eq!(AttrValue::from(3usize), AttrValue::Uint(3));
        assert_eq!(AttrValue::from(true), AttrValue::Bool(true));
        assert_eq!(AttrValue::from("s"), AttrValue::Str("s".into()));
        assert_eq!(AttrValue::from('w'), AttrValue::Str("w".into()));
        assert_eq!(AttrValue::Float(1.5).to_json(), "1.5");
        assert_eq!(AttrValue::Str("q\"".into()).to_json(), "\"q\\\"\"");
    }

    #[test]
    fn span_record_jsonl_shape() {
        let rec = SpanRecord {
            name: "solve.greedy",
            path: "advisor.recommend/solve.greedy".to_string(),
            thread: 1,
            depth: 1,
            seq: 7,
            start_ns: 10,
            end_ns: 25,
            attrs: vec![("k", AttrValue::Uint(4))],
            counters: vec![("storage.pager.reads", 12)],
        };
        let line = rec.to_jsonl();
        assert!(line.starts_with("{\"type\":\"span\",\"seq\":7,\"ts\":25"));
        assert!(line.contains("\"dur_ns\":15"));
        assert!(line.contains("\"attrs\":{\"k\":4}"));
        assert!(line.contains("\"counters\":{\"storage.pager.reads\":12}"));
        assert!(line.ends_with("}}\n"));
        assert_eq!(rec.counter("storage.pager.reads"), 12);
        assert_eq!(rec.counter("absent"), 0);
    }

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}

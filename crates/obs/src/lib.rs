//! `cdpd-obs` — zero-dependency observability for the cdpd workspace.
//!
//! Three cooperating layers:
//!
//! * a **metrics registry** ([`metrics`]): named lock-free counters,
//!   gauges, and log-2-bucketed histograms with percentile snapshots.
//!   Handles are `&'static`, updates are single relaxed atomic RMWs,
//!   and the whole registry can be snapshotted/diffed around an
//!   operation ([`MetricsSnapshot::delta`]).
//! * a **tracing layer** ([`trace`]): thread-local span stacks with
//!   monotonic timing and per-span deltas of *tracked* counters, a
//!   bounded in-memory ring sink, and a JSONL file sink gated by
//!   `CDPD_TRACE=1` / `CDPD_TRACE_FILE=path` (optionally bounded by
//!   `CDPD_TRACE_MAX_BYTES`). [`report`] folds recorded spans into a
//!   flamegraph-style self/total-time tree.
//! * a **time-series layer** ([`timeseries`]): bounded ring-buffer
//!   series sampled from the registry ([`Sampler`]), with windowed
//!   min/max/mean/last summaries and an OpenMetrics text exposition of
//!   snapshots ([`openmetrics`]).
//!
//! Tracing is off by default; the [`span!`] macro then costs one relaxed
//! atomic load and evaluates none of its attribute expressions.
//!
//! ```
//! use cdpd_obs::{counter, span};
//!
//! cdpd_obs::trace::set_enabled(true);
//! {
//!     let _span = span!("demo.outer", items = 3usize);
//!     counter!("demo.widgets").add(3);
//! }
//! let records = cdpd_obs::trace::drain();
//! assert_eq!(records.last().unwrap().name, "demo.outer");
//! cdpd_obs::trace::set_enabled(false);
//! ```

#![warn(missing_docs)]

pub mod metrics;
pub mod openmetrics;
pub mod report;
pub mod timeseries;
pub mod trace;

pub use metrics::{
    registry, Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry,
};
pub use report::{aggregate, profile_since, Profile, ProfileNode};
pub use timeseries::{sample_every, IntervalSampler, Sampler, SeriesWindow, TimeSeries};
pub use trace::{AttrValue, Span, SpanRecord};

/// Cached `&'static` handle to a registry counter.
///
/// The handle is interned once per call site (`OnceLock`), so the
/// steady-state cost of `counter!("name").add(1)` is one relaxed load
/// plus the `fetch_add`.
#[macro_export]
macro_rules! counter {
    ($name:literal) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::metrics::Counter> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::metrics::registry().counter($name))
    }};
}

/// Like [`counter!`], but the counter is *tracked*: while tracing is
/// enabled, open spans attribute its per-thread deltas.
#[macro_export]
macro_rules! tracked_counter {
    ($name:literal) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::metrics::Counter> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::metrics::registry().counter_tracked($name))
    }};
}

/// Cached `&'static` handle to a registry gauge.
#[macro_export]
macro_rules! gauge {
    ($name:literal) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::metrics::Gauge> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::metrics::registry().gauge($name))
    }};
}

/// Cached `&'static` handle to a registry histogram.
#[macro_export]
macro_rules! histogram {
    ($name:literal) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::metrics::Histogram> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::metrics::registry().histogram($name))
    }};
}

/// Open a span: `let _span = span!("advisor.recommend", k = 4);`.
///
/// The span closes when the guard drops. When tracing is disabled this
/// is a single relaxed atomic load and the attribute expressions are
/// **not** evaluated. Attribute values can be any type convertible into
/// [`trace::AttrValue`] (integers, floats, bools, strings, chars).
#[macro_export]
macro_rules! span {
    ($name:literal $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::trace::enabled() {
            $crate::trace::Span::enter(
                $name,
                ::std::vec![$((stringify!($key), $crate::trace::AttrValue::from($val))),*],
            )
        } else {
            $crate::trace::Span::disabled()
        }
    };
}

/// Emit a diagnostic event with `format!` syntax: always printed to
/// stderr, and mirrored into the JSONL trace sink when tracing is
/// enabled.
#[macro_export]
macro_rules! event {
    ($($arg:tt)*) => {
        $crate::trace::emit_event(&::std::format!($($arg)*))
    };
}

//! Lock-free metrics registry: named counters, gauges, and
//! log-2-bucketed histograms.
//!
//! Handles are `&'static` (leaked once on first registration) so the hot
//! path is a single relaxed atomic RMW with no locking; the registry's
//! `RwLock` is only taken on first registration of a name and when
//! snapshotting. The [`counter!`](crate::counter),
//! [`gauge!`](crate::gauge) and [`histogram!`](crate::histogram) macros
//! cache the handle in a per-call-site `OnceLock`, so steady-state cost
//! is one relaxed atomic load plus the update itself.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

/// Number of histogram buckets: one for zero plus one per power of two
/// up to `2^63..=u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing named counter.
///
/// *Tracked* counters additionally feed per-thread shadow counts so the
/// tracing layer can attach counter deltas to spans (see
/// [`crate::trace`]); the shadow bump only happens while tracing is
/// enabled, so the disabled-path cost is one relaxed `fetch_add` plus
/// two relaxed loads.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    tracked: AtomicBool,
}

impl Counter {
    fn new(name: &'static str) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
            tracked: AtomicBool::new(false),
        }
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
        if self.tracked.load(Ordering::Relaxed) {
            crate::trace::note_tracked(self.name, n);
        }
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Whether spans attribute deltas of this counter (see
    /// [`Registry::counter_tracked`]).
    pub fn is_tracked(&self) -> bool {
        self.tracked.load(Ordering::Relaxed)
    }
}

/// A named gauge: a value that can move both ways (e.g. resident pages).
pub struct Gauge {
    name: &'static str,
    value: AtomicI64,
}

impl Gauge {
    fn new(name: &'static str) -> Gauge {
        Gauge {
            name,
            value: AtomicI64::new(0),
        }
    }

    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// Index of the log-2 bucket covering `v`: bucket 0 holds exactly zero,
/// bucket `k >= 1` holds `2^(k-1) ..= 2^k - 1`, bucket 64 tops out at
/// `u64::MAX`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `k` (the value percentiles report).
pub fn bucket_upper_bound(k: usize) -> u64 {
    match k {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << k) - 1,
    }
}

/// A log-2-bucketed histogram of `u64` samples.
///
/// Recording is wait-free (three relaxed RMWs); percentile queries run
/// over a [`HistogramSnapshot`] and report the *upper bound* of the
/// bucket holding the requested rank, so they over-estimate by at most
/// 2x — the usual trade for fixed-size lock-free histograms.
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Histogram {
    fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [(); HISTOGRAM_BUCKETS].map(|_| AtomicU64::new(0)),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// The registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Consistent-enough copy of the current state (buckets are read
    /// individually with relaxed loads; under concurrent writes the
    /// snapshot may be mid-update by a few samples, which is fine for
    /// reporting).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: self.buckets.each_ref().map(|b| b.load(Ordering::Relaxed)),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (wrapping).
    pub sum: u64,
    /// Per-bucket sample counts (see [`bucket_index`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// containing the `ceil(q * count)`-th smallest sample. Returns 0
    /// for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (k, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(k);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Median (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 95th percentile (bucket upper bound).
    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    /// 99th percentile (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Upper bound of the highest non-empty bucket (0 when empty).
    pub fn max_bound(&self) -> u64 {
        self.buckets
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &n)| n > 0)
            .map(|(k, _)| bucket_upper_bound(k))
            .unwrap_or(0)
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bucket-wise difference `self - earlier` (saturating), for
    /// interval reporting over a monotonically growing histogram.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.wrapping_sub(earlier.sum),
            buckets,
        }
    }
}

/// The process-wide metrics registry.
///
/// Obtain it with [`registry()`]; register-or-look-up is locked, but the
/// returned handles are `&'static` and lock-free to update.
#[derive(Default)]
pub struct Registry {
    counters: RwLock<HashMap<&'static str, &'static Counter>>,
    gauges: RwLock<HashMap<&'static str, &'static Gauge>>,
    histograms: RwLock<HashMap<&'static str, &'static Histogram>>,
}

fn intern<T>(
    map: &RwLock<HashMap<&'static str, &'static T>>,
    name: &'static str,
    mk: impl FnOnce() -> T,
) -> &'static T {
    if let Some(v) = map.read().expect("metrics registry poisoned").get(name) {
        return v;
    }
    let mut w = map.write().expect("metrics registry poisoned");
    w.entry(name).or_insert_with(|| Box::leak(Box::new(mk())))
}

impl Registry {
    /// Get or create the counter `name`.
    pub fn counter(&self, name: &'static str) -> &'static Counter {
        intern(&self.counters, name, || Counter::new(name))
    }

    /// Get or create the counter `name` and mark it *tracked*: spans
    /// opened while tracing is enabled will attribute its per-thread
    /// deltas (see [`crate::trace::SpanRecord::counters`]).
    pub fn counter_tracked(&self, name: &'static str) -> &'static Counter {
        let c = self.counter(name);
        c.tracked.store(true, Ordering::Relaxed);
        c
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &'static str) -> &'static Gauge {
        intern(&self.gauges, name, || Gauge::new(name))
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &'static str) -> &'static Histogram {
        intern(&self.histograms, name, || Histogram::new(name))
    }

    /// Current value of counter `name`, or 0 if it was never registered.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .read()
            .expect("metrics registry poisoned")
            .get(name)
            .map(|c| c.get())
            .unwrap_or(0)
    }

    /// Point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .read()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(&k, c)| (k.to_string(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .read()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(&k, g)| (k.to_string(), g.get()))
            .collect();
        let histograms = self
            .histograms
            .read()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(&k, h)| (k.to_string(), h.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

/// The process-wide [`Registry`].
pub fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::default)
}

/// Point-in-time copy of the registry, suitable for diffing around an
/// operation ([`MetricsSnapshot::delta`]) and attaching to results such
/// as a `Recommendation`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value by name (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by name (0 if absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Counter-wise and histogram-wise difference `self - earlier`.
    /// Gauges keep their later value (they are levels, not totals).
    /// Counters that round to zero are dropped from the delta.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .filter_map(|(k, &v)| {
                let d = v.saturating_sub(earlier.counter(k));
                (d > 0).then(|| (k.clone(), d))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .filter_map(|(k, h)| {
                let d = match earlier.histograms.get(k) {
                    Some(e) => h.delta(e),
                    None => h.clone(),
                };
                (d.count > 0).then(|| (k.clone(), d))
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// True when the snapshot holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "{k} = {v}")?;
        }
        for (k, v) in &self.gauges {
            writeln!(f, "{k} = {v} (gauge)")?;
        }
        for (k, h) in &self.histograms {
            writeln!(
                f,
                "{k} = {{n={} mean={:.1} p50<={} p95<={} p99<={}}}",
                h.count,
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_zero_one_max() {
        let h = Histogram::new("t");
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[64], 1);
        assert_eq!(s.percentile(0.0), 0);
        assert_eq!(s.p50(), 1);
        assert_eq!(s.percentile(1.0), u64::MAX);
        assert_eq!(s.max_bound(), u64::MAX);
    }

    #[test]
    fn histogram_all_equal_samples() {
        let h = Histogram::new("t");
        for _ in 0..1000 {
            h.record(100);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 100_000);
        // 100 lives in bucket 7 (64..=127); every percentile reports its
        // upper bound.
        let b = bucket_upper_bound(bucket_index(100));
        assert_eq!(b, 127);
        assert_eq!(s.p50(), b);
        assert_eq!(s.p95(), b);
        assert_eq!(s.p99(), b);
        assert_eq!(s.max_bound(), b);
        assert!((s.mean() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_empty() {
        let s = Histogram::new("t").snapshot();
        assert_eq!(s.percentile(0.5), 0);
        assert_eq!(s.max_bound(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn histogram_empty_quantiles_all_zero() {
        let s = HistogramSnapshot::default();
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(s.percentile(q), 0, "q={q} on empty");
        }
        assert_eq!((s.p50(), s.p95(), s.p99()), (0, 0, 0));
    }

    #[test]
    fn histogram_single_sample() {
        let h = Histogram::new("t");
        h.record(37);
        let s = h.snapshot();
        assert_eq!((s.count, s.sum), (1, 37));
        // Every quantile — including q=0, whose rank clamps to 1 —
        // reports the one sample's bucket bound.
        let b = bucket_upper_bound(bucket_index(37));
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(s.percentile(q), b, "q={q} on single sample");
        }
        assert_eq!(s.max_bound(), b);
        assert_eq!(s.mean(), 37.0);
    }

    #[test]
    fn histogram_top_bucket_saturates() {
        let h = Histogram::new("t");
        // Everything in 2^63..=u64::MAX lands in the top bucket, whose
        // reported bound is u64::MAX (no overflow computing 2^65).
        h.record(1u64 << 63);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 2);
        assert_eq!(s.p50(), u64::MAX);
        assert_eq!(s.percentile(1.0), u64::MAX);
        assert_eq!(s.max_bound(), u64::MAX);
        // The sum wraps by design (documented on the field); the count
        // and buckets stay exact.
        assert_eq!(s.sum, u64::MAX.wrapping_add(1u64 << 63));
        assert_eq!(s.count, 2);
    }

    #[test]
    fn histogram_delta_across_reset_saturates() {
        // Diffing a *fresh* histogram against a snapshot from before a
        // conceptual reset must saturate to empty, never underflow.
        let old = {
            let h = Histogram::new("t");
            h.record(8);
            h.record(9);
            h.snapshot()
        };
        let fresh = {
            let h = Histogram::new("t");
            h.record(8);
            h.snapshot()
        };
        let d = fresh.delta(&old);
        assert_eq!(d.count, 0, "count saturates");
        assert!(d.buckets.iter().all(|&b| b == 0), "buckets saturate");
        // The wrapped sum is meaningless after a reset, but deriving
        // stats from the saturated count stays safe.
        assert_eq!(d.percentile(0.5), 0);
        assert_eq!(d.mean(), 0.0);
    }

    #[test]
    fn histogram_percentile_spread() {
        let h = Histogram::new("t");
        // 90 samples of 1, 9 samples of ~1000, 1 sample of ~1M.
        for _ in 0..90 {
            h.record(1);
        }
        for _ in 0..9 {
            h.record(1000);
        }
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.p50(), 1);
        assert_eq!(s.p95(), bucket_upper_bound(bucket_index(1000)));
        assert_eq!(s.p99(), bucket_upper_bound(bucket_index(1000)));
        assert_eq!(
            s.percentile(1.0),
            bucket_upper_bound(bucket_index(1_000_000))
        );
    }

    #[test]
    fn histogram_delta() {
        let h = Histogram::new("t");
        h.record(5);
        let a = h.snapshot();
        h.record(5);
        h.record(7);
        let d = h.snapshot().delta(&a);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 12);
        assert_eq!(d.buckets[bucket_index(5)], 2);
    }

    #[test]
    fn registry_interns_and_snapshots() {
        let r = Registry::default();
        let c1 = r.counter("a");
        let c2 = r.counter("a");
        assert!(std::ptr::eq(c1, c2));
        c1.add(3);
        c2.inc();
        assert_eq!(r.counter_value("a"), 4);
        assert_eq!(r.counter_value("missing"), 0);
        r.gauge("g").set(-7);
        r.histogram("h").record(9);
        let s = r.snapshot();
        assert_eq!(s.counter("a"), 4);
        assert_eq!(s.gauge("g"), -7);
        assert_eq!(s.histograms["h"].count, 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn snapshot_delta_drops_zeroes() {
        let r = Registry::default();
        r.counter("x").add(2);
        r.counter("y").add(1);
        let before = r.snapshot();
        r.counter("x").add(5);
        let d = r.snapshot().delta(&before);
        assert_eq!(d.counter("x"), 5);
        assert!(!d.counters.contains_key("y"));
        let rendered = d.to_string();
        assert!(rendered.contains("x = 5"));
    }
}

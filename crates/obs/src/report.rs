//! Post-hoc span-tree aggregation: fold a batch of [`SpanRecord`]s into
//! a tree keyed by span *path*, with per-node call counts, total and
//! self time, and summed tracked-counter deltas, plus a
//! flamegraph-style indented text rendering.

use crate::trace::{self, SpanRecord};
use std::collections::BTreeMap;

/// One aggregated node of the span tree (all spans sharing a path).
#[derive(Clone, Debug)]
pub struct ProfileNode {
    /// Span name (last path segment).
    pub name: String,
    /// Full slash-joined path.
    pub path: String,
    /// Number of spans aggregated into this node.
    pub count: u64,
    /// Wall time including children, summed over all spans at this path.
    pub total_ns: u64,
    /// Wall time excluding child spans at this path.
    pub self_ns: u64,
    /// Tracked-counter deltas summed over all spans at this path
    /// (inclusive of children — each span's delta already includes its
    /// children's bumps on the same thread).
    pub counters: BTreeMap<String, u64>,
    /// Child nodes, sorted by total time descending.
    pub children: Vec<ProfileNode>,
}

/// An aggregated span-tree profile. Spans opened on different threads
/// with an empty stack become separate roots.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// Root nodes, sorted by total time descending.
    pub roots: Vec<ProfileNode>,
}

#[derive(Default)]
struct Agg {
    count: u64,
    total_ns: u64,
    counters: BTreeMap<String, u64>,
}

fn parent_path(path: &str) -> Option<&str> {
    path.rsplit_once('/').map(|(p, _)| p)
}

/// Aggregate `records` into a [`Profile`].
pub fn aggregate(records: &[SpanRecord]) -> Profile {
    let mut by_path: BTreeMap<&str, Agg> = BTreeMap::new();
    for r in records {
        let a = by_path.entry(r.path.as_str()).or_default();
        a.count += 1;
        a.total_ns += r.dur_ns();
        for (k, v) in &r.counters {
            *a.counters.entry((*k).to_string()).or_insert(0) += v;
        }
    }
    // children_total[path] = sum of direct children's total_ns.
    let mut children_total: BTreeMap<&str, u64> = BTreeMap::new();
    for (&path, agg) in &by_path {
        if let Some(parent) = parent_path(path) {
            *children_total.entry(parent).or_insert(0) += agg.total_ns;
        }
    }
    let mut children_of: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    let mut roots: Vec<&str> = Vec::new();
    for &path in by_path.keys() {
        match parent_path(path) {
            // An orphan (parent fell out of the ring) is shown at the root.
            Some(parent) if by_path.contains_key(parent) => {
                children_of.entry(parent).or_default().push(path);
            }
            _ => roots.push(path),
        }
    }
    fn build(
        path: &str,
        by_path: &BTreeMap<&str, Agg>,
        children_total: &BTreeMap<&str, u64>,
        children_of: &BTreeMap<&str, Vec<&str>>,
    ) -> ProfileNode {
        let agg = &by_path[path];
        let kids_ns = children_total.get(path).copied().unwrap_or(0);
        let mut children: Vec<ProfileNode> = children_of
            .get(path)
            .map(|kids| {
                kids.iter()
                    .map(|k| build(k, by_path, children_total, children_of))
                    .collect()
            })
            .unwrap_or_default();
        children.sort_by_key(|n| std::cmp::Reverse(n.total_ns));
        ProfileNode {
            name: path.rsplit('/').next().unwrap_or(path).to_string(),
            path: path.to_string(),
            count: agg.count,
            total_ns: agg.total_ns,
            self_ns: agg.total_ns.saturating_sub(kids_ns),
            counters: agg.counters.clone(),
            children,
        }
    }
    let mut root_nodes: Vec<ProfileNode> = roots
        .iter()
        .map(|r| build(r, &by_path, &children_total, &children_of))
        .collect();
    root_nodes.sort_by_key(|n| std::cmp::Reverse(n.total_ns));
    Profile { roots: root_nodes }
}

impl Profile {
    /// Total wall time across all roots.
    pub fn total_ns(&self) -> u64 {
        self.roots.iter().map(|r| r.total_ns).sum()
    }

    /// Look up a node by its full path.
    pub fn node(&self, path: &str) -> Option<&ProfileNode> {
        fn find<'a>(nodes: &'a [ProfileNode], path: &str) -> Option<&'a ProfileNode> {
            for n in nodes {
                if n.path == path {
                    return Some(n);
                }
                if path.starts_with(n.path.as_str()) {
                    if let Some(hit) = find(&n.children, path) {
                        return Some(hit);
                    }
                }
            }
            None
        }
        find(&self.roots, path)
    }

    /// Flamegraph-style text rendering: one line per path, indented by
    /// depth, with total/self wall time, call count, percentage of the
    /// profile total, and any tracked-counter deltas.
    pub fn render(&self) -> String {
        let grand = self.total_ns().max(1);
        let mut out = String::new();
        out.push_str("span tree profile (total | self | calls | % of run)\n");
        fn fmt_ns(ns: u64) -> String {
            if ns >= 1_000_000_000 {
                format!("{:.2}s", ns as f64 / 1e9)
            } else if ns >= 1_000_000 {
                format!("{:.2}ms", ns as f64 / 1e6)
            } else if ns >= 1_000 {
                format!("{:.1}us", ns as f64 / 1e3)
            } else {
                format!("{ns}ns")
            }
        }
        fn walk(node: &ProfileNode, depth: usize, grand: u64, out: &mut String) {
            let indent = "  ".repeat(depth);
            let mut line = format!(
                "{:>9} {:>9} {:>7}  {:>5.1}%  {}{}",
                fmt_ns(node.total_ns),
                fmt_ns(node.self_ns),
                node.count,
                100.0 * node.total_ns as f64 / grand as f64,
                indent,
                node.name
            );
            if !node.counters.is_empty() {
                let attrs: Vec<String> = node
                    .counters
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect();
                line.push_str(&format!("  [{}]", attrs.join(" ")));
            }
            line.push('\n');
            out.push_str(&line);
            for c in &node.children {
                walk(c, depth + 1, grand, out);
            }
        }
        for r in &self.roots {
            walk(r, 0, grand, &mut out);
        }
        out
    }
}

/// Convenience: when tracing is enabled, aggregate every ring record
/// whose span *started* at or after `since_ns` (use 0 for "everything
/// still in the ring") and return the rendered report. Returns `None`
/// when tracing is disabled or no records match.
pub fn profile_since(since_ns: u64) -> Option<String> {
    if !trace::enabled() {
        return None;
    }
    let records: Vec<SpanRecord> = trace::ring()
        .into_iter()
        .filter(|r| r.start_ns >= since_ns)
        .collect();
    if records.is_empty() {
        return None;
    }
    Some(aggregate(&records).render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::AttrValue;

    fn rec(
        name: &'static str,
        path: &str,
        start: u64,
        end: u64,
        counters: Vec<(&'static str, u64)>,
    ) -> SpanRecord {
        SpanRecord {
            name,
            path: path.to_string(),
            thread: 1,
            depth: path.matches('/').count(),
            seq: start,
            start_ns: start,
            end_ns: end,
            attrs: Vec::<(&'static str, AttrValue)>::new(),
            counters,
        }
    }

    #[test]
    fn aggregates_self_and_total() {
        let records = vec![
            rec("child", "root/child", 10, 40, vec![("io.reads", 3)]),
            rec("child", "root/child", 50, 60, vec![("io.reads", 1)]),
            rec("other", "root/other", 60, 70, vec![]),
            rec("root", "root", 0, 100, vec![("io.reads", 4)]),
        ];
        let p = aggregate(&records);
        assert_eq!(p.roots.len(), 1);
        let root = &p.roots[0];
        assert_eq!(root.total_ns, 100);
        assert_eq!(root.self_ns, 100 - 40 - 10);
        assert_eq!(root.count, 1);
        assert_eq!(root.counters["io.reads"], 4);
        assert_eq!(root.children.len(), 2);
        // Sorted by total desc: child (40) before other (10).
        assert_eq!(root.children[0].name, "child");
        assert_eq!(root.children[0].count, 2);
        assert_eq!(root.children[0].total_ns, 40);
        assert_eq!(root.children[0].counters["io.reads"], 4);
        let hit = p.node("root/other").expect("path lookup");
        assert_eq!(hit.total_ns, 10);
        assert_eq!(p.total_ns(), 100);
    }

    #[test]
    fn orphans_become_roots() {
        let records = vec![rec("lost", "gone/lost", 0, 5, vec![])];
        let p = aggregate(&records);
        assert_eq!(p.roots.len(), 1);
        assert_eq!(p.roots[0].path, "gone/lost");
    }

    #[test]
    fn render_shows_tree_and_counters() {
        let records = vec![
            rec("child", "root/child", 10, 40, vec![("io.reads", 3)]),
            rec("root", "root", 0, 100, vec![("io.reads", 3)]),
        ];
        let text = aggregate(&records).render();
        assert!(text.contains("root"));
        assert!(text.contains("  child"), "indented child:\n{text}");
        assert!(text.contains("[io.reads=3]"));
        assert!(text.contains("100.0%"));
    }
}

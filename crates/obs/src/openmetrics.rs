//! OpenMetrics / Prometheus text exposition for registry snapshots.
//!
//! [`render`] turns a [`MetricsSnapshot`] into the OpenMetrics text
//! format: one `# HELP` + `# TYPE` header per metric family, samples
//! beneath, families ordered counters → gauges → histograms and
//! alphabetically within each kind, terminated by `# EOF`. Dotted
//! registry names are sanitized to the exposition charset
//! (`cost.model.err` → `cost_model_err`); the original name is kept,
//! escaped, in the `# HELP` line so nothing is lost.
//!
//! Histograms expose the usual cumulative `_bucket{le="..."}` samples
//! (one per log-2 bucket up to the highest non-empty one, plus
//! `le="+Inf"`), `_sum`, and `_count`. Counters follow the OpenMetrics
//! convention of a `_total`-suffixed sample under the family name.

use std::fmt::Write as _;

use crate::metrics::{bucket_upper_bound, MetricsSnapshot};

/// Sanitize a registry metric name into the exposition charset
/// `[a-zA-Z0-9_:]`, mapping every other byte (dots included) to `_`
/// and prefixing `_` when the name would start with a digit.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        match c {
            'a'..='z' | 'A'..='Z' | ':' | '_' => out.push(c),
            '0'..='9' => {
                if i == 0 {
                    out.push('_');
                }
                out.push(c);
            }
            _ => out.push('_'),
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a string for a `# HELP` line or a label value: backslash,
/// double quote, and newline get backslash escapes; everything else
/// passes through.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render a snapshot in the OpenMetrics text format (see module docs
/// for ordering and naming guarantees). The output is a pure function
/// of the snapshot, so golden tests can pin it byte for byte.
pub fn render(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, &v) in &snap.counters {
        let fam = sanitize_name(name);
        let _ = writeln!(out, "# HELP {fam} counter {}", escape_text(name));
        let _ = writeln!(out, "# TYPE {fam} counter");
        let _ = writeln!(out, "{fam}_total {v}");
    }
    for (name, &v) in &snap.gauges {
        let fam = sanitize_name(name);
        let _ = writeln!(out, "# HELP {fam} gauge {}", escape_text(name));
        let _ = writeln!(out, "# TYPE {fam} gauge");
        let _ = writeln!(out, "{fam} {v}");
    }
    for (name, h) in &snap.histograms {
        let fam = sanitize_name(name);
        let _ = writeln!(out, "# HELP {fam} histogram {}", escape_text(name));
        let _ = writeln!(out, "# TYPE {fam} histogram");
        let top = h
            .buckets
            .iter()
            .rposition(|&n| n > 0)
            .map(|k| k + 1)
            .unwrap_or(0);
        let mut cumulative = 0u64;
        for (k, &n) in h.buckets.iter().enumerate().take(top) {
            cumulative += n;
            let _ = writeln!(
                out,
                "{fam}_bucket{{le=\"{}\"}} {cumulative}",
                bucket_upper_bound(k)
            );
        }
        let _ = writeln!(out, "{fam}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{fam}_sum {}", h.sum);
        let _ = writeln!(out, "{fam}_count {}", h.count);
    }
    out.push_str("# EOF\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{bucket_index, HistogramSnapshot};

    #[test]
    fn sanitize_maps_dots_and_leading_digits() {
        assert_eq!(sanitize_name("cost.model.err"), "cost_model_err");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("ok_name:x9"), "ok_name:x9");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn escape_covers_quotes_backslashes_newlines() {
        assert_eq!(escape_text("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn render_counter_gauge_histogram() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("calib.samples".into(), 3);
        snap.gauges.insert("pager.resident".into(), -2);
        let mut h = HistogramSnapshot::default();
        for v in [0u64, 1, 5] {
            h.buckets[bucket_index(v)] += 1;
            h.count += 1;
            h.sum += v;
        }
        snap.histograms.insert("err.abs".into(), h);
        let text = render(&snap);
        assert!(text.contains("# TYPE calib_samples counter\ncalib_samples_total 3\n"));
        assert!(text.contains("# TYPE pager_resident gauge\npager_resident -2\n"));
        // Cumulative buckets: 0 -> 1 sample, 1 -> 2, 7 (covers 5) -> 3.
        assert!(text.contains("err_abs_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("err_abs_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("err_abs_bucket{le=\"7\"} 3\n"));
        assert!(text.contains("err_abs_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("err_abs_sum 6\n"));
        assert!(text.contains("err_abs_count 3\n"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn empty_snapshot_is_just_eof() {
        assert_eq!(render(&MetricsSnapshot::default()), "# EOF\n");
    }
}

//! Fixed-capacity ring-buffer time series over registry snapshots.
//!
//! A [`Sampler`] turns the process-wide metrics registry into a set of
//! bounded [`TimeSeries`] — one per counter and gauge, plus
//! `<name>.count` / `<name>.sum` for each histogram — by calling
//! [`Sampler::sample_now`] at whatever cadence the caller likes. Each
//! series keeps the most recent `capacity` points and answers windowed
//! queries ([`TimeSeries::window`]: min/max/mean/first/last) without
//! allocating.
//!
//! Sampling reads the registry (a short read-lock per metric map) but
//! never touches the metric *update* path, which stays lock-free; the
//! hot path of the instrumented code is unaffected by how often or
//! whether anyone samples.
//!
//! For unattended collection, [`sample_every`] spawns a background
//! thread that samples on an interval until stopped ([`IntervalSampler`]
//! joins the thread on drop).

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::metrics::{registry, MetricsSnapshot};

/// One observation in a series: a monotonic timestamp (nanoseconds
/// since the sampler's epoch) and the sampled value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point {
    /// Nanoseconds since the owning sampler's epoch.
    pub t_ns: u64,
    /// Sampled value (counters and histogram counts are exact in `f64`
    /// up to 2^53, far beyond any realistic run).
    pub value: f64,
}

/// Summary of the points currently retained by a series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeriesWindow {
    /// Number of points summarized.
    pub len: usize,
    /// Smallest value in the window (0 when empty).
    pub min: f64,
    /// Largest value in the window (0 when empty).
    pub max: f64,
    /// Arithmetic mean over the window (0 when empty).
    pub mean: f64,
    /// Oldest retained value (0 when empty).
    pub first: f64,
    /// Newest value (0 when empty).
    pub last: f64,
}

impl SeriesWindow {
    const EMPTY: SeriesWindow = SeriesWindow {
        len: 0,
        min: 0.0,
        max: 0.0,
        mean: 0.0,
        first: 0.0,
        last: 0.0,
    };

    /// Net change across the window (`last - first`): the interval
    /// delta for monotonic series such as counters.
    pub fn delta(&self) -> f64 {
        self.last - self.first
    }
}

/// A named, fixed-capacity ring buffer of [`Point`]s; pushing beyond
/// capacity drops the oldest point.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    name: String,
    capacity: usize,
    points: VecDeque<Point>,
}

impl TimeSeries {
    /// An empty series retaining at most `capacity` points (min 1).
    pub fn new(name: impl Into<String>, capacity: usize) -> TimeSeries {
        TimeSeries {
            name: name.into(),
            capacity: capacity.max(1),
            points: VecDeque::new(),
        }
    }

    /// The series name (a registry metric name, possibly suffixed).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Maximum number of retained points.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently retained points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points are retained.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Append a point, evicting the oldest when full.
    pub fn push(&mut self, t_ns: u64, value: f64) {
        if self.points.len() == self.capacity {
            self.points.pop_front();
        }
        self.points.push_back(Point { t_ns, value });
    }

    /// The newest point, if any.
    pub fn last(&self) -> Option<Point> {
        self.points.back().copied()
    }

    /// Retained points, oldest first.
    pub fn points(&self) -> impl Iterator<Item = Point> + '_ {
        self.points.iter().copied()
    }

    /// Summarize every retained point.
    pub fn window(&self) -> SeriesWindow {
        self.window_last(self.points.len())
    }

    /// Summarize the newest `n` retained points.
    pub fn window_last(&self, n: usize) -> SeriesWindow {
        let n = n.min(self.points.len());
        if n == 0 {
            return SeriesWindow::EMPTY;
        }
        let tail = self.points.range(self.points.len() - n..);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for p in tail.clone() {
            min = min.min(p.value);
            max = max.max(p.value);
            sum += p.value;
        }
        SeriesWindow {
            len: n,
            min,
            max,
            mean: sum / n as f64,
            first: tail.clone().next().expect("n >= 1").value,
            last: self.points.back().expect("n >= 1").value,
        }
    }
}

/// Samples the process-wide registry into per-metric ring buffers.
///
/// Counters and gauges map to a series of the same name; each histogram
/// contributes `<name>.count` and `<name>.sum` (the raw monotonic facts
/// from which rates and interval means derive). Timestamps are
/// nanoseconds since the sampler's creation.
pub struct Sampler {
    capacity: usize,
    epoch: Instant,
    samples: u64,
    series: BTreeMap<String, TimeSeries>,
}

impl Sampler {
    /// A sampler whose series each retain at most `capacity` points.
    pub fn new(capacity: usize) -> Sampler {
        Sampler {
            capacity: capacity.max(1),
            epoch: Instant::now(),
            samples: 0,
            series: BTreeMap::new(),
        }
    }

    /// Take one sample of the global registry now. Returns the
    /// timestamp (ns since the sampler's epoch) assigned to the sample.
    pub fn sample_now(&mut self) -> u64 {
        let t_ns = self.epoch.elapsed().as_nanos() as u64;
        self.ingest(t_ns, &registry().snapshot());
        t_ns
    }

    /// Fold an explicit snapshot in at an explicit timestamp — the
    /// deterministic core of [`Sampler::sample_now`], also usable to
    /// build series from pre-recorded snapshots.
    pub fn ingest(&mut self, t_ns: u64, snap: &MetricsSnapshot) {
        self.samples += 1;
        for (name, &v) in &snap.counters {
            self.push(name.clone(), t_ns, v as f64);
        }
        for (name, &v) in &snap.gauges {
            self.push(name.clone(), t_ns, v as f64);
        }
        for (name, h) in &snap.histograms {
            self.push(format!("{name}.count"), t_ns, h.count as f64);
            self.push(format!("{name}.sum"), t_ns, h.sum as f64);
        }
    }

    fn push(&mut self, name: String, t_ns: u64, value: f64) {
        let capacity = self.capacity;
        self.series
            .entry(name.clone())
            .or_insert_with(|| TimeSeries::new(name, capacity))
            .push(t_ns, value);
    }

    /// Number of samples taken so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The series for metric `name`, if it has ever been sampled.
    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// All series, sorted by name.
    pub fn all(&self) -> impl Iterator<Item = &TimeSeries> {
        self.series.values()
    }

    /// Full-window summaries of every series, sorted by name.
    pub fn windows(&self) -> BTreeMap<String, SeriesWindow> {
        self.series
            .iter()
            .map(|(k, s)| (k.clone(), s.window()))
            .collect()
    }
}

/// Handle to a background sampling thread started by [`sample_every`].
///
/// The thread samples the global registry on the given period until
/// [`IntervalSampler::stop`] (or drop) joins it; the accumulated
/// [`Sampler`] is shared and inspectable while collection runs.
pub struct IntervalSampler {
    shared: Arc<Mutex<Sampler>>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

/// Spawn a background thread sampling the global registry every
/// `period`, each series retaining at most `capacity` points. One
/// sample is taken immediately on start.
pub fn sample_every(period: Duration, capacity: usize) -> IntervalSampler {
    let shared = Arc::new(Mutex::new(Sampler::new(capacity)));
    let stop = Arc::new(AtomicBool::new(false));
    let thread = {
        let shared = Arc::clone(&shared);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            // Wake at least every 5 ms so stop() never waits a full
            // (possibly long) period for the thread to notice.
            let tick = period
                .min(Duration::from_millis(5))
                .max(Duration::from_micros(100));
            let mut next = Instant::now();
            while !stop.load(Ordering::Relaxed) {
                let now = Instant::now();
                if now >= next {
                    shared.lock().expect("sampler poisoned").sample_now();
                    next = now + period;
                }
                std::thread::sleep(tick);
            }
        })
    };
    IntervalSampler {
        shared,
        stop,
        thread: Some(thread),
    }
}

impl IntervalSampler {
    /// Run `f` against the live sampler (under its lock).
    pub fn with<R>(&self, f: impl FnOnce(&Sampler) -> R) -> R {
        f(&self.shared.lock().expect("sampler poisoned"))
    }

    /// Full-window summaries of every series collected so far.
    pub fn windows(&self) -> BTreeMap<String, SeriesWindow> {
        self.with(Sampler::windows)
    }

    /// Stop and join the sampling thread, returning the accumulated
    /// sampler (with one final sample so the tail is never stale).
    pub fn stop(mut self) -> Sampler {
        self.halt();
        let shared = std::mem::replace(&mut self.shared, Arc::new(Mutex::new(Sampler::new(1))));
        let mut sampler = match Arc::try_unwrap(shared) {
            Ok(m) => m.into_inner().expect("sampler poisoned"),
            Err(arc) => arc.lock().expect("sampler poisoned").clone_inner(),
        };
        sampler.sample_now();
        sampler
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for IntervalSampler {
    fn drop(&mut self) {
        self.halt();
    }
}

impl Sampler {
    fn clone_inner(&self) -> Sampler {
        Sampler {
            capacity: self.capacity,
            epoch: self.epoch,
            samples: self.samples,
            series: self.series.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramSnapshot;

    #[test]
    fn ring_evicts_oldest() {
        let mut s = TimeSeries::new("x", 3);
        for i in 0..5u64 {
            s.push(i, i as f64);
        }
        assert_eq!(s.len(), 3);
        let pts: Vec<f64> = s.points().map(|p| p.value).collect();
        assert_eq!(pts, vec![2.0, 3.0, 4.0]);
        assert_eq!(s.last().unwrap().value, 4.0);
    }

    #[test]
    fn window_stats() {
        let mut s = TimeSeries::new("x", 8);
        for (t, v) in [(0u64, 4.0), (1, 1.0), (2, 7.0), (3, 2.0)] {
            s.push(t, v);
        }
        let w = s.window();
        assert_eq!(w.len, 4);
        assert_eq!(w.min, 1.0);
        assert_eq!(w.max, 7.0);
        assert_eq!(w.mean, 3.5);
        assert_eq!(w.first, 4.0);
        assert_eq!(w.last, 2.0);
        assert_eq!(w.delta(), -2.0);
        let tail = s.window_last(2);
        assert_eq!((tail.len, tail.min, tail.max), (2, 2.0, 7.0));
        assert_eq!(TimeSeries::new("e", 4).window(), SeriesWindow::EMPTY);
    }

    #[test]
    fn sampler_ingests_all_metric_kinds() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("c".into(), 10);
        snap.gauges.insert("g".into(), -3);
        let h = HistogramSnapshot {
            count: 2,
            sum: 9,
            ..Default::default()
        };
        snap.histograms.insert("h".into(), h);
        let mut sampler = Sampler::new(4);
        sampler.ingest(0, &snap);
        snap.counters.insert("c".into(), 25);
        sampler.ingest(1, &snap);
        assert_eq!(sampler.samples(), 2);
        let c = sampler.series("c").unwrap().window();
        assert_eq!((c.first, c.last, c.delta()), (10.0, 25.0, 15.0));
        assert_eq!(sampler.series("g").unwrap().last().unwrap().value, -3.0);
        assert_eq!(
            sampler.series("h.count").unwrap().last().unwrap().value,
            2.0
        );
        assert_eq!(sampler.series("h.sum").unwrap().last().unwrap().value, 9.0);
        assert!(sampler.windows().contains_key("h.sum"));
    }

    #[test]
    fn sample_now_reads_global_registry() {
        crate::counter!("timeseries.test.ticks").add(7);
        let mut sampler = Sampler::new(2);
        let t0 = sampler.sample_now();
        crate::counter!("timeseries.test.ticks").add(5);
        let t1 = sampler.sample_now();
        assert!(t1 >= t0);
        let w = sampler.series("timeseries.test.ticks").unwrap().window();
        assert!(w.delta() >= 5.0, "delta {} covers the bump", w.delta());
    }

    #[test]
    fn interval_sampler_collects_and_stops() {
        crate::counter!("timeseries.test.bg").inc();
        let handle = sample_every(Duration::from_millis(1), 64);
        std::thread::sleep(Duration::from_millis(20));
        crate::counter!("timeseries.test.bg").add(3);
        let sampler = handle.stop();
        assert!(sampler.samples() >= 2, "took {} samples", sampler.samples());
        let w = sampler.series("timeseries.test.bg").unwrap().window();
        assert!(w.last >= w.first + 3.0, "final sample sees the bump");
    }
}

//! Property tests: shortest path and path ranking vs brute-force
//! enumeration on randomly generated staged DAGs (the exact shape of the
//! advisor's sequence graphs).

use cdpd_graph::{yen, Dag, NodeId, PathRanking};
use cdpd_testkit::prop::{vec_of, Config};
use cdpd_testkit::props;
use cdpd_types::Cost;

/// Build a staged DAG: `stages` columns of `width` nodes, fully
/// connected stage-to-stage, plus single source and target nodes.
/// Weights come from the two input vectors (consumed cyclically).
fn staged_dag(
    stages: usize,
    width: usize,
    node_w: &[u64],
    edge_w: &[u64],
) -> (Dag<(usize, usize)>, NodeId, NodeId) {
    let mut g = Dag::new();
    let mut nw = node_w.iter().cycle();
    let mut ew = edge_w.iter().cycle();
    let src = g.add_node((usize::MAX, 0), Cost::from_ios(*nw.next().unwrap() % 16));
    let mut prev: Vec<NodeId> = vec![src];
    for s in 0..stages {
        let mut cur = Vec::with_capacity(width);
        for w in 0..width {
            let n = g.add_node((s, w), Cost::from_ios(*nw.next().unwrap() % 64));
            cur.push(n);
        }
        for &p in &prev {
            for &c in &cur {
                g.add_edge(p, c, Cost::from_ios(*ew.next().unwrap() % 32));
            }
        }
        prev = cur;
    }
    let tgt = g.add_node((usize::MAX, 1), Cost::ZERO);
    for &p in &prev {
        g.add_edge(p, tgt, Cost::from_ios(*ew.next().unwrap() % 32));
    }
    (g, src, tgt)
}

/// Enumerate every source→target path cost by DFS.
fn brute_force_costs(g: &Dag<(usize, usize)>, src: NodeId, tgt: NodeId) -> Vec<u64> {
    fn dfs(g: &Dag<(usize, usize)>, cur: NodeId, tgt: NodeId, acc: Cost, out: &mut Vec<u64>) {
        let acc = acc.saturating_add(g.node_weight(cur));
        if cur == tgt {
            out.push(acc.ios());
            return;
        }
        for &(to, ew) in g.out_edges(cur) {
            dfs(g, to, tgt, acc.saturating_add(ew), out);
        }
    }
    let mut out = Vec::new();
    dfs(g, src, tgt, Cost::ZERO, &mut out);
    out.sort_unstable();
    out
}

props! {
    config: Config::with_cases(64);

    fn shortest_path_matches_brute_force(
        stages in 1usize..5,
        width in 1usize..4,
        node_w in vec_of(0u64..1000, 4..40),
        edge_w in vec_of(0u64..1000, 4..40),
    ) {
        let (g, s, t) = staged_dag(*stages, *width, node_w, edge_w);
        let brute = brute_force_costs(&g, s, t);
        let sp = g.shortest_path(s, t).expect("staged dag is connected");
        assert_eq!(sp.cost.ios(), brute[0]);
    }

    fn ranking_enumerates_exactly_all_paths_in_order(
        stages in 1usize..4,
        width in 1usize..4,
        node_w in vec_of(0u64..1000, 4..40),
        edge_w in vec_of(0u64..1000, 4..40),
    ) {
        let (g, s, t) = staged_dag(*stages, *width, node_w, edge_w);
        let brute = brute_force_costs(&g, s, t);
        let ranked: Vec<u64> =
            PathRanking::new(&g, s, t).map(|p| p.cost.ios()).collect();
        assert_eq!(&ranked, &brute, "ranking must yield every path, sorted");
    }

    fn yen_agrees_with_astar_ranking(
        stages in 1usize..4,
        width in 1usize..4,
        node_w in vec_of(0u64..1000, 4..40),
        edge_w in vec_of(0u64..1000, 4..40),
        k in 1usize..12,
    ) {
        let (g, s, t) = staged_dag(*stages, *width, node_w, edge_w);
        let astar: Vec<u64> = PathRanking::new(&g, s, t)
            .take(*k)
            .map(|p| p.cost.ios())
            .collect();
        let via_yen: Vec<u64> = yen::k_shortest(&g, s, t, *k)
            .into_iter()
            .map(|p| p.cost.ios())
            .collect();
        assert_eq!(via_yen, astar, "two independent rankers must agree");
    }

    fn ranked_paths_are_valid_paths(
        stages in 1usize..4,
        width in 1usize..4,
        node_w in vec_of(0u64..1000, 4..40),
        edge_w in vec_of(0u64..1000, 4..40),
    ) {
        let (g, s, t) = staged_dag(*stages, *width, node_w, edge_w);
        for p in PathRanking::new(&g, s, t).take(10) {
            assert_eq!(p.nodes[0], s);
            assert_eq!(*p.nodes.last().unwrap(), t);
            // Every consecutive pair must be an actual edge, and the
            // stated cost must equal the recomputed cost.
            let mut cost = g.node_weight(p.nodes[0]);
            for w in p.nodes.windows(2) {
                let (from, to) = (w[0], w[1]);
                let edge = g
                    .out_edges(from)
                    .iter()
                    .filter(|(n, _)| *n == to)
                    .map(|(_, c)| *c)
                    .min()
                    .expect("consecutive ranked nodes must be connected");
                cost = cost.saturating_add(edge).saturating_add(g.node_weight(to));
            }
            // Recomputed cost may use the min parallel edge; ranked cost
            // can't be below it.
            assert!(p.cost >= cost);
        }
    }
}

use crate::dag::{Dag, NodeId};
use cdpd_types::Cost;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::rc::Rc;

/// One path produced by [`PathRanking`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RankedPath {
    /// Total cost (node + edge weights).
    pub cost: Cost,
    /// Nodes on the path, source first.
    pub nodes: Vec<NodeId>,
}

/// A partial path stored as a shared cons-list so that the frontier's
/// many partial paths share their common prefixes.
struct Cons {
    node: NodeId,
    prev: Option<Rc<Cons>>,
}

impl Cons {
    fn unwind(mut this: &Rc<Cons>) -> Vec<NodeId> {
        let mut out = vec![this.node];
        while let Some(prev) = &this.prev {
            out.push(prev.node);
            this = prev;
        }
        out.reverse();
        out
    }
}

/// Frontier entry: a partial path ending at `tail.node`, with exact
/// accumulated cost `g` (includes the tail's node weight) and priority
/// `f = g + h(tail)` where `h` is the exact remaining distance.
struct Frontier {
    f: Cost,
    g: Cost,
    tail: Rc<Cons>,
}

impl PartialEq for Frontier {
    fn eq(&self, other: &Self) -> bool {
        self.f == other.f
    }
}
impl Eq for Frontier {}
impl PartialOrd for Frontier {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Frontier {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on f.
        other.f.cmp(&self.f)
    }
}

/// Iterator over all `source → target` paths of a [`Dag`] in
/// nondecreasing total-cost order.
///
/// This is the path-ranking primitive behind the paper's §5 solver:
/// *"shortest path ranking algorithms generate paths in ascending order
/// of length until a given stopping condition is reached."* The
/// implementation is best-first search over partial paths with the exact
/// remaining-distance heuristic, precomputed by one backward DP pass
/// over the DAG (`O(|V| + |E|)`). Because the heuristic is exact, the
/// first time a partial path reaching `target` pops it is a true
/// next-shortest path, so paths stream out in properly ranked order —
/// no path-deletion graph surgery needed on a DAG.
///
/// Each emitted path costs `O(L log F)` where `L` is its length and `F`
/// the frontier size; the frontier grows with the number of paths
/// enumerated, so callers should stop as soon as their condition holds
/// (the advisor stops at the first path with ≤ k design changes).
pub struct PathRanking<'g, N> {
    dag: &'g Dag<N>,
    target: NodeId,
    /// Exact distance from each node to `target` (None = dead end).
    to_target: Vec<Option<Cost>>,
    heap: BinaryHeap<Frontier>,
}

impl<'g, N> PathRanking<'g, N> {
    /// Start ranking paths from `source` to `target`.
    pub fn new(dag: &'g Dag<N>, source: NodeId, target: NodeId) -> Self {
        let to_target = dag.backward_distances(target);
        let mut heap = BinaryHeap::new();
        let g = dag.node_weight(source);
        if let Some(h) = to_target[source.index()] {
            if !h.is_infinite() {
                heap.push(Frontier {
                    f: g.saturating_add(h),
                    g,
                    tail: Rc::new(Cons {
                        node: source,
                        prev: None,
                    }),
                });
            }
        }
        PathRanking {
            dag,
            target,
            to_target,
            heap,
        }
    }

    /// Number of partial paths currently on the frontier (diagnostics).
    pub fn frontier_len(&self) -> usize {
        self.heap.len()
    }
}

impl<N> Iterator for PathRanking<'_, N> {
    type Item = RankedPath;

    fn next(&mut self) -> Option<RankedPath> {
        while let Some(Frontier { f, g, tail }) = self.heap.pop() {
            if f.is_infinite() {
                return None; // only unreachable/poisoned routes remain
            }
            let node = tail.node;
            if node == self.target {
                return Some(RankedPath {
                    cost: g,
                    nodes: Cons::unwind(&tail),
                });
            }
            for &(to, ew) in self.dag.out_edges(node) {
                let Some(h) = self.to_target[to.index()] else {
                    continue;
                };
                let g2 = g
                    .saturating_add(ew)
                    .saturating_add(self.dag.node_weight(to));
                let f2 = g2.saturating_add(h);
                if f2.is_infinite() {
                    continue;
                }
                self.heap.push(Frontier {
                    f: f2,
                    g: g2,
                    tail: Rc::new(Cons {
                        node: to,
                        prev: Some(tail.clone()),
                    }),
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(io: u64) -> Cost {
        Cost::from_ios(io)
    }

    /// Two stages, two choices per stage: 4 total paths.
    fn two_stage() -> (Dag<()>, NodeId, NodeId) {
        let mut g = Dag::new();
        let s = g.add_node((), c(0));
        let a1 = g.add_node((), c(1));
        let a2 = g.add_node((), c(4));
        let b1 = g.add_node((), c(2));
        let b2 = g.add_node((), c(3));
        let t = g.add_node((), c(0));
        g.add_edge(s, a1, c(0));
        g.add_edge(s, a2, c(0));
        for &a in &[a1, a2] {
            for &b in &[b1, b2] {
                g.add_edge(a, b, if a == a1 && b == b2 { c(10) } else { c(0) });
            }
        }
        g.add_edge(b1, t, c(0));
        g.add_edge(b2, t, c(0));
        (g, s, t)
    }

    #[test]
    fn enumerates_all_paths_in_ascending_order() {
        let (g, s, t) = two_stage();
        let paths: Vec<RankedPath> = PathRanking::new(&g, s, t).collect();
        assert_eq!(paths.len(), 4);
        let costs: Vec<u64> = paths.iter().map(|p| p.cost.ios()).collect();
        // a1+b1=3, a2+b1=6, a2+b2=7, a1+b2+10=14
        assert_eq!(costs, vec![3, 6, 7, 14]);
        let mut sorted = costs.clone();
        sorted.sort_unstable();
        assert_eq!(costs, sorted);
    }

    #[test]
    fn first_ranked_path_equals_shortest_path() {
        let (g, s, t) = two_stage();
        let first = PathRanking::new(&g, s, t).next().unwrap();
        let sp = g.shortest_path(s, t).unwrap();
        assert_eq!(first.cost, sp.cost);
        assert_eq!(first.nodes, sp.nodes);
    }

    #[test]
    fn no_path_yields_empty_iterator() {
        let mut g: Dag<()> = Dag::new();
        let s = g.add_node((), c(0));
        let t = g.add_node((), c(0));
        assert_eq!(PathRanking::new(&g, s, t).count(), 0);
    }

    #[test]
    fn trivial_source_is_target() {
        let mut g: Dag<()> = Dag::new();
        let s = g.add_node((), c(5));
        let paths: Vec<_> = PathRanking::new(&g, s, s).collect();
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].cost, c(5));
        assert_eq!(paths[0].nodes, vec![s]);
    }

    #[test]
    fn poisoned_routes_are_skipped() {
        let mut g: Dag<()> = Dag::new();
        let s = g.add_node((), c(0));
        let a = g.add_node((), c(1));
        let t = g.add_node((), c(0));
        g.add_edge(s, a, Cost::MAX);
        g.add_edge(a, t, c(0));
        g.add_edge(s, t, c(2));
        let paths: Vec<_> = PathRanking::new(&g, s, t).collect();
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].cost, c(2));
    }
}

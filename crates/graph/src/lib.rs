//! Weighted directed-acyclic-graph algorithms underpinning the design
//! advisor.
//!
//! The paper (§3) reduces dynamic physical design to a *shortest path in
//! a sequence graph*: a staged DAG whose nodes carry the execution cost
//! of running one statement under one configuration and whose edges
//! carry transition costs. Its §5 alternative solves the *constrained*
//! problem by **ranking** paths in ascending cost until one satisfies
//! the change bound.
//!
//! This crate provides both primitives, generically:
//!
//! * [`Dag`] — a staged DAG with [`cdpd_types::Cost`] node and edge weights, built in
//!   topological order, with an `O(|V| + |E|)` shortest-path solver
//!   ([`Dag::shortest_path`]).
//! * [`PathRanking`] — an iterator yielding *all* source→target paths in
//!   nondecreasing total cost, implemented as best-first search over
//!   partial paths with the exact remaining-distance heuristic (computed
//!   by one backward DP pass). With an exact heuristic the frontier pops
//!   paths in true cost order, so the stream is properly ranked — this
//!   is the classic A*-based k-shortest-paths construction.
//!
//! * [`yen`] — an independently implemented deviation-based ranker
//!   (Yen's algorithm, the textbook member of the path-deletion family
//!   §5 cites); property-tested to agree with [`PathRanking`], so each
//!   ranker is the other's oracle.
//!
//! Costs are saturating integers ([`cdpd_types::Cost`]), so "infeasible" edges can be
//! modelled as `Cost::MAX` without overflow poisoning the search.

#![warn(missing_docs)]

mod dag;
mod ranking;
pub mod yen;

pub use dag::{Dag, NodeId, ShortestPath};
pub use ranking::{PathRanking, RankedPath};

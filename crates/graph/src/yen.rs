//! Yen-style k-shortest-path ranking: the classical deviation-based
//! alternative to [`crate::PathRanking`].
//!
//! The paper's §5 points at deviation-based rankers (path deletion,
//! de Azevedo et al.); Yen's algorithm is the textbook member of that
//! family for loopless paths — and on a DAG *every* path is loopless,
//! so it ranks exactly the same path set as the A*-based
//! [`crate::PathRanking`]. It exists here as an independently
//! implemented oracle: the two rankers are checked against each other
//! property-wise, which is how subtle ordering bugs in either get
//! caught.
//!
//! Limitation (irrelevant for sequence graphs): parallel edges between
//! the same node pair are treated as one edge — deviation banning is by
//! `(from, to)` pair.

use crate::dag::{Dag, NodeId};
use crate::ranking::RankedPath;
use cdpd_types::Cost;
use std::collections::{BinaryHeap, HashSet};

/// Shortest path from `start` to `target` avoiding banned nodes and
/// edges, via the same topological DP as [`Dag::shortest_path`].
fn constrained_shortest<N>(
    dag: &Dag<N>,
    start: NodeId,
    target: NodeId,
    banned_nodes: &HashSet<NodeId>,
    banned_edges: &HashSet<(NodeId, NodeId)>,
) -> Option<RankedPath> {
    if banned_nodes.contains(&start) {
        return None;
    }
    let n = dag.node_count();
    let mut dist: Vec<Option<Cost>> = vec![None; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    dist[start.index()] = Some(dag.node_weight(start));
    for id in dag.node_ids().skip(start.index()) {
        let Some(d) = dist[id.index()] else { continue };
        for &(to, ew) in dag.out_edges(id) {
            if banned_nodes.contains(&to) || banned_edges.contains(&(id, to)) {
                continue;
            }
            let cand = d.saturating_add(ew).saturating_add(dag.node_weight(to));
            if cand.is_infinite() {
                continue;
            }
            if dist[to.index()].is_none_or(|old| cand < old) {
                dist[to.index()] = Some(cand);
                parent[to.index()] = Some(id);
            }
        }
    }
    let cost = dist[target.index()]?;
    let mut nodes = vec![target];
    let mut cur = target;
    while cur != start {
        cur = parent[cur.index()].expect("reachable node has a parent");
        nodes.push(cur);
    }
    nodes.reverse();
    Some(RankedPath { cost, nodes })
}

/// The `k` shortest `source → target` paths in nondecreasing cost
/// order (fewer if the graph has fewer paths).
pub fn k_shortest<N>(dag: &Dag<N>, source: NodeId, target: NodeId, k: usize) -> Vec<RankedPath> {
    let mut accepted: Vec<RankedPath> = Vec::new();
    let Some(first) = constrained_shortest(dag, source, target, &HashSet::new(), &HashSet::new())
    else {
        return accepted;
    };
    accepted.push(first);

    // Candidate heap ordered by (cost, nodes) ascending; min-heap via
    // Reverse semantics on a wrapper.
    #[derive(PartialEq, Eq)]
    struct Cand(RankedPath);
    impl Ord for Cand {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            other
                .0
                .cost
                .cmp(&self.0.cost)
                .then_with(|| other.0.nodes.cmp(&self.0.nodes))
        }
    }
    impl PartialOrd for Cand {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    let mut candidates: BinaryHeap<Cand> = BinaryHeap::new();
    let mut seen: HashSet<Vec<NodeId>> = HashSet::new();
    seen.insert(accepted[0].nodes.clone());

    while accepted.len() < k {
        let prev = accepted.last().expect("at least the shortest path").clone();
        // Deviate at every node of the previous path except the target.
        for i in 0..prev.nodes.len() - 1 {
            let spur_node = prev.nodes[i];
            let root = &prev.nodes[..=i];

            // Ban the next edge of every accepted path sharing this root.
            let mut banned_edges: HashSet<(NodeId, NodeId)> = HashSet::new();
            for p in &accepted {
                if p.nodes.len() > i + 1 && p.nodes[..=i] == *root {
                    banned_edges.insert((p.nodes[i], p.nodes[i + 1]));
                }
            }
            // Ban the root's interior nodes so the spur cannot rejoin it
            // (loopless; vacuous on a DAG but keeps the algorithm honest).
            let banned_nodes: HashSet<NodeId> = root[..i].iter().copied().collect();

            let Some(spur) =
                constrained_shortest(dag, spur_node, target, &banned_nodes, &banned_edges)
            else {
                continue;
            };

            // Root cost: nodes and edges strictly before the spur node.
            let mut root_cost = Cost::ZERO;
            for w in 0..i {
                root_cost = root_cost.saturating_add(dag.node_weight(root[w]));
                let edge = dag
                    .out_edges(root[w])
                    .iter()
                    .filter(|(to, _)| *to == root[w + 1])
                    .map(|(_, c)| *c)
                    .min()
                    .expect("root follows existing edges");
                root_cost = root_cost.saturating_add(edge);
            }
            let total = root_cost.saturating_add(spur.cost);
            let mut nodes = root[..i].to_vec();
            nodes.extend_from_slice(&spur.nodes);
            if seen.insert(nodes.clone()) {
                candidates.push(Cand(RankedPath { cost: total, nodes }));
            }
        }
        match candidates.pop() {
            Some(Cand(next)) => accepted.push(next),
            None => break,
        }
    }
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranking::PathRanking;

    fn c(io: u64) -> Cost {
        Cost::from_ios(io)
    }

    fn two_stage() -> (Dag<()>, NodeId, NodeId) {
        let mut g = Dag::new();
        let s = g.add_node((), c(0));
        let a1 = g.add_node((), c(1));
        let a2 = g.add_node((), c(4));
        let b1 = g.add_node((), c(2));
        let b2 = g.add_node((), c(3));
        let t = g.add_node((), c(0));
        g.add_edge(s, a1, c(0));
        g.add_edge(s, a2, c(0));
        for &a in &[a1, a2] {
            for &b in &[b1, b2] {
                g.add_edge(a, b, if a == a1 && b == b2 { c(10) } else { c(0) });
            }
        }
        g.add_edge(b1, t, c(0));
        g.add_edge(b2, t, c(0));
        (g, s, t)
    }

    #[test]
    fn agrees_with_astar_ranking() {
        let (g, s, t) = two_stage();
        let yen = k_shortest(&g, s, t, 10);
        let astar: Vec<RankedPath> = PathRanking::new(&g, s, t).collect();
        assert_eq!(yen.len(), astar.len());
        let yc: Vec<u64> = yen.iter().map(|p| p.cost.ios()).collect();
        let ac: Vec<u64> = astar.iter().map(|p| p.cost.ios()).collect();
        assert_eq!(yc, ac);
    }

    #[test]
    fn truncates_at_k() {
        let (g, s, t) = two_stage();
        let yen = k_shortest(&g, s, t, 2);
        assert_eq!(yen.len(), 2);
        assert!(yen[0].cost <= yen[1].cost);
    }

    #[test]
    fn handles_no_path_and_trivial() {
        let mut g: Dag<()> = Dag::new();
        let s = g.add_node((), c(0));
        let t = g.add_node((), c(0));
        assert!(k_shortest(&g, s, t, 3).is_empty());
        let single = k_shortest(&g, s, s, 3);
        assert_eq!(single.len(), 1);
        assert_eq!(single[0].nodes, vec![s]);
    }
}

use cdpd_types::Cost;
use std::fmt;

/// Index of a node within a [`Dag`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The node's position in insertion (= topological) order.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

struct Node<N> {
    payload: N,
    weight: Cost,
    /// Out-edges as (target, edge weight).
    out: Vec<(NodeId, Cost)>,
    /// In-edges as (source, edge weight); kept for backward DP passes.
    inc: Vec<(NodeId, Cost)>,
}

/// A weighted DAG whose insertion order is a topological order.
///
/// Sequence graphs are built stage by stage, so requiring every edge to
/// go from a lower to a higher [`NodeId`] costs the caller nothing and
/// buys an allocation-free `O(|V| + |E|)` shortest-path DP with no
/// explicit topological sort. [`Dag::add_edge`] panics on a backward or
/// self edge — that is a construction bug, never an input condition.
///
/// Both nodes and edges are weighted: a path's cost is the sum of the
/// weights of every node *and* every edge on it, matching the paper's
/// labelling (nodes = `EXEC`, edges = `TRANS`).
pub struct Dag<N> {
    nodes: Vec<Node<N>>,
    edge_count: usize,
}

impl<N> Default for Dag<N> {
    fn default() -> Self {
        Dag {
            nodes: Vec::new(),
            edge_count: 0,
        }
    }
}

/// Result of [`Dag::shortest_path`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ShortestPath {
    /// Total cost (node weights + edge weights along the path).
    pub cost: Cost,
    /// Nodes on the path, source first, target last.
    pub nodes: Vec<NodeId>,
}

impl<N> Dag<N> {
    /// An empty DAG.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty DAG with room for `nodes` nodes.
    pub fn with_capacity(nodes: usize) -> Self {
        Dag {
            nodes: Vec::with_capacity(nodes),
            edge_count: 0,
        }
    }

    /// Add a node with the given payload and weight; returns its id.
    pub fn add_node(&mut self, payload: N, weight: Cost) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("node count exceeds u32"));
        self.nodes.push(Node {
            payload,
            weight,
            out: Vec::new(),
            inc: Vec::new(),
        });
        id
    }

    /// Add a weighted edge `from → to`.
    ///
    /// # Panics
    /// Panics unless `from < to` (insertion order must be topological).
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, weight: Cost) {
        assert!(
            from.0 < to.0,
            "edges must go forward in insertion order ({from:?} -> {to:?})"
        );
        self.nodes[from.index()].out.push((to, weight));
        self.nodes[to.index()].inc.push((from, weight));
        self.edge_count += 1;
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The payload attached to `id`.
    pub fn payload(&self, id: NodeId) -> &N {
        &self.nodes[id.index()].payload
    }

    /// The node weight of `id`.
    pub fn node_weight(&self, id: NodeId) -> Cost {
        self.nodes[id.index()].weight
    }

    /// Out-edges of `id` as `(target, edge weight)` pairs.
    pub fn out_edges(&self, id: NodeId) -> &[(NodeId, Cost)] {
        &self.nodes[id.index()].out
    }

    /// In-edges of `id` as `(source, edge weight)` pairs.
    pub fn in_edges(&self, id: NodeId) -> &[(NodeId, Cost)] {
        &self.nodes[id.index()].inc
    }

    /// All node ids in topological (insertion) order.
    pub fn node_ids(&self) -> impl DoubleEndedIterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Shortest path from `source` to `target`, or `None` if `target` is
    /// unreachable (also when every route saturates at `Cost::MAX`).
    ///
    /// Runs one forward DP over nodes in topological order:
    /// `O(|V| + |E|)` time, `O(|V|)` space.
    pub fn shortest_path(&self, source: NodeId, target: NodeId) -> Option<ShortestPath> {
        let dist = self.forward_distances(source);
        let total = dist[target.index()]?;
        if total.is_infinite() {
            return None;
        }
        // Reconstruct by walking predecessors greedily: at each node pick
        // an in-edge whose source distance + edge weight + node weight
        // equals our distance.
        let mut nodes = vec![target];
        let mut cur = target;
        while cur != source {
            let d_cur = dist[cur.index()].expect("on-path node must be reachable");
            let w_cur = self.node_weight(cur);
            let prev = self
                .in_edges(cur)
                .iter()
                .find(|(src, ew)| {
                    dist[src.index()]
                        .is_some_and(|d| d.saturating_add(*ew).saturating_add(w_cur) == d_cur)
                })
                .map(|(src, _)| *src)
                .expect("shortest-path predecessor must exist");
            nodes.push(prev);
            cur = prev;
        }
        nodes.reverse();
        Some(ShortestPath { cost: total, nodes })
    }

    /// Distance from `source` to every node (including the node weights
    /// of both endpoints). `None` = unreachable.
    pub(crate) fn forward_distances(&self, source: NodeId) -> Vec<Option<Cost>> {
        let mut dist: Vec<Option<Cost>> = vec![None; self.nodes.len()];
        dist[source.index()] = Some(self.node_weight(source));
        for id in self.node_ids().skip(source.index()) {
            let Some(d) = dist[id.index()] else { continue };
            for &(to, ew) in self.out_edges(id) {
                let cand = d.saturating_add(ew).saturating_add(self.node_weight(to));
                let slot = &mut dist[to.index()];
                if slot.is_none_or(|old| cand < old) {
                    *slot = Some(cand);
                }
            }
        }
        dist
    }

    /// Distance from every node to `target` (counting the node weight of
    /// every node on the suffix **except** the starting node itself).
    ///
    /// This is the exact remaining-cost heuristic used by path ranking:
    /// for a partial path ending at `v` with accumulated cost `g`
    /// (which already includes `v`'s node weight), `g + to_target[v]` is
    /// the exact cost of the best completion.
    pub(crate) fn backward_distances(&self, target: NodeId) -> Vec<Option<Cost>> {
        let mut dist: Vec<Option<Cost>> = vec![None; self.nodes.len()];
        dist[target.index()] = Some(Cost::ZERO);
        for id in self.node_ids().rev() {
            if id == target {
                continue;
            }
            let mut best: Option<Cost> = None;
            for &(to, ew) in self.out_edges(id) {
                if let Some(d) = dist[to.index()] {
                    let cand = ew.saturating_add(self.node_weight(to)).saturating_add(d);
                    if best.is_none_or(|b| cand < b) {
                        best = Some(cand);
                    }
                }
            }
            dist[id.index()] = best;
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(io: u64) -> Cost {
        Cost::from_ios(io)
    }

    /// Diamond: s -> {a, b} -> t with different costs.
    fn diamond() -> (Dag<&'static str>, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Dag::new();
        let s = g.add_node("s", c(0));
        let a = g.add_node("a", c(10));
        let b = g.add_node("b", c(1));
        let t = g.add_node("t", c(0));
        g.add_edge(s, a, c(1));
        g.add_edge(s, b, c(5));
        g.add_edge(a, t, c(1));
        g.add_edge(b, t, c(1));
        (g, s, a, b, t)
    }

    #[test]
    fn shortest_path_picks_cheaper_branch() {
        let (g, s, _a, b, t) = diamond();
        let sp = g.shortest_path(s, t).unwrap();
        // via b: 0 + 5 + 1 + 1 + 0 = 7; via a: 0 + 1 + 10 + 1 + 0 = 12.
        assert_eq!(sp.cost, c(7));
        assert_eq!(sp.nodes, vec![s, b, t]);
    }

    #[test]
    fn unreachable_target_is_none() {
        let mut g = Dag::new();
        let s = g.add_node((), c(0));
        let t = g.add_node((), c(0));
        assert!(g.shortest_path(s, t).is_none());
    }

    #[test]
    fn single_node_path() {
        let mut g = Dag::new();
        let s = g.add_node((), c(3));
        let sp = g.shortest_path(s, s).unwrap();
        assert_eq!(sp.cost, c(3));
        assert_eq!(sp.nodes, vec![s]);
    }

    #[test]
    #[should_panic(expected = "forward")]
    fn backward_edge_panics() {
        let mut g = Dag::new();
        let a = g.add_node((), c(0));
        let b = g.add_node((), c(0));
        g.add_edge(b, a, c(0));
    }

    #[test]
    fn infinite_edges_are_avoided() {
        let (mut g, s, _a, b, t) = diamond();
        // Poison the cheap branch.
        let idx = g.nodes[s.index()]
            .out
            .iter()
            .position(|&(to, _)| to == b)
            .unwrap();
        g.nodes[s.index()].out[idx].1 = Cost::MAX;
        for e in &mut g.nodes[b.index()].inc {
            if e.0 == s {
                e.1 = Cost::MAX;
            }
        }
        let sp = g.shortest_path(s, t).unwrap();
        assert_eq!(sp.cost, c(12));
    }

    #[test]
    fn all_infinite_routes_means_unreachable() {
        let mut g = Dag::new();
        let s = g.add_node((), c(0));
        let t = g.add_node((), c(0));
        g.add_edge(s, t, Cost::MAX);
        assert!(g.shortest_path(s, t).is_none());
    }

    #[test]
    fn backward_distances_are_exact_remaining_cost() {
        let (g, s, a, b, t) = diamond();
        let back = g.backward_distances(t);
        assert_eq!(back[t.index()], Some(c(0)));
        assert_eq!(back[a.index()], Some(c(1))); // a -> t: edge 1 + node 0
        assert_eq!(back[b.index()], Some(c(1)));
        // from s: min(1+10+1, 5+1+1) = 7
        assert_eq!(back[s.index()], Some(c(7)));
        // forward + check consistency
        let fwd = g.forward_distances(s);
        assert_eq!(fwd[t.index()], Some(c(7)));
    }

    #[test]
    fn counters() {
        let (g, ..) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(*g.payload(NodeId(2)), "b");
    }
}

//! Cross-solver property tests on random synthetic problem instances:
//! the k-aware graph is never beaten by brute force, ranking agrees
//! with the k-aware optimum, heuristics are feasible and never better
//! than optimal, and budgets behave monotonically.

use cdpd_core::{
    enumerate_configs, greedy, hybrid, kaware, merging, ranking, seqgraph, Config as SolverConfig,
    Problem, Schedule, SyntheticOracle,
};
use cdpd_testkit::prop::{any_bool, any_u8, vec_of, Config};
use cdpd_testkit::props;
use cdpd_types::Cost;

/// A random instance: n stages, m structures, cost tables from the
/// supplied byte vectors (consumed cyclically).
fn instance(n: usize, m: usize, exec_seed: &[u8], build_seed: &[u8]) -> SyntheticOracle {
    let exec: Vec<u64> = exec_seed.iter().map(|&b| 1 + b as u64).collect();
    let build: Vec<Cost> = (0..m)
        .map(|i| Cost::from_ios(1 + build_seed[i % build_seed.len()] as u64))
        .collect();
    let el = exec.len();
    SyntheticOracle::from_fn(
        n,
        m,
        move |stage, cfg| {
            let idx = (stage * 31 + cfg.bits() as usize * 17) % el;
            Cost::from_ios(exec[idx])
        },
        build,
        Cost::from_ios(1),
        vec![1; m],
    )
}

/// All schedules over `cands` with exactly `n` stages (n small).
fn brute_force_best(
    oracle: &SyntheticOracle,
    problem: &Problem,
    cands: &[SolverConfig],
    n: usize,
    k: usize,
) -> Option<Cost> {
    let mut best: Option<Cost> = None;
    let total = cands.len().pow(n as u32);
    for code in 0..total {
        let mut c = code;
        let configs: Vec<SolverConfig> = (0..n)
            .map(|_| {
                let pick = cands[c % cands.len()].clone();
                c /= cands.len();
                pick
            })
            .collect();
        let s = Schedule::evaluate(oracle, problem, configs);
        if s.changes <= k && best.is_none_or(|b| s.total_cost() < b) {
            best = Some(s.total_cost());
        }
    }
    best
}

props! {
    config: Config::with_cases(32);

    fn kaware_matches_brute_force(
        n in 2usize..5,
        m in 1usize..3,
        k in 0usize..4,
        exec_seed in vec_of(any_u8(), 8..64),
        build_seed in vec_of(any_u8(), 1..8),
        count_initial in any_bool(),
        pin_final in any_bool(),
    ) {
        let o = instance(*n, *m, exec_seed, build_seed);
        let p = Problem {
            count_initial_change: *count_initial,
            final_config: pin_final.then_some(SolverConfig::EMPTY),
            ..Problem::default()
        };
        let cands = enumerate_configs(&o, None, None).unwrap();
        let brute = brute_force_best(&o, &p, &cands, *n, *k);
        match kaware::solve(&o, &p, &cands, *k) {
            Ok(s) => {
                s.validate(&o, &p, Some(*k)).unwrap();
                assert_eq!(Some(s.total_cost()), brute);
            }
            Err(_) => assert_eq!(brute, None),
        }
    }

    fn ranking_agrees_with_kaware(
        n in 2usize..5,
        m in 1usize..3,
        k in 0usize..3,
        exec_seed in vec_of(any_u8(), 8..64),
        build_seed in vec_of(any_u8(), 1..8),
    ) {
        let o = instance(*n, *m, exec_seed, build_seed);
        let p = Problem::default();
        let cands = enumerate_configs(&o, None, None).unwrap();
        let graph = kaware::solve(&o, &p, &cands, *k);
        let rank = ranking::solve(&o, &p, &cands, *k, 5_000_000);
        match (graph, rank) {
            (Ok(g), Ok(r)) => assert_eq!(g.total_cost(), r.total_cost()),
            (Err(_), Err(_)) => {}
            (g, r) => panic!("solvers disagree on feasibility: {g:?} vs {r:?}"),
        }
    }

    fn heuristics_are_feasible_and_not_better_than_optimal(
        n in 2usize..6,
        m in 1usize..3,
        k in 0usize..3,
        exec_seed in vec_of(any_u8(), 8..64),
        build_seed in vec_of(any_u8(), 1..8),
    ) {
        let o = instance(*n, *m, exec_seed, build_seed);
        let p = Problem::default();
        let cands = enumerate_configs(&o, None, None).unwrap();
        let optimal = kaware::solve(&o, &p, &cands, *k).unwrap();

        let merged = merging::solve(&o, &p, &cands, *k).unwrap();
        merged.validate(&o, &p, Some(*k)).unwrap();
        assert!(merged.total_cost() >= optimal.total_cost());

        let hyb = hybrid::solve(&o, &p, &cands, *k).unwrap();
        hyb.schedule.validate(&o, &p, Some(*k)).unwrap();
        assert!(hyb.schedule.total_cost() >= optimal.total_cost());

        let g = greedy::solve(&o, &p, *k).unwrap();
        g.validate(&o, &p, Some(*k)).unwrap();
        assert!(g.total_cost() >= optimal.total_cost());
    }

    fn budget_monotonicity_and_convergence(
        n in 2usize..6,
        m in 1usize..3,
        exec_seed in vec_of(any_u8(), 8..64),
        build_seed in vec_of(any_u8(), 1..8),
    ) {
        let o = instance(*n, *m, exec_seed, build_seed);
        let p = Problem::default();
        let cands = enumerate_configs(&o, None, None).unwrap();
        let unconstrained = seqgraph::solve(&o, &p, &cands).unwrap();
        let mut prev: Option<Cost> = None;
        for k in 0..=*n {
            let s = kaware::solve(&o, &p, &cands, k).unwrap();
            if let Some(pc) = prev {
                assert!(s.total_cost() <= pc, "budget k={k} made things worse");
            }
            prev = Some(s.total_cost());
        }
        assert_eq!(prev.unwrap(), unconstrained.total_cost(),
            "at k = n the constraint is vacuous");
    }
}

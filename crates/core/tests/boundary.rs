//! Config boundary behavior at the representation's width boundaries:
//! 63 (last inline slot), 64 (first spill), 65, and 128 must work
//! through every solver and both caching oracles, and out-of-range
//! indices must fail the same way everywhere — a panic, never a silent
//! `false`.

use cdpd_core::decompose;
use cdpd_core::{
    greedy, hybrid, kaware, kselect, merging, ranking, seqgraph, Config, CostOracle, DenseOracle,
    Problem, ProjectableOracle, ProjectedOracle,
};
use cdpd_types::Cost;

fn c(io: u64) -> Cost {
    Cost::from_ios(io)
}

/// `m` candidate structures; only indices 0 and `m - 1` ever matter.
/// Early stages run cheap under the top structure, late stages under
/// structure 0, so optimal schedules are forced to exercise the highest
/// slot — whichever side of the 64-bit spill boundary it sits on.
struct WideAt {
    n_stages: usize,
    m: usize,
}

impl WideAt {
    fn top(&self) -> usize {
        self.m - 1
    }
}

impl CostOracle for WideAt {
    fn n_stages(&self) -> usize {
        self.n_stages
    }
    fn n_structures(&self) -> usize {
        self.m
    }
    fn exec(&self, stage: usize, config: &Config) -> Cost {
        let want = if stage < self.n_stages / 2 {
            self.top()
        } else {
            0
        };
        if config.contains(want) {
            c(10)
        } else {
            c(100)
        }
    }
    fn trans(&self, from: &Config, to: &Config) -> Cost {
        c(5).scale(to.minus(from).len() as u64) + c(1).scale(from.minus(to).len() as u64)
    }
    fn size(&self, config: &Config) -> u64 {
        config.len() as u64
    }
}

impl ProjectableOracle for WideAt {
    // Only {0, top} are relevant — the masks a decomposition collapses.
    fn relevance_mask(&self, _stage: usize) -> Config {
        Config::single(0).with(self.top())
    }
}

const WIDTHS: [usize; 4] = [63, 64, 65, 128];

fn wide(m: usize) -> WideAt {
    WideAt { n_stages: 4, m }
}

fn candidates(m: usize) -> Vec<Config> {
    vec![Config::EMPTY, Config::single(0), Config::single(m - 1)]
}

#[test]
fn config_ops_at_boundary_indices() {
    for top in [63usize, 64, 65, 127] {
        let cfg = Config::single(top);
        assert!(cfg.contains(top));
        assert!(!cfg.contains(0));
        assert_eq!(cfg.len(), 1);
        assert_eq!(Config::EMPTY.with(top), cfg);
        assert_eq!(cfg.without(top), Config::EMPTY);
        assert_eq!(cfg.structures().collect::<Vec<_>>(), vec![top]);
        assert_eq!(cfg.to_string(), format!("{{{top}}}"));
        let full = Config::full(top + 1);
        assert!(full.contains(top));
        assert_eq!(full.len(), top + 1);
        assert!(cfg.is_subset_of(&full));
        assert_eq!(full.rank(top), top);
    }
    // The spill boundary itself: 63 stays inline, 64 spills.
    assert_eq!(Config::single(63).words().len(), 1);
    assert_eq!(Config::single(63).bits(), 1u64 << 63);
    assert_eq!(Config::single(64).words().len(), 2);
    assert_eq!(Config::full(64).words().len(), 1);
    assert_eq!(Config::full(65).words().len(), 2);
}

#[test]
fn every_solver_handles_boundary_widths() {
    for m in WIDTHS {
        let o = wide(m);
        let p = Problem::default();
        let cands = candidates(m);
        let top = Config::single(m - 1);
        let zero = Config::single(0);

        let unconstrained = seqgraph::solve(&o, &p, &cands).unwrap();
        assert_eq!(
            unconstrained.configs,
            vec![top.clone(), top.clone(), zero.clone(), zero.clone()],
            "the optimum must ride the top slot at m={m}"
        );
        unconstrained.validate(&o, &p, None).unwrap();

        let constrained = kaware::solve(&o, &p, &cands, 1).unwrap();
        constrained.validate(&o, &p, Some(1)).unwrap();
        assert!(constrained.configs.iter().any(|cfg| cfg.contains(m - 1)));

        let warm = kaware::solve_with_prefix(&o, &p, &cands, 1, &constrained.configs[..2]).unwrap();
        assert_eq!(warm.total_cost(), constrained.total_cost());

        let merged = merging::solve(&o, &p, &cands, 1).unwrap();
        merged.validate(&o, &p, Some(1)).unwrap();

        let ranked = ranking::solve(&o, &p, &cands, 1, 64).unwrap();
        ranked.validate(&o, &p, Some(1)).unwrap();
        assert_eq!(ranked.total_cost(), constrained.total_cost());

        let hybrid_out = hybrid::solve(&o, &p, &cands, 1).unwrap();
        hybrid_out.schedule.validate(&o, &p, Some(1)).unwrap();

        // Greedy generates its own candidates by probing all singletons.
        let g = greedy::solve(&o, &p, 2).unwrap();
        g.validate(&o, &p, Some(2)).unwrap();
        assert_eq!(g.total_cost(), unconstrained.total_cost());

        let curve = kselect::cost_curve(&o, &p, &cands, 3).unwrap();
        assert_eq!(curve.len(), 4);
        assert_eq!(curve[2].cost, unconstrained.total_cost());

        // The decomposed solve collapses every width to the same 2-wide
        // local instance; full local enumeration can only improve on the
        // restricted singleton candidate list above.
        let dec = decompose::solve_decomposed(&o, &p, 2).unwrap();
        dec.validate(&o, &p, Some(2)).unwrap();
        assert!(dec.total_cost() <= unconstrained.total_cost(), "m={m}");
    }
}

#[test]
fn both_caching_oracles_agree_across_boundary_widths() {
    for m in WIDTHS {
        let raw = wide(m);
        let projected = ProjectedOracle::new(wide(m));
        // The relevance mask is 2 wide, so the dense layer tabulates
        // fully (in local coordinates) at every vocabulary width.
        let dense = DenseOracle::new(wide(m));
        assert!(dense.is_fully_dense());
        let probes = [
            Config::EMPTY,
            Config::single(m - 1),
            Config::single(0).with(m - 1),
            Config::full(m),
        ];
        for stage in 0..raw.n_stages() {
            for cfg in &probes {
                assert_eq!(projected.exec(stage, cfg), raw.exec(stage, cfg));
                assert_eq!(dense.exec(stage, cfg), raw.exec(stage, cfg));
            }
        }
        for cfg in &probes {
            assert_eq!(projected.size(cfg), raw.size(cfg));
            assert_eq!(dense.size(cfg), raw.size(cfg));
        }
        // Solving through each wrapper reproduces the raw optimum.
        let p = Problem::default();
        let cands = candidates(m);
        let want = seqgraph::solve(&raw, &p, &cands).unwrap();
        let via_projected = seqgraph::solve(&projected, &p, &cands).unwrap();
        let via_dense = seqgraph::solve(&dense, &p, &cands).unwrap();
        assert_eq!(via_projected.total_cost(), want.total_cost());
        assert_eq!(via_dense.total_cost(), want.total_cost());
        assert_eq!(via_projected.configs, want.configs);
        assert_eq!(via_dense.configs, want.configs);
    }
}

fn panics(f: impl FnOnce() + std::panic::UnwindSafe) -> bool {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // keep test output clean
    let r = std::panic::catch_unwind(f).is_err();
    std::panic::set_hook(prev);
    r
}

#[test]
fn out_of_range_indices_fail_consistently() {
    // The last valid slot works everywhere...
    let top = cdpd_core::MAX_STRUCTURE_INDEX - 1;
    assert!(!panics(move || {
        let _ = Config::single(top);
        let _ = Config::EMPTY.contains(top);
        let _ = Config::EMPTY.with(top);
        let _ = Config::EMPTY.without(top);
    }));
    // ...and anything at or past the cap panics in every index-taking
    // method — including `contains`, which used to answer a silent
    // `false`.
    for idx in [top + 1, top + 2, 10 * (top + 1)] {
        assert!(panics(move || {
            let _ = Config::single(idx);
        }));
        assert!(panics(move || {
            let _ = Config::full(1).contains(idx);
        }));
        assert!(panics(move || {
            let _ = Config::EMPTY.with(idx);
        }));
        assert!(panics(move || {
            let _ = Config::EMPTY.without(idx);
        }));
    }
}

//! Config boundary behavior: structure index 63 (the last bitmask
//! slot) must work through every solver and both caching oracles, and
//! out-of-range indices must fail the same way everywhere — a panic,
//! never a silent `false`.

use cdpd_core::{
    greedy, hybrid, kaware, kselect, merging, ranking, seqgraph, Config, CostOracle, DenseOracle,
    Problem, ProjectableOracle, ProjectedOracle,
};
use cdpd_types::Cost;

fn c(io: u64) -> Cost {
    Cost::from_ios(io)
}

/// 64 candidate structures; only indices 0 and 63 ever matter. Early
/// stages run cheap under structure 63, late stages under structure 0,
/// so optimal schedules are forced to exercise the top bitmask slot.
struct Wide64 {
    n_stages: usize,
}

impl CostOracle for Wide64 {
    fn n_stages(&self) -> usize {
        self.n_stages
    }
    fn n_structures(&self) -> usize {
        64
    }
    fn exec(&self, stage: usize, config: Config) -> Cost {
        let want = if stage < self.n_stages / 2 { 63 } else { 0 };
        if config.contains(want) {
            c(10)
        } else {
            c(100)
        }
    }
    fn trans(&self, from: Config, to: Config) -> Cost {
        c(5).scale(to.minus(from).len() as u64) + c(1).scale(from.minus(to).len() as u64)
    }
    fn size(&self, config: Config) -> u64 {
        config.len() as u64
    }
}

// Default relevance info: one full-width (64-bit) part per stage. The
// dense layer's width cap forces its overflow-memo path here, which is
// exactly the top-bit coverage we want.
impl ProjectableOracle for Wide64 {}

fn wide() -> Wide64 {
    Wide64 { n_stages: 4 }
}

fn candidates() -> Vec<Config> {
    vec![Config::EMPTY, Config::single(0), Config::single(63)]
}

#[test]
fn config_ops_at_index_63() {
    let top = Config::single(63);
    assert!(top.contains(63));
    assert!(!top.contains(0));
    assert_eq!(top.bits(), 1u64 << 63);
    assert_eq!(top.len(), 1);
    assert_eq!(Config::EMPTY.with(63), top);
    assert_eq!(top.without(63), Config::EMPTY);
    assert_eq!(top.structures().collect::<Vec<_>>(), vec![63]);
    assert_eq!(top.to_string(), "{63}");
    let full = Config::from_bits(u64::MAX);
    assert!(full.contains(63));
    assert_eq!(full.len(), 64);
    assert!(top.is_subset_of(full));
}

#[test]
fn every_solver_handles_structure_63() {
    let o = wide();
    let p = Problem::default();
    let cands = candidates();

    let unconstrained = seqgraph::solve(&o, &p, &cands).unwrap();
    assert_eq!(
        unconstrained.configs,
        vec![
            Config::single(63),
            Config::single(63),
            Config::single(0),
            Config::single(0),
        ],
        "the optimum must ride the top bitmask slot"
    );
    unconstrained.validate(&o, &p, None).unwrap();

    let constrained = kaware::solve(&o, &p, &cands, 1).unwrap();
    constrained.validate(&o, &p, Some(1)).unwrap();
    assert!(constrained.configs.iter().any(|cfg| cfg.contains(63)));

    let warm = kaware::solve_with_prefix(&o, &p, &cands, 1, &constrained.configs[..2]).unwrap();
    assert_eq!(warm.total_cost(), constrained.total_cost());

    let merged = merging::solve(&o, &p, &cands, 1).unwrap();
    merged.validate(&o, &p, Some(1)).unwrap();

    let ranked = ranking::solve(&o, &p, &cands, 1, 64).unwrap();
    ranked.validate(&o, &p, Some(1)).unwrap();
    assert_eq!(ranked.total_cost(), constrained.total_cost());

    let hybrid_out = hybrid::solve(&o, &p, &cands, 1).unwrap();
    hybrid_out.schedule.validate(&o, &p, Some(1)).unwrap();

    // Greedy generates its own candidates by probing all 64 singletons.
    let g = greedy::solve(&o, &p, 2).unwrap();
    g.validate(&o, &p, Some(2)).unwrap();
    assert_eq!(g.total_cost(), unconstrained.total_cost());

    let curve = kselect::cost_curve(&o, &p, &cands, 3).unwrap();
    assert_eq!(curve.len(), 4);
    assert_eq!(curve[2].cost, unconstrained.total_cost());
}

#[test]
fn both_caching_oracles_agree_at_the_top_bit() {
    let raw = wide();
    let projected = ProjectedOracle::new(wide());
    // Width-64 parts exceed any dense cap, so this exercises the
    // dense layer's overflow-memo fallback at bit 63.
    let dense = DenseOracle::new(wide());
    assert!(!dense.is_fully_dense());
    let probes = [
        Config::EMPTY,
        Config::single(63),
        Config::single(0).with(63),
        Config::from_bits(u64::MAX),
    ];
    for stage in 0..raw.n_stages() {
        for cfg in probes {
            assert_eq!(projected.exec(stage, cfg), raw.exec(stage, cfg));
            assert_eq!(dense.exec(stage, cfg), raw.exec(stage, cfg));
        }
    }
    for cfg in probes {
        assert_eq!(projected.size(cfg), raw.size(cfg));
        assert_eq!(dense.size(cfg), raw.size(cfg));
    }
    // Solving through each wrapper reproduces the raw optimum.
    let p = Problem::default();
    let cands = candidates();
    let want = seqgraph::solve(&raw, &p, &cands).unwrap();
    let via_projected = seqgraph::solve(&projected, &p, &cands).unwrap();
    let via_dense = seqgraph::solve(&dense, &p, &cands).unwrap();
    assert_eq!(via_projected.total_cost(), want.total_cost());
    assert_eq!(via_dense.total_cost(), want.total_cost());
    assert_eq!(via_projected.configs, want.configs);
    assert_eq!(via_dense.configs, want.configs);
}

fn panics(f: impl FnOnce() + std::panic::UnwindSafe) -> bool {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // keep test output clean
    let r = std::panic::catch_unwind(f).is_err();
    std::panic::set_hook(prev);
    r
}

#[test]
fn out_of_range_indices_fail_consistently() {
    // Index 63 is the last valid slot everywhere...
    assert!(!panics(|| {
        let _ = Config::single(63);
        let _ = Config::EMPTY.contains(63);
        let _ = Config::EMPTY.with(63);
        let _ = Config::EMPTY.without(63);
    }));
    // ...and 64+ panics in every index-taking method — including
    // `contains`, which used to answer a silent `false`.
    for idx in [64usize, 65, 1000] {
        assert!(panics(move || {
            let _ = Config::single(idx);
        }));
        assert!(panics(move || {
            let _ = Config::from_bits(u64::MAX).contains(idx);
        }));
        assert!(panics(move || {
            let _ = Config::EMPTY.with(idx);
        }));
        assert!(panics(move || {
            let _ = Config::EMPTY.without(idx);
        }));
    }
}

//! The hybrid solver the paper's §6.4 suggests:
//!
//! > *"the time required to generate optimal constrained design
//! > recommendations increases linearly with k … the time required for
//! > the merging heuristic is inversely related to k … Together, this
//! > suggests that a hybrid technique that switches to the merging
//! > approach for larger k will be an appropriate means of generating
//! > constrained designs."*
//!
//! The unconstrained optimum is solved first (both strategies need it
//! or its cost structure anyway). If it already satisfies `k`, done —
//! and optimally. Otherwise, with `l` unconstrained changes: a small
//! `k` relative to `l` means a cheap k-aware graph and many merging
//! steps, so the graph is used; a large `k` means few merging steps, so
//! merging refines the already-computed unconstrained design.

use crate::config::Config;
use crate::problem::{CostOracle, Problem};
use crate::schedule::Schedule;
use crate::{kaware, merging, seqgraph};
use cdpd_types::Result;

/// Which strategy the hybrid actually ran.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Strategy {
    /// The unconstrained optimum already used at most `k` changes.
    UnconstrainedSufficed,
    /// Solved with the k-aware sequence graph (small `k`).
    KAwareGraph,
    /// Refined the unconstrained optimum by merging (large `k`).
    Merging,
}

/// Hybrid solve result.
#[derive(Clone, Debug)]
pub struct HybridOutcome {
    /// The recommended design.
    pub schedule: Schedule,
    /// Strategy used.
    pub strategy: Strategy,
}

/// Fraction of the unconstrained change count above which merging is
/// chosen. Calibrated from the Figure 4 reproduction: the curves cross
/// near `k ≈ l/2`.
pub const DEFAULT_SWITCH_FRACTION: f64 = 0.5;

/// Solve with the default switch point.
pub fn solve(
    oracle: &dyn CostOracle,
    problem: &Problem,
    candidates: &[Config],
    k: usize,
) -> Result<HybridOutcome> {
    solve_with_switch(oracle, problem, candidates, k, DEFAULT_SWITCH_FRACTION)
}

/// Solve, switching to merging when `k ≥ switch_fraction · l`.
pub fn solve_with_switch(
    oracle: &dyn CostOracle,
    problem: &Problem,
    candidates: &[Config],
    k: usize,
    switch_fraction: f64,
) -> Result<HybridOutcome> {
    let _span = cdpd_obs::span!("solve.hybrid", k = k, candidates = candidates.len());
    let unconstrained = seqgraph::solve(oracle, problem, candidates)?;
    if unconstrained.changes <= k {
        return Ok(HybridOutcome {
            schedule: unconstrained,
            strategy: Strategy::UnconstrainedSufficed,
        });
    }
    let l = unconstrained.changes as f64;
    if (k as f64) >= switch_fraction * l {
        let schedule = merging::refine(oracle, problem, candidates, k, &unconstrained)?;
        Ok(HybridOutcome {
            schedule,
            strategy: Strategy::Merging,
        })
    } else {
        let schedule = kaware::solve(oracle, problem, candidates, k)?;
        Ok(HybridOutcome {
            schedule,
            strategy: Strategy::KAwareGraph,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::enumerate_configs;
    use crate::problem::SyntheticOracle;
    use cdpd_types::Cost;

    fn c(io: u64) -> Cost {
        Cost::from_ios(io)
    }

    fn phased(n: usize, m: usize) -> SyntheticOracle {
        SyntheticOracle::from_fn(
            n,
            m,
            move |stage, cfg| {
                let preferred = (stage * m) / n;
                let minor = (preferred + 1) % m;
                let want = if stage % 2 == 1 { minor } else { preferred };
                if cfg.contains(want) {
                    c(20)
                } else if cfg.contains(preferred) {
                    c(120)
                } else {
                    c(300)
                }
            },
            vec![c(5); m],
            c(1),
            vec![1; m],
        )
    }

    #[test]
    fn strategy_selection() {
        let o = phased(18, 3);
        let p = Problem::paper_experiment();
        let cands = enumerate_configs(&o, None, Some(1)).unwrap();
        let unc = seqgraph::solve(&o, &p, &cands).unwrap();
        assert!(unc.changes >= 4, "need a twitchy baseline: {unc}");

        let big = solve(&o, &p, &cands, unc.changes).unwrap();
        assert_eq!(big.strategy, Strategy::UnconstrainedSufficed);

        let small = solve(&o, &p, &cands, 1).unwrap();
        assert_eq!(small.strategy, Strategy::KAwareGraph);

        let large = solve(&o, &p, &cands, unc.changes - 1).unwrap();
        assert_eq!(large.strategy, Strategy::Merging);
    }

    #[test]
    fn all_strategies_respect_k() {
        let o = phased(12, 3);
        let p = Problem::paper_experiment();
        let cands = enumerate_configs(&o, None, Some(1)).unwrap();
        for k in 0..8 {
            let out = solve(&o, &p, &cands, k).unwrap();
            out.schedule.validate(&o, &p, Some(k)).unwrap();
        }
    }

    #[test]
    fn switch_fraction_is_tunable() {
        let o = phased(12, 3);
        let p = Problem::paper_experiment();
        let cands = enumerate_configs(&o, None, Some(1)).unwrap();
        // Force merging even at k = 1.
        let merged = solve_with_switch(&o, &p, &cands, 1, 0.0).unwrap();
        assert_eq!(merged.strategy, Strategy::Merging);
        // Force the graph always.
        let graphed = solve_with_switch(&o, &p, &cands, 4, 10.0).unwrap();
        assert!(matches!(
            graphed.strategy,
            Strategy::KAwareGraph | Strategy::UnconstrainedSufficed
        ));
    }
}

use crate::config::Config;
use crate::oracle::{DenseOracle, OracleStats, ProjectableOracle};
use cdpd_types::Cost;

/// The `EXEC` / `TRANS` / `SIZE` cost oracle of the paper's §2.
///
/// Stages index the workload's statements (or summarized statement
/// blocks); structures index the candidate-structure list the oracle
/// was built over. Implementations must be deterministic — solvers
/// assume `exec(i, c)` is a pure function. Configurations are passed by
/// reference because [`Config`] is no longer `Copy` (it can spill past
/// 64 structures); implementations clone only what they store.
pub trait CostOracle {
    /// Number of statements (stages) in the workload sequence.
    fn n_stages(&self) -> usize;
    /// Number of candidate structures (`m`).
    fn n_structures(&self) -> usize;
    /// `EXEC(S_stage, config)`: cost of executing the stage's
    /// statement(s) under `config`.
    fn exec(&self, stage: usize, config: &Config) -> Cost;
    /// `TRANS(from, to)`: cost of changing the physical design.
    /// Must be zero when `from == to`.
    fn trans(&self, from: &Config, to: &Config) -> Cost;
    /// `SIZE(config)` in the problem's space unit (pages).
    fn size(&self, config: &Config) -> u64;
}

/// The problem instance around the oracle: boundary conditions and the
/// space bound. The change budget `k` is a per-solve argument.
#[derive(Clone, Debug)]
pub struct Problem {
    /// `C_0`: the configuration in place before the first statement.
    pub initial: Config,
    /// Optional required final configuration. When set, `TRANS(C_n, f)`
    /// is added to every schedule's cost (the sequence graph's
    /// destination node; the paper's experiments pin it to `{}`). The
    /// closing transition never counts against `k`.
    pub final_config: Option<Config>,
    /// `b`: maximum `SIZE(C_i)` for every stage, if bounded.
    pub space_bound: Option<u64>,
    /// Whether `C_0 ≠ C_1` counts as one of the `k` changes.
    ///
    /// Definition 1 counts every `i` with `C_{i-1} ≠ C_i`, which
    /// includes the initial build. The paper's own experiment (Table 2,
    /// `k = 2` starting from an empty design with three phases) is only
    /// feasible if the initial build is *not* counted, so that is the
    /// default; set `true` for the strict Definition 1 reading.
    pub count_initial_change: bool,
}

impl Default for Problem {
    fn default() -> Self {
        Problem {
            initial: Config::EMPTY,
            final_config: None,
            space_bound: None,
            count_initial_change: false,
        }
    }
}

impl Problem {
    /// The paper's experimental setup: start empty, end empty,
    /// unbounded space, initial build not counted.
    pub fn paper_experiment() -> Problem {
        Problem {
            initial: Config::EMPTY,
            final_config: Some(Config::EMPTY),
            space_bound: None,
            count_initial_change: false,
        }
    }

    /// True if `config` respects the space bound under `oracle`.
    pub fn fits(&self, oracle: &dyn CostOracle, config: &Config) -> bool {
        self.space_bound.is_none_or(|b| oracle.size(config) <= b)
    }
}

/// The closure-backed inner oracle [`SyntheticOracle`] materializes.
/// `TRANS` is per-structure build costs plus a flat drop cost; `SIZE`
/// is additive over per-structure sizes. Relevance info is the trivial
/// default (one full-mask part per stage), which makes the dense layer
/// tabulate the complete `[stage][config]` matrix — exactly the table
/// the seed implementation kept by hand.
type ExecFn = Box<dyn Fn(usize, &Config) -> Cost + Send + Sync>;

struct FnOracle {
    n_stages: usize,
    n_structures: usize,
    exec: ExecFn,
    build: Vec<Cost>,
    drop_cost: Cost,
    sizes: Vec<u64>,
}

impl CostOracle for FnOracle {
    fn n_stages(&self) -> usize {
        self.n_stages
    }

    fn n_structures(&self) -> usize {
        self.n_structures
    }

    fn exec(&self, stage: usize, config: &Config) -> Cost {
        (self.exec)(stage, config)
    }

    fn trans(&self, from: &Config, to: &Config) -> Cost {
        let mut total = Cost::ZERO;
        for s in to.minus(from).structures() {
            total += self.build[s];
        }
        if !from.minus(to).is_empty() {
            total += self.drop_cost.scale(from.minus(to).len() as u64);
        }
        total
    }

    fn size(&self, config: &Config) -> u64 {
        config.structures().map(|s| self.sizes[s]).sum()
    }
}

impl ProjectableOracle for FnOracle {}

/// A table-driven oracle for tests, simulations, and benchmarks.
///
/// Built on the production [`DenseOracle`] layer: up to 16 structures,
/// `EXEC` is materialized up front as per-stage dense cost tables, so
/// every test and simulation exercises the same cache path the
/// engine-backed advisor uses. Wider instances fall back to the dense
/// layer's memo path — identical results, demand-driven evaluation —
/// which is what the width-boundary tests and benches rely on.
pub struct SyntheticOracle {
    dense: DenseOracle<FnOracle>,
}

impl SyntheticOracle {
    /// Materialize an oracle from a cost function.
    ///
    /// # Panics
    /// Panics if the `build`/`sizes` vectors have the wrong length.
    pub fn from_fn(
        n_stages: usize,
        n_structures: usize,
        exec: impl Fn(usize, &Config) -> Cost + Send + Sync + 'static,
        build: Vec<Cost>,
        drop_cost: Cost,
        sizes: Vec<u64>,
    ) -> SyntheticOracle {
        assert_eq!(build.len(), n_structures);
        assert_eq!(sizes.len(), n_structures);
        let inner = FnOracle {
            n_stages,
            n_structures,
            exec: Box::new(exec),
            build,
            drop_cost,
            sizes,
        };
        // Width cap 16: instances with m ≤ 16 are fully tabulated up
        // front; wider ones skip tabulation and memoize on demand.
        SyntheticOracle {
            dense: DenseOracle::with_stats(inner, OracleStats::shared(), 16),
        }
    }
}

impl CostOracle for SyntheticOracle {
    fn n_stages(&self) -> usize {
        self.dense.n_stages()
    }

    fn n_structures(&self) -> usize {
        self.dense.n_structures()
    }

    fn exec(&self, stage: usize, config: &Config) -> Cost {
        self.dense.exec(stage, config)
    }

    fn trans(&self, from: &Config, to: &Config) -> Cost {
        self.dense.trans(from, to)
    }

    fn size(&self, config: &Config) -> u64 {
        self.dense.size(config)
    }
}

impl ProjectableOracle for SyntheticOracle {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ProjectedOracle;

    fn c(io: u64) -> Cost {
        Cost::from_ios(io)
    }

    fn oracle() -> SyntheticOracle {
        SyntheticOracle::from_fn(
            3,
            2,
            |stage, cfg| c(100 - 10 * (stage as u64) - 5 * cfg.len() as u64),
            vec![c(50), c(60)],
            c(1),
            vec![10, 20],
        )
    }

    #[test]
    fn synthetic_exec_matrix() {
        let o = oracle();
        assert_eq!(o.n_stages(), 3);
        assert_eq!(o.n_structures(), 2);
        assert_eq!(o.exec(0, &Config::EMPTY), c(100));
        assert_eq!(o.exec(2, &Config::from_bits(0b11)), c(70));
    }

    #[test]
    fn synthetic_is_fully_materialized() {
        // 3 stages × 2^2 configs, tabulated at construction; probing
        // afterwards adds no inner evaluations.
        let o = oracle();
        let before = o.dense.stats_snapshot();
        assert_eq!(before.raw_exec_evals, 12);
        for stage in 0..3 {
            for bits in 0..4u64 {
                o.exec(stage, &Config::from_bits(bits));
            }
        }
        assert_eq!(o.dense.stats_snapshot().raw_exec_evals, 12);
        assert!(o.dense.is_fully_dense());
    }

    #[test]
    fn synthetic_wide_instances_memoize_on_demand() {
        // Past the 16-bit tabulation cap nothing is materialized up
        // front; probes evaluate once and hit the memo afterwards.
        let o = SyntheticOracle::from_fn(
            2,
            80,
            |_, cfg| c(100 + cfg.len() as u64),
            vec![c(1); 80],
            c(1),
            vec![1; 80],
        );
        assert_eq!(o.dense.stats_snapshot().raw_exec_evals, 0);
        let wide = Config::EMPTY.with(3).with(79);
        assert_eq!(o.exec(0, &wide), c(102));
        assert_eq!(o.exec(0, &wide), c(102));
        assert_eq!(o.dense.stats_snapshot().raw_exec_evals, 1);
        assert!(!o.dense.is_fully_dense());
        assert_eq!(o.size(&wide), 2);
        assert_eq!(o.trans(&Config::EMPTY, &wide), c(2));
    }

    #[test]
    fn synthetic_trans_builds_and_drops() {
        let o = oracle();
        let e = Config::EMPTY;
        let s0 = Config::single(0);
        let s1 = Config::single(1);
        assert_eq!(o.trans(&e, &e), Cost::ZERO);
        assert_eq!(o.trans(&e, &s0), c(50));
        assert_eq!(o.trans(&s0, &e), c(1));
        assert_eq!(o.trans(&s0, &s1), c(61), "build 60 + drop 1");
        assert_eq!(o.trans(&e, &s0.union(&s1)), c(110));
    }

    #[test]
    fn synthetic_size_additive() {
        let o = oracle();
        assert_eq!(o.size(&Config::EMPTY), 0);
        assert_eq!(o.size(&Config::from_bits(0b11)), 30);
    }

    #[test]
    fn problem_fits_space_bound() {
        let o = oracle();
        let p = Problem {
            space_bound: Some(15),
            ..Problem::default()
        };
        assert!(p.fits(&o, &Config::single(0)));
        assert!(!p.fits(&o, &Config::single(1)));
        let unbounded = Problem::default();
        assert!(unbounded.fits(&o, &Config::from_bits(0b11)));
    }

    #[test]
    fn projected_layer_caches_exec_over_synthetic() {
        let o = ProjectedOracle::new(oracle());
        assert_eq!(o.exec_evaluations(), 0);
        let a = o.exec(1, &Config::single(0));
        let b = o.exec(1, &Config::single(0));
        assert_eq!(a, b);
        assert_eq!(o.exec_evaluations(), 1);
        o.exec(2, &Config::single(0));
        assert_eq!(o.exec_evaluations(), 2);
        assert_eq!(o.size(&Config::single(1)), 20);
        assert_eq!(o.size(&Config::single(1)), 20);
    }
}

use crate::config::Config;
use cdpd_types::Cost;
use std::collections::HashMap;
use std::sync::Mutex;

/// The `EXEC` / `TRANS` / `SIZE` cost oracle of the paper's §2.
///
/// Stages index the workload's statements (or summarized statement
/// blocks); structures index the candidate-structure list the oracle
/// was built over. Implementations must be deterministic — solvers
/// assume `exec(i, c)` is a pure function.
pub trait CostOracle {
    /// Number of statements (stages) in the workload sequence.
    fn n_stages(&self) -> usize;
    /// Number of candidate structures (`m`).
    fn n_structures(&self) -> usize;
    /// `EXEC(S_stage, config)`: cost of executing the stage's
    /// statement(s) under `config`.
    fn exec(&self, stage: usize, config: Config) -> Cost;
    /// `TRANS(from, to)`: cost of changing the physical design.
    /// Must be zero when `from == to`.
    fn trans(&self, from: Config, to: Config) -> Cost;
    /// `SIZE(config)` in the problem's space unit (pages).
    fn size(&self, config: Config) -> u64;
}

/// The problem instance around the oracle: boundary conditions and the
/// space bound. The change budget `k` is a per-solve argument.
#[derive(Clone, Copy, Debug)]
pub struct Problem {
    /// `C_0`: the configuration in place before the first statement.
    pub initial: Config,
    /// Optional required final configuration. When set, `TRANS(C_n, f)`
    /// is added to every schedule's cost (the sequence graph's
    /// destination node; the paper's experiments pin it to `{}`). The
    /// closing transition never counts against `k`.
    pub final_config: Option<Config>,
    /// `b`: maximum `SIZE(C_i)` for every stage, if bounded.
    pub space_bound: Option<u64>,
    /// Whether `C_0 ≠ C_1` counts as one of the `k` changes.
    ///
    /// Definition 1 counts every `i` with `C_{i-1} ≠ C_i`, which
    /// includes the initial build. The paper's own experiment (Table 2,
    /// `k = 2` starting from an empty design with three phases) is only
    /// feasible if the initial build is *not* counted, so that is the
    /// default; set `true` for the strict Definition 1 reading.
    pub count_initial_change: bool,
}

impl Default for Problem {
    fn default() -> Self {
        Problem {
            initial: Config::EMPTY,
            final_config: None,
            space_bound: None,
            count_initial_change: false,
        }
    }
}

impl Problem {
    /// The paper's experimental setup: start empty, end empty,
    /// unbounded space, initial build not counted.
    pub fn paper_experiment() -> Problem {
        Problem {
            initial: Config::EMPTY,
            final_config: Some(Config::EMPTY),
            space_bound: None,
            count_initial_change: false,
        }
    }

    /// True if `config` respects the space bound under `oracle`.
    pub fn fits(&self, oracle: &dyn CostOracle, config: Config) -> bool {
        self.space_bound.is_none_or(|b| oracle.size(config) <= b)
    }
}

/// A table-driven oracle for tests, simulations, and benchmarks.
///
/// `EXEC` is materialized as a dense `[stage][config.bits]` matrix (so
/// `m` must stay small); `TRANS` is per-structure build costs plus a
/// flat drop cost; `SIZE` is additive over per-structure sizes.
pub struct SyntheticOracle {
    n_structures: usize,
    exec: Vec<Vec<Cost>>,
    build: Vec<Cost>,
    drop_cost: Cost,
    sizes: Vec<u64>,
}

impl SyntheticOracle {
    /// Materialize an oracle from a cost function.
    ///
    /// # Panics
    /// Panics if `n_structures > 16` (the dense matrix would explode)
    /// or the `build`/`sizes` vectors have the wrong length.
    pub fn from_fn(
        n_stages: usize,
        n_structures: usize,
        exec: impl Fn(usize, Config) -> Cost,
        build: Vec<Cost>,
        drop_cost: Cost,
        sizes: Vec<u64>,
    ) -> SyntheticOracle {
        assert!(n_structures <= 16, "synthetic oracle caps m at 16");
        assert_eq!(build.len(), n_structures);
        assert_eq!(sizes.len(), n_structures);
        let configs = 1usize << n_structures;
        let exec = (0..n_stages)
            .map(|s| {
                (0..configs)
                    .map(|bits| exec(s, Config::from_bits(bits as u64)))
                    .collect()
            })
            .collect();
        SyntheticOracle { n_structures, exec, build, drop_cost, sizes }
    }
}

impl CostOracle for SyntheticOracle {
    fn n_stages(&self) -> usize {
        self.exec.len()
    }

    fn n_structures(&self) -> usize {
        self.n_structures
    }

    fn exec(&self, stage: usize, config: Config) -> Cost {
        self.exec[stage][config.bits() as usize]
    }

    fn trans(&self, from: Config, to: Config) -> Cost {
        let mut total = Cost::ZERO;
        for s in to.minus(from).structures() {
            total += self.build[s];
        }
        if !from.minus(to).is_empty() {
            total += self.drop_cost.scale(from.minus(to).len() as u64);
        }
        total
    }

    fn size(&self, config: Config) -> u64 {
        config.structures().map(|s| self.sizes[s]).sum()
    }
}

/// A memoizing wrapper: caches `exec` and `size` results, which is what
/// makes engine-backed oracles affordable inside the solvers (the same
/// `(stage, config)` pair is probed by every algorithm, repeatedly).
///
/// `trans` is not cached: engine transition costs are already cheap to
/// compute (set difference over per-structure costs).
pub struct MemoOracle<O> {
    inner: O,
    exec_cache: Mutex<HashMap<(usize, u64), Cost>>,
    size_cache: Mutex<HashMap<u64, u64>>,
}

impl<O: CostOracle> MemoOracle<O> {
    /// Wrap `inner`.
    pub fn new(inner: O) -> MemoOracle<O> {
        MemoOracle {
            inner,
            exec_cache: Mutex::new(HashMap::new()),
            size_cache: Mutex::new(HashMap::new()),
        }
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Number of distinct `(stage, config)` exec evaluations so far.
    pub fn exec_evaluations(&self) -> usize {
        self.exec_cache.lock().expect("cache lock").len()
    }
}

impl<O: CostOracle> CostOracle for MemoOracle<O> {
    fn n_stages(&self) -> usize {
        self.inner.n_stages()
    }

    fn n_structures(&self) -> usize {
        self.inner.n_structures()
    }

    fn exec(&self, stage: usize, config: Config) -> Cost {
        let key = (stage, config.bits());
        if let Some(&c) = self.exec_cache.lock().expect("cache lock").get(&key) {
            return c;
        }
        let c = self.inner.exec(stage, config);
        self.exec_cache.lock().expect("cache lock").insert(key, c);
        c
    }

    fn trans(&self, from: Config, to: Config) -> Cost {
        self.inner.trans(from, to)
    }

    fn size(&self, config: Config) -> u64 {
        let key = config.bits();
        if let Some(&s) = self.size_cache.lock().expect("cache lock").get(&key) {
            return s;
        }
        let s = self.inner.size(config);
        self.size_cache.lock().expect("cache lock").insert(key, s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(io: u64) -> Cost {
        Cost::from_ios(io)
    }

    fn oracle() -> SyntheticOracle {
        SyntheticOracle::from_fn(
            3,
            2,
            |stage, cfg| c(100 - 10 * (stage as u64) - 5 * cfg.len() as u64),
            vec![c(50), c(60)],
            c(1),
            vec![10, 20],
        )
    }

    #[test]
    fn synthetic_exec_matrix() {
        let o = oracle();
        assert_eq!(o.n_stages(), 3);
        assert_eq!(o.n_structures(), 2);
        assert_eq!(o.exec(0, Config::EMPTY), c(100));
        assert_eq!(o.exec(2, Config::from_bits(0b11)), c(70));
    }

    #[test]
    fn synthetic_trans_builds_and_drops() {
        let o = oracle();
        let e = Config::EMPTY;
        let s0 = Config::single(0);
        let s1 = Config::single(1);
        assert_eq!(o.trans(e, e), Cost::ZERO);
        assert_eq!(o.trans(e, s0), c(50));
        assert_eq!(o.trans(s0, e), c(1));
        assert_eq!(o.trans(s0, s1), c(61), "build 60 + drop 1");
        assert_eq!(o.trans(e, s0.union(s1)), c(110));
    }

    #[test]
    fn synthetic_size_additive() {
        let o = oracle();
        assert_eq!(o.size(Config::EMPTY), 0);
        assert_eq!(o.size(Config::from_bits(0b11)), 30);
    }

    #[test]
    fn problem_fits_space_bound() {
        let o = oracle();
        let p = Problem { space_bound: Some(15), ..Problem::default() };
        assert!(p.fits(&o, Config::single(0)));
        assert!(!p.fits(&o, Config::single(1)));
        let unbounded = Problem::default();
        assert!(unbounded.fits(&o, Config::from_bits(0b11)));
    }

    #[test]
    fn memo_caches_exec() {
        let o = MemoOracle::new(oracle());
        assert_eq!(o.exec_evaluations(), 0);
        let a = o.exec(1, Config::single(0));
        let b = o.exec(1, Config::single(0));
        assert_eq!(a, b);
        assert_eq!(o.exec_evaluations(), 1);
        o.exec(2, Config::single(0));
        assert_eq!(o.exec_evaluations(), 2);
        assert_eq!(o.size(Config::single(1)), 20);
        assert_eq!(o.size(Config::single(1)), 20);
    }
}

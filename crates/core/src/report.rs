//! Human-readable reporting over schedules: per-stage cost breakdowns,
//! rendered tables, and schedule diffs — what a DBA reviews before
//! letting a recommended design schedule loose on production.

use crate::config::Config;
use crate::problem::{CostOracle, Problem};
use crate::schedule::Schedule;
use cdpd_types::Cost;
use std::fmt::Write as _;

/// One stage's cost decomposition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageCost {
    /// Stage index.
    pub stage: usize,
    /// Configuration in effect.
    pub config: Config,
    /// `EXEC(S_stage, config)`.
    pub exec: Cost,
    /// `TRANS` paid *entering* this stage (zero unless the design
    /// changed here).
    pub trans_in: Cost,
}

/// Per-stage breakdown of a schedule's cost (the closing transition to
/// a pinned final configuration is not a stage and is excluded; use
/// [`Schedule::trans_cost`] for totals).
pub fn per_stage(
    oracle: &dyn CostOracle,
    problem: &Problem,
    schedule: &Schedule,
) -> Vec<StageCost> {
    let mut out = Vec::with_capacity(schedule.len());
    let mut prev = &problem.initial;
    for (stage, config) in schedule.configs.iter().enumerate() {
        out.push(StageCost {
            stage,
            config: config.clone(),
            exec: oracle.exec(stage, config),
            trans_in: oracle.trans(prev, config),
        });
        prev = config;
    }
    out
}

/// Render a schedule as an aligned text table, one row per segment,
/// with a caller-supplied `label` for configurations (e.g. mapping
/// structure bits back to `I(a,b)` names).
pub fn render(
    oracle: &dyn CostOracle,
    problem: &Problem,
    schedule: &Schedule,
    label: &dyn Fn(&Config) -> String,
) -> String {
    let stages = per_stage(oracle, problem, schedule);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>12} | {:<20} | {:>12} | {:>12}",
        "stages", "configuration", "exec I/Os", "trans I/Os"
    );
    let _ = writeln!(out, "{}", "-".repeat(66));
    for (range, config) in schedule.segments() {
        let exec: Cost = stages[range.clone()].iter().map(|s| s.exec).sum();
        let trans = stages[range.start].trans_in;
        let _ = writeln!(
            out,
            "{:>12} | {:<20} | {:>12} | {:>12}",
            format!("{}..{}", range.start, range.end),
            label(&config),
            exec.to_string(),
            trans.to_string(),
        );
    }
    let _ = writeln!(out, "{}", "-".repeat(66));
    let _ = writeln!(
        out,
        "{:>12} | {:<20} | {:>12} | {:>12}   ({} change(s))",
        "total",
        "",
        schedule.exec_cost.to_string(),
        schedule.trans_cost.to_string(),
        schedule.changes,
    );
    out
}

/// Difference between two schedules over the same workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScheduleDiff {
    /// Stages where the two schedules disagree.
    pub diverging_stages: Vec<usize>,
    /// `a.total_cost() − b.total_cost()` in raw cost units (signed).
    pub cost_delta: i128,
    /// `a.changes` vs `b.changes`.
    pub changes: (usize, usize),
}

/// Compare schedule `a` against `b` (must cover the same stage count).
pub fn diff(a: &Schedule, b: &Schedule) -> ScheduleDiff {
    assert_eq!(a.len(), b.len(), "schedules cover different workloads");
    ScheduleDiff {
        diverging_stages: (0..a.len())
            .filter(|&i| a.configs[i] != b.configs[i])
            .collect(),
        cost_delta: a.total_cost().raw() as i128 - b.total_cost().raw() as i128,
        changes: (a.changes, b.changes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::enumerate_configs;
    use crate::problem::SyntheticOracle;
    use crate::{kaware, seqgraph};

    fn c(io: u64) -> Cost {
        Cost::from_ios(io)
    }

    fn oracle() -> SyntheticOracle {
        SyntheticOracle::from_fn(
            6,
            2,
            |stage, cfg| {
                let want = if stage < 3 { 0 } else { 1 };
                if cfg.contains(want) {
                    c(10)
                } else {
                    c(100)
                }
            },
            vec![c(20), c(20)],
            c(1),
            vec![1, 1],
        )
    }

    #[test]
    fn per_stage_sums_to_schedule_totals() {
        let o = oracle();
        let p = Problem::paper_experiment();
        let cands = enumerate_configs(&o, None, Some(1)).unwrap();
        let s = kaware::solve(&o, &p, &cands, 1).unwrap();
        let stages = per_stage(&o, &p, &s);
        assert_eq!(stages.len(), 6);
        let exec: Cost = stages.iter().map(|x| x.exec).sum();
        assert_eq!(exec, s.exec_cost);
        let trans: Cost = stages.iter().map(|x| x.trans_in).sum();
        // Schedule totals additionally include the closing transition.
        assert!(trans <= s.trans_cost);
        let closing = o.trans(s.configs.last().unwrap(), &Config::EMPTY);
        assert_eq!(trans + closing, s.trans_cost);
    }

    #[test]
    fn render_contains_segments_and_totals() {
        let o = oracle();
        let p = Problem::paper_experiment();
        let cands = enumerate_configs(&o, None, Some(1)).unwrap();
        let s = kaware::solve(&o, &p, &cands, 1).unwrap();
        let text = render(&o, &p, &s, &|cfg| format!("cfg{cfg}"));
        assert!(text.contains("0..3"), "{text}");
        assert!(text.contains("3..6"), "{text}");
        assert!(text.contains("total"), "{text}");
        assert!(text.contains("1 change(s)"), "{text}");
    }

    #[test]
    fn diff_reports_divergence() {
        let o = oracle();
        let p = Problem::paper_experiment();
        let cands = enumerate_configs(&o, None, Some(1)).unwrap();
        let unc = seqgraph::solve(&o, &p, &cands).unwrap();
        let frozen = kaware::solve(&o, &p, &cands, 0).unwrap();
        let d = diff(&frozen, &unc);
        assert!(!d.diverging_stages.is_empty());
        assert!(d.cost_delta >= 0, "constrained cannot beat unconstrained");
        assert_eq!(d.changes.0, 0);
        let same = diff(&unc, &unc);
        assert!(same.diverging_stages.is_empty());
        assert_eq!(same.cost_delta, 0);
    }

    #[test]
    #[should_panic(expected = "different workloads")]
    fn diff_rejects_mismatched_lengths() {
        let o = oracle();
        let p = Problem::default();
        let a = Schedule::evaluate(&o, &p, vec![Config::EMPTY; 6]);
        let b = Schedule::evaluate(&o, &p, vec![Config::EMPTY; 5]);
        let _ = diff(&a, &b);
    }
}

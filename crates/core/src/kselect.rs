//! Choosing the change budget `k` — the paper's first open question
//! (§8: *"One question is how to choose an appropriate change
//! constraint (k)"*).
//!
//! Two tools:
//!
//! * [`cost_curve`] — the constrained-optimal cost for every `k` in
//!   `0..=k_max`, computed in parallel (each `k` is an independent
//!   k-aware solve). The curve is non-increasing and flattens once `k`
//!   reaches the unconstrained change count.
//! * [`suggest_k`] — the *knee* of that curve: the smallest `k` whose
//!   cost is within `tolerance` of the unconstrained optimum. Costs
//!   stop improving once the budget covers the workload's major trends,
//!   so the knee sits at "number of major shifts" — exactly the
//!   domain-knowledge rule of thumb §2 describes (*"choose a value of k
//!   equal to or a bit larger than the number of anticipated
//!   fluctuations"*), derived from data instead of domain knowledge.

use crate::config::Config;
use crate::kaware;
use crate::oracle::SharedOracle;
use crate::problem::Problem;
use crate::schedule::Schedule;
use cdpd_types::{Cost, Error, Result};

/// One point of the cost-vs-k curve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KCurvePoint {
    /// The change budget.
    pub k: usize,
    /// Constrained-optimal total cost at this budget.
    pub cost: Cost,
    /// Changes the optimal schedule actually used (≤ k).
    pub changes: usize,
}

/// Constrained-optimal cost for each `k ∈ 0..=k_max`, solved in
/// parallel across budgets.
///
/// Like every parallel sweep in this module, the oracle bound is the
/// unified [`SharedOracle`] (`CostOracle + Sync`) — any oracle built
/// through the `crate::oracle` layer qualifies.
pub fn cost_curve<O: SharedOracle>(
    oracle: &O,
    problem: &Problem,
    candidates: &[Config],
    k_max: usize,
) -> Result<Vec<KCurvePoint>> {
    cost_curve_with_prefix(oracle, problem, candidates, k_max, &[])
}

/// [`cost_curve`] with the first `prefix.len()` stages pinned to an
/// already-committed prefix — the rolling-budget sweep an online
/// advisor runs when its horizon grows (each budget is a warm
/// [`kaware::solve_with_prefix`], so a shared memoizing oracle serves
/// most probes from cache).
///
/// Budgets smaller than the changes the prefix already spent are
/// infeasible by construction and *omitted* from the returned curve
/// (the curve then starts at the spent-change count); any other error
/// is propagated. An empty prefix reproduces [`cost_curve`] exactly.
pub fn cost_curve_with_prefix<O: SharedOracle>(
    oracle: &O,
    problem: &Problem,
    candidates: &[Config],
    k_max: usize,
    prefix: &[Config],
) -> Result<Vec<KCurvePoint>> {
    let mut results: Vec<Option<Result<Option<KCurvePoint>>>> = Vec::new();
    results.resize_with(k_max + 1, || None);
    // std::thread::scope re-raises worker panics after joining; catch
    // them so a poisoned solve surfaces as an error, not an abort.
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|scope| {
            for (k, slot) in results.iter_mut().enumerate() {
                scope.spawn(move || {
                    let _span = cdpd_obs::span!("kselect.solve_k", k = k);
                    let started = std::time::Instant::now();
                    let solved = kaware::solve_with_prefix(oracle, problem, candidates, k, prefix);
                    *slot = Some(match solved {
                        Ok(s) => Ok(Some(KCurvePoint {
                            k,
                            cost: s.total_cost(),
                            changes: s.changes,
                        })),
                        // The committed prefix outspends this budget:
                        // skip the point rather than poisoning the sweep.
                        Err(Error::Infeasible(_)) if !prefix.is_empty() => Ok(None),
                        Err(e) => Err(e),
                    });
                    cdpd_obs::histogram!("kselect.k_solve_nanos")
                        .record(started.elapsed().as_nanos() as u64);
                });
            }
        });
    }))
    .map_err(|_| Error::InvalidArgument("k-sweep worker panicked".into()))?;
    let mut curve = Vec::with_capacity(k_max + 1);
    for r in results {
        if let Some(point) = r.expect("every slot filled by its worker")? {
            curve.push(point);
        }
    }
    Ok(curve)
}

/// The knee of a cost curve: the smallest `k` whose cost is within
/// `tolerance` (fractional, e.g. `0.02` = 2%) of the curve's final
/// (most permissive) cost. Returns `None` for an empty curve.
///
/// Sensitive to how far the curve was computed (the "floor" is the last
/// point); prefer [`suggest_k_elbow`] when the curve has a long slowly
/// improving tail, which real workloads with minor shifts do.
pub fn suggest_k(curve: &[KCurvePoint], tolerance: f64) -> Option<usize> {
    let last = curve.last()?;
    let floor = last.cost.raw() as f64;
    curve
        .iter()
        .find(|p| (p.cost.raw() as f64) <= floor * (1.0 + tolerance))
        .map(|p| p.k)
}

/// Geometric knee detection (kneedle-style): normalize both axes to
/// `[0, 1]` and return the `k` maximizing the vertical distance *below*
/// the chord from the first to the last curve point. Robust against
/// the long flat tail that minor-shift tracking produces: the big drop
/// at "k = number of major shifts" dominates the chord distance.
///
/// Returns `k = 0` for flat curves (no budget buys anything) and `None`
/// for curves with fewer than two points.
pub fn suggest_k_elbow(curve: &[KCurvePoint]) -> Option<usize> {
    if curve.len() < 2 {
        return curve.first().map(|p| p.k);
    }
    let first = curve.first().expect("len checked");
    let last = curve.last().expect("len checked");
    let cost_span = first.cost.raw() as f64 - last.cost.raw() as f64;
    if cost_span <= 0.0 {
        return Some(first.k); // flat (or rising, impossible) curve
    }
    let k_span = (last.k - first.k) as f64;
    let mut best: Option<(f64, usize)> = None;
    for p in curve {
        let x = (p.k - first.k) as f64 / k_span;
        let y = (first.cost.raw() as f64 - p.cost.raw() as f64) / cost_span;
        let dist = y - x; // height above the (normalized) chord
        if best.is_none_or(|(d, _)| dist > d + 1e-12) {
            best = Some((dist, p.k));
        }
    }
    best.map(|(_, k)| k)
}

/// One point of a cross-validated k sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RobustPoint {
    /// The change budget.
    pub k: usize,
    /// Cost of the k-optimal schedule on the *training* workload.
    pub train_cost: Cost,
    /// Mean cost of that same schedule on the held-out workloads.
    pub mean_test_cost: Cost,
}

/// Cross-validated choice of `k` — §6.3 operationalized.
///
/// The paper evaluates W1-trained designs on W2 and W3 and finds the
/// constrained design transfers better. This function turns that
/// experiment into a selection rule: for each `k`, solve on `train`,
/// then *re-cost the same schedule* on each held-out oracle (same
/// candidate-structure indexing; the held-out oracles typically wrap
/// traces captured on other days). Training cost decreases
/// monotonically with `k` — held-out cost does not, and its minimum is
/// the `k` that generalizes.
///
/// Budgets are solved in parallel, like [`cost_curve`] — the two
/// sweeps share the [`SharedOracle`] bound (holdouts included, since
/// every worker re-costs on them).
pub fn robust_curve<O: SharedOracle>(
    train: &O,
    holdouts: &[&dyn SharedOracle],
    problem: &Problem,
    candidates: &[Config],
    k_max: usize,
) -> Result<Vec<RobustPoint>> {
    if holdouts.is_empty() {
        return Err(Error::InvalidArgument(
            "robust_curve needs held-out workloads".into(),
        ));
    }
    for oracle in holdouts {
        if oracle.n_stages() != train.n_stages() {
            return Err(Error::InvalidArgument(
                "held-out workload has a different stage count".into(),
            ));
        }
    }
    let mut results: Vec<Option<Result<RobustPoint>>> = Vec::new();
    results.resize_with(k_max + 1, || None);
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|scope| {
            for (k, slot) in results.iter_mut().enumerate() {
                scope.spawn(move || {
                    let _span = cdpd_obs::span!("kselect.robust_k", k = k);
                    let started = std::time::Instant::now();
                    *slot = Some(
                        kaware::solve(train, problem, candidates, k).map(|schedule| {
                            let mut total: u128 = 0;
                            for oracle in holdouts {
                                let s =
                                    Schedule::evaluate(*oracle, problem, schedule.configs.clone());
                                total += s.total_cost().raw() as u128;
                            }
                            let mean = (total / holdouts.len() as u128) as u64;
                            RobustPoint {
                                k,
                                train_cost: schedule.total_cost(),
                                mean_test_cost: Cost::from_raw(mean),
                            }
                        }),
                    );
                    cdpd_obs::histogram!("kselect.k_solve_nanos")
                        .record(started.elapsed().as_nanos() as u64);
                });
            }
        });
    }))
    .map_err(|_| Error::InvalidArgument("robust k-sweep worker panicked".into()))?;
    results
        .into_iter()
        .map(|r| r.expect("every slot filled by its worker"))
        .collect()
}

/// The budget minimizing held-out cost (smallest such `k` on ties).
pub fn suggest_robust_k(curve: &[RobustPoint]) -> Option<usize> {
    curve
        .iter()
        .min_by(|a, b| a.mean_test_cost.cmp(&b.mean_test_cost).then(a.k.cmp(&b.k)))
        .map(|p| p.k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::enumerate_configs;
    use crate::problem::SyntheticOracle;

    fn c(io: u64) -> Cost {
        Cost::from_ios(io)
    }

    /// Three phases with minor fluctuations: the knee should be at
    /// k = 2 (the number of major shifts).
    fn w1_like() -> SyntheticOracle {
        SyntheticOracle::from_fn(
            30,
            3,
            |stage, cfg| {
                let phase = stage / 10;
                let minor = stage % 2 == 1;
                // Preferred structure per phase: 0, 1, 0 (like A/C/A).
                let preferred = if phase == 1 { 1 } else { 0 };
                // Minor fluctuation mildly prefers structure 2.
                if cfg.contains(preferred) {
                    if minor {
                        c(60)
                    } else {
                        c(40)
                    }
                } else if minor && cfg.contains(2) {
                    c(50)
                } else {
                    c(400)
                }
            },
            vec![c(100); 3],
            c(1),
            vec![1; 3],
        )
    }

    #[test]
    fn curve_is_monotone_nonincreasing() {
        let o = w1_like();
        let p = Problem::paper_experiment();
        let cands = enumerate_configs(&o, None, Some(1)).unwrap();
        let curve = cost_curve(&o, &p, &cands, 8).unwrap();
        assert_eq!(curve.len(), 9);
        for w in curve.windows(2) {
            assert!(w[1].cost <= w[0].cost, "{curve:?}");
        }
        for p in &curve {
            assert!(p.changes <= p.k);
        }
    }

    #[test]
    fn knee_lands_on_major_shift_count() {
        let o = w1_like();
        let p = Problem::paper_experiment();
        let cands = enumerate_configs(&o, None, Some(1)).unwrap();
        let curve = cost_curve(&o, &p, &cands, 10).unwrap();
        let k = suggest_k(&curve, 0.02).unwrap();
        assert_eq!(k, 2, "two major shifts ⇒ knee at 2: {curve:?}");
    }

    #[test]
    fn suggest_k_edge_cases() {
        assert_eq!(suggest_k(&[], 0.1), None);
        let flat = [
            KCurvePoint {
                k: 0,
                cost: c(100),
                changes: 0,
            },
            KCurvePoint {
                k: 1,
                cost: c(100),
                changes: 0,
            },
        ];
        assert_eq!(suggest_k(&flat, 0.0), Some(0), "flat curve ⇒ k = 0");
        let steep = [
            KCurvePoint {
                k: 0,
                cost: c(1000),
                changes: 0,
            },
            KCurvePoint {
                k: 1,
                cost: c(100),
                changes: 1,
            },
        ];
        assert_eq!(suggest_k(&steep, 0.5), Some(1));
    }

    #[test]
    fn elbow_detection() {
        // Big drop at k = 2, slow tail after.
        let mk = |k: usize, cost: u64| KCurvePoint {
            k,
            cost: c(cost),
            changes: k,
        };
        let curve = [
            mk(0, 1000),
            mk(1, 990),
            mk(2, 400),
            mk(3, 395),
            mk(4, 390),
            mk(5, 385),
        ];
        assert_eq!(suggest_k_elbow(&curve), Some(2));
        // Flat curve.
        let flat = [mk(0, 100), mk(1, 100), mk(2, 100)];
        assert_eq!(suggest_k_elbow(&flat), Some(0));
        // Degenerate curves.
        assert_eq!(suggest_k_elbow(&[]), None);
        assert_eq!(suggest_k_elbow(&[mk(3, 5)]), Some(3));
    }

    /// Oracle pair for cross-validation: minor fluctuations strongly
    /// reward structure 2, but on `minor_parity`-indexed stages only —
    /// the train/holdout pair uses opposite parities (the W1/W3
    /// construction), so chasing train's fluctuations backfires on the
    /// holdout.
    fn fluctuating(minor_parity: usize) -> SyntheticOracle {
        SyntheticOracle::from_fn(
            30,
            3,
            move |stage, cfg| {
                let phase = stage / 10;
                let preferred = if phase == 1 { 1 } else { 0 };
                if stage % 2 == minor_parity {
                    if cfg.contains(2) {
                        c(30) // tracking the fluctuation pays on train...
                    } else if cfg.contains(preferred) {
                        c(200)
                    } else {
                        c(400)
                    }
                } else if cfg.contains(preferred) {
                    c(40)
                } else {
                    c(400)
                }
            },
            vec![c(40); 3],
            c(1),
            vec![1; 3],
        )
    }

    #[test]
    fn robust_k_prefers_generalizing_budget() {
        let train = fluctuating(1);
        let holdout = fluctuating(0);
        let p = Problem::paper_experiment();
        let cands = enumerate_configs(&train, None, Some(1)).unwrap();
        let curve = robust_curve(&train, &[&holdout as &dyn SharedOracle], &p, &cands, 10).unwrap();
        // Training cost is non-increasing in k ...
        for w in curve.windows(2) {
            assert!(w[1].train_cost <= w[0].train_cost);
        }
        // ... but the held-out cost bottoms out at the major-shift
        // count: chasing w1's minor fluctuations hurts on w3.
        let k = suggest_robust_k(&curve).unwrap();
        assert_eq!(k, 2, "{curve:?}");
        let at2 = curve.iter().find(|p| p.k == 2).unwrap();
        let at10 = curve.iter().find(|p| p.k == 10).unwrap();
        assert!(
            at2.mean_test_cost < at10.mean_test_cost,
            "overfitting must cost on the holdout: {curve:?}"
        );
    }

    #[test]
    fn robust_curve_validates_inputs() {
        let train = w1_like();
        let p = Problem::paper_experiment();
        let cands = enumerate_configs(&train, None, Some(1)).unwrap();
        assert!(robust_curve(&train, &[], &p, &cands, 3).is_err());
        let short = SyntheticOracle::from_fn(5, 3, |_, _| c(1), vec![c(1); 3], c(1), vec![1; 3]);
        assert!(
            robust_curve(&train, &[&short as &dyn SharedOracle], &p, &cands, 3).is_err(),
            "stage-count mismatch must be rejected"
        );
        assert_eq!(suggest_robust_k(&[]), None);
    }

    #[test]
    fn prefix_curve_starts_at_spent_changes_and_matches_cold_optima() {
        let o = w1_like();
        let p = Problem::paper_experiment();
        let cands = enumerate_configs(&o, None, Some(1)).unwrap();
        // Commit the cold k=4 optimum's first 15 stages, then sweep.
        let cold = kaware::solve(&o, &p, &cands, 4).unwrap();
        let prefix = &cold.configs[..15];
        let spent = {
            let mut n = 0;
            let mut prev = &p.initial;
            for (stage, cfg) in prefix.iter().enumerate() {
                // Mirror Schedule::evaluate: the stage-0 build is free
                // unless count_initial_change (false here).
                if cfg != prev && stage > 0 {
                    n += 1;
                }
                prev = cfg;
            }
            n
        };
        let curve = cost_curve_with_prefix(&o, &p, &cands, 8, prefix).unwrap();
        // Budgets below the prefix's spending are omitted.
        assert_eq!(curve.first().unwrap().k, spent);
        assert_eq!(curve.last().unwrap().k, 8);
        for point in &curve {
            let warm = kaware::solve_with_prefix(&o, &p, &cands, point.k, prefix).unwrap();
            assert_eq!(warm.total_cost(), point.cost, "k={}", point.k);
        }
        // At the committed solve's own budget, the warm curve touches
        // the cold optimum (the prefix came from that very schedule).
        let at4 = curve.iter().find(|pt| pt.k == 4).unwrap();
        assert_eq!(at4.cost, cold.total_cost());
        // Empty prefix reproduces the plain sweep.
        let plain = cost_curve(&o, &p, &cands, 5).unwrap();
        let empty = cost_curve_with_prefix(&o, &p, &cands, 5, &[]).unwrap();
        assert_eq!(plain, empty);
    }

    #[test]
    fn parallel_matches_serial() {
        let o = w1_like();
        let p = Problem::paper_experiment();
        let cands = enumerate_configs(&o, None, Some(1)).unwrap();
        let curve = cost_curve(&o, &p, &cands, 5).unwrap();
        for point in &curve {
            let serial = kaware::solve(&o, &p, &cands, point.k).unwrap();
            assert_eq!(serial.total_cost(), point.cost);
        }
    }
}

use cdpd_types::{Error, Result};
use std::fmt;

/// A physical design configuration: a set of candidate structures,
/// represented as a bitmask over the problem's candidate list.
///
/// The paper's design space is the power set of `m` candidate
/// structures; a bitmask caps `m` at 64, far beyond the point where the
/// exponential algorithms stop being runnable anyway (§4: *"unless m is
/// very small, the shortest-path-based algorithms … are probably
/// impractical"*). Structure indices refer to whatever candidate list
/// the [`crate::CostOracle`] was built over.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Config(u64);

impl Config {
    /// The empty configuration (no auxiliary structures).
    pub const EMPTY: Config = Config(0);

    /// A configuration containing exactly `structure`.
    pub fn single(structure: usize) -> Config {
        assert!(structure < 64, "structure index out of range");
        Config(1 << structure)
    }

    /// From a raw bitmask.
    pub const fn from_bits(bits: u64) -> Config {
        Config(bits)
    }

    /// The raw bitmask.
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Whether `structure` is in this configuration.
    ///
    /// Panics on `structure >= 64`, like every other index-taking
    /// method here — an out-of-range index is a caller bug (the
    /// candidate list can never exceed the bitmask width), and
    /// silently answering `false` would let it masquerade as an
    /// absent structure.
    pub const fn contains(self, structure: usize) -> bool {
        assert!(structure < 64, "structure index out of range");
        (self.0 >> structure) & 1 == 1
    }

    /// This configuration plus `structure`.
    pub fn with(self, structure: usize) -> Config {
        assert!(structure < 64, "structure index out of range");
        Config(self.0 | (1 << structure))
    }

    /// This configuration minus `structure`.
    pub fn without(self, structure: usize) -> Config {
        assert!(structure < 64, "structure index out of range");
        Config(self.0 & !(1 << structure))
    }

    /// Set union.
    pub const fn union(self, other: Config) -> Config {
        Config(self.0 | other.0)
    }

    /// Set intersection (the projection primitive of the oracle layer:
    /// `exec(i, c)` only depends on `c.intersect(mask[i])`).
    pub const fn intersect(self, other: Config) -> Config {
        Config(self.0 & other.0)
    }

    /// Structures in `self` but not `other` (what must be built to go
    /// from `other` to `self`).
    pub const fn minus(self, other: Config) -> Config {
        Config(self.0 & !other.0)
    }

    /// Number of structures.
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True if no structures are present.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True if every structure of `self` is in `other`.
    pub const fn is_subset_of(self, other: Config) -> bool {
        self.0 & !other.0 == 0
    }

    /// Iterate the structure indices present, ascending.
    pub fn structures(self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(i)
            }
        })
    }
}

impl fmt::Debug for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "{{}}");
        }
        write!(f, "{{")?;
        for (n, s) in self.structures().enumerate() {
            if n > 0 {
                write!(f, ",")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "}}")
    }
}

/// Enumerate every candidate configuration: all subsets of the oracle's
/// structures that satisfy the space bound and (optionally) a cap on
/// structures per configuration.
///
/// The paper's experiments restrict the design space to "at most one
/// index" — pass `max_structures = Some(1)` for that regime. Full
/// enumeration is `O(2^m)` and refused for `m > 20` (at that point use
/// [`crate::greedy`], which exists precisely because of this wall).
pub fn enumerate_configs(
    oracle: &dyn crate::CostOracle,
    space_bound: Option<u64>,
    max_structures: Option<usize>,
) -> Result<Vec<Config>> {
    let m = oracle.n_structures();
    if m > 20 {
        return Err(Error::InvalidArgument(format!(
            "refusing full 2^{m} configuration enumeration; use greedy candidate selection"
        )));
    }
    let mut out = Vec::new();
    for bits in 0..(1u64 << m) {
        let config = Config::from_bits(bits);
        if let Some(cap) = max_structures {
            if config.len() > cap {
                continue;
            }
        }
        if let Some(b) = space_bound {
            if oracle.size(config) > b {
                continue;
            }
        }
        out.push(config);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyntheticOracle;
    use cdpd_types::Cost;

    #[test]
    fn set_operations() {
        let c = Config::EMPTY.with(0).with(3);
        assert!(c.contains(0) && c.contains(3) && !c.contains(1));
        assert_eq!(c.len(), 2);
        assert_eq!(c.without(0), Config::single(3));
        assert_eq!(c.union(Config::single(1)).len(), 3);
        assert_eq!(c.intersect(Config::single(3)), Config::single(3));
        assert_eq!(c.intersect(Config::single(1)), Config::EMPTY);
        assert_eq!(c.minus(Config::single(3)), Config::single(0));
        assert!(Config::single(3).is_subset_of(c));
        assert!(!c.is_subset_of(Config::single(3)));
        assert_eq!(c.structures().collect::<Vec<_>>(), vec![0, 3]);
    }

    #[test]
    fn display() {
        assert_eq!(Config::EMPTY.to_string(), "{}");
        assert_eq!(Config::EMPTY.with(1).with(4).to_string(), "{1,4}");
    }

    fn oracle(m: usize, sizes: Vec<u64>) -> SyntheticOracle {
        SyntheticOracle::from_fn(
            1,
            m,
            |_, _| Cost::from_ios(1),
            vec![Cost::from_ios(10); m],
            Cost::from_ios(1),
            sizes,
        )
    }

    #[test]
    fn enumerate_all_subsets() {
        let o = oracle(3, vec![1, 1, 1]);
        let configs = enumerate_configs(&o, None, None).unwrap();
        assert_eq!(configs.len(), 8);
    }

    #[test]
    fn enumerate_with_structure_cap() {
        // The paper's "at most one index" regime: m singletons + empty.
        let o = oracle(6, vec![1; 6]);
        let configs = enumerate_configs(&o, None, Some(1)).unwrap();
        assert_eq!(configs.len(), 7);
    }

    #[test]
    fn enumerate_with_space_bound() {
        let o = oracle(3, vec![5, 7, 100]);
        let configs = enumerate_configs(&o, Some(12), None).unwrap();
        // {}, {0}, {1}, {0,1} fit; anything with structure 2 does not.
        assert_eq!(configs.len(), 4);
        assert!(configs.iter().all(|c| !c.contains(2)));
    }

    #[test]
    fn enumerate_refuses_huge_m() {
        struct Wide;
        impl crate::CostOracle for Wide {
            fn n_stages(&self) -> usize {
                1
            }
            fn n_structures(&self) -> usize {
                21
            }
            fn exec(&self, _: usize, _: Config) -> Cost {
                Cost::ZERO
            }
            fn trans(&self, _: Config, _: Config) -> Cost {
                Cost::ZERO
            }
            fn size(&self, _: Config) -> u64 {
                0
            }
        }
        assert!(enumerate_configs(&Wide, None, None).is_err());
    }
}

use cdpd_types::{Error, Result};
use std::fmt;
use std::sync::Arc;

/// Largest accepted structure index. Indices at or beyond this panic in
/// every index-taking method — a width-agnostic set still has to treat
/// a wild index (usually a sign mixup or an uninitialized value) as a
/// caller bug rather than allocating gigabytes of mask words for it.
pub const MAX_STRUCTURE_INDEX: usize = 1 << 16;

/// A physical design configuration: a set of candidate structures,
/// represented as a bitmask over the problem's candidate list.
///
/// The paper's design space is the power set of `m` candidate
/// structures. Configurations up to 64 structures are stored inline in
/// one machine word (the overwhelmingly common case, and the paper's
/// own regime — §4: *"unless m is very small, the shortest-path-based
/// algorithms … are probably impractical"*); wider sets spill to a
/// shared heap allocation, so the representation itself no longer caps
/// the vocabulary. Structure indices refer to whatever candidate list
/// the [`crate::CostOracle`] was built over.
///
/// The type is `Clone` but deliberately not `Copy`: cloning is a word
/// copy inline and an `Arc` bump when spilled, so pass `&Config` and
/// clone only to store.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Config(Repr);

/// Normalized storage: `Spilled` only ever holds ≥ 2 words with a
/// nonzero last word. Equal sets therefore always share a variant, and
/// the derived `Eq`/`Hash` are sound.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Repr {
    Inline(u64),
    Spilled(Arc<[u64]>),
}

impl Default for Repr {
    fn default() -> Repr {
        Repr::Inline(0)
    }
}

#[inline]
fn check_index(structure: usize) {
    assert!(
        structure < MAX_STRUCTURE_INDEX,
        "structure index out of range"
    );
}

impl Config {
    /// The empty configuration (no auxiliary structures).
    pub const EMPTY: Config = Config(Repr::Inline(0));

    /// A configuration containing exactly `structure`.
    pub fn single(structure: usize) -> Config {
        check_index(structure);
        if structure < 64 {
            Config(Repr::Inline(1u64 << structure))
        } else {
            let mut words = vec![0u64; structure / 64 + 1];
            words[structure / 64] = 1u64 << (structure % 64);
            Config::from_word_vec(words)
        }
    }

    /// The configuration containing structures `0..n` — the full mask
    /// over an `n`-structure vocabulary.
    pub fn full(n: usize) -> Config {
        assert!(n <= MAX_STRUCTURE_INDEX, "structure count out of range");
        if n == 0 {
            return Config::EMPTY;
        }
        let whole = n / 64;
        let rest = n % 64;
        let mut words = vec![u64::MAX; whole];
        if rest > 0 {
            words.push((1u64 << rest) - 1);
        }
        Config::from_word_vec(words)
    }

    /// From a raw 64-bit mask (structures `0..64` only). Wider
    /// configurations must be built through the set operations or
    /// [`Config::from_words`] — new call sites outside this module and
    /// tests are rejected by CI, because raw-mask arithmetic is exactly
    /// the width assumption this type exists to remove.
    pub const fn from_bits(bits: u64) -> Config {
        Config(Repr::Inline(bits))
    }

    /// The raw bitmask of an inline (≤ 64-structure) configuration.
    ///
    /// Panics if the configuration has spilled past 64 structures; use
    /// [`Config::words`] for a width-agnostic view.
    pub fn bits(&self) -> u64 {
        match &self.0 {
            Repr::Inline(bits) => *bits,
            Repr::Spilled(_) => panic!("configuration is wider than 64 bits"),
        }
    }

    /// The little-endian 64-bit words of the mask (low structures
    /// first). Always at least one word; the last word is nonzero
    /// unless the whole configuration is empty.
    pub fn words(&self) -> &[u64] {
        match &self.0 {
            Repr::Inline(bits) => std::slice::from_ref(bits),
            Repr::Spilled(words) => words,
        }
    }

    /// Rebuild from [`Config::words`] output (the persistence codec).
    /// Trailing zero words are tolerated and normalized away.
    pub fn from_words(words: &[u64]) -> Config {
        Config::from_word_vec(words.to_vec())
    }

    /// Normalizing constructor: strips trailing zero words and picks
    /// the inline representation whenever one word suffices.
    fn from_word_vec(mut words: Vec<u64>) -> Config {
        while words.len() > 1 && *words.last().expect("non-empty") == 0 {
            words.pop();
        }
        if words.len() <= 1 {
            Config(Repr::Inline(words.first().copied().unwrap_or(0)))
        } else {
            Config(Repr::Spilled(words.into()))
        }
    }

    /// Whether `structure` is in this configuration.
    ///
    /// Panics on `structure >= MAX_STRUCTURE_INDEX`, like every other
    /// index-taking method here — a wild index is a caller bug, and
    /// silently answering `false` would let it masquerade as an absent
    /// structure. Indices beyond the stored width are simply absent.
    pub fn contains(&self, structure: usize) -> bool {
        check_index(structure);
        let words = self.words();
        let w = structure / 64;
        w < words.len() && (words[w] >> (structure % 64)) & 1 == 1
    }

    /// This configuration plus `structure`.
    pub fn with(&self, structure: usize) -> Config {
        check_index(structure);
        match &self.0 {
            Repr::Inline(bits) if structure < 64 => {
                Config(Repr::Inline(bits | (1u64 << structure)))
            }
            _ => {
                let mut words = self.words().to_vec();
                if words.len() <= structure / 64 {
                    words.resize(structure / 64 + 1, 0);
                }
                words[structure / 64] |= 1u64 << (structure % 64);
                Config::from_word_vec(words)
            }
        }
    }

    /// This configuration minus `structure`.
    pub fn without(&self, structure: usize) -> Config {
        check_index(structure);
        match &self.0 {
            Repr::Inline(bits) => {
                let mask = if structure < 64 {
                    !(1u64 << structure)
                } else {
                    u64::MAX
                };
                Config(Repr::Inline(bits & mask))
            }
            Repr::Spilled(_) => {
                let mut words = self.words().to_vec();
                if structure / 64 < words.len() {
                    words[structure / 64] &= !(1u64 << (structure % 64));
                }
                Config::from_word_vec(words)
            }
        }
    }

    /// Set union.
    pub fn union(&self, other: &Config) -> Config {
        match (&self.0, &other.0) {
            (Repr::Inline(a), Repr::Inline(b)) => Config(Repr::Inline(a | b)),
            _ => {
                let (a, b) = (self.words(), other.words());
                let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
                let mut words = long.to_vec();
                for (w, s) in words.iter_mut().zip(short) {
                    *w |= s;
                }
                Config::from_word_vec(words)
            }
        }
    }

    /// Set intersection (the projection primitive of the oracle layer:
    /// `exec(i, c)` only depends on `c.intersect(&mask[i])`).
    pub fn intersect(&self, other: &Config) -> Config {
        match (&self.0, &other.0) {
            // Either side inline ⇒ the result fits one word.
            (Repr::Inline(a), _) => Config(Repr::Inline(a & other.words()[0])),
            (_, Repr::Inline(b)) => Config(Repr::Inline(self.words()[0] & b)),
            (Repr::Spilled(a), Repr::Spilled(b)) => {
                let words = a.iter().zip(b.iter()).map(|(x, y)| x & y).collect();
                Config::from_word_vec(words)
            }
        }
    }

    /// Structures in `self` but not `other` (what must be built to go
    /// from `other` to `self`).
    pub fn minus(&self, other: &Config) -> Config {
        match (&self.0, &other.0) {
            (Repr::Inline(a), _) => Config(Repr::Inline(a & !other.words()[0])),
            _ => {
                let b = other.words();
                let words = self
                    .words()
                    .iter()
                    .enumerate()
                    .map(|(i, w)| w & !b.get(i).copied().unwrap_or(0))
                    .collect();
                Config::from_word_vec(words)
            }
        }
    }

    /// Number of structures.
    pub fn len(&self) -> usize {
        self.words().iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no structures are present.
    pub fn is_empty(&self) -> bool {
        // Normalization: a spilled repr always has a nonzero last word.
        matches!(self.0, Repr::Inline(0))
    }

    /// True if every structure of `self` is in `other`.
    pub fn is_subset_of(&self, other: &Config) -> bool {
        let b = other.words();
        self.words()
            .iter()
            .enumerate()
            .all(|(i, w)| w & !b.get(i).copied().unwrap_or(0) == 0)
    }

    /// Number of structures in `self` with index strictly below
    /// `structure` — the local coordinate of `structure` when this
    /// configuration is used as a relevance mask (see
    /// [`crate::decompose`]).
    pub fn rank(&self, structure: usize) -> usize {
        check_index(structure);
        let words = self.words();
        let w = structure / 64;
        let mut r = 0;
        for word in &words[..w.min(words.len())] {
            r += word.count_ones() as usize;
        }
        if w < words.len() {
            let below = (1u64 << (structure % 64)) - 1;
            r += (words[w] & below).count_ones() as usize;
        }
        r
    }

    /// Iterate the structure indices present, ascending.
    pub fn structures(&self) -> impl Iterator<Item = usize> + '_ {
        self.words().iter().enumerate().flat_map(|(w, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let i = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(w * 64 + i)
                }
            })
        })
    }

    /// A cheap word-fold for shard selection in concurrent memo tables.
    /// Not a general hash — equal configs agree, and inline configs
    /// fold to their raw mask.
    pub fn shard_key(&self) -> u64 {
        self.words()
            .iter()
            .fold(0u64, |acc, w| acc.rotate_left(7) ^ w)
    }

    /// Software PEXT: gather the bits of `self` selected by `mask` into
    /// a compact code — the i-th set structure of `mask` becomes bit i.
    /// This is the dense-table indexing primitive, so the mask must
    /// name at most 64 structures (a table wider than that could not be
    /// materialized anyway). Inverse of [`Config::pdep_code`]. Bits of
    /// `self` outside `mask` are ignored.
    pub fn pext_code(&self, mask: &Config) -> u64 {
        match (&self.0, &mask.0) {
            (Repr::Inline(bits), Repr::Inline(m)) => compress_word(*bits, *m),
            _ => {
                assert!(mask.len() <= 64, "PEXT mask wider than a 64-bit code");
                let mut out = 0u64;
                for (j, pos) in mask.structures().enumerate() {
                    if self.contains(pos) {
                        out |= 1u64 << j;
                    }
                }
                out
            }
        }
    }

    /// Software PDEP: scatter the low bits of `code` to the set
    /// structures of `mask` — bit i of `code` lands on the i-th set
    /// structure. Inverse of [`Config::pext_code`] for codes within
    /// `mask`'s width.
    pub fn pdep_code(code: u64, mask: &Config) -> Config {
        match &mask.0 {
            Repr::Inline(m) => Config(Repr::Inline(expand_word(code, *m))),
            Repr::Spilled(_) => {
                assert!(mask.len() <= 64, "PDEP mask wider than a 64-bit code");
                let mut words = vec![0u64; mask.words().len()];
                for (j, pos) in mask.structures().enumerate() {
                    if (code >> j) & 1 == 1 {
                        words[pos / 64] |= 1u64 << (pos % 64);
                    }
                }
                Config::from_word_vec(words)
            }
        }
    }
}

/// Word-level PEXT with a fast path for contiguous low masks.
fn compress_word(bits: u64, mask: u64) -> u64 {
    let bits = bits & mask;
    if mask & mask.wrapping_add(1) == 0 {
        return bits; // mask is 0..w contiguous from bit 0
    }
    let mut out = 0u64;
    let mut m = mask;
    let mut j = 0;
    while m != 0 {
        let i = m.trailing_zeros();
        out |= ((bits >> i) & 1) << j;
        j += 1;
        m &= m - 1;
    }
    out
}

/// Word-level PDEP with a fast path for contiguous low masks.
fn expand_word(code: u64, mask: u64) -> u64 {
    if mask & mask.wrapping_add(1) == 0 {
        return code & mask;
    }
    let mut out = 0u64;
    let mut m = mask;
    let mut j = 0;
    while m != 0 {
        let i = m.trailing_zeros();
        out |= ((code >> j) & 1) << i;
        j += 1;
        m &= m - 1;
    }
    out
}

impl PartialOrd for Config {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Config {
    /// Big-integer order over the mask value. Restricted to inline
    /// configurations this is exactly the raw-`u64` order the previous
    /// representation derived, so sorted candidate lists stay stable
    /// across the representation change.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        let (a, b) = (self.words(), other.words());
        // Normalization (nonzero last word) makes more words ⇒ greater.
        a.len()
            .cmp(&b.len())
            .then_with(|| a.iter().rev().cmp(b.iter().rev()))
    }
}

impl fmt::Debug for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "{{}}");
        }
        write!(f, "{{")?;
        for (n, s) in self.structures().enumerate() {
            if n > 0 {
                write!(f, ",")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "}}")
    }
}

/// Enumerate every candidate configuration: all subsets of the oracle's
/// structures that satisfy the space bound and (optionally) a cap on
/// structures per configuration.
///
/// The paper's experiments restrict the design space to "at most one
/// index" — pass `max_structures = Some(1)` for that regime. Full
/// enumeration is `O(2^m)` and refused for `m > 20` (at that point use
/// [`crate::greedy`] or [`crate::decompose::candidate_configs`], which
/// exist precisely because of this wall).
pub fn enumerate_configs(
    oracle: &dyn crate::CostOracle,
    space_bound: Option<u64>,
    max_structures: Option<usize>,
) -> Result<Vec<Config>> {
    let m = oracle.n_structures();
    if m > 20 {
        return Err(Error::InvalidArgument(format!(
            "refusing full 2^{m} configuration enumeration; use greedy candidate selection"
        )));
    }
    let mut out = Vec::new();
    for bits in 0..(1u64 << m) {
        let config = Config::from_bits(bits);
        if let Some(cap) = max_structures {
            if config.len() > cap {
                continue;
            }
        }
        if let Some(b) = space_bound {
            if oracle.size(&config) > b {
                continue;
            }
        }
        out.push(config);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SyntheticOracle;
    use cdpd_types::Cost;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    #[test]
    fn set_operations() {
        let c = Config::EMPTY.with(0).with(3);
        assert!(c.contains(0) && c.contains(3) && !c.contains(1));
        assert_eq!(c.len(), 2);
        assert_eq!(c.without(0), Config::single(3));
        assert_eq!(c.union(&Config::single(1)).len(), 3);
        assert_eq!(c.intersect(&Config::single(3)), Config::single(3));
        assert_eq!(c.intersect(&Config::single(1)), Config::EMPTY);
        assert_eq!(c.minus(&Config::single(3)), Config::single(0));
        assert!(Config::single(3).is_subset_of(&c));
        assert!(!c.is_subset_of(&Config::single(3)));
        assert_eq!(c.structures().collect::<Vec<_>>(), vec![0, 3]);
    }

    #[test]
    fn wide_set_operations() {
        // The same algebra across the 64-bit spill boundary.
        let c = Config::EMPTY.with(3).with(64).with(130);
        assert_eq!(c.len(), 3);
        assert!(c.contains(64) && c.contains(130) && !c.contains(65));
        assert_eq!(c.structures().collect::<Vec<_>>(), vec![3, 64, 130]);
        assert_eq!(c.without(130), Config::EMPTY.with(3).with(64));
        assert_eq!(c.intersect(&Config::single(64)), Config::single(64));
        assert_eq!(
            c.minus(&Config::single(3)),
            Config::EMPTY.with(64).with(130)
        );
        assert!(Config::single(130).is_subset_of(&c));
        assert!(!c.is_subset_of(&Config::single(130)));
        let u = c.union(&Config::single(200));
        assert_eq!(u.len(), 4);
        assert!(u.contains(200));
    }

    #[test]
    fn normalization_keeps_eq_and_hash_sound() {
        // Dropping the only high structure must shrink back to the
        // inline representation, and compare/hash equal to a config
        // that never spilled.
        let narrow = Config::EMPTY.with(2);
        let via_wide = Config::EMPTY.with(2).with(100).without(100);
        assert_eq!(narrow, via_wide);
        assert_eq!(narrow.words(), via_wide.words());
        let hash = |c: &Config| {
            let mut h = DefaultHasher::new();
            c.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&narrow), hash(&via_wide));
        assert_eq!(narrow.shard_key(), via_wide.shard_key());
        // Intersection with a narrow mask collapses a spilled config.
        let wide = Config::EMPTY.with(1).with(90);
        assert_eq!(wide.intersect(&Config::full(64)), Config::single(1));
        assert_eq!(wide.words().len(), 2);
        // from_words tolerates denormalized input.
        assert_eq!(Config::from_words(&[5, 0, 0]), Config::from_bits(5));
        assert_eq!(Config::from_words(wide.words()), wide);
        assert_eq!(Config::from_words(&[]), Config::EMPTY);
    }

    #[test]
    fn ordering_matches_big_integer_order() {
        let mut configs = vec![
            Config::single(70),
            Config::single(0),
            Config::EMPTY,
            Config::single(65),
            Config::single(63),
            Config::EMPTY.with(0).with(70),
        ];
        configs.sort();
        assert_eq!(
            configs,
            vec![
                Config::EMPTY,
                Config::single(0),
                Config::single(63),
                Config::single(65),
                Config::single(70),
                Config::EMPTY.with(0).with(70),
            ]
        );
        // Inline order is the raw-u64 order.
        assert!(Config::from_bits(3) < Config::from_bits(4));
    }

    #[test]
    fn full_and_rank() {
        assert_eq!(Config::full(0), Config::EMPTY);
        assert_eq!(Config::full(3), Config::from_bits(0b111));
        assert_eq!(Config::full(64), Config::from_bits(u64::MAX));
        assert_eq!(Config::full(65).len(), 65);
        assert!(Config::full(65).contains(64));
        assert_eq!(Config::full(130).len(), 130);
        let mask = Config::EMPTY.with(2).with(5).with(70);
        assert_eq!(mask.rank(2), 0);
        assert_eq!(mask.rank(5), 1);
        assert_eq!(mask.rank(6), 2);
        assert_eq!(mask.rank(70), 2);
        assert_eq!(mask.rank(200), 3);
    }

    #[test]
    fn pext_pdep_roundtrip() {
        for mask in [
            Config::from_bits(0b1),
            Config::from_bits(0b1010),
            Config::from_bits(0b1101_0110),
            Config::EMPTY.with(1).with(64).with(129),
        ] {
            for code in 0..(1u64 << mask.len()) {
                let cfg = Config::pdep_code(code, &mask);
                assert!(cfg.is_subset_of(&mask));
                assert_eq!(cfg.pext_code(&mask), code, "mask={mask} code={code}");
            }
        }
        // Bits outside the mask are ignored.
        let mask = Config::from_bits(0b0101);
        assert_eq!(
            Config::from_bits(0b1111).pext_code(&mask),
            Config::from_bits(0b0101).pext_code(&mask)
        );
        let wide_mask = Config::EMPTY.with(0).with(100);
        assert_eq!(Config::EMPTY.with(50).with(100).pext_code(&wide_mask), 0b10);
    }

    #[test]
    fn display() {
        assert_eq!(Config::EMPTY.to_string(), "{}");
        assert_eq!(Config::EMPTY.with(1).with(4).to_string(), "{1,4}");
        assert_eq!(Config::EMPTY.with(1).with(100).to_string(), "{1,100}");
    }

    #[test]
    fn wild_indices_panic() {
        let wild = MAX_STRUCTURE_INDEX;
        for f in [
            Box::new(|| {
                let _ = Config::single(wild);
            }) as Box<dyn FnOnce()>,
            Box::new(|| {
                let _ = Config::EMPTY.contains(wild);
            }),
            Box::new(|| {
                let _ = Config::EMPTY.with(wild);
            }),
            Box::new(|| {
                let _ = Config::EMPTY.without(wild);
            }),
            Box::new(|| {
                let _ = Config::EMPTY.rank(wild);
            }),
        ] {
            assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).is_err());
        }
    }

    fn oracle(m: usize, sizes: Vec<u64>) -> SyntheticOracle {
        SyntheticOracle::from_fn(
            1,
            m,
            |_, _| Cost::from_ios(1),
            vec![Cost::from_ios(10); m],
            Cost::from_ios(1),
            sizes,
        )
    }

    #[test]
    fn enumerate_all_subsets() {
        let o = oracle(3, vec![1, 1, 1]);
        let configs = enumerate_configs(&o, None, None).unwrap();
        assert_eq!(configs.len(), 8);
    }

    #[test]
    fn enumerate_with_structure_cap() {
        // The paper's "at most one index" regime: m singletons + empty.
        let o = oracle(6, vec![1; 6]);
        let configs = enumerate_configs(&o, None, Some(1)).unwrap();
        assert_eq!(configs.len(), 7);
    }

    #[test]
    fn enumerate_with_space_bound() {
        let o = oracle(3, vec![5, 7, 100]);
        let configs = enumerate_configs(&o, Some(12), None).unwrap();
        // {}, {0}, {1}, {0,1} fit; anything with structure 2 does not.
        assert_eq!(configs.len(), 4);
        assert!(configs.iter().all(|c| !c.contains(2)));
    }

    #[test]
    fn enumerate_refuses_huge_m() {
        struct Wide;
        impl crate::CostOracle for Wide {
            fn n_stages(&self) -> usize {
                1
            }
            fn n_structures(&self) -> usize {
                21
            }
            fn exec(&self, _: usize, _: &Config) -> Cost {
                Cost::ZERO
            }
            fn trans(&self, _: &Config, _: &Config) -> Cost {
                Cost::ZERO
            }
            fn size(&self, _: &Config) -> u64 {
                0
            }
        }
        assert!(enumerate_configs(&Wide, None, None).is_err());
    }
}

//! Warm-start plumbing shared by the prefix-committed solver entry
//! points ([`crate::seqgraph::solve_with_prefix`],
//! [`crate::kaware::solve_with_prefix`],
//! [`crate::kselect::cost_curve_with_prefix`]).
//!
//! An online advisor extends its horizon one window at a time. The
//! stages it has already *executed* are committed — their
//! configurations cannot change — so a re-solve only needs to optimize
//! the suffix. By the principle of optimality on the sequence graph,
//! pinning the first `p` stages and solving the remaining `n - p` from
//! the prefix's last configuration yields the optimal schedule among
//! all schedules sharing that prefix: the suffix sub-problem sees the
//! true boundary state (last committed config as its initial, a change
//! budget reduced by what the prefix spent) and every cost on the
//! boundary edge is charged exactly once.
//!
//! The helpers here make that reduction explicit and keep the change
//! accounting bit-identical to [`Schedule::evaluate`]'s
//! (`crate::schedule`) — the invariant the warm/cold equivalence tests
//! pin down.

use crate::config::Config;
use crate::problem::{CostOracle, Problem};
use cdpd_types::{Cost, Error, Result};

/// View of an oracle restricted to stages `start..`, re-indexed from 0.
///
/// Borrowing (rather than wrapping by value) is what keeps re-solves
/// warm: probes pass through to the shared memoizing oracle, so costs
/// evaluated by earlier solves are cache hits here.
pub(crate) struct SuffixOracle<'a> {
    pub(crate) inner: &'a dyn CostOracle,
    pub(crate) start: usize,
}

impl CostOracle for SuffixOracle<'_> {
    fn n_stages(&self) -> usize {
        self.inner.n_stages() - self.start
    }
    fn n_structures(&self) -> usize {
        self.inner.n_structures()
    }
    fn exec(&self, stage: usize, config: &Config) -> Cost {
        self.inner.exec(stage + self.start, config)
    }
    fn trans(&self, from: &Config, to: &Config) -> Cost {
        self.inner.trans(from, to)
    }
    fn size(&self, config: &Config) -> u64 {
        self.inner.size(config)
    }
}

/// The sub-problem a committed prefix leaves behind. The suffix starts
/// from the prefix's last configuration; when the prefix is non-empty,
/// a config change at the first suffix stage is a real mid-sequence
/// change, so the sub-problem always counts its initial change.
pub(crate) fn suffix_problem(problem: &Problem, prefix: &[Config]) -> Problem {
    Problem {
        initial: prefix
            .last()
            .cloned()
            .unwrap_or_else(|| problem.initial.clone()),
        final_config: problem.final_config.clone(),
        space_bound: problem.space_bound,
        count_initial_change: if prefix.is_empty() {
            problem.count_initial_change
        } else {
            true
        },
    }
}

/// Changes the committed prefix has already spent, counted exactly the
/// way [`crate::schedule::Schedule::evaluate`] counts them (a change at
/// stage 0 is free unless `count_initial_change`).
pub(crate) fn prefix_changes(problem: &Problem, prefix: &[Config]) -> usize {
    let mut changes = 0;
    let mut prev = &problem.initial;
    for (stage, cfg) in prefix.iter().enumerate() {
        if cfg != prev && (stage > 0 || problem.count_initial_change) {
            changes += 1;
        }
        prev = cfg;
    }
    changes
}

/// Reject prefixes longer than the workload or violating the space
/// bound (a committed prefix was feasible when committed; re-checking
/// catches stats drift and caller bugs cheaply).
pub(crate) fn check_prefix(
    oracle: &dyn CostOracle,
    problem: &Problem,
    prefix: &[Config],
) -> Result<()> {
    if prefix.len() > oracle.n_stages() {
        return Err(Error::InvalidArgument(format!(
            "committed prefix ({} stages) is longer than the workload ({})",
            prefix.len(),
            oracle.n_stages()
        )));
    }
    for (stage, cfg) in prefix.iter().enumerate() {
        if !problem.fits(oracle, cfg) {
            return Err(Error::Infeasible(format!(
                "committed prefix violates the space bound at stage {stage}"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::SyntheticOracle;
    use crate::schedule::Schedule;

    fn c(io: u64) -> Cost {
        Cost::from_ios(io)
    }

    fn oracle() -> SyntheticOracle {
        SyntheticOracle::from_fn(
            4,
            2,
            |stage, cfg| c(10 + stage as u64 + cfg.bits()),
            vec![c(5), c(7)],
            c(1),
            vec![1, 3],
        )
    }

    #[test]
    fn suffix_view_reindexes_stages() {
        let o = oracle();
        let s = SuffixOracle {
            inner: &o,
            start: 2,
        };
        assert_eq!(s.n_stages(), 2);
        assert_eq!(s.n_structures(), 2);
        for bits in 0..4u64 {
            let cfg = Config::from_bits(bits);
            assert_eq!(s.exec(0, &cfg), o.exec(2, &cfg));
            assert_eq!(s.exec(1, &cfg), o.exec(3, &cfg));
            assert_eq!(s.size(&cfg), o.size(&cfg));
        }
    }

    #[test]
    fn prefix_change_accounting_matches_schedule_evaluate() {
        let o = oracle();
        for count_initial in [false, true] {
            let p = Problem {
                count_initial_change: count_initial,
                ..Problem::default()
            };
            let cfgs = vec![
                Config::from_bits(0b01),
                Config::from_bits(0b01),
                Config::from_bits(0b10),
                Config::from_bits(0b10),
            ];
            let s = Schedule::evaluate(&o, &p, cfgs.clone());
            assert_eq!(
                prefix_changes(&p, &cfgs),
                s.changes,
                "strict={count_initial}"
            );
        }
    }

    #[test]
    fn suffix_problem_counts_the_boundary_change() {
        let p = Problem::default();
        assert!(!suffix_problem(&p, &[]).count_initial_change);
        let sub = suffix_problem(&p, &[Config::from_bits(1)]);
        assert!(sub.count_initial_change);
        assert_eq!(sub.initial, Config::from_bits(1));
    }

    #[test]
    fn invalid_prefixes_are_rejected() {
        let o = oracle();
        let p = Problem::default();
        let too_long = vec![Config::EMPTY; 5];
        assert!(check_prefix(&o, &p, &too_long).is_err());
        let bounded = Problem {
            space_bound: Some(2),
            ..Problem::default()
        };
        // Structure 1 has size 3 > bound 2.
        assert!(check_prefix(&o, &bounded, &[Config::from_bits(0b10)]).is_err());
        assert!(check_prefix(&o, &bounded, &[Config::from_bits(0b01)]).is_ok());
    }
}

//! Constrained design via shortest-path ranking (§5).
//!
//! Enumerate source→destination paths of the *unconstrained* sequence
//! graph in ascending cost and stop at the first whose design sequence
//! has at most `k` changes. Because every path seen earlier was
//! cheaper-or-equal and had too many changes, the first feasible path
//! is an optimal constrained design — the ranking is an *anytime
//! optimal* alternative to the k-aware graph.
//!
//! The underlying ranking (`cdpd_graph::PathRanking`) is best-first
//! search with an exact remaining-distance heuristic, so producing each
//! next path is cheap; the danger is the number of paths that must be
//! ranked, which §5 shows can be astronomical when k is small and many
//! cheap-but-twitchy designs precede the first calm one. `max_paths`
//! caps the search; hitting the cap returns
//! [`cdpd_types::Error::Infeasible`] so callers can fall back to the
//! k-aware graph (see [`crate::hybrid`]).

use crate::config::Config;
use crate::problem::{CostOracle, Problem};
use crate::schedule::Schedule;
use crate::seqgraph;
use cdpd_graph::PathRanking;
use cdpd_types::{Error, Result};

/// Statistics about a ranking run (how hard the instance was).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RankingStats {
    /// Paths generated before the first feasible one (inclusive).
    pub paths_ranked: usize,
}

/// Optimal design with at most `k` changes, by ranking at most
/// `max_paths` paths.
pub fn solve(
    oracle: &dyn CostOracle,
    problem: &Problem,
    candidates: &[Config],
    k: usize,
    max_paths: usize,
) -> Result<Schedule> {
    solve_with_stats(oracle, problem, candidates, k, max_paths).map(|(s, _)| s)
}

/// [`solve`], also reporting how many paths were ranked.
pub fn solve_with_stats(
    oracle: &dyn CostOracle,
    problem: &Problem,
    candidates: &[Config],
    k: usize,
    max_paths: usize,
) -> Result<(Schedule, RankingStats)> {
    let _span = cdpd_obs::span!("solve.ranking", k = k, max_paths = max_paths);
    let candidates = seqgraph::usable_candidates(oracle, problem, candidates)?;
    let graph = seqgraph::build(oracle, problem, &candidates);
    let mut ranked = 0usize;
    for path in PathRanking::new(&graph.dag, graph.source, graph.dest) {
        ranked += 1;
        if ranked > max_paths {
            return Err(Error::Infeasible(format!(
                "ranking budget of {max_paths} paths exhausted before a ≤{k}-change design"
            )));
        }
        let configs = seqgraph::path_to_configs(&graph, &candidates, &path.nodes);
        let changes = count_changes(problem, &configs);
        if changes <= k {
            let schedule = Schedule::evaluate(oracle, problem, configs);
            debug_assert_eq!(schedule.total_cost(), path.cost);
            return Ok((
                schedule,
                RankingStats {
                    paths_ranked: ranked,
                },
            ));
        }
    }
    Err(Error::Infeasible(format!(
        "no design with at most {k} changes exists in the sequence graph"
    )))
}

fn count_changes(problem: &Problem, configs: &[Config]) -> usize {
    let mut changes = 0;
    let mut prev = &problem.initial;
    for (i, c) in configs.iter().enumerate() {
        if c != prev && (i > 0 || problem.count_initial_change) {
            changes += 1;
        }
        prev = c;
    }
    changes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::enumerate_configs;
    use crate::kaware;
    use crate::problem::SyntheticOracle;
    use cdpd_types::Cost;

    fn c(io: u64) -> Cost {
        Cost::from_ios(io)
    }

    fn phased(n: usize, m: usize) -> SyntheticOracle {
        SyntheticOracle::from_fn(
            n,
            m,
            move |stage, cfg| {
                let preferred = (stage * m) / n;
                let minor = (preferred + 1) % m;
                let want = if stage % 2 == 1 { minor } else { preferred };
                if cfg.contains(want) {
                    c(20)
                } else if cfg.contains(preferred) {
                    c(45)
                } else {
                    c(300)
                }
            },
            vec![c(25); m],
            c(1),
            vec![1; m],
        )
    }

    #[test]
    fn ranking_matches_kaware_optimum() {
        let o = phased(8, 2);
        let p = Problem::paper_experiment();
        let cands = enumerate_configs(&o, None, Some(1)).unwrap();
        for k in 0..5 {
            let via_rank = solve(&o, &p, &cands, k, 1_000_000).unwrap();
            let via_graph = kaware::solve(&o, &p, &cands, k).unwrap();
            assert_eq!(
                via_rank.total_cost(),
                via_graph.total_cost(),
                "both are optimal at k={k}"
            );
            via_rank.validate(&o, &p, Some(k)).unwrap();
        }
    }

    #[test]
    fn first_path_wins_when_unconstrained_is_calm() {
        // Transitions so expensive the shortest path never changes
        // design: ranking should stop at path #1.
        let o = SyntheticOracle::from_fn(
            5,
            2,
            |_, cfg| if cfg.is_empty() { c(50) } else { c(40) },
            vec![c(100_000), c(100_000)],
            c(1),
            vec![1, 1],
        );
        let p = Problem::default();
        let cands = enumerate_configs(&o, None, Some(1)).unwrap();
        let (s, stats) = solve_with_stats(&o, &p, &cands, 1, 10).unwrap();
        assert_eq!(stats.paths_ranked, 1);
        assert!(s.changes <= 1);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let o = phased(8, 3);
        let p = Problem::paper_experiment();
        let cands = enumerate_configs(&o, None, Some(1)).unwrap();
        // k = 0 with strongly phased costs: many twitchy paths are
        // cheaper than any frozen design, so a tiny budget must trip.
        let err = solve(&o, &p, &cands, 0, 2).unwrap_err();
        assert!(err.to_string().contains("budget"), "{err}");
    }

    #[test]
    fn change_counting_respects_strict_mode() {
        let p_loose = Problem::default();
        let p_strict = Problem {
            count_initial_change: true,
            ..Problem::default()
        };
        let cfgs = vec![Config::single(0), Config::single(0), Config::single(1)];
        assert_eq!(count_changes(&p_loose, &cfgs), 1);
        assert_eq!(count_changes(&p_strict, &cfgs), 2);
    }
}

//! The *k-aware sequence graph*: the paper's optimal solution to the
//! constrained problem (§3).
//!
//! The sequence graph is replicated into `k + 1` *layers*; a node
//! `(stage, config, layer)` means "statement `stage` runs under
//! `config` after exactly `layer` design changes so far". Staying in a
//! configuration moves horizontally within a layer; changing
//! configuration descends one layer. Paths through the layered graph
//! are exactly the dynamic designs with at most `k` changes, so the
//! shortest path is the constrained optimum — `O(k·n·4^m)` time with
//! full enumeration (the paper's `O(k·n·2^{2m})`).

use crate::config::Config;
use crate::problem::{CostOracle, Problem};
use crate::schedule::Schedule;
use crate::seqgraph::usable_candidates;
use cdpd_graph::{Dag, NodeId};
use cdpd_types::{Cost, Error, Result};

/// Optimal design with at most `k` changes over `candidates`.
#[allow(clippy::needless_range_loop)] // layer indexes three parallel structures; a range is clearer
pub fn solve(
    oracle: &dyn CostOracle,
    problem: &Problem,
    candidates: &[Config],
    k: usize,
) -> Result<Schedule> {
    let _span = cdpd_obs::span!("solve.kaware", k = k, candidates = candidates.len());
    let candidates = usable_candidates(oracle, problem, candidates)?;
    let n = oracle.n_stages();
    let ncand = candidates.len();
    let layers = k + 1;

    // Node ids per (stage, candidate, layer); source first so edges are
    // forward in insertion order.
    let mut dag: Dag<Option<(usize, usize)>> = Dag::with_capacity(n * ncand * layers + 2);
    let source = dag.add_node(None, Cost::ZERO);
    // nodes[stage][cand][layer]
    let mut nodes: Vec<Vec<Vec<NodeId>>> = Vec::with_capacity(n);
    for stage in 0..n {
        let mut per_cand = Vec::with_capacity(ncand);
        for (ci, cfg) in candidates.iter().enumerate() {
            let exec = oracle.exec(stage, cfg);
            let per_layer: Vec<NodeId> = (0..layers)
                .map(|_| dag.add_node(Some((stage, ci)), exec))
                .collect();
            per_cand.push(per_layer);
        }
        nodes.push(per_cand);
    }
    let dest = dag.add_node(None, Cost::ZERO);

    // Source edges: entering `C_1 = c` lands on layer 0, unless the
    // initial build counts as a change (strict Definition 1 mode).
    for (ci, cfg) in candidates.iter().enumerate() {
        let layer = if *cfg != problem.initial && problem.count_initial_change {
            1
        } else {
            0
        };
        if layer >= layers {
            continue; // k = 0 in strict mode: only the initial config enters
        }
        dag.add_edge(
            source,
            nodes[0][ci][layer],
            oracle.trans(&problem.initial, cfg),
        );
    }

    // Stage-to-stage edges.
    for stage in 0..n.saturating_sub(1) {
        for (ai, a) in candidates.iter().enumerate() {
            for (bi, b) in candidates.iter().enumerate() {
                if ai == bi {
                    for layer in 0..layers {
                        dag.add_edge(
                            nodes[stage][ai][layer],
                            nodes[stage + 1][bi][layer],
                            Cost::ZERO,
                        );
                    }
                } else {
                    let trans = oracle.trans(a, b);
                    for layer in 0..layers.saturating_sub(1) {
                        dag.add_edge(
                            nodes[stage][ai][layer],
                            nodes[stage + 1][bi][layer + 1],
                            trans,
                        );
                    }
                }
            }
        }
    }

    // Destination edges: the closing transition (to the pinned final
    // configuration, if any) does not consume change budget.
    for (ci, cfg) in candidates.iter().enumerate() {
        let w = match &problem.final_config {
            Some(f) => oracle.trans(cfg, f),
            None => Cost::ZERO,
        };
        for layer in 0..layers {
            dag.add_edge(nodes[n - 1][ci][layer], dest, w);
        }
    }

    let sp = dag
        .shortest_path(source, dest)
        .ok_or_else(|| Error::Infeasible(format!("no design with at most {k} changes")))?;
    let configs: Vec<Config> = sp
        .nodes
        .iter()
        .filter_map(|&node| dag.payload(node).map(|(_, ci)| candidates[ci].clone()))
        .collect();
    let schedule = Schedule::evaluate(oracle, problem, configs);
    debug_assert_eq!(
        schedule.total_cost(),
        sp.cost,
        "graph and evaluator disagree"
    );
    debug_assert!(
        schedule.changes <= k,
        "layering must enforce the change budget"
    );
    Ok(schedule)
}

/// Optimal design with at most `k` *total* changes whose first
/// `prefix.len()` stages are pinned to an already-committed prefix —
/// the warm-start entry point for rolling re-solves.
///
/// The changes the prefix already spent (counted exactly as
/// [`Schedule::evaluate`] counts them) are deducted from `k`; the
/// suffix is solved under the remaining budget, starting from the
/// prefix's last configuration, with the boundary change counted. Errs
/// with [`Error::Infeasible`] when the prefix alone exceeds `k`. With
/// an empty prefix this is exactly [`solve`]; the result is always a
/// full `n`-stage schedule under the original `problem`.
pub fn solve_with_prefix(
    oracle: &dyn CostOracle,
    problem: &Problem,
    candidates: &[Config],
    k: usize,
    prefix: &[Config],
) -> Result<Schedule> {
    if prefix.is_empty() {
        return solve(oracle, problem, candidates, k);
    }
    let _span = cdpd_obs::span!("solve.kaware.warm", k = k, prefix = prefix.len());
    crate::warm::check_prefix(oracle, problem, prefix)?;
    let used = crate::warm::prefix_changes(problem, prefix);
    let Some(remaining) = k.checked_sub(used) else {
        return Err(Error::Infeasible(format!(
            "committed prefix already uses {used} changes, over the budget of {k}"
        )));
    };
    if prefix.len() == oracle.n_stages() {
        return Ok(Schedule::evaluate(oracle, problem, prefix.to_vec()));
    }
    let suffix = crate::warm::SuffixOracle {
        inner: oracle,
        start: prefix.len(),
    };
    let sub = crate::warm::suffix_problem(problem, prefix);
    let tail = solve(&suffix, &sub, candidates, remaining)?;
    let mut configs = prefix.to_vec();
    configs.extend(tail.configs);
    let schedule = Schedule::evaluate(oracle, problem, configs);
    debug_assert!(
        schedule.changes <= k,
        "prefix + suffix must respect the total budget"
    );
    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::enumerate_configs;
    use crate::problem::SyntheticOracle;
    use crate::seqgraph;

    fn c(io: u64) -> Cost {
        Cost::from_ios(io)
    }

    /// W1-like: three phases, each preferring a different structure;
    /// minor fluctuations inside each phase.
    fn phased_oracle() -> SyntheticOracle {
        SyntheticOracle::from_fn(
            12,
            3,
            |stage, cfg| {
                let phase = stage / 4;
                let fluctuation = stage % 2 == 1;
                let preferred = phase;
                let minor = (phase + 1) % 3;
                let want = if fluctuation { minor } else { preferred };
                if cfg.contains(want) {
                    c(20)
                } else if cfg.contains(preferred) {
                    c(40)
                } else {
                    c(200)
                }
            },
            vec![c(30); 3],
            c(1),
            vec![1; 3],
        )
    }

    #[test]
    fn k_bounds_are_respected_and_cost_is_monotone() {
        let o = phased_oracle();
        let p = Problem::paper_experiment();
        let cands = enumerate_configs(&o, None, Some(1)).unwrap();
        let unconstrained = seqgraph::solve(&o, &p, &cands).unwrap();
        let mut prev_cost = None;
        for k in 0..=unconstrained.changes + 1 {
            let s = solve(&o, &p, &cands, k).unwrap();
            s.validate(&o, &p, Some(k)).unwrap();
            if let Some(prev) = prev_cost {
                assert!(s.total_cost() <= prev, "more budget can never hurt");
            }
            prev_cost = Some(s.total_cost());
        }
        // With enough budget the constrained optimum IS the optimum.
        let full = solve(&o, &p, &cands, unconstrained.changes).unwrap();
        assert_eq!(full.total_cost(), unconstrained.total_cost());
    }

    #[test]
    fn k2_tracks_major_shifts_only() {
        let o = phased_oracle();
        let p = Problem::paper_experiment();
        let cands = enumerate_configs(&o, None, Some(1)).unwrap();
        let s = solve(&o, &p, &cands, 2).unwrap();
        assert_eq!(s.changes, 2);
        let segs = s.segments();
        assert_eq!(segs.len(), 3, "one segment per phase: {s}");
        // Each phase settles on its preferred structure.
        assert!(segs[0].1.contains(0));
        assert!(segs[1].1.contains(1));
        assert!(segs[2].1.contains(2));
    }

    #[test]
    fn matches_brute_force_under_constraint() {
        let o = SyntheticOracle::from_fn(
            4,
            2,
            |stage, cfg| c((stage as u64 * 13 + cfg.bits() * 29) % 47 + 1),
            vec![c(7), c(11)],
            c(1),
            vec![1, 1],
        );
        let p = Problem::default();
        let cands = enumerate_configs(&o, None, None).unwrap();
        for k in 0..4 {
            let got = solve(&o, &p, &cands, k).unwrap();
            let mut best: Option<Cost> = None;
            // Brute force all 4^4 schedules with ≤ k changes.
            let idx = 0..cands.len();
            for a in idx.clone() {
                for b in idx.clone() {
                    for cc in idx.clone() {
                        for d in idx.clone() {
                            let cfgs = vec![
                                cands[a].clone(),
                                cands[b].clone(),
                                cands[cc].clone(),
                                cands[d].clone(),
                            ];
                            let s = Schedule::evaluate(&o, &p, cfgs);
                            if s.changes <= k && best.is_none_or(|x| s.total_cost() < x) {
                                best = Some(s.total_cost());
                            }
                        }
                    }
                }
            }
            assert_eq!(got.total_cost(), best.unwrap(), "k={k}");
        }
    }

    #[test]
    fn k_zero_freezes_the_design() {
        let o = phased_oracle();
        let p = Problem::default();
        let cands = enumerate_configs(&o, None, Some(1)).unwrap();
        let s = solve(&o, &p, &cands, 0).unwrap();
        assert_eq!(s.changes, 0);
        assert_eq!(s.segments().len(), 1);
    }

    #[test]
    fn strict_mode_charges_the_initial_build() {
        let o = phased_oracle();
        let p = Problem {
            count_initial_change: true,
            ..Problem::default()
        };
        let cands = enumerate_configs(&o, None, Some(1)).unwrap();
        // k = 0 in strict mode: must stay in the (empty) initial config.
        let s = solve(&o, &p, &cands, 0).unwrap();
        assert!(s.configs.iter().all(|cfg| *cfg == Config::EMPTY));
        // k = 1 buys exactly the initial build.
        let s = solve(&o, &p, &cands, 1).unwrap();
        assert!(s.changes <= 1);
        let loose = solve(&o, &Problem::default(), &cands, 1).unwrap();
        assert!(
            loose.total_cost() <= s.total_cost(),
            "strict counting can only restrict"
        );
    }

    #[test]
    fn warm_prefix_of_the_optimum_reproduces_the_optimum() {
        let o = phased_oracle();
        let p = Problem::paper_experiment();
        let cands = enumerate_configs(&o, None, Some(1)).unwrap();
        for k in 0..4 {
            let cold = solve(&o, &p, &cands, k).unwrap();
            for split in 0..=o.n_stages() {
                let warm = solve_with_prefix(&o, &p, &cands, k, &cold.configs[..split]).unwrap();
                assert_eq!(warm.total_cost(), cold.total_cost(), "k={k} split={split}");
                warm.validate(&o, &p, Some(k)).unwrap();
            }
        }
    }

    #[test]
    fn warm_budget_deducts_prefix_spending() {
        let o = phased_oracle();
        let p = Problem::paper_experiment();
        let cands = enumerate_configs(&o, None, Some(1)).unwrap();
        // empty → {0} → {1}: one counted change (the stage-0 build is
        // free under the paper's default counting).
        let prefix = vec![
            Config::from_bits(0b001),
            Config::from_bits(0b001),
            Config::from_bits(0b010),
        ];
        // Budget 0 < 1 spent: infeasible.
        assert!(solve_with_prefix(&o, &p, &cands, 0, &prefix).is_err());
        // Budget 1: the suffix must freeze on the prefix's last config.
        let s = solve_with_prefix(&o, &p, &cands, 1, &prefix).unwrap();
        assert_eq!(s.changes, 1);
        assert!(s.configs[2..]
            .iter()
            .all(|cfg| *cfg == Config::from_bits(0b010)));
        // Budget 2: one more change is allowed, and it can only help.
        let s2 = solve_with_prefix(&o, &p, &cands, 2, &prefix).unwrap();
        assert!(s2.changes <= 2);
        assert!(s2.total_cost() <= s.total_cost());
    }

    #[test]
    fn warm_strict_mode_charges_the_prefix_initial_build() {
        let o = phased_oracle();
        let p = Problem {
            count_initial_change: true,
            ..Problem::default()
        };
        let cands = enumerate_configs(&o, None, Some(1)).unwrap();
        // Strict counting: building {0} at stage 0 is one change.
        let prefix = vec![Config::from_bits(0b001)];
        assert!(solve_with_prefix(&o, &p, &cands, 0, &prefix).is_err());
        let s = solve_with_prefix(&o, &p, &cands, 1, &prefix).unwrap();
        s.validate(&o, &p, Some(1)).unwrap();
    }

    #[test]
    fn large_k_equals_unconstrained() {
        let o = phased_oracle();
        let p = Problem::paper_experiment();
        let cands = enumerate_configs(&o, None, None).unwrap();
        let unc = seqgraph::solve(&o, &p, &cands).unwrap();
        let k = o.n_stages(); // more budget than stages
        let s = solve(&o, &p, &cands, k).unwrap();
        assert_eq!(s.total_cost(), unc.total_cost());
    }
}

use crate::config::Config;
use crate::problem::{CostOracle, Problem};
use cdpd_types::{Cost, Error, Result};
use std::fmt;
use std::ops::Range;

/// A dynamic physical design: one configuration per workload stage,
/// with its evaluated cost breakdown.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Schedule {
    /// `C_1 … C_n`, one per stage.
    pub configs: Vec<Config>,
    /// `Σ EXEC(S_i, C_i)`.
    pub exec_cost: Cost,
    /// `Σ TRANS(C_{i-1}, C_i)` including the closing transition to the
    /// problem's final configuration, if constrained.
    pub trans_cost: Cost,
    /// Number of design changes charged against `k` (respecting the
    /// problem's `count_initial_change`).
    pub changes: usize,
}

impl Schedule {
    /// Evaluate `configs` under `oracle`/`problem`, computing the cost
    /// breakdown and change count.
    pub fn evaluate(oracle: &dyn CostOracle, problem: &Problem, configs: Vec<Config>) -> Schedule {
        let mut exec_cost = Cost::ZERO;
        let mut trans_cost = Cost::ZERO;
        let mut changes = 0usize;
        let mut prev = &problem.initial;
        for (stage, cfg) in configs.iter().enumerate() {
            trans_cost += oracle.trans(prev, cfg);
            if cfg != prev && (stage > 0 || problem.count_initial_change) {
                changes += 1;
            }
            exec_cost += oracle.exec(stage, cfg);
            prev = cfg;
        }
        if let Some(f) = &problem.final_config {
            trans_cost += oracle.trans(prev, f);
        }
        Schedule {
            configs,
            exec_cost,
            trans_cost,
            changes,
        }
    }

    /// `exec_cost + trans_cost` — the paper's sequence execution cost.
    pub fn total_cost(&self) -> Cost {
        self.exec_cost + self.trans_cost
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// True if the schedule covers no stages.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Maximal runs of equal configurations, as `(stage range, config)`.
    pub fn segments(&self) -> Vec<(Range<usize>, Config)> {
        let mut out = Vec::new();
        let mut start = 0;
        for i in 1..=self.configs.len() {
            if i == self.configs.len() || self.configs[i] != self.configs[start] {
                out.push((start..i, self.configs[start].clone()));
                start = i;
            }
        }
        out
    }

    /// Check every invariant of Definition 1 against this schedule:
    /// stage count, space bound, change budget, and cost bookkeeping.
    pub fn validate(
        &self,
        oracle: &dyn CostOracle,
        problem: &Problem,
        k: Option<usize>,
    ) -> Result<()> {
        if self.configs.len() != oracle.n_stages() {
            return Err(Error::InvalidArgument(format!(
                "schedule has {} stages, workload has {}",
                self.configs.len(),
                oracle.n_stages()
            )));
        }
        for (i, c) in self.configs.iter().enumerate() {
            if !problem.fits(oracle, c) {
                return Err(Error::Infeasible(format!(
                    "stage {i} config {c} exceeds the space bound"
                )));
            }
        }
        let reference = Schedule::evaluate(oracle, problem, self.configs.clone());
        if reference != *self {
            return Err(Error::InvalidArgument(
                "schedule cost bookkeeping does not match re-evaluation".into(),
            ));
        }
        if let Some(k) = k {
            if self.changes > k {
                return Err(Error::Infeasible(format!(
                    "schedule uses {} changes, budget is {k}",
                    self.changes
                )));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cost={} (exec={}, trans={}), {} change(s): ",
            self.total_cost(),
            self.exec_cost,
            self.trans_cost,
            self.changes
        )?;
        for (n, (range, cfg)) in self.segments().into_iter().enumerate() {
            if n > 0 {
                write!(f, " → ")?;
            }
            write!(f, "{cfg}@[{}..{})", range.start, range.end)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::SyntheticOracle;

    fn c(io: u64) -> Cost {
        Cost::from_ios(io)
    }

    fn oracle() -> SyntheticOracle {
        // Stage cost: 100 for empty, 10 with structure 0, 50 with 1.
        SyntheticOracle::from_fn(
            4,
            2,
            |_, cfg| {
                if cfg.contains(0) {
                    c(10)
                } else if cfg.contains(1) {
                    c(50)
                } else {
                    c(100)
                }
            },
            vec![c(30), c(40)],
            c(1),
            vec![5, 7],
        )
    }

    #[test]
    fn evaluate_counts_costs_and_changes() {
        let o = oracle();
        let p = Problem::default();
        let s0 = Config::single(0);
        let s1 = Config::single(1);
        let sched = Schedule::evaluate(&o, &p, vec![s0.clone(), s0, s1.clone(), s1]);
        assert_eq!(sched.exec_cost, c(10 + 10 + 50 + 50));
        // build s0 (30) + build s1/drop s0 (40 + 1)
        assert_eq!(sched.trans_cost, c(71));
        assert_eq!(sched.changes, 1, "initial build not counted by default");
        assert_eq!(sched.total_cost(), c(191));
    }

    #[test]
    fn initial_change_counting_modes() {
        let o = oracle();
        let s0 = Config::single(0);
        let loose = Schedule::evaluate(&o, &Problem::default(), vec![s0.clone(), s0.clone()]);
        assert_eq!(loose.changes, 0);
        let strict = Schedule::evaluate(
            &o,
            &Problem {
                count_initial_change: true,
                ..Problem::default()
            },
            vec![s0.clone(), s0],
        );
        assert_eq!(strict.changes, 1);
    }

    #[test]
    fn final_config_adds_closing_trans() {
        let o = oracle();
        let p = Problem {
            final_config: Some(Config::EMPTY),
            ..Problem::default()
        };
        let s0 = Config::single(0);
        let sched = Schedule::evaluate(&o, &p, vec![s0.clone(), s0]);
        assert_eq!(sched.trans_cost, c(30 + 1), "build + closing drop");
    }

    #[test]
    fn segments_and_display() {
        let o = oracle();
        let p = Problem::default();
        let s0 = Config::single(0);
        let s1 = Config::single(1);
        let sched =
            Schedule::evaluate(&o, &p, vec![s0.clone(), s0.clone(), s1.clone(), s0.clone()]);
        let segs = sched.segments();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0], (0..2, s0.clone()));
        assert_eq!(segs[1], (2..3, s1));
        assert_eq!(segs[2], (3..4, s0));
        let text = sched.to_string();
        assert!(text.contains("2 change(s)"), "{text}");
    }

    #[test]
    fn validate_catches_violations() {
        let o = oracle();
        let p = Problem {
            space_bound: Some(5),
            ..Problem::default()
        };
        let s0 = Config::single(0);
        let s1 = Config::single(1); // size 7 > bound 5
        let good = Schedule::evaluate(&o, &p, vec![s0.clone(); 4]);
        good.validate(&o, &p, Some(1)).unwrap();

        let bad_space =
            Schedule::evaluate(&o, &p, vec![s0.clone(), s1.clone(), s0.clone(), s0.clone()]);
        assert!(bad_space.validate(&o, &p, None).is_err());

        let p2 = Problem::default();
        let many = Schedule::evaluate(
            &o,
            &p2,
            vec![s0.clone(), s1.clone(), s0.clone(), s1.clone()],
        );
        assert!(many.validate(&o, &p2, Some(2)).is_err());
        many.validate(&o, &p2, Some(3)).unwrap();

        let wrong_len = Schedule::evaluate(&o, &p2, vec![s0]);
        assert!(wrong_len.validate(&o, &p2, None).is_err());

        let mut doctored = good;
        doctored.exec_cost = Cost::ZERO;
        assert!(doctored.validate(&o, &p, None).is_err());
    }
}

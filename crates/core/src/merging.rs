//! Sequential design merging (§4.2): refine an *unconstrained* solution
//! down to the change budget.
//!
//! The design sequence is held as maximal runs of equal configurations.
//! Each step picks the adjacent run pair whose replacement by a single
//! best configuration has the smallest *penalty*
//!
//! ```text
//! p = [TRANS(C_{i-1}, C') + EXEC(S_i ∪ S_{i+1}, C') + TRANS(C', C_{i+2})]
//!   − [TRANS(C_{i-1}, C_i) + EXEC(S_i, C_i) + TRANS(C_i, C_{i+1})
//!      + EXEC(S_{i+1}, C_{i+1}) + TRANS(C_{i+1}, C_{i+2})]
//! ```
//!
//! and merges it, reducing the change count by one — or by two when the
//! replacement equals a neighbouring run (the paper's `C' = C_{i-1}` /
//! `C' = C_{i+2}` case, handled here by coalescing). Heuristic: the
//! result satisfies the budget but is not guaranteed optimal, even
//! starting from an optimal unconstrained design. Complexity per step
//! is `O(runs · |candidates|)` exec-sum evaluations; `(l − k)` steps.

use crate::config::Config;
use crate::problem::{CostOracle, Problem};
use crate::schedule::Schedule;
use crate::seqgraph;
use cdpd_types::{Cost, Error, Result};
use std::ops::Range;

#[derive(Clone, Debug)]
struct Run {
    config: Config,
    stages: Range<usize>,
}

fn changes_of(runs: &[Run], problem: &Problem) -> usize {
    let boundary = runs.len().saturating_sub(1);
    let initial = usize::from(
        problem.count_initial_change && runs.first().is_some_and(|r| r.config != problem.initial),
    );
    boundary + initial
}

fn exec_range(oracle: &dyn CostOracle, stages: Range<usize>, cfg: &Config) -> Cost {
    stages.map(|s| oracle.exec(s, cfg)).sum()
}

/// Refine `start` (typically the unconstrained optimum) until it uses at
/// most `k` changes. Replacement configurations are drawn from
/// `candidates` (the paper: *"chosen from the same set of candidate
/// configurations that was used to generate the original, unconstrained
/// design sequence"*).
pub fn refine(
    oracle: &dyn CostOracle,
    problem: &Problem,
    candidates: &[Config],
    k: usize,
    start: &Schedule,
) -> Result<Schedule> {
    let candidates = seqgraph::usable_candidates(oracle, problem, candidates)?;
    if start.configs.len() != oracle.n_stages() {
        return Err(Error::InvalidArgument(
            "starting schedule does not cover the workload".into(),
        ));
    }
    let mut runs: Vec<Run> = start
        .segments()
        .into_iter()
        .map(|(stages, config)| Run { config, stages })
        .collect();

    while changes_of(&runs, problem) > k {
        if runs.len() == 1 {
            // Only possible in strict counting mode with k = 0: the sole
            // remaining move is to stay in the initial configuration.
            if problem.fits(oracle, &problem.initial) {
                runs[0].config = problem.initial.clone();
                break;
            }
            return Err(Error::Infeasible(
                "cannot reach the change budget: initial configuration violates the space bound"
                    .into(),
            ));
        }

        let mut best: Option<(i128, usize, Config)> = None;
        for i in 0..runs.len() - 1 {
            let prev_cfg = if i == 0 {
                &problem.initial
            } else {
                &runs[i - 1].config
            };
            let next_cfg = if i + 2 < runs.len() {
                Some(&runs[i + 2].config)
            } else {
                problem.final_config.as_ref()
            };
            let (left, right) = (&runs[i], &runs[i + 1]);
            let trans_out =
                |cfg: &Config| -> Cost { next_cfg.map_or(Cost::ZERO, |nx| oracle.trans(cfg, nx)) };
            let old_cost = oracle.trans(prev_cfg, &left.config)
                + exec_range(oracle, left.stages.clone(), &left.config)
                + oracle.trans(&left.config, &right.config)
                + exec_range(oracle, right.stages.clone(), &right.config)
                + trans_out(&right.config);

            for cand in &candidates {
                let new_cost = oracle.trans(prev_cfg, cand)
                    + exec_range(oracle, left.stages.start..right.stages.end, cand)
                    + trans_out(cand);
                let penalty = new_cost.raw() as i128 - old_cost.raw() as i128;
                if best.as_ref().is_none_or(|(bp, ..)| penalty < *bp) {
                    best = Some((penalty, i, cand.clone()));
                }
            }
        }

        let (_, i, cand) =
            best.ok_or_else(|| Error::Infeasible("no merge candidate available".into()))?;
        let merged = Run {
            config: cand,
            stages: runs[i].stages.start..runs[i + 1].stages.end,
        };
        runs.splice(i..i + 2, [merged]);
        // Coalesce with equal neighbours (the paper's −2 case).
        let mut j = i;
        if j > 0 && runs[j - 1].config == runs[j].config {
            let start = runs[j - 1].stages.start;
            runs[j].stages.start = start;
            runs.remove(j - 1);
            j -= 1;
        }
        if j + 1 < runs.len() && runs[j + 1].config == runs[j].config {
            let end = runs[j + 1].stages.end;
            runs[j].stages.end = end;
            runs.remove(j + 1);
        }
    }

    let mut configs = vec![Config::EMPTY; oracle.n_stages()];
    for run in &runs {
        for s in run.stages.clone() {
            configs[s] = run.config.clone();
        }
    }
    let schedule = Schedule::evaluate(oracle, problem, configs);
    schedule.validate(oracle, problem, Some(k))?;
    Ok(schedule)
}

/// Convenience: solve the unconstrained problem first (§3 baseline),
/// then merge down to `k` changes.
pub fn solve(
    oracle: &dyn CostOracle,
    problem: &Problem,
    candidates: &[Config],
    k: usize,
) -> Result<Schedule> {
    let _span = cdpd_obs::span!("solve.merging", k = k, candidates = candidates.len());
    let unconstrained = seqgraph::solve(oracle, problem, candidates)?;
    if unconstrained.changes <= k {
        return Ok(unconstrained);
    }
    refine(oracle, problem, candidates, k, &unconstrained)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::enumerate_configs;
    use crate::kaware;
    use crate::problem::SyntheticOracle;

    fn c(io: u64) -> Cost {
        Cost::from_ios(io)
    }

    /// Paper §4.2 example: n = 3, one candidate index, best
    /// unconstrained design [∅, {IX}, ∅] with l = 2 changes; k = 1.
    fn paper_example_oracle() -> SyntheticOracle {
        SyntheticOracle::from_fn(
            3,
            1,
            |stage, cfg| match (stage, cfg.contains(0)) {
                (1, true) => c(10), // the middle query loves the index
                (1, false) => c(500),
                (_, true) => c(100), // outer queries mildly dislike it
                (_, false) => c(50),
            },
            vec![c(20)],
            c(1),
            vec![1],
        )
    }

    #[test]
    fn paper_example_merges_one_pair() {
        let o = paper_example_oracle();
        let p = Problem::default();
        let cands = enumerate_configs(&o, None, None).unwrap();
        let unc = seqgraph::solve(&o, &p, &cands).unwrap();
        assert_eq!(unc.changes, 2, "unconstrained flips in and out: {unc}");
        let merged = solve(&o, &p, &cands, 1).unwrap();
        assert!(merged.changes <= 1, "{merged}");
        merged.validate(&o, &p, Some(1)).unwrap();
        // Merging (∅,{IX}) or ({IX},∅) into one config: with the index
        // everywhere, cost = 20 + 100+10+100 + ... vs without = 50+500+50.
        assert!(
            merged.total_cost() < Schedule::evaluate(&o, &p, vec![Config::EMPTY; 3]).total_cost()
        );
    }

    fn phased(n: usize, m: usize) -> SyntheticOracle {
        SyntheticOracle::from_fn(
            n,
            m,
            move |stage, cfg| {
                let preferred = (stage * m) / n;
                let minor = (preferred + 1) % m;
                let want = if stage % 2 == 1 { minor } else { preferred };
                if cfg.contains(want) {
                    c(20)
                } else if cfg.contains(preferred) {
                    c(45)
                } else {
                    c(300)
                }
            },
            vec![c(25); m],
            c(1),
            vec![1; m],
        )
    }

    #[test]
    fn always_meets_budget_and_never_beats_optimal() {
        let o = phased(12, 3);
        let p = Problem::paper_experiment();
        let cands = enumerate_configs(&o, None, Some(1)).unwrap();
        let unc = seqgraph::solve(&o, &p, &cands).unwrap();
        for k in 0..unc.changes {
            let merged = solve(&o, &p, &cands, k).unwrap();
            merged.validate(&o, &p, Some(k)).unwrap();
            let optimal = kaware::solve(&o, &p, &cands, k).unwrap();
            assert!(
                merged.total_cost() >= optimal.total_cost(),
                "heuristic beating the optimum is a bug: k={k}"
            );
            // Sanity: it should not be wildly worse on this easy family.
            assert!(
                merged.total_cost().raw() <= optimal.total_cost().raw() * 2,
                "k={k}: merged {} vs optimal {}",
                merged.total_cost(),
                optimal.total_cost()
            );
        }
    }

    #[test]
    fn already_feasible_start_is_returned_unchanged() {
        let o = phased(6, 2);
        let p = Problem::default();
        let cands = enumerate_configs(&o, None, Some(1)).unwrap();
        let unc = seqgraph::solve(&o, &p, &cands).unwrap();
        let s = solve(&o, &p, &cands, unc.changes).unwrap();
        assert_eq!(s, unc);
    }

    #[test]
    fn coalescing_reduces_changes_by_two() {
        // Schedule A B A: merging the middle with either neighbour and
        // replacing by A must coalesce into a single run (−2 changes).
        let o = SyntheticOracle::from_fn(
            3,
            2,
            move |stage, cfg| {
                if stage == 1 && cfg.contains(1) {
                    c(5)
                } else if cfg.contains(0) {
                    c(10)
                } else {
                    c(100)
                }
            },
            vec![c(1), c(1)],
            c(1),
            vec![1, 1],
        );
        let p = Problem::default();
        let a = Config::single(0);
        let b = Config::single(1);
        let start = Schedule::evaluate(&o, &p, vec![a.clone(), b.clone(), a.clone()]);
        assert_eq!(start.changes, 2);
        let refined = refine(&o, &p, &[Config::EMPTY, a, b], 0, &start).unwrap();
        assert_eq!(refined.changes, 0);
        assert_eq!(refined.segments().len(), 1);
    }

    #[test]
    fn strict_mode_k0_falls_back_to_initial() {
        let o = phased(4, 2);
        let p = Problem {
            count_initial_change: true,
            ..Problem::default()
        };
        let cands = enumerate_configs(&o, None, Some(1)).unwrap();
        let s = solve(&o, &p, &cands, 0).unwrap();
        assert_eq!(s.changes, 0);
        assert!(s.configs.iter().all(|c| *c == p.initial));
    }

    #[test]
    fn rejects_mismatched_start() {
        let o = phased(4, 2);
        let p = Problem::default();
        let bogus = Schedule::evaluate(&o, &p, vec![Config::EMPTY; 4]);
        let mut truncated = bogus;
        truncated.configs.pop();
        assert!(refine(&o, &p, &[Config::EMPTY], 0, &truncated).is_err());
    }
}

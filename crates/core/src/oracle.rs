//! The unified cost path: every solver probe of `EXEC`/`SIZE` funnels
//! through this module instead of ad-hoc per-caller memo tables.
//!
//! The layer stacks three ideas:
//!
//! 1. **Relevance projection** (CoPhy's observation): a statement's
//!    cost depends only on the candidate structures the planner could
//!    actually use for it. An oracle that knows its per-stage
//!    [`RelevanceMask`] — and, finer, its per-*part* masks, where a
//!    part is a group of statements sharing one mask — lets the layer
//!    rewrite `exec(i, c)` as `Σ_p exec_part(i, p, c ∩ mask[i][p])`,
//!    so distinct full configurations share cache entries.
//! 2. **Caching**: [`ProjectedOracle`] memoizes projected part costs in
//!    sharded hash maps; [`DenseOracle`] goes further and materializes
//!    each part's full projected cost table up front with a
//!    `std::thread::scope` fan-out, leaving lock-free `Vec<Cost>` reads
//!    on the solver's hot path. The dense cap is per part: a part whose
//!    *relevant* width fits `max_bits` is tabulated in local
//!    coordinates regardless of how wide the overall vocabulary is;
//!    wider parts fall back to the sharded memo.
//! 3. **Instrumentation**: one [`OracleStats`] bundle of atomic
//!    counters is threaded from the raw what-if engine through the
//!    caching layer, so facades can report how many engine cost calls a
//!    solve actually issued versus how many were served projected.
//!
//! Correctness of the rewrite rests on two facts. Costs are saturating
//! non-negative fixed-point integers, so a saturating sum is
//! independent of summand order and grouping (`cdpd-types` proves this
//! in its tests): splitting a stage's statement block into parts cannot
//! change the total. And a structure outside a statement's mask
//! generates no candidate access path and no maintenance charge for it,
//! so adding or removing that structure leaves the statement's plan —
//! hence its cost — untouched; projecting it away is exact, not an
//! approximation. The differential property suite
//! (`tests/oracle_prop.rs`) checks both ends against the raw engine.

use crate::config::Config;
use crate::problem::CostOracle;
use cdpd_types::Cost;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A [`CostOracle`] that is shareable across solver worker threads.
///
/// This is the unified bound every solver entry point uses (previously
/// `cost_curve` demanded `O: CostOracle + Sync` while `robust_curve`
/// asked for bare `CostOracle` — the drift this trait removes). It is
/// blanket-implemented, object-safe (`&dyn SharedOracle` works for
/// holdout lists), and carries no methods of its own.
pub trait SharedOracle: CostOracle + Sync {}

impl<T: CostOracle + Sync + ?Sized> SharedOracle for T {}

// ---------------------------------------------------------------------
// Instrumentation
// ---------------------------------------------------------------------

/// Shared atomic counters for one oracle pipeline.
///
/// Create one `Arc<OracleStats>`, attach it to the raw engine adapter
/// *and* the caching layer (that is what `into_shared`/`into_dense` on
/// `EngineOracle` do), and read a coherent [`OracleStatsSnapshot`] at
/// any point. All counters are monotone; ordering is `Relaxed` because
/// they are statistics, not synchronization.
#[derive(Debug, Default)]
pub struct OracleStats {
    exec_requests: AtomicU64,
    raw_exec_evals: AtomicU64,
    whatif_calls: AtomicU64,
    projected_hits: AtomicU64,
    dense_build_nanos: AtomicU64,
    bytes_resident: AtomicU64,
}

impl OracleStats {
    /// A fresh, shareable counter bundle.
    pub fn shared() -> Arc<OracleStats> {
        Arc::new(OracleStats::default())
    }

    /// One solver-visible `exec(stage, config)` request.
    pub fn record_exec_request(&self) {
        self.exec_requests.fetch_add(1, Ordering::Relaxed);
        cdpd_obs::counter!("oracle.exec_requests").inc();
    }

    /// One projected part cost served from a cache or dense table.
    pub fn record_projected_hit(&self) {
        self.projected_hits.fetch_add(1, Ordering::Relaxed);
        cdpd_obs::counter!("oracle.projected_hits").inc();
    }

    /// One miss that fell through to the inner oracle's `exec_part`.
    pub fn record_raw_eval(&self) {
        self.raw_exec_evals.fetch_add(1, Ordering::Relaxed);
        cdpd_obs::tracked_counter!("oracle.raw_exec_evals").inc();
    }

    /// `n` inner evaluations at once (dense table builds).
    pub fn record_raw_evals(&self, n: u64) {
        self.raw_exec_evals.fetch_add(n, Ordering::Relaxed);
        cdpd_obs::tracked_counter!("oracle.raw_exec_evals").add(n);
    }

    /// `n` underlying what-if engine cost calls (per-statement).
    pub fn record_whatif_calls(&self, n: u64) {
        self.whatif_calls.fetch_add(n, Ordering::Relaxed);
        cdpd_obs::counter!("oracle.whatif_calls").add(n);
    }

    /// Wall time spent materializing dense tables.
    pub fn record_dense_build_nanos(&self, nanos: u64) {
        self.dense_build_nanos.fetch_add(nanos, Ordering::Relaxed);
        cdpd_obs::counter!("oracle.dense_build_nanos").add(nanos);
        cdpd_obs::histogram!("oracle.dense_build_nanos_hist").record(nanos);
    }

    /// `n` more bytes resident in dense tables.
    pub fn record_bytes_resident(&self, n: u64) {
        self.bytes_resident.fetch_add(n, Ordering::Relaxed);
        cdpd_obs::counter!("oracle.bytes_resident").add(n);
        cdpd_obs::gauge!("oracle.bytes_resident").add(n as i64);
    }
}

impl From<&OracleStats> for OracleStatsSnapshot {
    /// A point-in-time copy of every counter in one bundle. For
    /// process-wide totals across bundles, prefer
    /// [`OracleStatsSnapshot::from_registry`].
    fn from(stats: &OracleStats) -> OracleStatsSnapshot {
        OracleStatsSnapshot {
            exec_requests: stats.exec_requests.load(Ordering::Relaxed),
            raw_exec_evals: stats.raw_exec_evals.load(Ordering::Relaxed),
            whatif_calls: stats.whatif_calls.load(Ordering::Relaxed),
            projected_hits: stats.projected_hits.load(Ordering::Relaxed),
            dense_build_nanos: stats.dense_build_nanos.load(Ordering::Relaxed),
            bytes_resident: stats.bytes_resident.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value snapshot of [`OracleStats`], safe to store in results.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OracleStatsSnapshot {
    /// Solver-visible `exec(stage, config)` requests.
    pub exec_requests: u64,
    /// Projected part evaluations that reached the inner oracle.
    pub raw_exec_evals: u64,
    /// Per-statement what-if engine cost calls issued (zero for
    /// oracles with no engine underneath, e.g. synthetic ones).
    pub whatif_calls: u64,
    /// Projected part costs served from a cache or dense table.
    pub projected_hits: u64,
    /// Nanoseconds spent materializing dense tables.
    pub dense_build_nanos: u64,
    /// Bytes resident in dense cost tables.
    pub bytes_resident: u64,
}

impl OracleStatsSnapshot {
    /// Process-wide totals summed over every [`OracleStats`] bundle,
    /// read from the `cdpd-obs` metrics registry (`oracle.*` counters).
    /// This is the registry view to use for whole-process reporting;
    /// `OracleStatsSnapshot::from(&stats)` copies one bundle.
    pub fn from_registry() -> OracleStatsSnapshot {
        let r = cdpd_obs::registry();
        OracleStatsSnapshot {
            exec_requests: r.counter_value("oracle.exec_requests"),
            raw_exec_evals: r.counter_value("oracle.raw_exec_evals"),
            whatif_calls: r.counter_value("oracle.whatif_calls"),
            projected_hits: r.counter_value("oracle.projected_hits"),
            dense_build_nanos: r.counter_value("oracle.dense_build_nanos"),
            bytes_resident: r.counter_value("oracle.bytes_resident"),
        }
    }
}

impl std::fmt::Display for OracleStatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let total = self.raw_exec_evals + self.projected_hits;
        let hit_pct = if total == 0 {
            0.0
        } else {
            100.0 * self.projected_hits as f64 / total as f64
        };
        write!(
            f,
            "{} exec requests, {} raw evals, {} projected hits ({:.1}%), \
             {} what-if calls, dense build {:.2} ms, {:.1} KiB resident",
            self.exec_requests,
            self.raw_exec_evals,
            self.projected_hits,
            hit_pct,
            self.whatif_calls,
            self.dense_build_nanos as f64 / 1e6,
            self.bytes_resident as f64 / 1024.0,
        )
    }
}

// ---------------------------------------------------------------------
// Relevance
// ---------------------------------------------------------------------

/// Per-stage masks of the structures that can affect each stage's cost.
///
/// `exec(i, c) == exec(i, c ∩ stage(i))` for any config `c` — the
/// contract that makes projection exact. A mask of all ones is always
/// sound (it projects nothing away).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelevanceMask {
    masks: Vec<Config>,
}

impl RelevanceMask {
    /// Build from explicit per-stage masks.
    pub fn new(masks: Vec<Config>) -> RelevanceMask {
        RelevanceMask { masks }
    }

    /// The trivial (project-nothing) mask: all structures relevant to
    /// every stage.
    pub fn full(n_stages: usize, n_structures: usize) -> RelevanceMask {
        RelevanceMask {
            masks: vec![Config::full(n_structures); n_stages],
        }
    }

    /// The mask for `stage`.
    pub fn stage(&self, stage: usize) -> &Config {
        &self.masks[stage]
    }

    /// Project `config` onto `stage`'s relevant structures.
    pub fn project(&self, stage: usize, config: &Config) -> Config {
        config.intersect(&self.masks[stage])
    }

    /// The union of every stage's mask: all structures that can affect
    /// any stage's cost — the active set of CoPhy-style decomposition.
    pub fn union_all(&self) -> Config {
        self.masks.iter().fold(Config::EMPTY, |acc, m| acc.union(m))
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.masks.len()
    }

    /// True if there are no stages.
    pub fn is_empty(&self) -> bool {
        self.masks.is_empty()
    }

    /// The widest stage mask, in structures.
    pub fn max_width(&self) -> usize {
        self.masks.iter().map(|m| m.len()).max().unwrap_or(0)
    }
}

/// An oracle that can expose the relevance structure of its stages.
///
/// The default implementation is always sound: one part per stage whose
/// mask covers every structure (projection becomes the identity).
/// Engine-backed oracles override all four methods to split each
/// stage's statement block into *parts* — groups of statements sharing
/// one relevance mask — which is what unlocks cache sharing across
/// distinct full configurations.
///
/// # Contract
///
/// For every stage `i` and config `c`:
///
/// * `exec(i, c) == Σ_p exec_part(i, p, c ∩ part_mask(i, p))` — the
///   part decomposition is exact (saturating sums are grouping-
///   independent, so any partition of the statement block qualifies);
/// * `exec_part(i, p, c)` may assume the caller already projected `c`
///   onto `part_mask(i, p)`, and must depend only on that projection;
/// * `relevance_mask(i)` is the union of the stage's part masks.
pub trait ProjectableOracle: CostOracle {
    /// Structures that can affect `stage`'s cost.
    fn relevance_mask(&self, _stage: usize) -> Config {
        Config::full(self.n_structures())
    }

    /// Number of equal-mask statement groups within `stage`.
    fn n_parts(&self, _stage: usize) -> usize {
        1
    }

    /// Structures that can affect `part`'s statements.
    fn part_mask(&self, stage: usize, _part: usize) -> Config {
        self.relevance_mask(stage)
    }

    /// `EXEC` restricted to one part's statements. `config` is the
    /// caller-projected sub-configuration.
    fn exec_part(&self, stage: usize, _part: usize, config: &Config) -> Cost {
        self.exec(stage, config)
    }
}

/// Adapter stripping an oracle's relevance info: single full-mask part
/// per stage, so a [`ProjectedOracle`] over it degenerates to exactly
/// the seed `MemoOracle` behavior — one cache entry per distinct
/// `(stage, full config)`. Exists for baselines and differential tests.
pub struct Unprojected<O>(pub O);

impl<O: CostOracle> CostOracle for Unprojected<O> {
    fn n_stages(&self) -> usize {
        self.0.n_stages()
    }
    fn n_structures(&self) -> usize {
        self.0.n_structures()
    }
    fn exec(&self, stage: usize, config: &Config) -> Cost {
        self.0.exec(stage, config)
    }
    fn trans(&self, from: &Config, to: &Config) -> Cost {
        self.0.trans(from, to)
    }
    fn size(&self, config: &Config) -> u64 {
        self.0.size(config)
    }
}

impl<O: CostOracle> ProjectableOracle for Unprojected<O> {}

// ---------------------------------------------------------------------
// Sharded memo
// ---------------------------------------------------------------------

const SHARDS: usize = 16;

/// A fixed-shard concurrent memo table. Values must be cheap to copy;
/// racing computations of the same key are benign because oracles are
/// pure (both writers insert the same value).
struct Sharded<K, V> {
    shards: Vec<Mutex<HashMap<K, V>>>,
}

impl<K: Eq + std::hash::Hash, V: Copy> Sharded<K, V> {
    fn new() -> Sharded<K, V> {
        Sharded {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, h: u64) -> &Mutex<HashMap<K, V>> {
        &self.shards[(h as usize) & (SHARDS - 1)]
    }

    fn get(&self, h: u64, key: &K) -> Option<V> {
        self.shard(h)
            .lock()
            .expect("oracle cache lock")
            .get(key)
            .copied()
    }

    fn insert(&self, h: u64, key: K, value: V) {
        self.shard(h)
            .lock()
            .expect("oracle cache lock")
            .insert(key, value);
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("oracle cache lock").len())
            .sum()
    }

    /// Keep only entries whose key satisfies `keep`; returns the number
    /// of evicted entries.
    fn retain(&self, mut keep: impl FnMut(&K) -> bool) -> usize {
        let mut evicted = 0;
        for shard in &self.shards {
            let mut map = shard.lock().expect("oracle cache lock");
            let before = map.len();
            map.retain(|k, _| keep(k));
            evicted += before - map.len();
        }
        evicted
    }

    /// Drop every entry; returns the number of evicted entries.
    fn clear(&self) -> usize {
        self.retain(|_| false)
    }
}

/// Fibonacci-style mixer choosing a shard from a two-word key. Not a
/// general hash: it only needs to spread (stage, config) pairs evenly.
fn shard_hash(a: u64, b: u64) -> u64 {
    let mut x = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.wrapping_mul(0xD1B5_4A32_D192_ED03));
    x ^= x >> 32;
    x
}

fn part_key(stage: usize, part: usize) -> u64 {
    ((stage as u64) << 24) | part as u64
}

// ---------------------------------------------------------------------
// ProjectedOracle
// ---------------------------------------------------------------------

/// The sharded-memo caching layer: rewrites `exec(i, c)` to a sum of
/// per-part lookups keyed by the *projected* sub-configuration
/// `c ∩ part_mask`, so distinct full configs that agree on a part's
/// relevant structures share one cache entry. `trans` is not cached
/// (engine transition costs are already a cheap set difference);
/// `size` is memoized per config.
///
/// Over an oracle with no relevance info (the [`ProjectableOracle`]
/// defaults, or [`Unprojected`]) this behaves exactly like the seed
/// `MemoOracle` did: one cache entry per distinct `(stage, config)`.
pub struct ProjectedOracle<O> {
    inner: O,
    stats: Arc<OracleStats>,
    exec_cache: Sharded<(u64, Config), Cost>,
    size_cache: Sharded<Config, u64>,
}

impl<O: ProjectableOracle> ProjectedOracle<O> {
    /// Wrap `inner` with a fresh stats bundle.
    pub fn new(inner: O) -> ProjectedOracle<O> {
        ProjectedOracle::with_stats(inner, OracleStats::shared())
    }

    /// Wrap `inner`, recording into an existing `stats` bundle (share
    /// it with the raw engine adapter to also capture what-if calls).
    pub fn with_stats(inner: O, stats: Arc<OracleStats>) -> ProjectedOracle<O> {
        ProjectedOracle {
            inner,
            stats,
            exec_cache: Sharded::new(),
            size_cache: Sharded::new(),
        }
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Mutable access to the wrapped oracle, for in-place growth (e.g.
    /// appending stages for a new window). The memo is keyed by
    /// `(stage, part)`, so *appending* stages leaves every cached entry
    /// valid — that is the warm-start contract. Callers that mutate
    /// *existing* stages must follow up with [`Self::retain_parts`] /
    /// [`Self::invalidate_sizes`] to evict what changed.
    pub fn inner_mut(&mut self) -> &mut O {
        &mut self.inner
    }

    /// Unwrap.
    pub fn into_inner(self) -> O {
        self.inner
    }

    /// The shared stats bundle.
    pub fn stats(&self) -> &Arc<OracleStats> {
        &self.stats
    }

    /// A point-in-time copy of the counters.
    pub fn stats_snapshot(&self) -> OracleStatsSnapshot {
        OracleStatsSnapshot::from(&*self.stats)
    }

    /// Number of distinct projected part evaluations cached so far
    /// (the seed `MemoOracle` reported distinct `(stage, config)`
    /// pairs; with relevance info the unit is finer: `(stage, part,
    /// projected config)`).
    pub fn exec_evaluations(&self) -> usize {
        self.exec_cache.len()
    }

    /// Warm-start invalidation: keep only memo entries for the
    /// `(stage, part)` pairs `keep` accepts, evicting the rest (e.g.
    /// the stages whose statistics a DML batch changed). Returns the
    /// number of evicted entries. Entries for untouched stages stay
    /// warm across the re-solve — the point of the online pipeline.
    pub fn retain_parts(&self, mut keep: impl FnMut(usize, usize) -> bool) -> usize {
        let evicted = self.exec_cache.retain(|&(sp, _)| {
            let stage = (sp >> 24) as usize;
            let part = (sp & 0x00FF_FFFF) as usize;
            keep(stage, part)
        });
        if evicted > 0 {
            cdpd_obs::counter!("oracle.memo_evictions").add(evicted as u64);
        }
        evicted
    }

    /// Drop every memoized `size(config)` entry. Needed when the
    /// underlying statistics change (structure sizes are derived from
    /// table statistics, not per-stage costs, so `retain_parts` cannot
    /// reach them). Returns the number of evicted entries.
    pub fn invalidate_sizes(&self) -> usize {
        self.size_cache.clear()
    }
}

impl<O: ProjectableOracle> CostOracle for ProjectedOracle<O> {
    fn n_stages(&self) -> usize {
        self.inner.n_stages()
    }

    fn n_structures(&self) -> usize {
        self.inner.n_structures()
    }

    fn exec(&self, stage: usize, config: &Config) -> Cost {
        self.stats.record_exec_request();
        let mut total = Cost::ZERO;
        for part in 0..self.inner.n_parts(stage) {
            let projected = config.intersect(&self.inner.part_mask(stage, part));
            let pk = part_key(stage, part);
            let h = shard_hash(pk, projected.shard_key());
            let key = (pk, projected);
            if let Some(c) = self.exec_cache.get(h, &key) {
                self.stats.record_projected_hit();
                total += c;
                continue;
            }
            let c = self.inner.exec_part(stage, part, &key.1);
            self.stats.record_raw_eval();
            self.exec_cache.insert(h, key, c);
            total += c;
        }
        total
    }

    fn trans(&self, from: &Config, to: &Config) -> Cost {
        self.inner.trans(from, to)
    }

    fn size(&self, config: &Config) -> u64 {
        let h = shard_hash(config.shard_key(), 0x5153);
        if let Some(s) = self.size_cache.get(h, config) {
            return s;
        }
        let s = self.inner.size(config);
        self.size_cache.insert(h, config.clone(), s);
        s
    }
}

/// A `ProjectedOracle` is itself projectable — the partition metadata
/// delegates to the wrapped oracle. This lets decomposition adapters
/// ([`crate::decompose::LocalOracle`]) rename through a *warm* memo:
/// cost probes still funnel through [`ProjectedOracle::exec`]'s cache,
/// while masks come straight from the source oracle.
impl<O: ProjectableOracle> ProjectableOracle for ProjectedOracle<O> {
    fn relevance_mask(&self, stage: usize) -> Config {
        self.inner.relevance_mask(stage)
    }

    fn n_parts(&self, stage: usize) -> usize {
        self.inner.n_parts(stage)
    }

    fn part_mask(&self, stage: usize, part: usize) -> Config {
        self.inner.part_mask(stage, part)
    }

    fn exec_part(&self, stage: usize, part: usize, config: &Config) -> Cost {
        self.inner.exec_part(stage, part, config)
    }
}

// ---------------------------------------------------------------------
// DenseOracle
// ---------------------------------------------------------------------

/// Widest part mask (in structures) that [`DenseOracle`] will tabulate
/// by default; wider parts fall back to the sharded memo. The cap is on
/// a part's *relevant* width — how many structures its statements can
/// use — never on the vocabulary, so a 256-candidate instance whose
/// statements each touch a handful of structures still tabulates fully,
/// in local (mask-compressed) coordinates. `2^12` costs × 8 bytes =
/// 32 KiB per part at the cap.
pub const DENSE_MAX_BITS: usize = 12;

struct DensePart {
    mask: Config,
    /// `table[c.pext_code(&mask)]`, present iff the mask's width fits
    /// the cap — a local-coordinate cost table.
    table: Option<Vec<Cost>>,
}

/// Up-front materialization of every part's projected cost table.
///
/// Construction fans out over chunks of stages with
/// `std::thread::scope` (each worker owns a disjoint slice, so the
/// build is deterministic and lock-free); afterwards the solver hot
/// path is a pure `Vec<Cost>` index — no locks, no hashing. Parts
/// whose mask is wider than `max_bits` are not tabulated and served
/// through a sharded memo instead (the width-capped fallback).
pub struct DenseOracle<O> {
    inner: O,
    stats: Arc<OracleStats>,
    stages: Vec<Vec<DensePart>>,
    max_bits: usize,
    overflow: Sharded<(u64, Config), Cost>,
    size_cache: Sharded<Config, u64>,
}

/// Materialize dense part tables for `count` stages starting at
/// `first_stage`, fanning the evaluation out over a `thread::scope`
/// (each worker owns a disjoint slice, so the build is deterministic
/// and lock-free). Shared by the constructor (`first_stage = 0`) and
/// [`DenseOracle::extend`] (appended suffix only).
fn build_stage_tables<O: ProjectableOracle + Sync>(
    inner: &O,
    first_stage: usize,
    count: usize,
    max_bits: usize,
) -> Vec<Vec<DensePart>> {
    let mut stages: Vec<Vec<DensePart>> = (0..count)
        .map(|off| {
            let s = first_stage + off;
            (0..inner.n_parts(s))
                .map(|p| DensePart {
                    mask: inner.part_mask(s, p),
                    table: None,
                })
                .collect()
        })
        .collect();

    let workers = std::thread::available_parallelism()
        .map_or(1, |n| n.get())
        .clamp(1, 16);
    let chunk = count.div_ceil(workers.max(1)).max(1);
    std::thread::scope(|scope| {
        for (chunk_idx, chunk_slice) in stages.chunks_mut(chunk).enumerate() {
            let base = first_stage + chunk_idx * chunk;
            scope.spawn(move || {
                let _span = cdpd_obs::span!("oracle.dense.build.chunk", chunk = chunk_idx);
                for (off, parts) in chunk_slice.iter_mut().enumerate() {
                    let stage = base + off;
                    for (p, part) in parts.iter_mut().enumerate() {
                        let width = part.mask.len();
                        if width > max_bits {
                            continue;
                        }
                        let mask = &part.mask;
                        let table = (0..1u64 << width)
                            .map(|code| inner.exec_part(stage, p, &Config::pdep_code(code, mask)))
                            .collect();
                        part.table = Some(table);
                    }
                }
            });
        }
    });
    stages
}

fn table_entries(stages: &[Vec<DensePart>]) -> u64 {
    stages
        .iter()
        .flatten()
        .filter_map(|p| p.table.as_ref())
        .map(|t| t.len() as u64)
        .sum()
}

impl<O: ProjectableOracle + Sync> DenseOracle<O> {
    /// Materialize with the default width cap ([`DENSE_MAX_BITS`]).
    pub fn new(inner: O) -> DenseOracle<O> {
        DenseOracle::with_stats(inner, OracleStats::shared(), DENSE_MAX_BITS)
    }

    /// Materialize, recording into `stats`, tabulating parts up to
    /// `max_bits` mask width (`max_bits = 0` disables tabulation
    /// entirely, leaving a pure sharded-memo oracle). `max_bits` must
    /// stay below 26 — a table bigger than that is hundreds of MiB and
    /// certainly a bug.
    pub fn with_stats(inner: O, stats: Arc<OracleStats>, max_bits: usize) -> DenseOracle<O> {
        assert!(max_bits < 26, "dense table cap unreasonably wide");
        let _span = cdpd_obs::span!(
            "oracle.dense.build",
            stages = inner.n_stages(),
            max_bits = max_bits
        );
        let started = Instant::now();
        let n_stages = inner.n_stages();
        let stages = build_stage_tables(&inner, 0, n_stages, max_bits);
        let entries = table_entries(&stages);
        stats.record_dense_build_nanos(started.elapsed().as_nanos() as u64);
        stats.record_bytes_resident(entries * std::mem::size_of::<Cost>() as u64);
        stats.record_raw_evals(entries);
        DenseOracle {
            inner,
            stats,
            stages,
            max_bits,
            overflow: Sharded::new(),
            size_cache: Sharded::new(),
        }
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Mutable access to the wrapped oracle, for in-place growth. Dense
    /// tables are indexed by stage, so *appending* stages leaves every
    /// existing table valid — call [`Self::extend`] afterwards to
    /// materialize tables for the new suffix. Mutating existing stages
    /// would silently desynchronize the tables; rebuild instead.
    pub fn inner_mut(&mut self) -> &mut O {
        &mut self.inner
    }

    /// Materialize tables for stages the inner oracle gained since this
    /// wrapper was built (grow it through [`Self::inner_mut`], then call
    /// this). Existing stage tables and overflow-memo entries stay warm;
    /// only the appended suffix is evaluated. Returns the number of
    /// stages added.
    pub fn extend(&mut self) -> usize {
        let built = self.stages.len();
        let now = self.inner.n_stages();
        assert!(
            now >= built,
            "inner oracle lost stages under a DenseOracle ({built} -> {now})"
        );
        if now == built {
            return 0;
        }
        let _span = cdpd_obs::span!("oracle.dense.extend", from = built, to = now);
        let started = Instant::now();
        let new_stages = build_stage_tables(&self.inner, built, now - built, self.max_bits);
        let entries = table_entries(&new_stages);
        self.stages.extend(new_stages);
        self.stats
            .record_dense_build_nanos(started.elapsed().as_nanos() as u64);
        self.stats
            .record_bytes_resident(entries * std::mem::size_of::<Cost>() as u64);
        self.stats.record_raw_evals(entries);
        now - built
    }

    /// The shared stats bundle.
    pub fn stats(&self) -> &Arc<OracleStats> {
        &self.stats
    }

    /// A point-in-time copy of the counters.
    pub fn stats_snapshot(&self) -> OracleStatsSnapshot {
        OracleStatsSnapshot::from(&*self.stats)
    }

    /// True if every part of every stage was tabulated (no part fell
    /// back to memo mode).
    pub fn is_fully_dense(&self) -> bool {
        self.stages.iter().flatten().all(|p| p.table.is_some())
    }
}

impl<O: ProjectableOracle + Sync> CostOracle for DenseOracle<O> {
    fn n_stages(&self) -> usize {
        self.inner.n_stages()
    }

    fn n_structures(&self) -> usize {
        self.inner.n_structures()
    }

    fn exec(&self, stage: usize, config: &Config) -> Cost {
        self.stats.record_exec_request();
        let mut total = Cost::ZERO;
        for (p, part) in self.stages[stage].iter().enumerate() {
            let projected = config.intersect(&part.mask);
            if let Some(table) = &part.table {
                self.stats.record_projected_hit();
                total += table[projected.pext_code(&part.mask) as usize];
                continue;
            }
            // Fallback: this part's mask was too wide to tabulate.
            let pk = part_key(stage, p);
            let h = shard_hash(pk, projected.shard_key());
            let key = (pk, projected);
            if let Some(c) = self.overflow.get(h, &key) {
                self.stats.record_projected_hit();
                total += c;
                continue;
            }
            let c = self.inner.exec_part(stage, p, &key.1);
            self.stats.record_raw_eval();
            self.overflow.insert(h, key, c);
            total += c;
        }
        total
    }

    fn trans(&self, from: &Config, to: &Config) -> Cost {
        self.inner.trans(from, to)
    }

    fn size(&self, config: &Config) -> u64 {
        let h = shard_hash(config.shard_key(), 0x5153);
        if let Some(s) = self.size_cache.get(h, config) {
            return s;
        }
        let s = self.inner.size(config);
        self.size_cache.insert(h, config.clone(), s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::SyntheticOracle;

    fn c(io: u64) -> Cost {
        Cost::from_ios(io)
    }

    /// A hand-rolled projectable oracle: two parts per stage with masks
    /// {0,1} and {2}, exec = per-part affine functions, so projection
    /// effects are observable.
    struct TwoPart {
        n_stages: usize,
        evals: AtomicU64,
    }

    impl CostOracle for TwoPart {
        fn n_stages(&self) -> usize {
            self.n_stages
        }
        fn n_structures(&self) -> usize {
            4 // structure 3 is relevant to nothing
        }
        fn exec(&self, stage: usize, config: &Config) -> Cost {
            self.exec_part(stage, 0, &config.intersect(&Config::from_bits(0b0011)))
                + self.exec_part(stage, 1, &config.intersect(&Config::from_bits(0b0100)))
        }
        fn trans(&self, from: &Config, to: &Config) -> Cost {
            c(10).scale(to.minus(from).len() as u64)
        }
        fn size(&self, config: &Config) -> u64 {
            config.len() as u64 * 7
        }
    }

    impl ProjectableOracle for TwoPart {
        fn relevance_mask(&self, _stage: usize) -> Config {
            Config::from_bits(0b0111)
        }
        fn n_parts(&self, _stage: usize) -> usize {
            2
        }
        fn part_mask(&self, _stage: usize, part: usize) -> Config {
            [Config::from_bits(0b0011), Config::from_bits(0b0100)][part].clone()
        }
        fn exec_part(&self, stage: usize, part: usize, config: &Config) -> Cost {
            self.evals.fetch_add(1, Ordering::Relaxed);
            c(1000 + 100 * stage as u64 + 10 * part as u64 + config.bits())
        }
    }

    fn two_part() -> TwoPart {
        TwoPart {
            n_stages: 3,
            evals: AtomicU64::new(0),
        }
    }

    #[test]
    fn relevance_mask_projects() {
        let m = RelevanceMask::new(vec![Config::from_bits(0b011), Config::from_bits(0b110)]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.max_width(), 2);
        assert_eq!(m.union_all(), Config::from_bits(0b111));
        assert_eq!(
            m.project(0, &Config::from_bits(0b111)),
            Config::from_bits(0b011)
        );
        assert_eq!(
            m.project(1, &Config::from_bits(0b101)),
            Config::from_bits(0b100)
        );
        let full = RelevanceMask::full(2, 64);
        assert_eq!(*full.stage(0), Config::from_bits(u64::MAX));
        let wide = RelevanceMask::full(2, 130);
        assert_eq!(wide.max_width(), 130);
    }

    #[test]
    fn projected_shares_entries_across_full_configs() {
        let o = ProjectedOracle::new(two_part());
        // Configs 0b1000 and 0b0000 agree on every part mask.
        let a = o.exec(0, &Config::from_bits(0b1000));
        let b = o.exec(0, &Config::EMPTY);
        assert_eq!(a, b);
        assert_eq!(
            o.exec_evaluations(),
            2,
            "two parts, one projected entry each"
        );
        assert_eq!(o.inner().evals.load(Ordering::Relaxed), 2);
        let snap = o.stats_snapshot();
        assert_eq!(snap.exec_requests, 2);
        assert_eq!(snap.raw_exec_evals, 2);
        assert_eq!(snap.projected_hits, 2);
    }

    #[test]
    fn projected_matches_raw() {
        let raw = two_part();
        let o = ProjectedOracle::new(two_part());
        for stage in 0..3 {
            for bits in 0..16u64 {
                let cfg = Config::from_bits(bits);
                assert_eq!(
                    o.exec(stage, &cfg),
                    raw.exec(stage, &cfg),
                    "EXEC({stage},{cfg})"
                );
            }
        }
        for bits in 0..16u64 {
            let cfg = Config::from_bits(bits);
            assert_eq!(o.size(&cfg), raw.size(&cfg));
            assert_eq!(
                o.trans(&Config::EMPTY, &cfg),
                raw.trans(&Config::EMPTY, &cfg)
            );
        }
        // 3 stages × (4 + 2) distinct projected part configs.
        assert_eq!(o.exec_evaluations(), 18);
    }

    #[test]
    fn dense_matches_raw_and_reads_lock_free() {
        let raw = two_part();
        let o = DenseOracle::new(two_part());
        assert!(o.is_fully_dense());
        // Tables were built eagerly: 3 stages × (2^2 + 2^1) entries.
        assert_eq!(o.stats_snapshot().raw_exec_evals, 18);
        assert_eq!(o.inner().evals.load(Ordering::Relaxed), 18);
        for stage in 0..3 {
            for bits in 0..16u64 {
                let cfg = Config::from_bits(bits);
                assert_eq!(
                    o.exec(stage, &cfg),
                    raw.exec(stage, &cfg),
                    "EXEC({stage},{cfg})"
                );
            }
        }
        // No post-build inner evaluations: all reads hit the tables.
        assert_eq!(o.inner().evals.load(Ordering::Relaxed), 18);
        assert!(o.stats_snapshot().bytes_resident > 0);
        assert!(o.stats_snapshot().dense_build_nanos > 0);
    }

    #[test]
    fn dense_width_cap_falls_back_to_memo() {
        let o = DenseOracle::with_stats(two_part(), OracleStats::shared(), 1);
        assert!(!o.is_fully_dense(), "the 2-wide part must overflow");
        // Only the 1-wide part {2} was tabulated: 3 stages × 2 entries.
        assert_eq!(o.stats_snapshot().raw_exec_evals, 6);
        let raw = two_part();
        for stage in 0..3 {
            for bits in 0..16u64 {
                let cfg = Config::from_bits(bits);
                assert_eq!(
                    o.exec(stage, &cfg),
                    raw.exec(stage, &cfg),
                    "EXEC({stage},{cfg})"
                );
            }
        }
        // Overflow memo: 3 stages × 4 projected configs of part {0,1}.
        assert_eq!(o.stats_snapshot().raw_exec_evals, 6 + 12);
        // Re-probing adds nothing.
        o.exec(0, &Config::from_bits(0b11));
        assert_eq!(o.stats_snapshot().raw_exec_evals, 18);
    }

    #[test]
    fn unprojected_restores_seed_memo_granularity() {
        let o = ProjectedOracle::new(Unprojected(two_part()));
        o.exec(0, &Config::from_bits(0b1000));
        o.exec(0, &Config::EMPTY);
        // Without relevance info these configs are distinct cache keys.
        assert_eq!(o.exec_evaluations(), 2);
        o.exec(0, &Config::from_bits(0b1000));
        assert_eq!(o.exec_evaluations(), 2, "repeat probe is a hit");
    }

    #[test]
    fn retain_parts_evicts_only_named_stages() {
        let o = ProjectedOracle::new(two_part());
        for stage in 0..3 {
            o.exec(stage, &Config::from_bits(0b011));
        }
        assert_eq!(o.exec_evaluations(), 6, "3 stages × 2 parts");
        // Invalidate stage 1 only (a DML batch touched its statements).
        let evicted = o.retain_parts(|stage, _part| stage != 1);
        assert_eq!(evicted, 2);
        assert_eq!(o.exec_evaluations(), 4);
        let before = o.inner().evals.load(Ordering::Relaxed);
        // Warm stages re-probe without inner evaluations...
        o.exec(0, &Config::from_bits(0b011));
        o.exec(2, &Config::from_bits(0b011));
        assert_eq!(o.inner().evals.load(Ordering::Relaxed), before);
        // ...the evicted stage goes back to the inner oracle.
        o.exec(1, &Config::from_bits(0b011));
        assert_eq!(o.inner().evals.load(Ordering::Relaxed), before + 2);
    }

    #[test]
    fn size_cache_invalidation() {
        let o = ProjectedOracle::new(two_part());
        assert_eq!(o.size(&Config::from_bits(0b11)), 14);
        assert_eq!(o.invalidate_sizes(), 1);
        assert_eq!(o.invalidate_sizes(), 0, "second clear finds nothing");
        assert_eq!(o.size(&Config::from_bits(0b11)), 14);
    }

    #[test]
    fn dense_extend_appends_stages_without_rebuilding() {
        let mut o = DenseOracle::new(two_part());
        assert_eq!(o.n_stages(), 3);
        let built = o.inner().evals.load(Ordering::Relaxed);
        assert_eq!(o.extend(), 0, "nothing appended yet");
        assert_eq!(o.inner().evals.load(Ordering::Relaxed), built);
        // Grow the inner oracle by two stages, then extend.
        o.inner_mut().n_stages = 5;
        assert_eq!(o.extend(), 2);
        assert!(o.is_fully_dense());
        // Only the new stages were evaluated: 2 stages × (2^2 + 2^1).
        assert_eq!(o.inner().evals.load(Ordering::Relaxed), built + 12);
        let raw = TwoPart {
            n_stages: 5,
            evals: AtomicU64::new(0),
        };
        for stage in 0..5 {
            for bits in 0..16u64 {
                let cfg = Config::from_bits(bits);
                assert_eq!(
                    o.exec(stage, &cfg),
                    raw.exec(stage, &cfg),
                    "EXEC({stage},{cfg})"
                );
            }
        }
        // Reads after extend never touch the inner oracle.
        assert_eq!(o.inner().evals.load(Ordering::Relaxed), built + 12);
    }

    /// A sparse wide oracle: 200 structures, but each stage's only
    /// relevant part is 3 structures around `stage * 7` — the CoPhy
    /// regime the dense layer must tabulate in local coordinates.
    struct SparseWide {
        n_stages: usize,
        evals: AtomicU64,
    }

    impl SparseWide {
        fn mask(&self, stage: usize) -> Config {
            let base = stage * 7;
            Config::EMPTY.with(base).with(base + 64).with(base + 150)
        }
    }

    impl CostOracle for SparseWide {
        fn n_stages(&self) -> usize {
            self.n_stages
        }
        fn n_structures(&self) -> usize {
            200
        }
        fn exec(&self, stage: usize, config: &Config) -> Cost {
            self.exec_part(stage, 0, &config.intersect(&self.mask(stage)))
        }
        fn trans(&self, from: &Config, to: &Config) -> Cost {
            c(10).scale(to.minus(from).len() as u64)
        }
        fn size(&self, config: &Config) -> u64 {
            config.len() as u64
        }
    }

    impl ProjectableOracle for SparseWide {
        fn relevance_mask(&self, stage: usize) -> Config {
            self.mask(stage)
        }
        fn exec_part(&self, stage: usize, _part: usize, config: &Config) -> Cost {
            self.evals.fetch_add(1, Ordering::Relaxed);
            // Depend on *which* of the mask's structures are present.
            c(1000 + 100 * config.pext_code(&self.mask(stage)))
        }
    }

    #[test]
    fn dense_tabulates_wide_vocabulary_with_narrow_parts() {
        let o = DenseOracle::new(SparseWide {
            n_stages: 4,
            evals: AtomicU64::new(0),
        });
        // Every part is 3 relevant structures out of 200 — all
        // tabulated, in local coordinates: 4 stages × 2^3 entries.
        assert!(o.is_fully_dense());
        assert_eq!(o.stats_snapshot().raw_exec_evals, 32);
        let raw = SparseWide {
            n_stages: 4,
            evals: AtomicU64::new(0),
        };
        for stage in 0..4 {
            for probe in [
                Config::EMPTY,
                Config::single(stage * 7),
                Config::single(stage * 7 + 64),
                Config::full(200),
                Config::EMPTY
                    .with(stage * 7)
                    .with(stage * 7 + 150)
                    .with(199),
            ] {
                assert_eq!(
                    o.exec(stage, &probe),
                    raw.exec(stage, &probe),
                    "EXEC({stage},{probe})"
                );
            }
        }
        // All table hits — no post-build inner evaluations.
        assert_eq!(o.inner().evals.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn projected_caches_spilled_configs() {
        let o = ProjectedOracle::new(Unprojected(SparseWide {
            n_stages: 2,
            evals: AtomicU64::new(0),
        }));
        let wide = Config::EMPTY.with(0).with(64).with(150);
        let a = o.exec(0, &wide);
        assert_eq!(o.exec(0, &wide), a, "memo hit on a spilled key");
        assert_eq!(o.inner().0.evals.load(Ordering::Relaxed), 1);
        assert_eq!(o.size(&wide), 3);
        o.size(&wide);
        assert_eq!(o.invalidate_sizes(), 1);
    }

    #[test]
    fn shared_oracle_is_object_safe_and_unified() {
        let o = SyntheticOracle::from_fn(
            2,
            2,
            |s, cfg| c(10 + s as u64 + cfg.len() as u64),
            vec![c(1), c(2)],
            c(1),
            vec![1, 2],
        );
        let as_dyn: &dyn SharedOracle = &o;
        assert_eq!(as_dyn.exec(0, &Config::EMPTY), c(10));
        fn takes_shared<O: SharedOracle>(o: &O) -> usize {
            o.n_stages()
        }
        assert_eq!(takes_shared(&o), 2);
    }

    #[test]
    fn stats_display_is_readable() {
        let stats = OracleStats::default();
        stats.record_exec_request();
        stats.record_raw_eval();
        stats.record_projected_hit();
        stats.record_whatif_calls(5);
        let line = OracleStatsSnapshot::from(&stats).to_string();
        assert!(line.contains("1 exec requests"), "{line}");
        assert!(line.contains("(50.0%)"), "{line}");
        assert!(line.contains("5 what-if calls"), "{line}");
    }
}

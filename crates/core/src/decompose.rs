//! CoPhy-style candidate decomposition (Dash, Polyzotis, Ailamaki,
//! arXiv 1104.3214): solve in *local* coordinates over the structures
//! the workload can actually use, not the full vocabulary.
//!
//! The observation is the same one the relevance projection in
//! [`crate::oracle`] exploits, lifted from the cache to the solver: a
//! stage's cost depends only on the structures in its relevance mask,
//! so the union of every stage's mask — plus the problem's boundary
//! configurations — is a complete *active set*. Structures outside it
//! cannot change any schedule's exec cost, and no optimal schedule
//! builds them (they cost transition I/Os and space for nothing). A
//! [`Decomposition`] renames the active set to a dense `0..a` local
//! index space; solvers, dense tables, and memo keys then scale with
//! `a` (relevant structures), not `m` (vocabulary width). On an
//! instance whose active set fits one word the localized solve is
//! bit-identical to solving the narrow instance directly — localization
//! is a pure index relabeling, not an approximation.
//!
//! The pieces compose: [`Decomposition::from_oracle`] computes the
//! active set, [`LocalOracle`] presents the inner oracle in local
//! coordinates, [`Decomposition::globalize_schedule`] maps a local
//! solution back, and [`solve_decomposed`] bundles the round trip.

use crate::config::{enumerate_configs, Config};
use crate::oracle::{ProjectableOracle, RelevanceMask};
use crate::problem::{CostOracle, Problem};
use crate::schedule::Schedule;
use crate::{greedy, kaware};
use cdpd_types::{Cost, Result};

/// Widest vocabulary for which [`candidate_configs`] still enumerates
/// every subset (`2^12 = 4096` candidates); wider instances switch to
/// greedy per-stage candidate derivation.
pub const ENUMERABLE_WIDTH: usize = 12;

/// A rename of the workload's *active* structures — the union of every
/// stage's relevance mask and the problem's boundary configurations —
/// onto the dense local index space `0..n_local()`.
///
/// Localization is exact for any configuration that is a subset of the
/// active set (`globalize(localize(c)) == c`); for other configurations
/// it projects the irrelevant structures away, which leaves every exec
/// cost unchanged by the relevance contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Decomposition {
    active: Config,
    /// Select table: local index → global structure index.
    members: Vec<usize>,
}

impl Decomposition {
    /// Decompose around an oracle's relevance masks. `pinned` is unioned
    /// into the active set — pass any configurations that must survive
    /// the round trip exactly (an online advisor's committed prefix, for
    /// example) beyond the problem's own boundary configurations, which
    /// are always included.
    pub fn from_oracle<O: ProjectableOracle + ?Sized>(
        oracle: &O,
        problem: &Problem,
        pinned: &[Config],
    ) -> Decomposition {
        let mut active = problem.initial.clone();
        if let Some(f) = &problem.final_config {
            active = active.union(f);
        }
        for stage in 0..oracle.n_stages() {
            active = active.union(&oracle.relevance_mask(stage));
        }
        for cfg in pinned {
            active = active.union(cfg);
        }
        Decomposition::from_active(active)
    }

    /// Decompose around explicit per-stage masks (same construction as
    /// [`Self::from_oracle`], for callers that already hold a
    /// [`RelevanceMask`]).
    pub fn from_masks(
        masks: &RelevanceMask,
        problem: &Problem,
        pinned: &[Config],
    ) -> Decomposition {
        let mut active = masks.union_all().union(&problem.initial);
        if let Some(f) = &problem.final_config {
            active = active.union(f);
        }
        for cfg in pinned {
            active = active.union(cfg);
        }
        Decomposition::from_active(active)
    }

    /// Decompose around an explicit active set.
    pub fn from_active(active: Config) -> Decomposition {
        let members = active.structures().collect();
        Decomposition { active, members }
    }

    /// The global active set.
    pub fn active(&self) -> &Config {
        &self.active
    }

    /// Number of local structures (`a` = |active set|).
    pub fn n_local(&self) -> usize {
        self.members.len()
    }

    /// Select table: `members()[local]` is the global structure index.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// True if localization would be the identity over an `n_structures`
    /// vocabulary — the active set is exactly `0..n_structures`. Callers
    /// use this to skip the wrapper entirely on dense instances.
    pub fn is_identity(&self, n_structures: usize) -> bool {
        self.members.len() == n_structures && self.members.iter().enumerate().all(|(i, &g)| i == g)
    }

    /// Rename `global` into local coordinates, projecting away any
    /// structures outside the active set.
    pub fn localize(&self, global: &Config) -> Config {
        let mut local = Config::EMPTY;
        for g in global.intersect(&self.active).structures() {
            local = local.with(self.active.rank(g));
        }
        local
    }

    /// Rename `local` back into global coordinates.
    ///
    /// # Panics
    /// Panics if `local` has a structure at or above [`Self::n_local`].
    pub fn globalize(&self, local: &Config) -> Config {
        let mut global = Config::EMPTY;
        for s in local.structures() {
            global = global.with(self.members[s]);
        }
        global
    }

    /// The problem instance in local coordinates.
    pub fn localize_problem(&self, problem: &Problem) -> Problem {
        Problem {
            initial: self.localize(&problem.initial),
            final_config: problem.final_config.as_ref().map(|f| self.localize(f)),
            space_bound: problem.space_bound,
            count_initial_change: problem.count_initial_change,
        }
    }

    /// Localize a candidate list (deduplicated: distinct global
    /// candidates that agree on the active set collapse to one).
    pub fn localize_configs(&self, configs: &[Config]) -> Vec<Config> {
        let mut out: Vec<Config> = configs.iter().map(|c| self.localize(c)).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Map a schedule solved in local coordinates back to global
    /// structure indexes. Costs and the change count carry over
    /// unchanged — localization preserves both by construction.
    pub fn globalize_schedule(&self, schedule: Schedule) -> Schedule {
        Schedule {
            configs: schedule.configs.iter().map(|c| self.globalize(c)).collect(),
            exec_cost: schedule.exec_cost,
            trans_cost: schedule.trans_cost,
            changes: schedule.changes,
        }
    }

    /// View `inner` in this decomposition's local coordinates.
    pub fn local_oracle<'a, O: ProjectableOracle + ?Sized>(
        &'a self,
        inner: &'a O,
    ) -> LocalOracle<'a, O> {
        LocalOracle {
            inner,
            decomp: self,
        }
    }
}

/// An oracle adapter presenting the wrapped oracle's active structures
/// as a dense `0..n_local` vocabulary. Every probe renames its
/// configurations through the [`Decomposition`]; relevance masks are
/// renamed too, so the caching layers ([`crate::oracle::ProjectedOracle`],
/// [`crate::oracle::DenseOracle`]) stack on top and tabulate in the
/// *same* local coordinates — the dense width check sees the part's
/// relevant width whichever side of the rename it runs on.
pub struct LocalOracle<'a, O: ?Sized> {
    inner: &'a O,
    decomp: &'a Decomposition,
}

impl<O: ?Sized> LocalOracle<'_, O> {
    /// The decomposition this adapter renames through.
    pub fn decomposition(&self) -> &Decomposition {
        self.decomp
    }
}

impl<O: ProjectableOracle + ?Sized> CostOracle for LocalOracle<'_, O> {
    fn n_stages(&self) -> usize {
        self.inner.n_stages()
    }

    fn n_structures(&self) -> usize {
        self.decomp.n_local()
    }

    fn exec(&self, stage: usize, config: &Config) -> Cost {
        self.inner.exec(stage, &self.decomp.globalize(config))
    }

    fn trans(&self, from: &Config, to: &Config) -> Cost {
        self.inner
            .trans(&self.decomp.globalize(from), &self.decomp.globalize(to))
    }

    fn size(&self, config: &Config) -> u64 {
        self.inner.size(&self.decomp.globalize(config))
    }
}

impl<O: ProjectableOracle + ?Sized> ProjectableOracle for LocalOracle<'_, O> {
    fn relevance_mask(&self, stage: usize) -> Config {
        self.decomp.localize(&self.inner.relevance_mask(stage))
    }

    fn n_parts(&self, stage: usize) -> usize {
        self.inner.n_parts(stage)
    }

    fn part_mask(&self, stage: usize, part: usize) -> Config {
        self.decomp.localize(&self.inner.part_mask(stage, part))
    }

    fn exec_part(&self, stage: usize, part: usize, config: &Config) -> Cost {
        // `config` arrives projected onto the *local* part mask;
        // globalizing it reproduces the projection onto the global part
        // mask (part masks are subsets of the active set), so the inner
        // contract is preserved.
        self.inner
            .exec_part(stage, part, &self.decomp.globalize(config))
    }
}

/// Width-aware candidate generation: full enumeration while the
/// vocabulary fits [`ENUMERABLE_WIDTH`], greedy per-stage derivation
/// ([`greedy::candidates`]) beyond it. This is the default policy the
/// decomposed solve and the facade use once instances outgrow
/// [`enumerate_configs`]'s hard wall.
pub fn candidate_configs(oracle: &dyn CostOracle, problem: &Problem) -> Result<Vec<Config>> {
    if oracle.n_structures() <= ENUMERABLE_WIDTH {
        enumerate_configs(oracle, problem.space_bound, None)
    } else {
        Ok(greedy::candidates(oracle, problem))
    }
}

/// Solve a k-constrained instance through the full decomposition round
/// trip: compute the active set, rename, derive candidates in local
/// coordinates ([`candidate_configs`]), run the k-aware solver, and
/// globalize the schedule. On instances whose active set is the whole
/// vocabulary this reduces to `kaware::solve` over the same candidates.
pub fn solve_decomposed<O: ProjectableOracle + ?Sized>(
    oracle: &O,
    problem: &Problem,
    k: usize,
) -> Result<Schedule> {
    let decomp = Decomposition::from_oracle(oracle, problem, &[]);
    let _span = cdpd_obs::span!(
        "solve.decomposed",
        vocabulary = oracle.n_structures(),
        active = decomp.n_local(),
        k = k
    );
    let local = decomp.local_oracle(oracle);
    let local_problem = decomp.localize_problem(problem);
    let cands = candidate_configs(&local, &local_problem)?;
    let schedule = kaware::solve(&local, &local_problem, &cands, k)?;
    Ok(decomp.globalize_schedule(schedule))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdpd_types::Cost;

    fn c(io: u64) -> Cost {
        Cost::from_ios(io)
    }

    /// A wide-but-sparse oracle: `m` structures, but each stage only
    /// uses `spread`-spaced structures from `picks`. Costs depend only
    /// on the relevant intersection, honoring the relevance contract.
    struct Sparse {
        n_stages: usize,
        m: usize,
        picks: Vec<Vec<usize>>,
    }

    impl Sparse {
        fn new(n_stages: usize, m: usize, picks: Vec<Vec<usize>>) -> Sparse {
            assert_eq!(picks.len(), n_stages);
            Sparse { n_stages, m, picks }
        }

        fn mask(&self, stage: usize) -> Config {
            self.picks[stage]
                .iter()
                .fold(Config::EMPTY, |acc, &s| acc.with(s))
        }
    }

    impl CostOracle for Sparse {
        fn n_stages(&self) -> usize {
            self.n_stages
        }
        fn n_structures(&self) -> usize {
            self.m
        }
        fn exec(&self, stage: usize, config: &Config) -> Cost {
            // 100 baseline, minus 30 per relevant structure present.
            let hits = self.picks[stage]
                .iter()
                .filter(|&&s| config.contains(s))
                .count() as u64;
            c(100 - 30 * hits.min(3))
        }
        fn trans(&self, from: &Config, to: &Config) -> Cost {
            c(7).scale(to.minus(from).len() as u64) + c(1).scale(from.minus(to).len() as u64)
        }
        fn size(&self, config: &Config) -> u64 {
            config.len() as u64
        }
    }

    impl ProjectableOracle for Sparse {
        fn relevance_mask(&self, stage: usize) -> Config {
            self.mask(stage)
        }
    }

    #[test]
    fn active_set_and_rename_roundtrip() {
        let o = Sparse::new(3, 200, vec![vec![5, 130], vec![5, 70], vec![199]]);
        let p = Problem::paper_experiment();
        let d = Decomposition::from_oracle(&o, &p, &[]);
        assert_eq!(d.n_local(), 4);
        assert_eq!(d.members(), &[5, 70, 130, 199]);
        assert_eq!(
            *d.active(),
            Config::EMPTY.with(5).with(70).with(130).with(199)
        );
        // Round trip over subsets of the active set is exact.
        let g = Config::EMPTY.with(5).with(199);
        let l = d.localize(&g);
        assert_eq!(l, Config::EMPTY.with(0).with(3));
        assert_eq!(d.globalize(&l), g);
        // Structures outside the active set are projected away.
        assert_eq!(d.localize(&g.with(42)), l);
        assert!(!d.is_identity(200));
        // Pinned configs widen the active set.
        let pinned = Decomposition::from_oracle(&o, &p, &[Config::single(42)]);
        assert_eq!(pinned.n_local(), 5);
        assert_eq!(pinned.localize(&Config::single(42)), Config::single(1));
    }

    #[test]
    fn identity_on_dense_instances() {
        let o = Sparse::new(2, 3, vec![vec![0, 1], vec![1, 2]]);
        let p = Problem::default();
        let d = Decomposition::from_oracle(&o, &p, &[]);
        assert!(d.is_identity(3));
        let g = Config::EMPTY.with(0).with(2);
        assert_eq!(d.localize(&g), g);
        assert_eq!(d.globalize(&g), g);
    }

    #[test]
    fn from_masks_matches_from_oracle() {
        let o = Sparse::new(3, 200, vec![vec![5, 130], vec![5, 70], vec![199]]);
        let p = Problem::paper_experiment();
        let masks = RelevanceMask::new((0..3).map(|s| o.mask(s)).collect());
        assert_eq!(
            Decomposition::from_masks(&masks, &p, &[]),
            Decomposition::from_oracle(&o, &p, &[])
        );
    }

    #[test]
    fn local_oracle_preserves_costs_and_relevance() {
        let o = Sparse::new(3, 200, vec![vec![5, 130], vec![5, 70], vec![199]]);
        let p = Problem::paper_experiment();
        let d = Decomposition::from_oracle(&o, &p, &[]);
        let local = d.local_oracle(&o);
        assert_eq!(local.n_structures(), 4);
        assert_eq!(local.n_stages(), 3);
        for stage in 0..3 {
            assert_eq!(local.relevance_mask(stage), d.localize(&o.mask(stage)));
            for bits in 0..16u64 {
                let lc = Config::from_bits(bits);
                let gc = d.globalize(&lc);
                assert_eq!(local.exec(stage, &lc), o.exec(stage, &gc));
                assert_eq!(local.size(&lc), o.size(&gc));
                assert_eq!(
                    local.trans(&Config::EMPTY, &lc),
                    o.trans(&Config::EMPTY, &gc)
                );
            }
        }
    }

    #[test]
    fn decomposed_solve_is_bit_identical_to_narrow_reference() {
        // The same workload expressed twice: over a 200-wide vocabulary
        // touching only structures {5, 70, 130, 199}, and directly over
        // the 4-wide renamed vocabulary. The decomposed solve of the
        // wide instance must equal the direct solve of the narrow one,
        // configuration for configuration.
        let picks_wide = vec![
            vec![5, 130],
            vec![5, 130],
            vec![5, 70],
            vec![199],
            vec![199],
        ];
        let rename = |s: usize| match s {
            5 => 0,
            70 => 1,
            130 => 2,
            199 => 3,
            _ => unreachable!(),
        };
        let picks_narrow: Vec<Vec<usize>> = picks_wide
            .iter()
            .map(|p| p.iter().map(|&s| rename(s)).collect())
            .collect();
        let wide = Sparse::new(5, 200, picks_wide);
        let narrow = Sparse::new(5, 4, picks_narrow);
        let p = Problem::paper_experiment();
        for k in [0, 1, 2, 4] {
            let via_decomp = solve_decomposed(&wide, &p, k).unwrap();
            let d = Decomposition::from_oracle(&wide, &p, &[]);
            let cands = candidate_configs(&narrow, &p).unwrap();
            let direct = kaware::solve(&narrow, &p, &cands, k).unwrap();
            assert_eq!(via_decomp.total_cost(), direct.total_cost(), "k={k}");
            assert_eq!(via_decomp.changes, direct.changes, "k={k}");
            let localized: Vec<Config> = via_decomp.configs.iter().map(|c| d.localize(c)).collect();
            assert_eq!(localized, direct.configs, "k={k}");
            via_decomp.validate(&wide, &p, Some(k)).unwrap();
        }
    }

    #[test]
    fn globalize_schedule_preserves_bookkeeping() {
        let o = Sparse::new(3, 200, vec![vec![5, 130], vec![5, 70], vec![199]]);
        let p = Problem::paper_experiment();
        let d = Decomposition::from_oracle(&o, &p, &[]);
        let local = d.local_oracle(&o);
        let lp = d.localize_problem(&p);
        let cands = candidate_configs(&local, &lp).unwrap();
        let ls = kaware::solve(&local, &lp, &cands, 2).unwrap();
        let gs = d.globalize_schedule(ls.clone());
        assert_eq!(gs.exec_cost, ls.exec_cost);
        assert_eq!(gs.trans_cost, ls.trans_cost);
        assert_eq!(gs.changes, ls.changes);
        // The globalized schedule re-validates against the wide oracle.
        gs.validate(&o, &p, Some(2)).unwrap();
    }

    #[test]
    fn candidate_configs_switches_policy_at_the_width_wall() {
        let small = Sparse::new(2, 3, vec![vec![0], vec![1]]);
        let p = Problem::default();
        let cands = candidate_configs(&small, &p).unwrap();
        assert_eq!(cands.len(), 8, "full enumeration while it fits");
        let wide = Sparse::new(2, 100, vec![vec![0], vec![1]]);
        let wide_cands = candidate_configs(&wide, &p).unwrap();
        assert!(
            wide_cands.len() < 100,
            "greedy derivation stays small: {}",
            wide_cands.len()
        );
        assert!(wide_cands.contains(&Config::EMPTY));
    }

    #[test]
    fn localize_configs_dedups_collapsed_candidates() {
        let d = Decomposition::from_active(Config::EMPTY.with(5).with(70));
        let configs = vec![
            Config::single(5),
            Config::single(5).with(9), // 9 inactive: collapses onto {5}
            Config::single(70),
        ];
        let local = d.localize_configs(&configs);
        assert_eq!(local, vec![Config::single(0), Config::single(1)]);
    }
}

//! GREEDY-SEQ-style candidate restriction (§4.1).
//!
//! The exponential solvers enumerate `2^m` configurations; GREEDY-SEQ
//! (Agrawal, Chu, Narasayya 2006) instead derives a *small* candidate
//! set from per-statement analysis and runs the shortest-path machinery
//! over it — `O(mn)` candidates, turning the k-aware solve into
//! `O(k·n³·m²)` in the worst case and far less in practice.
//!
//! Adaptation note (documented in DESIGN.md): the original GREEDY-SEQ
//! consults the server's what-if optimizer per statement to pick that
//! statement's best configurations. Our oracle exposes exactly that, so
//! per stage we take: the best single structure, the union of the two
//! best single structures (when it helps and fits), the empty
//! configuration, and the problem's boundary configurations.

use crate::config::Config;
use crate::problem::{CostOracle, Problem};
use crate::schedule::Schedule;
use crate::{kaware, seqgraph};
use cdpd_types::Result;

/// Derive the restricted candidate set from per-stage analysis.
pub fn candidates(oracle: &dyn CostOracle, problem: &Problem) -> Vec<Config> {
    let m = oracle.n_structures();
    let mut out: Vec<Config> = vec![Config::EMPTY, problem.initial.clone()];
    if let Some(f) = &problem.final_config {
        out.push(f.clone());
    }
    for stage in 0..oracle.n_stages() {
        // Rank singleton structures by this stage's exec cost.
        let mut singles: Vec<(usize, cdpd_types::Cost)> = (0..m)
            .map(|s| (s, oracle.exec(stage, &Config::single(s))))
            .collect();
        singles.sort_by_key(|&(_, cost)| cost);
        if let Some(&(best, best_cost)) = singles.first() {
            let best_cfg = Config::single(best);
            // The union of the top two, when it actually helps.
            if let Some(&(second, _)) = singles.get(1) {
                let pair = best_cfg.with(second);
                if problem.fits(oracle, &pair) && oracle.exec(stage, &pair) < best_cost {
                    out.push(pair);
                }
            }
            if problem.fits(oracle, &best_cfg) {
                out.push(best_cfg);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Constrained design over the restricted candidate set.
pub fn solve(oracle: &dyn CostOracle, problem: &Problem, k: usize) -> Result<Schedule> {
    let _span = cdpd_obs::span!("solve.greedy", k = k);
    let cands = candidates(oracle, problem);
    kaware::solve(oracle, problem, &cands, k)
}

/// Unconstrained design over the restricted candidate set
/// (Agrawal et al.'s original GREEDY-SEQ).
pub fn solve_unconstrained(oracle: &dyn CostOracle, problem: &Problem) -> Result<Schedule> {
    let _span = cdpd_obs::span!("solve.greedy_unconstrained");
    let cands = candidates(oracle, problem);
    seqgraph::solve(oracle, problem, &cands)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::enumerate_configs;
    use crate::problem::SyntheticOracle;
    use cdpd_types::Cost;

    fn c(io: u64) -> Cost {
        Cost::from_ios(io)
    }

    /// Each *phase* strongly prefers one singleton structure; wider
    /// configurations carry a heavy maintenance penalty, so pairs never
    /// help and the optimum is built from per-stage winners.
    fn single_winner(n: usize, m: usize) -> SyntheticOracle {
        SyntheticOracle::from_fn(
            n,
            m,
            move |stage, cfg| {
                let want = (stage * m) / n;
                let width_penalty = 50 * (cfg.len().saturating_sub(1)) as u64;
                if cfg.contains(want) {
                    c(10 + width_penalty)
                } else {
                    c(200 + width_penalty)
                }
            },
            vec![c(15); m],
            c(1),
            vec![1; m],
        )
    }

    #[test]
    fn candidate_set_is_small() {
        let o = single_winner(24, 8);
        let p = Problem::default();
        let cands = candidates(&o, &p);
        // Per-stage winners (8 distinct) + empty; far below 2^8 = 256.
        assert!(cands.len() <= 2 + 8, "got {}", cands.len());
        assert!(cands.contains(&Config::EMPTY));
    }

    #[test]
    fn greedy_matches_optimal_when_winners_are_singletons() {
        let o = single_winner(12, 4);
        let p = Problem::paper_experiment();
        let full = enumerate_configs(&o, None, None).unwrap();
        for k in [1, 2, 3, 6] {
            let greedy = solve(&o, &p, k).unwrap();
            let optimal = kaware::solve(&o, &p, &full, k).unwrap();
            greedy.validate(&o, &p, Some(k)).unwrap();
            assert!(
                greedy.total_cost() >= optimal.total_cost(),
                "a heuristic beating the optimum is a bug (k={k})"
            );
            // With one segment per phase available (k ≥ phases − 1) the
            // per-stage singleton winners are exactly what the optimum
            // uses, so the restriction loses nothing. Below that the
            // optimum packs multiple phases into one segment with pair
            // configurations greedy does not generate — the documented
            // heuristic gap.
            if k >= 3 {
                assert_eq!(
                    greedy.total_cost(),
                    optimal.total_cost(),
                    "restriction must be lossless at k={k}"
                );
            }
        }
    }

    #[test]
    fn pair_candidates_appear_when_they_help() {
        // Stages want BOTH structures at once.
        let o = SyntheticOracle::from_fn(
            4,
            2,
            |_, cfg| match cfg.len() {
                2 => c(5),
                1 => c(50),
                _ => c(200),
            },
            vec![c(10), c(10)],
            c(1),
            vec![1, 1],
        );
        let p = Problem::default();
        let cands = candidates(&o, &p);
        assert!(
            cands.contains(&Config::from_bits(0b11)),
            "pair config must be generated: {cands:?}"
        );
        let s = solve(&o, &p, 1).unwrap();
        assert!(s.configs.iter().all(|c| c.len() == 2), "{s}");
    }

    #[test]
    fn space_bound_limits_candidates() {
        let o = single_winner(6, 3);
        let p = Problem {
            space_bound: Some(0),
            ..Problem::default()
        };
        let cands = candidates(&o, &p);
        assert!(cands.iter().all(|c| c.is_empty()), "{cands:?}");
        let s = solve(&o, &p, 2).unwrap();
        assert!(s.configs.iter().all(|c| c.is_empty()));
    }

    #[test]
    fn unconstrained_variant_runs() {
        let o = single_winner(12, 3);
        let p = Problem::default();
        let s = solve_unconstrained(&o, &p).unwrap();
        assert!(s.changes >= 2, "tracks the phases: {s}");
    }
}

//! Constrained dynamic physical database design — the paper's
//! contribution (Voigt, Salem, Lehner; ICDE Workshops 2008).
//!
//! Given a statement sequence, an initial configuration, a space bound,
//! and a change budget `k`, recommend a sequence of physical designs
//! minimizing `Σ EXEC(Sᵢ, Cᵢ) + TRANS(Cᵢ₋₁, Cᵢ)` with at most `k`
//! design changes (§2, Definition 1). The change budget is *not* a cost
//! control — transition costs are already in the objective — it is a
//! regularizer: small `k` forces the recommended dynamic design to track
//! the workload's major trends instead of overfitting the one trace that
//! was captured.
//!
//! Solvers (paper section → module):
//!
//! | § | Technique | Module |
//! |---|-----------|--------|
//! | 3 | sequence graph shortest path (unconstrained optimum) | [`seqgraph`] |
//! | 3 | *k-aware* layered sequence graph (constrained optimum) | [`kaware`] |
//! | 4.1 | GREEDY-SEQ candidate restriction | [`greedy`] |
//! | 4.2 | sequential design merging | [`merging`] |
//! | 5 | shortest-path ranking (constrained optimum, anytime) | [`ranking`] |
//! | 6.4 | hybrid (graph for small k, merging for large k) | [`hybrid`] |
//! | 8 | choosing k (cost curves, elbow) — open-question extension | [`kselect`] |
//!
//! The crate is engine-agnostic: solvers consume a [`CostOracle`]
//! (`EXEC`/`TRANS`/`SIZE` for bitmask [`Config`]s over a candidate
//! structure list). Every solver probe funnels through the [`oracle`]
//! layer — relevance projection, sharded memoization or up-front dense
//! materialization, and instrumentation. The `cdpd` facade crate
//! adapts the storage engine's what-if optimizer to these traits;
//! [`SyntheticOracle`] provides table-driven costs for tests and
//! benchmarks (built on the same dense layer).

#![warn(missing_docs)]

mod config;
pub mod decompose;
pub mod greedy;
pub mod hybrid;
pub mod kaware;
pub mod kselect;
pub mod merging;
pub mod oracle;
mod problem;
pub mod ranking;
pub mod report;
mod schedule;
pub mod seqgraph;
mod warm;

pub use config::{enumerate_configs, Config, MAX_STRUCTURE_INDEX};
pub use decompose::{Decomposition, LocalOracle};
pub use oracle::{
    DenseOracle, OracleStats, OracleStatsSnapshot, ProjectableOracle, ProjectedOracle,
    RelevanceMask, SharedOracle, Unprojected,
};
pub use problem::{CostOracle, Problem, SyntheticOracle};
pub use schedule::Schedule;

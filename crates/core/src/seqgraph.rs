//! Sequence graphs and the unconstrained optimum (§3).
//!
//! A sequence graph has one *stage* of nodes per workload statement,
//! one node per candidate configuration, node weights `EXEC(Sᵢ, C)`,
//! edge weights `TRANS(C, C')`, plus a source (the initial
//! configuration) and a destination (optionally constraining the final
//! configuration). Dynamic designs are exactly the source→destination
//! paths, and the optimal unconstrained design is the shortest path —
//! `O(n·4^m)` with full candidate enumeration, or `O(n·|cands|²)` in
//! general.

use crate::config::Config;
use crate::problem::{CostOracle, Problem};
use crate::schedule::Schedule;
use cdpd_graph::{Dag, NodeId};
use cdpd_types::{Cost, Error, Result};

/// Node payload: which (stage, candidate) a node stands for; `None` for
/// the source/destination terminals.
pub(crate) type Payload = Option<(usize, usize)>;

/// A built sequence graph plus its terminals.
pub(crate) struct SeqGraph {
    pub(crate) dag: Dag<Payload>,
    pub(crate) source: NodeId,
    pub(crate) dest: NodeId,
}

/// Drop candidates violating the space bound; error out when nothing
/// survives or the workload is empty.
pub(crate) fn usable_candidates(
    oracle: &dyn CostOracle,
    problem: &Problem,
    candidates: &[Config],
) -> Result<Vec<Config>> {
    if oracle.n_stages() == 0 {
        return Err(Error::InvalidArgument("workload has no statements".into()));
    }
    let mut out: Vec<Config> = Vec::with_capacity(candidates.len());
    for c in candidates {
        if problem.fits(oracle, c) && !out.contains(c) {
            out.push(c.clone());
        }
    }
    if out.is_empty() {
        return Err(Error::Infeasible(
            "no candidate configuration satisfies the space bound".into(),
        ));
    }
    Ok(out)
}

/// Build the (unconstrained) sequence graph over `candidates`.
pub(crate) fn build(oracle: &dyn CostOracle, problem: &Problem, candidates: &[Config]) -> SeqGraph {
    let n = oracle.n_stages();
    let mut dag = Dag::with_capacity(n * candidates.len() + 2);
    let source = dag.add_node(None, Cost::ZERO);
    let mut prev: Vec<NodeId> = Vec::new();
    for stage in 0..n {
        let mut cur = Vec::with_capacity(candidates.len());
        for (ci, cfg) in candidates.iter().enumerate() {
            let node = dag.add_node(Some((stage, ci)), oracle.exec(stage, cfg));
            cur.push(node);
        }
        if stage == 0 {
            for (ci, &node) in cur.iter().enumerate() {
                dag.add_edge(
                    source,
                    node,
                    oracle.trans(&problem.initial, &candidates[ci]),
                );
            }
        } else {
            for (ai, &a) in prev.iter().enumerate() {
                for (bi, &b) in cur.iter().enumerate() {
                    dag.add_edge(a, b, oracle.trans(&candidates[ai], &candidates[bi]));
                }
            }
        }
        prev = cur;
    }
    let dest = dag.add_node(None, Cost::ZERO);
    for (ci, &node) in prev.iter().enumerate() {
        let w = match &problem.final_config {
            Some(f) => oracle.trans(&candidates[ci], f),
            None => Cost::ZERO,
        };
        dag.add_edge(node, dest, w);
    }
    SeqGraph { dag, source, dest }
}

/// Convert a graph path back into per-stage configurations.
pub(crate) fn path_to_configs(
    graph: &SeqGraph,
    candidates: &[Config],
    nodes: &[NodeId],
) -> Vec<Config> {
    nodes
        .iter()
        .filter_map(|&n| graph.dag.payload(n).map(|(_, ci)| candidates[ci].clone()))
        .collect()
}

/// Optimal *unconstrained* dynamic design over `candidates`
/// (Agrawal et al.'s formulation; the paper's baseline).
pub fn solve(
    oracle: &dyn CostOracle,
    problem: &Problem,
    candidates: &[Config],
) -> Result<Schedule> {
    let _span = cdpd_obs::span!("solve.seqgraph", candidates = candidates.len());
    let candidates = usable_candidates(oracle, problem, candidates)?;
    let graph = build(oracle, problem, &candidates);
    let sp = graph
        .dag
        .shortest_path(graph.source, graph.dest)
        .ok_or_else(|| Error::Infeasible("sequence graph has no finite-cost path".into()))?;
    let configs = path_to_configs(&graph, &candidates, &sp.nodes);
    let schedule = Schedule::evaluate(oracle, problem, configs);
    debug_assert_eq!(
        schedule.total_cost(),
        sp.cost,
        "graph and evaluator disagree"
    );
    Ok(schedule)
}

/// Optimal unconstrained design whose first `prefix.len()` stages are
/// pinned to an already-committed prefix — the warm-start entry point.
/// Extending the horizon by one window re-solves only the suffix
/// (`O((n − p)·|cands|²)` graph work) from the prefix's last
/// configuration, instead of rebuilding the whole sequence graph; when
/// the oracle is a shared memoizing layer, suffix probes that earlier
/// solves already evaluated are cache hits.
///
/// With an empty prefix this is exactly [`solve`]. The result is a
/// full `n`-stage [`Schedule`] evaluated under the original `problem`,
/// directly comparable to a cold solve — and by the principle of
/// optimality, optimal among all schedules sharing the prefix.
pub fn solve_with_prefix(
    oracle: &dyn CostOracle,
    problem: &Problem,
    candidates: &[Config],
    prefix: &[Config],
) -> Result<Schedule> {
    if prefix.is_empty() {
        return solve(oracle, problem, candidates);
    }
    let _span = cdpd_obs::span!(
        "solve.seqgraph.warm",
        prefix = prefix.len(),
        candidates = candidates.len()
    );
    crate::warm::check_prefix(oracle, problem, prefix)?;
    if prefix.len() == oracle.n_stages() {
        return Ok(Schedule::evaluate(oracle, problem, prefix.to_vec()));
    }
    let suffix = crate::warm::SuffixOracle {
        inner: oracle,
        start: prefix.len(),
    };
    let sub = crate::warm::suffix_problem(problem, prefix);
    let tail = solve(&suffix, &sub, candidates)?;
    let mut configs = prefix.to_vec();
    configs.extend(tail.configs);
    Ok(Schedule::evaluate(oracle, problem, configs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::enumerate_configs;
    use crate::problem::SyntheticOracle;

    fn c(io: u64) -> Cost {
        Cost::from_ios(io)
    }

    /// Two structures; stage s is cheap under structure s % 2.
    fn alternating_oracle(n: usize, build: u64) -> SyntheticOracle {
        SyntheticOracle::from_fn(
            n,
            2,
            |stage, cfg| {
                if cfg.contains(stage % 2) {
                    c(10)
                } else {
                    c(100)
                }
            },
            vec![c(build), c(build)],
            c(1),
            vec![1, 1],
        )
    }

    #[test]
    fn cheap_transitions_track_every_shift() {
        let o = alternating_oracle(4, 5);
        let p = Problem::default();
        let cands = enumerate_configs(&o, None, Some(1)).unwrap();
        let s = solve(&o, &p, &cands).unwrap();
        assert_eq!(s.changes, 3, "design flips every stage: {s}");
        assert_eq!(s.exec_cost, c(40));
    }

    #[test]
    fn expensive_transitions_freeze_the_design() {
        let o = alternating_oracle(4, 10_000);
        let p = Problem::default();
        let cands = enumerate_configs(&o, None, Some(1)).unwrap();
        let s = solve(&o, &p, &cands).unwrap();
        assert!(s.changes <= 1, "flipping can never pay for itself: {s}");
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        let o = SyntheticOracle::from_fn(
            3,
            2,
            |stage, cfg| c(((stage as u64 + 1) * 37) % (3 + cfg.bits() * 11) + 5),
            vec![c(9), c(14)],
            c(2),
            vec![1, 1],
        );
        let p = Problem {
            final_config: Some(Config::EMPTY),
            ..Problem::default()
        };
        let cands = enumerate_configs(&o, None, None).unwrap();
        let got = solve(&o, &p, &cands).unwrap();

        // Brute force over all |cands|^3 schedules.
        let mut best: Option<Schedule> = None;
        for a in &cands {
            for b in &cands {
                for d in &cands {
                    let s = Schedule::evaluate(&o, &p, vec![a.clone(), b.clone(), d.clone()]);
                    if best
                        .as_ref()
                        .is_none_or(|x| s.total_cost() < x.total_cost())
                    {
                        best = Some(s);
                    }
                }
            }
        }
        assert_eq!(got.total_cost(), best.unwrap().total_cost());
    }

    #[test]
    fn space_bound_excludes_candidates() {
        let o = SyntheticOracle::from_fn(
            2,
            2,
            |_, cfg| if cfg.contains(1) { c(1) } else { c(50) },
            vec![c(1), c(1)],
            c(1),
            vec![1, 100],
        );
        let p = Problem {
            space_bound: Some(10),
            ..Problem::default()
        };
        let cands = enumerate_configs(&o, None, None).unwrap();
        let s = solve(&o, &p, &cands).unwrap();
        assert!(
            s.configs.iter().all(|cfg| !cfg.contains(1)),
            "structure 1 violates the bound: {s}"
        );
        s.validate(&o, &p, None).unwrap();
    }

    #[test]
    fn warm_prefix_of_the_optimum_reproduces_the_optimum() {
        // Principle of optimality: pin any prefix of the cold optimum
        // and the warm solve must land on the same total cost.
        let o = alternating_oracle(6, 30);
        let p = Problem::default();
        let cands = enumerate_configs(&o, None, Some(1)).unwrap();
        let cold = solve(&o, &p, &cands).unwrap();
        for split in 0..=o.n_stages() {
            let warm = solve_with_prefix(&o, &p, &cands, &cold.configs[..split]).unwrap();
            assert_eq!(warm.total_cost(), cold.total_cost(), "split={split}");
            assert_eq!(warm.configs[..split], cold.configs[..split]);
            assert_eq!(warm.configs.len(), o.n_stages());
            warm.validate(&o, &p, None).unwrap();
        }
    }

    #[test]
    fn warm_solve_respects_a_suboptimal_commitment() {
        // A deliberately bad committed prefix: the warm solve optimizes
        // the suffix but must keep the prefix and charge its costs.
        let o = alternating_oracle(4, 5);
        let p = Problem::default();
        let cands = enumerate_configs(&o, None, Some(1)).unwrap();
        let bad = Config::EMPTY; // cheap under nothing
        let warm = solve_with_prefix(&o, &p, &cands, std::slice::from_ref(&bad)).unwrap();
        assert_eq!(warm.configs[0], bad);
        let cold = solve(&o, &p, &cands).unwrap();
        assert!(warm.total_cost() >= cold.total_cost());
        // The suffix is still optimal among schedules starting [bad, ..].
        for b in &cands {
            for cc in &cands {
                for d in &cands {
                    let s = Schedule::evaluate(
                        &o,
                        &p,
                        vec![bad.clone(), b.clone(), cc.clone(), d.clone()],
                    );
                    assert!(warm.total_cost() <= s.total_cost());
                }
            }
        }
    }

    #[test]
    fn warm_prefix_input_validation() {
        let o = alternating_oracle(3, 5);
        let p = Problem::default();
        let cands = enumerate_configs(&o, None, Some(1)).unwrap();
        let too_long = vec![Config::EMPTY; 4];
        assert!(solve_with_prefix(&o, &p, &cands, &too_long).is_err());
        // Full-length prefix: nothing left to solve, just evaluate.
        let full = vec![Config::from_bits(1); 3];
        let s = solve_with_prefix(&o, &p, &cands, &full).unwrap();
        assert_eq!(s.configs, full);
    }

    #[test]
    fn infeasible_inputs_error() {
        let o = alternating_oracle(2, 5);
        let p = Problem {
            space_bound: Some(0),
            ..Problem::default()
        };
        // Only the empty config fits; that is still feasible.
        let cands = enumerate_configs(&o, None, None).unwrap();
        assert!(solve(&o, &p, &cands).is_ok());
        // No candidates at all is not.
        assert!(solve(&o, &p, &[]).is_err());
        // Empty workload is rejected.
        let empty = SyntheticOracle::from_fn(0, 1, |_, _| c(1), vec![c(1)], c(1), vec![1]);
        assert!(solve(&empty, &Problem::default(), &[Config::EMPTY]).is_err());
    }
}

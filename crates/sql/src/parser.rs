use crate::ast::{
    AggFunc, Condition, DeleteStmt, OrderBy, Projection, SelectStmt, Statement, UpdateStmt,
};
use crate::lexer::{Lexer, Token, TokenKind};
use cdpd_types::{Error, Result, Value, ValueType};

/// Parse exactly one statement (a trailing `;` is allowed).
pub fn parse(src: &str) -> Result<Statement> {
    let mut p = Parser::new(src)?;
    let stmt = p.statement()?;
    p.eat(&TokenKind::Semi);
    p.expect_end()?;
    Ok(stmt)
}

/// Parse a `;`-separated script.
pub fn parse_many(src: &str) -> Result<Vec<Statement>> {
    let mut p = Parser::new(src)?;
    let mut out = Vec::new();
    loop {
        while p.eat(&TokenKind::Semi) {}
        if p.at_end() {
            return Ok(out);
        }
        out.push(p.statement()?);
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    src_len: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Parser> {
        Ok(Parser {
            tokens: Lexer::tokenize(src)?,
            pos: 0,
            src_len: src.len(),
        })
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn offset(&self) -> usize {
        self.tokens.get(self.pos).map_or(self.src_len, |t| t.offset)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consume `kind` if it is next; returns whether it was consumed.
    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consume a keyword (case-insensitive identifier match).
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(TokenKind::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(Error::parse(self.offset(), format!("expected {kw}")))
        }
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(Error::parse(self.offset(), format!("expected {what}")))
        }
    }

    fn expect_end(&self) -> Result<()> {
        if self.at_end() {
            Ok(())
        } else {
            Err(Error::parse(
                self.offset(),
                "trailing input after statement",
            ))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        let off = self.offset();
        match self.bump() {
            Some(TokenKind::Ident(s)) => Ok(s),
            _ => Err(Error::parse(off, format!("expected {what}"))),
        }
    }

    fn literal(&mut self) -> Result<Value> {
        let off = self.offset();
        match self.bump() {
            Some(TokenKind::Int(v)) => Ok(Value::Int(v)),
            Some(TokenKind::Minus) => match self.bump() {
                Some(TokenKind::Int(v)) => Ok(Value::Int(-v)),
                _ => Err(Error::parse(off, "expected integer after '-'")),
            },
            Some(TokenKind::Str(s)) => Ok(Value::Str(s)),
            _ => Err(Error::parse(off, "expected literal")),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        let off = self.offset();
        if self.eat_kw("SELECT") {
            return self.select().map(Statement::Select);
        }
        if self.eat_kw("CREATE") {
            if self.eat_kw("TABLE") {
                return self.create_table();
            }
            if self.eat_kw("INDEX") {
                return self.create_index();
            }
            return Err(Error::parse(self.offset(), "expected TABLE or INDEX"));
        }
        if self.eat_kw("DROP") {
            self.expect_kw("INDEX")?;
            let name = self.ident("index name")?;
            return Ok(Statement::DropIndex { name });
        }
        if self.eat_kw("INSERT") {
            return self.insert();
        }
        if self.eat_kw("UPDATE") {
            return self.update();
        }
        if self.eat_kw("DELETE") {
            return self.delete();
        }
        Err(Error::parse(
            off,
            "expected SELECT, UPDATE, DELETE, CREATE, DROP, or INSERT",
        ))
    }

    fn select(&mut self) -> Result<SelectStmt> {
        let projection = if self.eat(&TokenKind::Star) {
            Projection::Star
        } else if let Some(TokenKind::Ident(s)) = self.peek() {
            let agg = [
                ("COUNT", AggFunc::Count),
                ("SUM", AggFunc::Sum),
                ("MIN", AggFunc::Min),
                ("MAX", AggFunc::Max),
                ("AVG", AggFunc::Avg),
            ]
            .into_iter()
            .find(|(kw, _)| s.eq_ignore_ascii_case(kw))
            .filter(|_| self.tokens.get(self.pos + 1).map(|t| &t.kind) == Some(&TokenKind::LParen));
            if let Some((_, func)) = agg {
                self.pos += 2;
                if self.eat(&TokenKind::Star) {
                    if func != AggFunc::Count {
                        return Err(Error::parse(
                            self.offset(),
                            "only COUNT accepts * as its argument",
                        ));
                    }
                    self.expect(&TokenKind::RParen, ")")?;
                    Projection::CountStar
                } else {
                    let col = self.ident("column name")?;
                    self.expect(&TokenKind::RParen, ")")?;
                    Projection::Aggregate(func, col)
                }
            } else {
                let mut cols = vec![self.ident("column name")?];
                while self.eat(&TokenKind::Comma) {
                    cols.push(self.ident("column name")?);
                }
                Projection::Columns(cols)
            }
        } else {
            return Err(Error::parse(self.offset(), "expected projection"));
        };
        self.expect_kw("FROM")?;
        let table = self.ident("table name")?;
        let conditions = self.where_clause()?;
        let order_by = if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            let column = self.ident("column name")?;
            let desc = self.eat_kw("DESC") || {
                self.eat_kw("ASC");
                false
            };
            Some(OrderBy { column, desc })
        } else {
            None
        };
        let limit = if self.eat_kw("LIMIT") {
            let off = self.offset();
            match self.bump() {
                Some(TokenKind::Int(v)) if v >= 0 => Some(v as u64),
                _ => return Err(Error::parse(off, "expected non-negative LIMIT")),
            }
        } else {
            None
        };
        Ok(SelectStmt {
            projection,
            table,
            conditions,
            order_by,
            limit,
        })
    }

    fn condition(&mut self) -> Result<Condition> {
        let column = self.ident("column name")?;
        let off = self.offset();
        match self.bump() {
            Some(TokenKind::Eq) => Ok(Condition::Eq {
                column,
                value: self.literal()?,
            }),
            Some(TokenKind::Lt) => Ok(Condition::Range {
                column,
                lo: None,
                lo_inclusive: false,
                hi: Some(self.literal()?),
                hi_inclusive: false,
            }),
            Some(TokenKind::Le) => Ok(Condition::Range {
                column,
                lo: None,
                lo_inclusive: false,
                hi: Some(self.literal()?),
                hi_inclusive: true,
            }),
            Some(TokenKind::Gt) => Ok(Condition::Range {
                column,
                lo: Some(self.literal()?),
                lo_inclusive: false,
                hi: None,
                hi_inclusive: false,
            }),
            Some(TokenKind::Ge) => Ok(Condition::Range {
                column,
                lo: Some(self.literal()?),
                lo_inclusive: true,
                hi: None,
                hi_inclusive: false,
            }),
            Some(TokenKind::Ident(kw)) if kw.eq_ignore_ascii_case("BETWEEN") => {
                let lo = self.literal()?;
                self.expect_kw("AND")?;
                let hi = self.literal()?;
                Ok(Condition::Range {
                    column,
                    lo: Some(lo),
                    lo_inclusive: true,
                    hi: Some(hi),
                    hi_inclusive: true,
                })
            }
            Some(TokenKind::Ident(kw)) if kw.eq_ignore_ascii_case("IN") => {
                self.expect(&TokenKind::LParen, "(")?;
                let mut values = vec![self.literal()?];
                while self.eat(&TokenKind::Comma) {
                    values.push(self.literal()?);
                }
                self.expect(&TokenKind::RParen, ")")?;
                Ok(Condition::In { column, values })
            }
            _ => Err(Error::parse(off, "expected comparison operator")),
        }
    }

    /// One unit of a `WHERE` clause: a parenthesized `OR` group or a
    /// single simple condition. A group with one branch collapses to
    /// that branch.
    fn predicate_unit(&mut self) -> Result<Condition> {
        if self.eat(&TokenKind::LParen) {
            let mut branches = vec![self.condition()?];
            while self.eat_kw("OR") {
                branches.push(self.condition()?);
            }
            if let Some(TokenKind::Ident(s)) = self.peek() {
                if s.eq_ignore_ascii_case("AND") {
                    return Err(Error::parse(
                        self.offset(),
                        "AND inside a parenthesized OR group is not supported",
                    ));
                }
            }
            self.expect(&TokenKind::RParen, ")")?;
            if branches.len() == 1 {
                Ok(branches.pop().expect("one branch"))
            } else {
                Ok(Condition::Or(branches))
            }
        } else {
            self.condition()
        }
    }

    fn create_table(&mut self) -> Result<Statement> {
        let name = self.ident("table name")?;
        self.expect(&TokenKind::LParen, "(")?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident("column name")?;
            let off = self.offset();
            let ty = self.ident("column type")?;
            let ty = if ty.eq_ignore_ascii_case("INT") || ty.eq_ignore_ascii_case("INTEGER") {
                ValueType::Int
            } else if ty.eq_ignore_ascii_case("TEXT") || ty.eq_ignore_ascii_case("VARCHAR") {
                ValueType::Str
            } else {
                return Err(Error::parse(off, format!("unknown type {ty}")));
            };
            columns.push((col, ty));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen, ")")?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn create_index(&mut self) -> Result<Statement> {
        let name = self.ident("index name")?;
        self.expect_kw("ON")?;
        let table = self.ident("table name")?;
        self.expect(&TokenKind::LParen, "(")?;
        let mut columns = vec![self.ident("column name")?];
        while self.eat(&TokenKind::Comma) {
            columns.push(self.ident("column name")?);
        }
        self.expect(&TokenKind::RParen, ")")?;
        Ok(Statement::CreateIndex {
            name,
            table,
            columns,
        })
    }

    /// `WHERE` grammar: units (a simple condition or a parenthesized
    /// `OR` group) joined by one connector kind. All-`AND` yields the
    /// usual conjunction; all-`OR` yields a single [`Condition::Or`]
    /// term. Mixing `AND` and `OR` at the same unparenthesized level is
    /// rejected rather than silently applying SQL precedence — the
    /// statement must spell its grouping out.
    fn where_clause(&mut self) -> Result<Vec<Condition>> {
        if !self.eat_kw("WHERE") {
            return Ok(Vec::new());
        }
        let mut units = vec![self.predicate_unit()?];
        let mut and_connector: Option<bool> = None;
        loop {
            let off = self.offset();
            let is_and = if self.eat_kw("AND") {
                true
            } else if self.eat_kw("OR") {
                false
            } else {
                break;
            };
            if and_connector.is_some_and(|prev| prev != is_and) {
                return Err(Error::parse(
                    off,
                    "mixed AND/OR without parentheses; group the OR branches with (...)",
                ));
            }
            and_connector = Some(is_and);
            units.push(self.predicate_unit()?);
        }
        if and_connector == Some(false) {
            // Top-level disjunction: flatten units (grouped or simple)
            // into one Or term's branch list.
            let mut branches = Vec::with_capacity(units.len());
            for unit in units {
                match unit {
                    Condition::Or(inner) => branches.extend(inner),
                    simple => branches.push(simple),
                }
            }
            return Ok(vec![Condition::Or(branches)]);
        }
        Ok(fold_ranges(units))
    }

    fn update(&mut self) -> Result<Statement> {
        let table = self.ident("table name")?;
        self.expect_kw("SET")?;
        let mut set = Vec::new();
        loop {
            let col = self.ident("column name")?;
            self.expect(&TokenKind::Eq, "=")?;
            set.push((col, self.literal()?));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let conditions = self.where_clause()?;
        Ok(Statement::Update(UpdateStmt {
            table,
            set,
            conditions,
        }))
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw("FROM")?;
        let table = self.ident("table name")?;
        let conditions = self.where_clause()?;
        Ok(Statement::Delete(DeleteStmt { table, conditions }))
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("INTO")?;
        let table = self.ident("table name")?;
        self.expect_kw("VALUES")?;
        self.expect(&TokenKind::LParen, "(")?;
        let mut values = vec![self.literal()?];
        while self.eat(&TokenKind::Comma) {
            values.push(self.literal()?);
        }
        self.expect(&TokenKind::RParen, ")")?;
        Ok(Statement::Insert { table, values })
    }
}

/// Merge one-sided range conjuncts on the same column into a single
/// two-sided [`Condition::Range`] (so `a > 1 AND a <= 9` round-trips
/// with its printed form and the planner sees one range).
fn fold_ranges(conds: Vec<Condition>) -> Vec<Condition> {
    let mut out: Vec<Condition> = Vec::with_capacity(conds.len());
    'next: for c in conds {
        if let Condition::Range {
            column,
            lo,
            lo_inclusive,
            hi,
            hi_inclusive,
        } = &c
        {
            for prev in &mut out {
                if let Condition::Range {
                    column: pc,
                    lo: plo,
                    lo_inclusive: ploi,
                    hi: phi,
                    hi_inclusive: phii,
                } = prev
                {
                    if pc == column {
                        if plo.is_none() && lo.is_some() && hi.is_none() {
                            *plo = lo.clone();
                            *ploi = *lo_inclusive;
                            continue 'next;
                        }
                        if phi.is_none() && hi.is_some() && lo.is_none() {
                            *phi = hi.clone();
                            *phii = *hi_inclusive;
                            continue 'next;
                        }
                    }
                }
            }
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(src: &str) -> SelectStmt {
        match parse(src).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn parses_paper_template() {
        let s = sel("SELECT a FROM t WHERE a = 421337");
        assert_eq!(s, SelectStmt::point("t", "a", 421337));
    }

    #[test]
    fn parses_multi_column_and_conjunction() {
        let s = sel("select a, b from t where a = 5 and b between 1 and 10");
        assert_eq!(
            s.projection,
            Projection::Columns(vec!["a".into(), "b".into()])
        );
        assert_eq!(s.conditions.len(), 2);
        assert_eq!(s.order_by, None);
        assert_eq!(s.limit, None);
    }

    #[test]
    fn parses_star_and_count() {
        assert_eq!(sel("SELECT * FROM t").projection, Projection::Star);
        let s = sel("SELECT COUNT(*) FROM t WHERE c >= 100");
        assert_eq!(s.projection, Projection::CountStar);
        assert!(matches!(
            &s.conditions[0],
            Condition::Range { lo: Some(_), .. }
        ));
    }

    #[test]
    fn folds_one_sided_ranges() {
        let s = sel("SELECT a FROM t WHERE a > 1 AND a <= 9");
        assert_eq!(s.conditions.len(), 1);
        match &s.conditions[0] {
            Condition::Range {
                lo,
                lo_inclusive,
                hi,
                hi_inclusive,
                ..
            } => {
                assert_eq!(lo, &Some(Value::Int(1)));
                assert!(!lo_inclusive);
                assert_eq!(hi, &Some(Value::Int(9)));
                assert!(hi_inclusive);
            }
            other => panic!("expected range, got {other:?}"),
        }
    }

    #[test]
    fn parses_negative_literals() {
        let s = sel("SELECT a FROM t WHERE a = -5");
        assert_eq!(
            s.conditions[0],
            Condition::Eq {
                column: "a".into(),
                value: Value::Int(-5)
            }
        );
    }

    #[test]
    fn parses_ddl_and_insert() {
        assert_eq!(
            parse("CREATE TABLE t (a INT, s TEXT)").unwrap(),
            Statement::CreateTable {
                name: "t".into(),
                columns: vec![("a".into(), ValueType::Int), ("s".into(), ValueType::Str)],
            }
        );
        assert_eq!(
            parse("CREATE INDEX i_cd ON t (c, d)").unwrap(),
            Statement::CreateIndex {
                name: "i_cd".into(),
                table: "t".into(),
                columns: vec!["c".into(), "d".into()],
            }
        );
        assert_eq!(
            parse("INSERT INTO t VALUES (1, -2, 'x')").unwrap(),
            Statement::Insert {
                table: "t".into(),
                values: vec![Value::Int(1), Value::Int(-2), Value::from("x")],
            }
        );
    }

    #[test]
    fn parses_aggregates_order_by_limit() {
        let s = sel("SELECT SUM(b) FROM t WHERE a = 5");
        assert_eq!(
            s.projection,
            Projection::Aggregate(AggFunc::Sum, "b".into())
        );
        let s = sel("SELECT MAX(a) FROM t");
        assert_eq!(
            s.projection,
            Projection::Aggregate(AggFunc::Max, "a".into())
        );
        let s = sel("SELECT COUNT(b) FROM t");
        assert_eq!(
            s.projection,
            Projection::Aggregate(AggFunc::Count, "b".into())
        );

        let s = sel("SELECT a, b FROM t WHERE a >= 5 ORDER BY b DESC LIMIT 10");
        assert_eq!(
            s.order_by,
            Some(OrderBy {
                column: "b".into(),
                desc: true
            })
        );
        assert_eq!(s.limit, Some(10));
        let s = sel("SELECT a FROM t ORDER BY a ASC");
        assert_eq!(
            s.order_by,
            Some(OrderBy {
                column: "a".into(),
                desc: false
            })
        );

        for bad in [
            "SELECT SUM(*) FROM t",
            "SELECT a FROM t LIMIT -1",
            "SELECT a FROM t ORDER a",
            "SELECT a FROM t LIMIT",
        ] {
            assert!(parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn parses_update_and_delete() {
        assert_eq!(
            parse("UPDATE t SET a = 1, b = -2 WHERE c = 3 AND d >= 4").unwrap(),
            Statement::Update(UpdateStmt {
                table: "t".into(),
                set: vec![("a".into(), Value::Int(1)), ("b".into(), Value::Int(-2))],
                conditions: vec![
                    Condition::Eq {
                        column: "c".into(),
                        value: Value::Int(3)
                    },
                    Condition::Range {
                        column: "d".into(),
                        lo: Some(Value::Int(4)),
                        lo_inclusive: true,
                        hi: None,
                        hi_inclusive: false,
                    },
                ],
            })
        );
        assert_eq!(
            parse("DELETE FROM t WHERE a = 1").unwrap(),
            Statement::Delete(DeleteStmt {
                table: "t".into(),
                conditions: vec![Condition::Eq {
                    column: "a".into(),
                    value: Value::Int(1)
                }],
            })
        );
        // Unpredicated delete (full truncate) parses too.
        assert!(matches!(
            parse("DELETE FROM t").unwrap(),
            Statement::Delete(_)
        ));
        for bad in [
            "UPDATE t",
            "UPDATE t SET",
            "UPDATE t SET a",
            "DELETE t",
            "DELETE FROM",
        ] {
            assert!(parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn parses_in_lists() {
        let s = sel("SELECT a FROM t WHERE a IN (1, 2, 3)");
        assert_eq!(
            s.conditions,
            vec![Condition::In {
                column: "a".into(),
                values: vec![Value::Int(1), Value::Int(2), Value::Int(3)],
            }]
        );
        // Duplicates and negatives survive verbatim; dedup is the
        // planner's job.
        let s = sel("SELECT a FROM t WHERE a IN (-1, -1) AND b = 2");
        assert_eq!(s.conditions.len(), 2);
        assert_eq!(
            s.conditions[0],
            Condition::In {
                column: "a".into(),
                values: vec![Value::Int(-1), Value::Int(-1)],
            }
        );
        for bad in [
            "SELECT a FROM t WHERE a IN ()",
            "SELECT a FROM t WHERE a IN (1,)",
            "SELECT a FROM t WHERE a IN 1",
        ] {
            assert!(parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn parses_or_disjunctions() {
        // Bare top-level OR becomes one Or term.
        let s = sel("SELECT * FROM t WHERE a = 1 OR b = 2 OR c IN (3, 4)");
        assert_eq!(s.conditions.len(), 1);
        match &s.conditions[0] {
            Condition::Or(branches) => {
                assert_eq!(branches.len(), 3);
                assert!(matches!(&branches[2], Condition::In { column, .. } if column == "c"));
            }
            other => panic!("expected Or, got {other:?}"),
        }
        // Parenthesized group AND-joined with a simple conjunct.
        let s = sel("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c >= 5");
        assert_eq!(s.conditions.len(), 2);
        assert!(matches!(&s.conditions[0], Condition::Or(b) if b.len() == 2));
        assert!(matches!(&s.conditions[1], Condition::Range { .. }));
        // A one-branch group collapses to the branch itself.
        let s = sel("SELECT a FROM t WHERE (a = 1)");
        assert_eq!(
            s.conditions,
            vec![Condition::Eq {
                column: "a".into(),
                value: Value::Int(1),
            }]
        );
        // Range branches parse inside a group (BETWEEN's AND is
        // consumed atomically, not as a connector).
        let s = sel("SELECT * FROM t WHERE (a BETWEEN 1 AND 5 OR b = 2)");
        assert!(matches!(&s.conditions[0], Condition::Or(b) if b.len() == 2));
    }

    #[test]
    fn rejects_mixed_connectors_without_parens() {
        for bad in [
            "SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3",
            "SELECT a FROM t WHERE a = 1 AND b = 2 OR c = 3",
            "SELECT a FROM t WHERE (a = 1 AND b = 2)",
            "SELECT a FROM t WHERE (a = 1 OR b = 2 AND c = 3)",
            "SELECT a FROM t WHERE (a = 1",
            "SELECT a FROM t WHERE ()",
        ] {
            assert!(parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn parse_many_splits_script() {
        let stmts = parse_many("SELECT a FROM t; SELECT b FROM t;").unwrap();
        assert_eq!(stmts.len(), 2);
        assert!(parse_many("").unwrap().is_empty());
    }

    #[test]
    fn rejects_garbage_with_offsets() {
        for bad in [
            "SELECT",
            "SELECT FROM t",
            "SELECT a FROM",
            "SELECT a FROM t WHERE",
            "SELECT a FROM t WHERE a",
            "SELECT a FROM t WHERE a = ",
            "SELECT a FROM t extra",
            "CREATE VIEW v",
            "DROP TABLE t",
            "CREATE TABLE t (a BLOB)",
            "INSERT INTO t VALUES ()",
        ] {
            assert!(parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn display_parse_roundtrip() {
        let samples = [
            "SELECT a FROM t WHERE a = 42",
            "SELECT a, b FROM t WHERE a = 5 AND b BETWEEN 1 AND 10",
            "SELECT * FROM t",
            "SELECT COUNT(*) FROM t WHERE c >= 100",
            "CREATE TABLE t (a INT, b INT)",
            "CREATE INDEX i ON t (a, b)",
            "DROP INDEX i",
            "INSERT INTO t VALUES (1, 2)",
            "UPDATE t SET a = 5 WHERE b = 2",
            "SELECT SUM(b) FROM t WHERE a = 5",
            "SELECT MIN(a) FROM t",
            "SELECT a, b FROM t WHERE a >= 5 ORDER BY b DESC LIMIT 10",
            "SELECT a FROM t ORDER BY a",
            "UPDATE t SET a = 5, b = 6",
            "DELETE FROM t WHERE a BETWEEN 1 AND 3",
            "SELECT a FROM t WHERE a IN (1, 2, 3)",
            "SELECT * FROM t WHERE (a = 1 OR b = 2)",
            "SELECT * FROM t WHERE (a = 1 OR b IN (2, 3)) AND c >= 5",
            "SELECT a, b FROM t WHERE a IN (7, 7) AND b BETWEEN 1 AND 10",
            "UPDATE t SET a = 5 WHERE b IN (1, 2)",
            "DELETE FROM t WHERE (a = 1 OR d BETWEEN 2 AND 4)",
        ];
        for s in samples {
            let ast = parse(s).unwrap();
            let printed = ast.to_string();
            let reparsed = parse(&printed).unwrap();
            assert_eq!(
                ast, reparsed,
                "round-trip failed for {s} (printed: {printed})"
            );
        }
    }
}

use cdpd_types::{Error, Result};
use std::fmt;

/// The kind (and payload) of one token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// Keyword or bare identifier (keywords are recognized by the
    /// parser case-insensitively; the lexer keeps the original text).
    Ident(String),
    /// Integer literal (sign handled by the parser via `-`).
    Int(i64),
    /// Single-quoted string literal with `''` escaping.
    Str(String),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `-`
    Minus,
    /// `;`
    Semi,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Eq => write!(f, "="),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::Le => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::Ge => write!(f, ">="),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Semi => write!(f, ";"),
        }
    }
}

/// A token plus the byte offset where it starts (for error messages).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// Token payload.
    pub kind: TokenKind,
    /// Byte offset into the source.
    pub offset: usize,
}

/// Streaming SQL lexer.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Lex `src`.
    pub fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    /// Lex the whole input into a vector.
    pub fn tokenize(src: &str) -> Result<Vec<Token>> {
        let mut lexer = Lexer::new(src);
        let mut out = Vec::new();
        while let Some(tok) = lexer.next_token()? {
            out.push(tok);
        }
        Ok(out)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    /// Produce the next token, or `None` at end of input.
    pub fn next_token(&mut self) -> Result<Option<Token>> {
        while matches!(self.peek(), Some(b) if b.is_ascii_whitespace()) {
            self.pos += 1;
        }
        let start = self.pos;
        let Some(b) = self.peek() else {
            return Ok(None);
        };
        let kind = match b {
            b',' => {
                self.pos += 1;
                TokenKind::Comma
            }
            b'(' => {
                self.pos += 1;
                TokenKind::LParen
            }
            b')' => {
                self.pos += 1;
                TokenKind::RParen
            }
            b'*' => {
                self.pos += 1;
                TokenKind::Star
            }
            b'=' => {
                self.pos += 1;
                TokenKind::Eq
            }
            b';' => {
                self.pos += 1;
                TokenKind::Semi
            }
            b'-' => {
                self.pos += 1;
                TokenKind::Minus
            }
            b'<' => {
                self.pos += 1;
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    TokenKind::Le
                } else {
                    TokenKind::Lt
                }
            }
            b'>' => {
                self.pos += 1;
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            b'\'' => {
                self.pos += 1;
                let mut s = String::new();
                loop {
                    match self.peek() {
                        Some(b'\'') => {
                            self.pos += 1;
                            if self.peek() == Some(b'\'') {
                                s.push('\'');
                                self.pos += 1;
                            } else {
                                break;
                            }
                        }
                        Some(_) => {
                            // Advance over one UTF-8 scalar.
                            let rest = std::str::from_utf8(&self.src[self.pos..])
                                .map_err(|_| Error::parse(self.pos, "invalid UTF-8"))?;
                            let ch = rest.chars().next().expect("peeked byte exists");
                            s.push(ch);
                            self.pos += ch.len_utf8();
                        }
                        None => return Err(Error::parse(start, "unterminated string literal")),
                    }
                }
                TokenKind::Str(s)
            }
            b'0'..=b'9' => {
                while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                    self.pos += 1;
                }
                let text =
                    std::str::from_utf8(&self.src[start..self.pos]).expect("digits are ASCII");
                let v: i64 = text
                    .parse()
                    .map_err(|_| Error::parse(start, format!("integer out of range: {text}")))?;
                TokenKind::Int(v)
            }
            b if b.is_ascii_alphabetic() || b == b'_' => {
                while matches!(self.peek(), Some(b) if b.is_ascii_alphanumeric() || b == b'_') {
                    self.pos += 1;
                }
                let text =
                    std::str::from_utf8(&self.src[start..self.pos]).expect("ident bytes are ASCII");
                TokenKind::Ident(text.to_owned())
            }
            other => {
                return Err(Error::parse(
                    start,
                    format!("unexpected character {:?}", other as char),
                ))
            }
        };
        Ok(Some(Token {
            kind,
            offset: start,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::tokenize(src)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_point_query() {
        assert_eq!(
            kinds("SELECT a FROM t WHERE a = 42"),
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Ident("a".into()),
                TokenKind::Ident("FROM".into()),
                TokenKind::Ident("t".into()),
                TokenKind::Ident("WHERE".into()),
                TokenKind::Ident("a".into()),
                TokenKind::Eq,
                TokenKind::Int(42),
            ]
        );
    }

    #[test]
    fn lexes_operators_and_punctuation() {
        assert_eq!(
            kinds("<= >= < > = , ( ) * ; -"),
            vec![
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Eq,
                TokenKind::Comma,
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::Star,
                TokenKind::Semi,
                TokenKind::Minus,
            ]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(kinds("'it''s'"), vec![TokenKind::Str("it's".into())]);
        assert_eq!(kinds("'héllo'"), vec![TokenKind::Str("héllo".into())]);
    }

    #[test]
    fn errors_carry_offsets() {
        let err = Lexer::tokenize("a @").unwrap_err();
        assert!(err.to_string().contains("byte 2"), "{err}");
        assert!(Lexer::tokenize("'open").is_err());
    }

    #[test]
    fn offsets_recorded() {
        let toks = Lexer::tokenize("ab  cd").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 4);
    }

    #[test]
    fn huge_integer_rejected() {
        assert!(Lexer::tokenize("99999999999999999999999").is_err());
    }
}

//! A minimal SQL dialect: just enough surface syntax to express the
//! paper's workloads and the DDL the design advisor issues.
//!
//! Supported statements:
//!
//! ```sql
//! SELECT a FROM t WHERE a = 5
//! SELECT a, b FROM t WHERE a = 5 AND b BETWEEN 1 AND 10
//! SELECT * FROM t
//! SELECT COUNT(*) FROM t WHERE c >= 100
//! SELECT SUM(b) FROM t WHERE a = 5
//! SELECT MAX(a) FROM t
//! SELECT a, b FROM t WHERE a >= 5 ORDER BY b DESC LIMIT 10
//! UPDATE t SET b = 7 WHERE a = 5
//! DELETE FROM t WHERE a BETWEEN 1 AND 3
//! CREATE TABLE t (a INT, b INT, c INT, d INT)
//! CREATE INDEX i_ab ON t (a, b)
//! DROP INDEX i_ab
//! INSERT INTO t VALUES (1, 2, 3, 4)
//! ```
//!
//! The paper's experimental template — `SELECT <col> FROM t WHERE <col> =
//! <randValue>` — is the core case; ranges, conjunctions, `COUNT(*)` and
//! `*` projections exist so the engine, cost model, and candidate
//! generator are exercised beyond single-point queries.
//!
//! Parsing is a hand-written lexer + recursive-descent parser with byte
//! offsets in every error; [`std::fmt::Display`] on the AST
//! pretty-prints back to parseable SQL (tested as a round-trip).

#![warn(missing_docs)]

mod ast;
mod lexer;
mod parser;

pub use ast::{
    AggFunc, Condition, DeleteStmt, Dml, OrderBy, Projection, SelectStmt, Statement, UpdateStmt,
};
pub use lexer::{Lexer, Token, TokenKind};
pub use parser::{parse, parse_many};

use cdpd_types::{Value, ValueType};
use std::fmt;

/// Aggregate functions over one column.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AggFunc {
    /// `SUM(col)`
    Sum,
    /// `MIN(col)`
    Min,
    /// `MAX(col)`
    Max,
    /// `AVG(col)` (integer average, rounded toward zero)
    Avg,
    /// `COUNT(col)` (no NULLs in this engine, so = `COUNT(*)`)
    Count,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggFunc::Sum => write!(f, "SUM"),
            AggFunc::Min => write!(f, "MIN"),
            AggFunc::Max => write!(f, "MAX"),
            AggFunc::Avg => write!(f, "AVG"),
            AggFunc::Count => write!(f, "COUNT"),
        }
    }
}

/// What a `SELECT` returns.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Projection {
    /// `SELECT *`
    Star,
    /// `SELECT COUNT(*)`
    CountStar,
    /// `SELECT a, b, ...`
    Columns(Vec<String>),
    /// `SELECT <func>(col)` — a single-column aggregate.
    Aggregate(AggFunc, String),
}

impl Projection {
    /// Column names this projection reads from the base table
    /// (`None` for `*`, which reads everything).
    pub fn referenced_columns(&self) -> Option<&[String]> {
        match self {
            Projection::Columns(cols) => Some(cols),
            Projection::Star => None,
            Projection::CountStar => Some(&[]),
            Projection::Aggregate(_, col) => Some(std::slice::from_ref(col)),
        }
    }
}

/// One term of the normalized predicate tree.
///
/// The `WHERE` clause is a *conjunction* of terms, where each term is
/// an equality, a range, an `IN` list (all on a single column), or an
/// `OR` of such simple branches. This normal form — no arbitrary
/// nesting, no expressions — matches exactly the access-path decisions
/// a single-table design advisor must cost: equality seeks, range
/// scans, IN-probe/`OR` unions, rowid intersections, and residual
/// filters.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Condition {
    /// `col = v`
    Eq {
        /// Column name.
        column: String,
        /// Literal compared against.
        value: Value,
    },
    /// `col BETWEEN lo AND hi` (inclusive), or a one-sided bound with
    /// `lo`/`hi` as `None` (from `<`, `<=`, `>`, `>=`).
    Range {
        /// Column name.
        column: String,
        /// Lower bound, if any.
        lo: Option<Value>,
        /// Whether the lower bound itself matches.
        lo_inclusive: bool,
        /// Upper bound, if any.
        hi: Option<Value>,
        /// Whether the upper bound itself matches.
        hi_inclusive: bool,
    },
    /// `col IN (v1, v2, ...)`. The literal list is kept verbatim
    /// (duplicates and all) for display fidelity; deduplication is a
    /// *planning-time* normalization.
    In {
        /// Column name.
        column: String,
        /// Literal list, in statement order.
        values: Vec<Value>,
    },
    /// A disjunction of *simple* branches (`Eq`, `Range`, or `In`;
    /// never a nested `Or`), possibly across different columns.
    Or(Vec<Condition>),
}

impl Condition {
    /// The column this term constrains — for [`Condition::Or`], the
    /// first branch's column (disjunctions may span several columns;
    /// use [`Condition::for_each_column`] to see them all).
    pub fn column(&self) -> &str {
        match self {
            Condition::Eq { column, .. }
            | Condition::Range { column, .. }
            | Condition::In { column, .. } => column,
            Condition::Or(branches) => branches.first().map_or("", |b| b.column()),
        }
    }

    /// Visit every column this term references (branch columns of an
    /// `Or` included), in syntactic order, possibly with repeats.
    pub fn for_each_column(&self, f: &mut impl FnMut(&str)) {
        match self {
            Condition::Eq { column, .. }
            | Condition::Range { column, .. }
            | Condition::In { column, .. } => f(column),
            Condition::Or(branches) => {
                for b in branches {
                    b.for_each_column(f);
                }
            }
        }
    }

    /// Every column this term references, deduplicated, in syntactic
    /// order.
    pub fn columns(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        match self {
            Condition::Eq { column, .. }
            | Condition::Range { column, .. }
            | Condition::In { column, .. } => out.push(column),
            Condition::Or(branches) => {
                for b in branches {
                    for c in b.columns() {
                        if !out.contains(&c) {
                            out.push(c);
                        }
                    }
                }
            }
        }
        out
    }

    /// True when the term constrains exactly one column (always true
    /// for `Eq`/`Range`/`In`; true for an `Or` whose branches all name
    /// the same column).
    pub fn single_column(&self) -> bool {
        self.columns().len() == 1
    }

    /// True if `v` satisfies this term. For [`Condition::Or`] this is
    /// only meaningful when the disjunction is
    /// [`single_column`](Condition::single_column) — multi-column
    /// disjunctions need a full row, which is the executor's job.
    pub fn matches(&self, v: &Value) -> bool {
        match self {
            Condition::Eq { value, .. } => v == value,
            Condition::Range {
                lo,
                lo_inclusive,
                hi,
                hi_inclusive,
                ..
            } => {
                if let Some(lo) = lo {
                    if v < lo || (v == lo && !lo_inclusive) {
                        return false;
                    }
                }
                if let Some(hi) = hi {
                    if v > hi || (v == hi && !hi_inclusive) {
                        return false;
                    }
                }
                true
            }
            Condition::In { values, .. } => values.contains(v),
            Condition::Or(branches) => branches.iter().any(|b| b.matches(v)),
        }
    }
}

/// `ORDER BY` clause.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OrderBy {
    /// Sort column.
    pub column: String,
    /// True for `DESC`.
    pub desc: bool,
}

/// A parsed `SELECT`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SelectStmt {
    /// Projected columns.
    pub projection: Projection,
    /// Base table name.
    pub table: String,
    /// Conjunctive predicate; empty means no `WHERE` clause.
    pub conditions: Vec<Condition>,
    /// Optional `ORDER BY`.
    pub order_by: Option<OrderBy>,
    /// Optional `LIMIT`.
    pub limit: Option<u64>,
}

impl SelectStmt {
    /// The paper's workload template: `SELECT col FROM table WHERE col = v`.
    pub fn point(table: impl Into<String>, column: impl Into<String>, v: i64) -> SelectStmt {
        let column = column.into();
        SelectStmt {
            projection: Projection::Columns(vec![column.clone()]),
            table: table.into(),
            conditions: vec![Condition::Eq {
                column,
                value: Value::Int(v),
            }],
            order_by: None,
            limit: None,
        }
    }

    /// Every column name the statement touches (projection + predicate),
    /// or `None` if it reads all columns (`SELECT *`).
    pub fn referenced_columns(&self) -> Option<Vec<&str>> {
        let mut cols: Vec<&str> = self
            .projection
            .referenced_columns()?
            .iter()
            .map(String::as_str)
            .collect();
        for c in &self.conditions {
            for col in c.columns() {
                if !cols.contains(&col) {
                    cols.push(col);
                }
            }
        }
        if let Some(ob) = &self.order_by {
            if !cols.contains(&ob.column.as_str()) {
                cols.push(&ob.column);
            }
        }
        Some(cols)
    }
}

/// A parsed `UPDATE`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UpdateStmt {
    /// Target table.
    pub table: String,
    /// `SET col = literal` assignments, in statement order.
    pub set: Vec<(String, Value)>,
    /// Conjunctive predicate selecting the rows to update.
    pub conditions: Vec<Condition>,
}

impl UpdateStmt {
    /// Column names written by this update.
    pub fn written_columns(&self) -> Vec<&str> {
        self.set.iter().map(|(c, _)| c.as_str()).collect()
    }
}

/// A parsed `DELETE`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DeleteStmt {
    /// Target table.
    pub table: String,
    /// Conjunctive predicate selecting the rows to delete.
    pub conditions: Vec<Condition>,
}

/// A workload statement: the statement kinds that may appear in a
/// trace handed to the design advisor (Definition 1's *"sequence of
/// queries and updates"*). DDL is excluded — design changes are the
/// advisor's output, not its input.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Dml {
    /// A query.
    Select(SelectStmt),
    /// An update (reads via the predicate, then writes).
    Update(UpdateStmt),
    /// A delete.
    Delete(DeleteStmt),
}

impl Dml {
    /// The statement's target table.
    pub fn table(&self) -> &str {
        match self {
            Dml::Select(s) => &s.table,
            Dml::Update(u) => &u.table,
            Dml::Delete(d) => &d.table,
        }
    }

    /// The predicate conjuncts.
    pub fn conditions(&self) -> &[Condition] {
        match self {
            Dml::Select(s) => &s.conditions,
            Dml::Update(u) => &u.conditions,
            Dml::Delete(d) => &d.conditions,
        }
    }

    /// True for statements that modify data (updates and deletes).
    pub fn is_write(&self) -> bool {
        !matches!(self, Dml::Select(_))
    }
}

impl From<SelectStmt> for Dml {
    fn from(s: SelectStmt) -> Dml {
        Dml::Select(s)
    }
}

impl From<UpdateStmt> for Dml {
    fn from(s: UpdateStmt) -> Dml {
        Dml::Update(s)
    }
}

impl From<DeleteStmt> for Dml {
    fn from(s: DeleteStmt) -> Dml {
        Dml::Delete(s)
    }
}

impl fmt::Display for Dml {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dml::Select(s) => write!(f, "{s}"),
            Dml::Update(s) => fmt_update(f, s),
            Dml::Delete(s) => fmt_delete(f, s),
        }
    }
}

fn fmt_where(f: &mut fmt::Formatter<'_>, conditions: &[Condition]) -> fmt::Result {
    for (i, c) in conditions.iter().enumerate() {
        write!(f, " {} {c}", if i == 0 { "WHERE" } else { "AND" })?;
    }
    Ok(())
}

fn fmt_update(f: &mut fmt::Formatter<'_>, u: &UpdateStmt) -> fmt::Result {
    write!(f, "UPDATE {} SET ", u.table)?;
    for (i, (c, v)) in u.set.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{c} = {v}")?;
    }
    fmt_where(f, &u.conditions)
}

fn fmt_delete(f: &mut fmt::Formatter<'_>, d: &DeleteStmt) -> fmt::Result {
    write!(f, "DELETE FROM {}", d.table)?;
    fmt_where(f, &d.conditions)
}

/// Any parsed statement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Statement {
    /// A query.
    Select(SelectStmt),
    /// An update.
    Update(UpdateStmt),
    /// A delete.
    Delete(DeleteStmt),
    /// `CREATE TABLE name (col type, ...)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column names and types, in order.
        columns: Vec<(String, ValueType)>,
    },
    /// `CREATE INDEX name ON table (col, ...)`.
    CreateIndex {
        /// Index name.
        name: String,
        /// Indexed table.
        table: String,
        /// Key columns, in key order.
        columns: Vec<String>,
    },
    /// `DROP INDEX name`.
    DropIndex {
        /// Index name.
        name: String,
    },
    /// `INSERT INTO table VALUES (v, ...)`.
    Insert {
        /// Target table.
        table: String,
        /// Row literals.
        values: Vec<Value>,
    },
}

impl fmt::Display for Projection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Projection::Star => write!(f, "*"),
            Projection::CountStar => write!(f, "COUNT(*)"),
            Projection::Columns(cols) => write!(f, "{}", cols.join(", ")),
            Projection::Aggregate(func, col) => write!(f, "{func}({col})"),
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::Eq { column, value } => write!(f, "{column} = {value}"),
            Condition::Range {
                column,
                lo,
                lo_inclusive,
                hi,
                hi_inclusive,
            } => {
                match (lo, hi) {
                    (Some(lo), Some(hi)) if *lo_inclusive && *hi_inclusive => {
                        write!(f, "{column} BETWEEN {lo} AND {hi}")
                    }
                    (Some(lo), Some(hi)) => {
                        // Two-sided non-inclusive ranges print as a
                        // conjunction of two comparisons on the same
                        // column (the parser folds them back together).
                        write!(
                            f,
                            "{column} >{} {lo} AND {column} <{} {hi}",
                            if *lo_inclusive { "=" } else { "" },
                            if *hi_inclusive { "=" } else { "" },
                        )
                    }
                    (Some(lo), None) => {
                        write!(f, "{column} >{} {lo}", if *lo_inclusive { "=" } else { "" })
                    }
                    (None, Some(hi)) => {
                        write!(f, "{column} <{} {hi}", if *hi_inclusive { "=" } else { "" })
                    }
                    (None, None) => write!(f, "{column} IS NOT NULL"),
                }
            }
            Condition::In { column, values } => {
                write!(f, "{column} IN (")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            // Always parenthesized so the printed form re-parses as one
            // grouped disjunction even inside an AND-joined WHERE.
            Condition::Or(branches) => {
                write!(f, "(")?;
                for (i, b) in branches.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    write!(f, "{b}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT {} FROM {}", self.projection, self.table)?;
        for (i, c) in self.conditions.iter().enumerate() {
            write!(f, " {} {c}", if i == 0 { "WHERE" } else { "AND" })?;
        }
        if let Some(ob) = &self.order_by {
            write!(
                f,
                " ORDER BY {}{}",
                ob.column,
                if ob.desc { " DESC" } else { "" }
            )?;
        }
        if let Some(limit) = self.limit {
            write!(f, " LIMIT {limit}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(s) => write!(f, "{s}"),
            Statement::Update(u) => fmt_update(f, u),
            Statement::Delete(d) => fmt_delete(f, d),
            Statement::CreateTable { name, columns } => {
                write!(f, "CREATE TABLE {name} (")?;
                for (i, (c, t)) in columns.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c} {t}")?;
                }
                write!(f, ")")
            }
            Statement::CreateIndex {
                name,
                table,
                columns,
            } => {
                write!(f, "CREATE INDEX {name} ON {table} ({})", columns.join(", "))
            }
            Statement::DropIndex { name } => write!(f, "DROP INDEX {name}"),
            Statement::Insert { table, values } => {
                write!(f, "INSERT INTO {table} VALUES (")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_template_matches_paper() {
        let s = SelectStmt::point("t", "a", 42);
        assert_eq!(s.to_string(), "SELECT a FROM t WHERE a = 42");
    }

    #[test]
    fn condition_matches_eq() {
        let c = Condition::Eq {
            column: "a".into(),
            value: Value::Int(5),
        };
        assert!(c.matches(&Value::Int(5)));
        assert!(!c.matches(&Value::Int(6)));
    }

    #[test]
    fn condition_matches_ranges() {
        let between = Condition::Range {
            column: "a".into(),
            lo: Some(Value::Int(2)),
            lo_inclusive: true,
            hi: Some(Value::Int(4)),
            hi_inclusive: true,
        };
        assert!(between.matches(&Value::Int(2)));
        assert!(between.matches(&Value::Int(4)));
        assert!(!between.matches(&Value::Int(5)));

        let lt = Condition::Range {
            column: "a".into(),
            lo: None,
            lo_inclusive: false,
            hi: Some(Value::Int(4)),
            hi_inclusive: false,
        };
        assert!(lt.matches(&Value::Int(3)));
        assert!(!lt.matches(&Value::Int(4)));
    }

    #[test]
    fn condition_matches_in_and_or() {
        let inn = Condition::In {
            column: "a".into(),
            values: vec![Value::Int(1), Value::Int(3), Value::Int(3)],
        };
        assert!(inn.matches(&Value::Int(3)));
        assert!(!inn.matches(&Value::Int(2)));
        assert_eq!(inn.to_string(), "a IN (1, 3, 3)");
        assert_eq!(inn.columns(), vec!["a"]);
        assert!(inn.single_column());

        let empty = Condition::In {
            column: "a".into(),
            values: vec![],
        };
        assert!(!empty.matches(&Value::Int(1)), "empty IN matches nothing");

        let or = Condition::Or(vec![
            Condition::Eq {
                column: "a".into(),
                value: Value::Int(1),
            },
            Condition::Eq {
                column: "b".into(),
                value: Value::Int(2),
            },
        ]);
        assert_eq!(or.to_string(), "(a = 1 OR b = 2)");
        assert_eq!(or.columns(), vec!["a", "b"]);
        assert_eq!(or.column(), "a", "Or reports its first branch column");
        assert!(!or.single_column());

        let same_col = Condition::Or(vec![
            Condition::Eq {
                column: "a".into(),
                value: Value::Int(1),
            },
            Condition::Range {
                column: "a".into(),
                lo: Some(Value::Int(5)),
                lo_inclusive: true,
                hi: None,
                hi_inclusive: false,
            },
        ]);
        assert!(same_col.single_column());
        assert!(same_col.matches(&Value::Int(1)));
        assert!(same_col.matches(&Value::Int(9)));
        assert!(!same_col.matches(&Value::Int(3)));
        assert_eq!(same_col.to_string(), "(a = 1 OR a >= 5)");
    }

    #[test]
    fn referenced_columns_walk_or_branches() {
        let s = SelectStmt {
            projection: Projection::Columns(vec!["a".into()]),
            table: "t".into(),
            conditions: vec![Condition::Or(vec![
                Condition::Eq {
                    column: "b".into(),
                    value: Value::Int(1),
                },
                Condition::In {
                    column: "c".into(),
                    values: vec![Value::Int(2)],
                },
            ])],
            order_by: None,
            limit: None,
        };
        assert_eq!(s.referenced_columns().unwrap(), vec!["a", "b", "c"]);
    }

    #[test]
    fn referenced_columns() {
        let s = SelectStmt {
            projection: Projection::Columns(vec!["a".into()]),
            table: "t".into(),
            conditions: vec![Condition::Eq {
                column: "b".into(),
                value: Value::Int(1),
            }],
            order_by: Some(OrderBy {
                column: "d".into(),
                desc: false,
            }),
            limit: None,
        };
        assert_eq!(s.referenced_columns().unwrap(), vec!["a", "b", "d"]);
        let star = SelectStmt {
            projection: Projection::Star,
            table: "t".into(),
            conditions: vec![],
            order_by: None,
            limit: None,
        };
        assert!(star.referenced_columns().is_none());
        let count = SelectStmt {
            projection: Projection::CountStar,
            table: "t".into(),
            conditions: vec![Condition::Eq {
                column: "c".into(),
                value: Value::Int(9),
            }],
            order_by: None,
            limit: None,
        };
        assert_eq!(count.referenced_columns().unwrap(), vec!["c"]);
    }

    #[test]
    fn dml_wrapper_accessors() {
        let u = UpdateStmt {
            table: "t".into(),
            set: vec![("a".into(), Value::Int(1))],
            conditions: vec![Condition::Eq {
                column: "b".into(),
                value: Value::Int(2),
            }],
        };
        assert_eq!(u.written_columns(), vec!["a"]);
        let dml: Dml = u.clone().into();
        assert_eq!(dml.table(), "t");
        assert_eq!(dml.conditions().len(), 1);
        assert!(dml.is_write());
        assert_eq!(dml.to_string(), "UPDATE t SET a = 1 WHERE b = 2");

        let d: Dml = DeleteStmt {
            table: "t".into(),
            conditions: vec![],
        }
        .into();
        assert_eq!(d.to_string(), "DELETE FROM t");
        assert!(d.is_write());

        let s: Dml = SelectStmt::point("t", "a", 3).into();
        assert!(!s.is_write());
    }

    #[test]
    fn display_ddl() {
        let ci = Statement::CreateIndex {
            name: "i_ab".into(),
            table: "t".into(),
            columns: vec!["a".into(), "b".into()],
        };
        assert_eq!(ci.to_string(), "CREATE INDEX i_ab ON t (a, b)");
        assert_eq!(
            Statement::DropIndex {
                name: "i_ab".into()
            }
            .to_string(),
            "DROP INDEX i_ab"
        );
    }
}

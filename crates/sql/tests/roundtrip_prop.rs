//! Property test: every AST the library can produce pretty-prints to
//! SQL that parses back to the identical AST.

use cdpd_sql::{parse, Condition, DeleteStmt, Projection, SelectStmt, Statement, UpdateStmt};
use cdpd_types::Value;
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_map(|s| s)
}

fn literal() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        // Strings without embedded quotes exercise the printer; the
        // lexer's escape handling is unit-tested separately.
        "[a-zA-Z0-9 _]{0,12}".prop_map(Value::from),
    ]
}

fn condition() -> impl Strategy<Value = Condition> {
    prop_oneof![
        (ident(), any::<i64>()).prop_map(|(column, v)| Condition::Eq {
            column,
            value: Value::Int(v),
        }),
        (ident(), any::<i64>(), any::<i64>()).prop_map(|(column, lo, hi)| {
            let (lo, hi) = (lo.min(hi), lo.max(hi));
            Condition::Range {
                column,
                lo: Some(Value::Int(lo)),
                lo_inclusive: true,
                hi: Some(Value::Int(hi)),
                hi_inclusive: true,
            }
        }),
        (ident(), any::<i64>(), any::<bool>()).prop_map(|(column, v, incl)| Condition::Range {
            column,
            lo: Some(Value::Int(v)),
            lo_inclusive: incl,
            hi: None,
            hi_inclusive: false,
        }),
        (ident(), any::<i64>(), any::<bool>()).prop_map(|(column, v, incl)| Condition::Range {
            column,
            lo: None,
            lo_inclusive: false,
            hi: Some(Value::Int(v)),
            hi_inclusive: incl,
        }),
    ]
}

/// Conditions with distinct columns (the parser folds one-sided ranges
/// on the same column together, which is semantics-preserving but not
/// AST-identical).
fn distinct_conditions(max: usize) -> impl Strategy<Value = Vec<Condition>> {
    prop::collection::vec(condition(), 0..max).prop_map(|mut conds| {
        let mut seen = std::collections::HashSet::new();
        conds.retain(|c| seen.insert(c.column().to_owned()));
        conds
    })
}

fn projection() -> impl Strategy<Value = Projection> {
    use cdpd_sql::AggFunc;
    prop_oneof![
        Just(Projection::Star),
        Just(Projection::CountStar),
        prop::collection::vec(ident(), 1..4).prop_map(|mut cols| {
            cols.dedup();
            Projection::Columns(cols)
        }),
        (
            prop_oneof![
                Just(AggFunc::Sum),
                Just(AggFunc::Min),
                Just(AggFunc::Max),
                Just(AggFunc::Avg),
                Just(AggFunc::Count),
            ],
            ident()
        )
            .prop_map(|(f, c)| Projection::Aggregate(f, c)),
    ]
}

fn statement() -> impl Strategy<Value = Statement> {
    prop_oneof![
        (
            projection(),
            ident(),
            distinct_conditions(4),
            prop::option::of((ident(), any::<bool>())),
            prop::option::of(0u64..1000),
        )
            .prop_map(|(projection, table, conditions, order, limit)| {
                // ORDER BY / LIMIT are rejected on aggregates.
                let is_agg = matches!(
                    projection,
                    cdpd_sql::Projection::Aggregate(..) | cdpd_sql::Projection::CountStar
                );
                Statement::Select(SelectStmt {
                    projection,
                    table,
                    conditions,
                    order_by: if is_agg {
                        None
                    } else {
                        order.map(|(column, desc)| cdpd_sql::OrderBy { column, desc })
                    },
                    limit: if is_agg { None } else { limit },
                })
            }),
        (
            ident(),
            prop::collection::vec((ident(), literal()), 1..4),
            distinct_conditions(3)
        )
            .prop_map(|(table, mut set, conditions)| {
                let mut seen = std::collections::HashSet::new();
                set.retain(|(c, _)| seen.insert(c.clone()));
                Statement::Update(UpdateStmt { table, set, conditions })
            }),
        (ident(), distinct_conditions(3))
            .prop_map(|(table, conditions)| Statement::Delete(DeleteStmt { table, conditions })),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_never_panics(input in ".{0,120}") {
        // Arbitrary input must produce Ok or Err, never a panic.
        let _ = parse(&input);
        let _ = cdpd_sql::parse_many(&input);
    }

    #[test]
    fn print_parse_roundtrip(stmt in statement()) {
        let printed = stmt.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("printed SQL failed to parse: {printed:?}: {e}"));
        prop_assert_eq!(stmt, reparsed, "round-trip mismatch via {}", printed);
    }
}

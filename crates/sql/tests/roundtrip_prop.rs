//! Property test: every AST the library can produce pretty-prints to
//! SQL that parses back to the identical AST.

use cdpd_sql::{parse, Condition, DeleteStmt, Projection, SelectStmt, Statement, UpdateStmt};
use cdpd_testkit::prop::{
    any_bool, any_i64, option_of, string_any, string_of, vec_of, Config, Just, Strategy,
};
use cdpd_testkit::{one_of, props};
use cdpd_types::Value;

/// Identifiers shaped like `[a-z][a-z0-9_]{0,8}`, nudged off SQL
/// keywords (a keyword-named column would break the print→parse trip
/// for reasons unrelated to the printer).
fn ident() -> impl Strategy<Value = String> {
    const KEYWORDS: &[&str] = &[
        "select", "from", "where", "and", "or", "not", "between", "order", "by", "limit", "update",
        "set", "delete", "insert", "into", "values", "count", "sum", "min", "max", "avg", "asc",
        "desc", "null",
    ];
    (
        string_of("abcdefghijklmnopqrstuvwxyz", 1..2),
        string_of("abcdefghijklmnopqrstuvwxyz0123456789_", 0..9),
    )
        .prop_map(|(head, tail)| {
            let s = format!("{head}{tail}");
            if KEYWORDS.contains(&s.as_str()) {
                format!("{s}_")
            } else {
                s
            }
        })
}

fn literal() -> impl Strategy<Value = Value> {
    one_of![
        any_i64().prop_map(Value::Int),
        // Strings without embedded quotes exercise the printer; the
        // lexer's escape handling is unit-tested separately.
        string_of(
            "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _",
            0..13
        )
        .prop_map(Value::from),
    ]
}

fn condition() -> impl Strategy<Value = Condition> {
    one_of![
        (ident(), any_i64()).prop_map(|(column, v)| Condition::Eq {
            column,
            value: Value::Int(v),
        }),
        (ident(), any_i64(), any_i64()).prop_map(|(column, lo, hi)| {
            let (lo, hi) = (lo.min(hi), lo.max(hi));
            Condition::Range {
                column,
                lo: Some(Value::Int(lo)),
                lo_inclusive: true,
                hi: Some(Value::Int(hi)),
                hi_inclusive: true,
            }
        }),
        (ident(), any_i64(), any_bool()).prop_map(|(column, v, incl)| Condition::Range {
            column,
            lo: Some(Value::Int(v)),
            lo_inclusive: incl,
            hi: None,
            hi_inclusive: false,
        }),
        (ident(), any_i64(), any_bool()).prop_map(|(column, v, incl)| Condition::Range {
            column,
            lo: None,
            lo_inclusive: false,
            hi: Some(Value::Int(v)),
            hi_inclusive: incl,
        }),
    ]
}

/// Conditions with distinct columns (the parser folds one-sided ranges
/// on the same column together, which is semantics-preserving but not
/// AST-identical).
fn distinct_conditions(max: usize) -> impl Strategy<Value = Vec<Condition>> {
    vec_of(condition(), 0..max).prop_map(|mut conds| {
        let mut seen = std::collections::HashSet::new();
        conds.retain(|c| seen.insert(c.column().to_owned()));
        conds
    })
}

fn projection() -> impl Strategy<Value = Projection> {
    use cdpd_sql::AggFunc;
    one_of![
        Just(Projection::Star),
        Just(Projection::CountStar),
        vec_of(ident(), 1..4).prop_map(|mut cols| {
            cols.dedup();
            Projection::Columns(cols)
        }),
        (
            one_of![
                Just(AggFunc::Sum),
                Just(AggFunc::Min),
                Just(AggFunc::Max),
                Just(AggFunc::Avg),
                Just(AggFunc::Count),
            ],
            ident()
        )
            .prop_map(|(f, c)| Projection::Aggregate(f, c)),
    ]
}

fn statement() -> impl Strategy<Value = Statement> {
    one_of![
        (
            projection(),
            ident(),
            distinct_conditions(4),
            option_of((ident(), any_bool())),
            option_of(0u64..1000),
        )
            .prop_map(|(projection, table, conditions, order, limit)| {
                // ORDER BY / LIMIT are rejected on aggregates.
                let is_agg = matches!(
                    projection,
                    cdpd_sql::Projection::Aggregate(..) | cdpd_sql::Projection::CountStar
                );
                Statement::Select(SelectStmt {
                    projection,
                    table,
                    conditions,
                    order_by: if is_agg {
                        None
                    } else {
                        order.map(|(column, desc)| cdpd_sql::OrderBy { column, desc })
                    },
                    limit: if is_agg { None } else { limit },
                })
            }),
        (
            ident(),
            vec_of((ident(), literal()), 1..4),
            distinct_conditions(3)
        )
            .prop_map(|(table, mut set, conditions)| {
                let mut seen = std::collections::HashSet::new();
                set.retain(|(c, _)| seen.insert(c.clone()));
                Statement::Update(UpdateStmt {
                    table,
                    set,
                    conditions,
                })
            }),
        (ident(), distinct_conditions(3))
            .prop_map(|(table, conditions)| Statement::Delete(DeleteStmt { table, conditions })),
    ]
}

props! {
    config: Config::with_cases(256);

    fn parser_never_panics(input in string_any(0..121)) {
        // Arbitrary input must produce Ok or Err, never a panic.
        let _ = parse(input);
        let _ = cdpd_sql::parse_many(input);
    }

    fn print_parse_roundtrip(stmt in statement()) {
        let printed = stmt.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("printed SQL failed to parse: {printed:?}: {e}"));
        assert_eq!(stmt, &reparsed, "round-trip mismatch via {printed}");
    }
}

//! Shared scaffolding for the experiment regenerators and criterion
//! benches: the paper's experimental database, the §6.1 design space,
//! and a tiny CLI-argument helper so every binary supports
//! `--rows N --window N --seed N` (and `--full` for paper scale).

#![warn(missing_docs)]

use cdpd::engine::{Database, IndexSpec};
use cdpd::types::{ColumnDef, Schema, Value};
use cdpd::workload::paper::PaperParams;
use cdpd_testkit::Prng;

/// Rows per distinct column value (paper: 2.5M rows / 500k values).
pub const ROWS_PER_VALUE: i64 = 5;

/// Experiment scale, parsed from command-line arguments.
#[derive(Clone, Debug)]
pub struct Scale {
    /// Table rows.
    pub rows: i64,
    /// Queries per window (problem stage).
    pub window_len: usize,
    /// Workload generator seed.
    pub seed: u64,
}

impl Default for Scale {
    fn default() -> Self {
        // Default scale keeps every regenerator under ~a minute in
        // release mode while preserving all the paper's cost orderings.
        Scale {
            rows: 100_000,
            window_len: 500,
            seed: 42,
        }
    }
}

impl Scale {
    /// The paper's scale: 2.5M rows, 500-query windows.
    pub fn paper() -> Scale {
        Scale {
            rows: 2_500_000,
            window_len: 500,
            seed: 42,
        }
    }

    /// Parse `--rows N`, `--window N`, `--seed N`, `--full` from argv.
    pub fn from_args() -> Scale {
        let mut scale = Scale::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => scale = Scale::paper(),
                "--rows" => {
                    i += 1;
                    scale.rows = args[i].parse().expect("--rows takes an integer");
                }
                "--window" => {
                    i += 1;
                    scale.window_len = args[i].parse().expect("--window takes an integer");
                }
                "--seed" => {
                    i += 1;
                    scale.seed = args[i].parse().expect("--seed takes an integer");
                }
                other => panic!("unknown argument {other}; known: --full --rows --window --seed"),
            }
            i += 1;
        }
        scale
    }

    /// The predicate value domain at this scale.
    pub fn domain(&self) -> i64 {
        (self.rows / ROWS_PER_VALUE).max(1)
    }

    /// Paper workload parameters at this scale.
    pub fn params(&self) -> PaperParams {
        PaperParams {
            table: "t".into(),
            domain: self.domain(),
            window_len: self.window_len,
        }
    }
}

/// Build and analyze the §6.1 table: four uniform integer columns.
pub fn build_database(scale: &Scale) -> Database {
    let db = Database::new();
    db.create_table(
        "t",
        Schema::new(vec![
            ColumnDef::int("a"),
            ColumnDef::int("b"),
            ColumnDef::int("c"),
            ColumnDef::int("d"),
        ]),
    )
    .expect("fresh database");
    let domain = scale.domain();
    let mut rng = Prng::seed_from_u64(scale.seed ^ 0xD1B2_54A3);
    for _ in 0..scale.rows {
        let row: Vec<Value> = (0..4)
            .map(|_| Value::Int(rng.gen_range(0..domain)))
            .collect();
        db.insert("t", &row).expect("row matches schema");
    }
    db.analyze("t").expect("table exists");
    db
}

/// The §6.1 design space: I(a), I(b), I(c), I(d), I(a,b), I(c,d).
pub fn paper_structures() -> Vec<IndexSpec> {
    vec![
        IndexSpec::new("t", &["a"]),
        IndexSpec::new("t", &["b"]),
        IndexSpec::new("t", &["c"]),
        IndexSpec::new("t", &["d"]),
        IndexSpec::new("t", &["a", "b"]),
        IndexSpec::new("t", &["c", "d"]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_preserves_rows_per_value() {
        let s = Scale::default();
        assert_eq!(s.domain(), s.rows / ROWS_PER_VALUE);
        assert_eq!(Scale::paper().rows, 2_500_000);
    }

    #[test]
    fn database_builds_at_small_scale() {
        let s = Scale {
            rows: 2_000,
            window_len: 50,
            seed: 1,
        };
        let db = build_database(&s);
        let stats = db.stats("t").unwrap().unwrap();
        assert_eq!(stats.row_count, 2_000);
        assert!(stats.columns[0].distinct > 300);
    }
}

//! Regenerates **Figure 4** of the paper: runtimes of the constrained
//! design optimizers relative to the runtime of the *unconstrained*
//! optimizer, as a function of the change budget k.
//!
//! Expected shapes (paper, Fig. 4): the k-aware graph's runtime grows
//! roughly linearly with k (the layered graph has k + 1 copies of every
//! stage); the merging heuristic's runtime *falls* with k (fewer
//! merging steps from the unconstrained solution). The crossover
//! motivates the hybrid solver (§6.4).
//!
//! Method notes: the what-if cost oracle is fully warmed (memoized)
//! before timing, so the numbers isolate optimizer time exactly as the
//! paper's did; each point is the median of several runs. The problem
//! instance is W2 (minor shifts every window, so the unconstrained
//! optimum has l ≈ 29 changes and k = 2..18 is a real constraint)
//! summarized into fine windows, in the paper's ≤1-index configuration
//! regime. (With multi-index configurations allowed, one static
//! "index everything" design is optimal and l = 0 — there would be
//! nothing to constrain.)
//!
//! ```sh
//! cargo run --release -p cdpd-bench --bin fig4 [--rows N]
//! ```

use cdpd::core::{enumerate_configs, kaware, merging, seqgraph, CostOracle, Problem};
use cdpd::engine::WhatIfEngine;
use cdpd::workload::{generate, paper, summarize};
use cdpd::EngineOracle;
use cdpd_bench::{build_database, paper_structures, Scale};
use std::time::{Duration, Instant};

/// Best-of-N timing: the minimum is the standard low-noise estimator
/// for CPU-bound microbenchmarks (anything above it is interference).
fn time_it<R>(repeats: usize, mut f: impl FnMut() -> R) -> Duration {
    (0..repeats)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed()
        })
        .min()
        .expect("at least one repeat")
}

fn main() {
    let scale = Scale::from_args();
    cdpd_obs::event!("building database: {} rows ...", scale.rows);
    let db = build_database(&scale);
    // W2: minor shifts every pattern window keep the unconstrained
    // optimum busy (l ≈ 29). Summarize at a tenth of the pattern window
    // so the sequence graphs are big enough to time reliably.
    let trace = generate(&paper::w2_with(&scale.params()), scale.seed);
    let stage_len = (scale.window_len / 10).max(1);
    let workload = summarize(&trace, stage_len).expect("summarize");

    let oracle = EngineOracle::new(
        WhatIfEngine::snapshot(&db, "t").expect("analyzed"),
        paper_structures(),
        &workload,
    )
    .expect("valid oracle")
    .into_shared();
    let problem = Problem::paper_experiment();
    // The paper's ≤1-index configuration regime (7 configurations).
    let candidates = enumerate_configs(&oracle, None, Some(1)).expect("m is small");
    cdpd_obs::event!(
        "instance: {} stages x {} candidate configurations",
        oracle.n_stages(),
        candidates.len()
    );

    // Warm the what-if cache completely, then time pure solver work.
    let unconstrained = seqgraph::solve(&oracle, &problem, &candidates).expect("feasible");
    let l = unconstrained.changes;
    cdpd_obs::event!("unconstrained optimum uses l = {l} changes");

    let t_unconstrained = time_it(9, || {
        seqgraph::solve(&oracle, &problem, &candidates).expect("feasible")
    });
    cdpd_obs::event!("unconstrained optimizer: {t_unconstrained:?} (baseline = 100%)");

    println!("\nFigure 4: Runtimes of Constrained Design Optimizers");
    println!("Relative to Runtime of Unconstrained Design Optimizer");
    println!(
        "({} stages, {} configurations, l = {l}, baseline {:?})\n",
        oracle.n_stages(),
        candidates.len(),
        t_unconstrained
    );
    println!(
        "{:>3} {:>18} {:>12} {:>18} {:>12}",
        "k", "k-aware graph", "relative", "merging", "relative"
    );

    let mut crossover: Option<usize> = None;
    for k in (2..=18).step_by(2) {
        let t_graph = time_it(5, || {
            kaware::solve(&oracle, &problem, &candidates, k).expect("feasible")
        });
        let t_merge = time_it(5, || {
            merging::refine(&oracle, &problem, &candidates, k, &unconstrained).expect("feasible")
        });
        let rel = |t: Duration| 100.0 * t.as_secs_f64() / t_unconstrained.as_secs_f64();
        if crossover.is_none() && t_merge < t_graph {
            crossover = Some(k);
        }
        println!(
            "{:>3} {:>18?} {:>11.0}% {:>18?} {:>11.0}%",
            k,
            t_graph,
            rel(t_graph),
            t_merge,
            rel(t_merge)
        );
    }

    match crossover {
        Some(k) => println!(
            "\nmerging becomes cheaper than the k-aware graph at k ≈ {k} \
             (l = {l}); the §6.4 hybrid switches strategies there."
        ),
        None => println!(
            "\nno crossover in 2..=18 at this scale; increase --rows or \
             decrease --window for heavier instances."
        ),
    }
    println!(
        "paper expectation: graph runtime grows ~linearly with k; merging \
         runtime falls as k grows (fewer steps from l down to k)."
    );
    cdpd_obs::event!("\noracle instrumentation: {}", oracle.stats_snapshot());
}

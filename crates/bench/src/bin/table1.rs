//! Regenerates **Table 1** of the paper: the four workload query mixes.
//!
//! Prints both the specification (the mix weights) and an empirical
//! verification: the column frequencies actually observed in a
//! generated trace window of each mix.
//!
//! ```sh
//! cargo run --release -p cdpd-bench --bin table1
//! ```

use cdpd::workload::{generate, QueryMix, WorkloadSpec};

fn main() {
    let run_span = cdpd_obs::span!("table1.run");
    let mixes = QueryMix::paper_mixes();
    let cols = ["a", "b", "c", "d"];

    println!("Table 1: Workload Query Mixes (specified)\n");
    println!(
        "{:<14} {:>6} {:>6} {:>6} {:>6}",
        "Queried <col>", "a", "b", "c", "d"
    );
    for mix in &mixes {
        print!("Query Mix {:<4}", mix.name);
        for col in cols {
            print!(" {:>5.0}%", mix.fraction(col) * 100.0);
        }
        println!();
    }

    println!("\nEmpirical check (10,000 generated queries per mix):\n");
    println!(
        "{:<14} {:>6} {:>6} {:>6} {:>6}",
        "Queried <col>", "a", "b", "c", "d"
    );
    for mix in &mixes {
        let _span = cdpd_obs::span!("table1.mix", mix = mix.name.as_str());
        let spec = WorkloadSpec::new("t", 500_000, 10_000, vec![mix.clone()]).expect("valid spec");
        let trace = generate(&spec, 42);
        let mut counts = [0u32; 4];
        for stmt in trace.statements() {
            let col = stmt.conditions()[0].column();
            let idx = cols.iter().position(|c| *c == col).expect("known column");
            counts[idx] += 1;
        }
        print!("Query Mix {:<4}", mix.name);
        for n in counts {
            print!(" {:>5.1}%", 100.0 * n as f64 / trace.len() as f64);
        }
        println!();
    }

    drop(run_span);
    if let Some(profile) = cdpd_obs::profile_since(0) {
        cdpd_obs::event!("\n{profile}");
    }
}

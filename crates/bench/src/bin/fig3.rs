//! Regenerates **Figure 3** of the paper: relative execution times of
//! W1, W2, and W3 under the constrained (k = 2) and unconstrained
//! dynamic designs recommended from W1.
//!
//! All 15,000 queries of each workload are *actually executed* against
//! the storage engine under each design schedule (indexes built and
//! dropped online at the recommended points); the reported metric is
//! measured logical page I/O — the deterministic stand-in for the
//! paper's wall-clock time — relative to W1 under the unconstrained
//! design, exactly like the paper's bars. Wall-clock times are also
//! printed for reference.
//!
//! Paper's bars: W1 +14% under constrained; W2 +59% and W3 +30% under
//! *unconstrained* (i.e. the constrained design wins on both).
//!
//! ```sh
//! cargo run --release -p cdpd-bench --bin fig3 [--rows N] [--full]
//! ```

use cdpd::replay::replay_recommendation;
use cdpd::workload::{generate, paper};
use cdpd::{Advisor, AdvisorOptions, Algorithm};
use cdpd_bench::{build_database, paper_structures, Scale};

fn main() {
    let scale = Scale::from_args();
    cdpd_obs::event!("building database: {} rows ...", scale.rows);
    let db = build_database(&scale);
    let params = scale.params();

    let w1 = generate(&paper::w1_with(&params), scale.seed);
    let w2 = generate(&paper::w2_with(&params), scale.seed + 1);
    let w3 = generate(&paper::w3_with(&params), scale.seed + 2);

    cdpd_obs::event!("recommending designs from W1 ...");
    let opts = |k| AdvisorOptions {
        k,
        window_len: scale.window_len,
        structures: Some(paper_structures()),
        max_structures_per_config: Some(1),
        end_empty: true,
        algorithm: Algorithm::KAware,
        ..Default::default()
    };
    let unc = Advisor::new(&db, "t")
        .options(opts(None))
        .recommend(&w1)
        .expect("advisor");
    let k2 = Advisor::new(&db, "t")
        .options(opts(Some(2)))
        .recommend(&w1)
        .expect("advisor");

    let mut results: Vec<(&str, &str, u64, std::time::Duration)> = Vec::new();
    for (wname, trace) in [("W1", &w1), ("W2", &w2), ("W3", &w3)] {
        for (dname, rec) in [("unconstrained", &unc), ("constrained", &k2)] {
            cdpd_obs::event!("replaying {wname} under the {dname} design ...");
            let report = replay_recommendation(&db, trace, rec).expect("replay");
            results.push((wname, dname, report.total_io(), report.wall));
        }
    }

    let baseline = results
        .iter()
        .find(|(w, d, ..)| *w == "W1" && *d == "unconstrained")
        .expect("baseline present")
        .2 as f64;

    println!("\nFigure 3: Relative Execution Times of Different Workloads");
    println!("Under Constrained and Unconstrained W1 Designs");
    println!(
        "({} rows, measured logical I/O, relative to W1/unconstrained)\n",
        scale.rows
    );
    println!(
        "{:<4} {:<14} {:>14} {:>10} {:>12}  bar",
        "wkld", "design", "total I/O", "relative", "wall"
    );
    for (w, d, io, wall) in &results {
        let rel = 100.0 * (*io as f64 / baseline - 1.0);
        let bar = "█".repeat((60.0 * *io as f64 / baseline / 2.0) as usize);
        println!(
            "{:<4} {:<14} {:>14} {:>+9.1}% {:>12.2?}  {bar}",
            w, d, io, rel, wall
        );
    }
    println!(
        "\npaper's bars: W1 constrained +14%; W2 unconstrained +59%; \
         W3 unconstrained +30% — the orderings (who wins per workload) \
         are the reproduction target."
    );
}

//! Regenerates **Table 2** of the paper: the dynamic workloads W1/W2/W3
//! and the physical designs recommended for W1 by the unconstrained
//! (`k = ∞`) and constrained (`k = 2`) advisors, one row per
//! 500-query window.
//!
//! Expected reproduction (paper's Table 2): the unconstrained column
//! alternates with every minor shift (I(a,b) ↔ I(b) in phases 1/3,
//! I(c,d) ↔ I(d) in phase 2); the k = 2 column holds I(a,b) / I(c,d) /
//! I(a,b) across the three phases.
//!
//! ```sh
//! cargo run --release -p cdpd-bench --bin table2 [--rows N] [--full]
//! ```

use cdpd::workload::{generate, paper};
use cdpd::{Advisor, AdvisorOptions, Algorithm, Recommendation};
use cdpd_bench::{build_database, paper_structures, Scale};

fn design_label(rec: &Recommendation, window: usize) -> String {
    let specs = rec.specs_at(window);
    if specs.is_empty() {
        "-".to_owned()
    } else {
        specs
            .iter()
            .map(|s| s.display_short())
            .collect::<Vec<_>>()
            .join("+")
    }
}

fn main() {
    let scale = Scale::from_args();
    cdpd_obs::event!("building database: {} rows ...", scale.rows);
    let db = build_database(&scale);
    let params = scale.params();

    cdpd_obs::event!("generating workloads and solving ...");
    let w1 = generate(&paper::w1_with(&params), scale.seed);
    let opts = |k| AdvisorOptions {
        k,
        window_len: scale.window_len,
        structures: Some(paper_structures()),
        max_structures_per_config: Some(1),
        end_empty: true,
        algorithm: Algorithm::KAware,
        ..Default::default()
    };
    let unc = Advisor::new(&db, "t")
        .options(opts(None))
        .recommend(&w1)
        .expect("advisor");
    let k2 = Advisor::new(&db, "t")
        .options(opts(Some(2)))
        .recommend(&w1)
        .expect("advisor");

    let w = scale.window_len;
    println!("Table 2: Dynamic Workloads and Physical Designs");
    println!(
        "(window = {w} queries, {} rows, domain {})\n",
        scale.rows,
        scale.domain()
    );
    println!(
        "{:>15} | {:^4} | {:^8} | {:^8} | {:^4} | {:^4}",
        "query number", "W1", "k = inf", "k = 2", "W2", "W3"
    );
    println!("{}", "-".repeat(60));
    for i in 0..30 {
        println!(
            "{:>15} | {:^4} | {:^8} | {:^8} | {:^4} | {:^4}",
            format!("{}-{}", i * w + 1, (i + 1) * w),
            paper::W1_PATTERN[i],
            design_label(&unc, i),
            design_label(&k2, i),
            paper::W2_PATTERN[i],
            paper::W3_PATTERN[i],
        );
    }

    println!("\nunconstrained: {}", unc.schedule);
    println!("k = 2:         {}", k2.schedule);
    println!("\nk = 2 cost breakdown:");
    print!("{}", k2.render_with(&db, &w1).expect("render"));
    println!(
        "\npaper expectation: k=inf column tracks minor shifts \
         (I(a,b)/I(b), I(c,d)/I(d)); k=2 column is I(a,b) | I(c,d) | I(a,b)."
    );
}

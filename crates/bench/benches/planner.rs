//! Criterion microbenchmarks for the predicate-tree access paths: the
//! measured throughput of IN-probe unions (`IndexOr`), cross-column
//! disjunctions, and rowid intersections (`IndexAnd`) against the seq
//! scan each one must beat, plus the planner's *modelled* costs for
//! the same statements as metric records. The cost metrics are
//! deterministic at fixed scale/seed, so `BENCH_planner.json` doubles
//! as a cost-model regression baseline: a drop in the win margins
//! means the multi-index paths got (relatively) more expensive.

use cdpd::engine::IndexSpec;
use cdpd::sql::{parse, SelectStmt, Statement};
use cdpd_bench::{build_database, Scale};
use cdpd_testkit::bench::Criterion;
use cdpd_testkit::{criterion_group, criterion_main};
use std::hint::black_box;

const ROWS: i64 = 50_000;

fn select(sql: &str) -> SelectStmt {
    match parse(sql).expect("valid sql") {
        Statement::Select(s) => s,
        other => panic!("not a select: {other:?}"),
    }
}

fn bench_planner(criterion: &mut Criterion) {
    let scale = Scale {
        rows: ROWS,
        window_len: 500,
        seed: 5,
    };
    let db = build_database(&scale);
    for spec in [
        IndexSpec::new("t", &["a"]),
        IndexSpec::new("t", &["b"]),
        IndexSpec::new("t", &["c"]),
    ] {
        db.create_index(&spec).expect("builds");
    }

    let in_list =
        select("SELECT a FROM t WHERE a IN (11, 222, 3333, 4444, 5555, 6666, 7777, 8888)");
    let or_pair = select("SELECT a, b FROM t WHERE (a = 101 OR b = 202)");
    let eq_pair = select("SELECT a, b FROM t WHERE a = 101 AND b = 202");
    let scan = select("SELECT d FROM t WHERE d = 777"); // unindexed baseline

    // The benches only mean something if the planner actually takes
    // the multi-index paths at this scale.
    let in_plan = db.query_count(&in_list).expect("runs");
    let or_plan = db.query_count(&or_pair).expect("runs");
    let and_plan = db.query_count(&eq_pair).expect("runs");
    let scan_plan = db.query_count(&scan).expect("runs");
    assert!(in_plan.plan.starts_with("IndexOr"), "{}", in_plan.plan);
    assert!(or_plan.plan.starts_with("IndexOr"), "{}", or_plan.plan);
    assert!(and_plan.plan.starts_with("IndexAnd"), "{}", and_plan.plan);
    assert!(scan_plan.plan.starts_with("SeqScan"), "{}", scan_plan.plan);

    let mut group = criterion.benchmark_group("planner");
    group.sample_size(20);
    group.bench_function("in_probe_union", |b| {
        b.iter(|| db.query_count(black_box(&in_list)).unwrap().count)
    });
    group.bench_function("or_union", |b| {
        b.iter(|| db.query_count(black_box(&or_pair)).unwrap().count)
    });
    group.bench_function("and_intersection", |b| {
        b.iter(|| db.query_count(black_box(&eq_pair)).unwrap().count)
    });
    group.bench_function("seq_scan_baseline", |b| {
        b.iter(|| db.query_count(black_box(&scan)).unwrap().count)
    });

    // Modelled path costs (logical page I/Os) and win margins over the
    // scan each path displaced. Deterministic at fixed scale and seed.
    let scan_ios = scan_plan.est_cost.ios() as f64;
    for (id, result) in [
        ("cost_ios/in_probe_union", &in_plan),
        ("cost_ios/or_union", &or_plan),
        ("cost_ios/and_intersection", &and_plan),
        ("cost_ios/seq_scan", &scan_plan),
    ] {
        group.metric(id, result.est_cost.ios() as f64);
    }
    group.metric(
        "win_margin/in_vs_scan",
        scan_ios / in_plan.est_cost.ios().max(1) as f64,
    );
    group.metric(
        "win_margin/or_vs_scan",
        scan_ios / or_plan.est_cost.ios().max(1) as f64,
    );
    group.metric(
        "win_margin/and_vs_scan",
        scan_ios / and_plan.est_cost.ios().max(1) as f64,
    );
    group.finish();
}

criterion_group!(benches, bench_planner);
criterion_main!(benches);

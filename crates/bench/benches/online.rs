//! The online-pipeline bench: what streaming costs and what
//! warm-starting buys, on the Table-1 instance (W1, paper design
//! space).
//!
//! Three records land in `BENCH_online.json`:
//!
//! * **ingest throughput** — statements/sec through
//!   [`OnlineAdvisor::ingest`], window maintenance, incremental oracle
//!   appends, and per-seal re-solves included;
//! * **re-solve latency** — p95 over every warm re-solve the session
//!   ran (each seal solves the whole retained horizon with the
//!   committed prefix pinned);
//! * **warm vs cold speedup** — the final-horizon warm re-solve
//!   against what a naive loop would do at the same boundary: rebuild
//!   the cost oracle over the full summary and solve from scratch.
//!   The warm path must be at least 2× faster; that is asserted, not
//!   just recorded.

use cdpd::core::{enumerate_configs, kaware, Problem};
use cdpd::engine::WhatIfEngine;
use cdpd::workload::{generate, paper, summarize};
use cdpd::{EngineOracle, OnlineAdvisor, OnlineOptions};
use cdpd_bench::{build_database, paper_structures, Scale};
use cdpd_testkit::bench::Criterion;
use cdpd_testkit::{criterion_group, criterion_main};
use std::time::Instant;

const K: usize = 2;

fn bench_online(criterion: &mut Criterion) {
    let scale = Scale {
        rows: 20_000,
        window_len: 100,
        seed: 42,
    };
    let db = build_database(&scale);
    let trace = generate(&paper::w1_with(&scale.params()), scale.seed);
    let options = OnlineOptions {
        advisor: cdpd::AdvisorOptions {
            k: Some(K),
            window_len: scale.window_len,
            structures: Some(paper_structures()),
            max_structures_per_config: Some(1),
            ..cdpd::AdvisorOptions::default()
        },
        ..OnlineOptions::default()
    };

    let run_session = || -> OnlineAdvisor {
        let mut online = OnlineAdvisor::new(&db, "t", options.clone()).expect("session opens");
        online
            .ingest_all(&db, trace.statements())
            .expect("trace ingests");
        online
    };

    // Ingest throughput and warm re-solve latencies, best of a few runs.
    let mut best_ingest_ns = u64::MAX;
    let mut warm_final_ns = u64::MAX;
    let mut resolve_ns: Vec<u64> = Vec::new();
    let mut session = None;
    for _ in 0..3 {
        let start = Instant::now();
        let online = run_session();
        best_ingest_ns = best_ingest_ns.min(start.elapsed().as_nanos() as u64);
        let solves: Vec<u64> = online
            .decisions()
            .iter()
            .filter(|d| d.resolved)
            .map(|d| d.solve_nanos)
            .collect();
        warm_final_ns = warm_final_ns.min(*solves.last().expect("every window re-solves"));
        resolve_ns = solves;
        session = Some(online);
    }
    let session = session.expect("ran at least once");
    assert_eq!(
        session.rebuilds(),
        1,
        "a fixed vocabulary with an unbounded window builds the oracle exactly once"
    );
    resolve_ns.sort_unstable();
    let p95 = resolve_ns[(resolve_ns.len() * 95 / 100).min(resolve_ns.len() - 1)];
    let statements_per_sec = trace.len() as f64 / (best_ingest_ns as f64 / 1e9);

    // Cold baseline at the same final boundary: rebuild everything the
    // session kept warm — what-if snapshot, per-part cost probing,
    // candidate enumeration — then solve the full horizon from scratch.
    let workload = summarize(&trace, scale.window_len).expect("summarize");
    let problem = Problem::default();
    let mut cold_ns = u64::MAX;
    for _ in 0..3 {
        let start = Instant::now();
        let oracle = EngineOracle::new(
            WhatIfEngine::snapshot(&db, "t").expect("analyzed"),
            paper_structures(),
            &workload,
        )
        .expect("valid oracle")
        .into_shared();
        let candidates = enumerate_configs(&oracle, None, Some(1)).expect("small m");
        kaware::solve(&oracle, &problem, &candidates, K).expect("feasible");
        cold_ns = cold_ns.min(start.elapsed().as_nanos() as u64);
    }

    let speedup = cold_ns as f64 / warm_final_ns as f64;
    assert!(
        speedup >= 2.0,
        "warm re-solve must be at least 2x faster than a cold rebuild+solve: \
         warm {warm_final_ns}ns vs cold {cold_ns}ns ({speedup:.1}x)"
    );

    let mut group = criterion.benchmark_group("online");
    group.sample_size(10);
    group.metric("ingest/statements_per_sec", statements_per_sec);
    group.metric("resolve/p95_ms", p95 as f64 / 1e6);
    group.metric("resolve/warm_final_ms", warm_final_ns as f64 / 1e6);
    group.metric("resolve/cold_final_ms", cold_ns as f64 / 1e6);
    group.metric("resolve/warm_speedup", speedup);
    group.bench_function("ingest_full_trace", |b| {
        b.iter(run_session);
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_online
}
criterion_main!(benches);

//! The oracle-pipeline companion to the optimizer benches: how much
//! engine work (raw what-if calls) each caching layer issues for the
//! same solve, and how fast warm solves run on top of each.
//!
//! Three paths over the Table-1 instance (W1, paper design space):
//!
//! * `memo` — the seed behavior: one cache entry per distinct
//!   `(stage, config)`, restored via [`Unprojected`];
//! * `projected` — [`ProjectedOracle`] with per-stage relevance masks
//!   and part-level decomposition;
//! * `dense` — [`DenseOracle`]: per-part cost tables materialized up
//!   front in parallel, lock-free reads afterwards.
//!
//! The solver outputs must be bit-identical across all three; the
//! projected and dense paths must issue strictly fewer raw what-if
//! calls than the seed memo path. Both facts are asserted here and the
//! counters land in `BENCH_oracle.json` as metric records.

use cdpd::core::{
    decompose, enumerate_configs, kaware, Config, CostOracle, OracleStats, Problem,
    ProjectableOracle, ProjectedOracle, Unprojected,
};
use cdpd::engine::WhatIfEngine;
use cdpd::types::Cost;
use cdpd::workload::{generate, paper, summarize, SummarizedWorkload};
use cdpd::EngineOracle;
use cdpd_bench::{build_database, paper_structures, Scale};
use cdpd_engine::Database;
use cdpd_testkit::bench::Criterion;
use cdpd_testkit::{criterion_group, criterion_main};

fn mk_engine(db: &Database, workload: &SummarizedWorkload) -> EngineOracle {
    EngineOracle::new(
        WhatIfEngine::snapshot(db, "t").expect("analyzed"),
        paper_structures(),
        workload,
    )
    .expect("valid oracle")
}

fn bench_oracle(criterion: &mut Criterion) {
    let scale = Scale {
        rows: 20_000,
        window_len: 100,
        seed: 42,
    };
    let db = build_database(&scale);
    let trace = generate(&paper::w1_with(&scale.params()), scale.seed);
    let workload = summarize(&trace, scale.window_len).expect("summarize");

    // Seed-memo baseline: full-config cache granularity, no projection.
    let memo_stats = OracleStats::shared();
    let mut seed_engine = mk_engine(&db, &workload);
    seed_engine.attach_stats(memo_stats.clone());
    let memo = ProjectedOracle::with_stats(Unprojected(seed_engine), memo_stats);

    let projected = mk_engine(&db, &workload).into_shared();
    let dense = mk_engine(&db, &workload).into_dense();
    assert!(dense.is_fully_dense(), "paper part masks fit the dense cap");

    let problem = Problem::paper_experiment();
    let candidates = enumerate_configs(&memo, None, Some(2)).expect("small m");

    // Cold solves: count the raw what-if calls each path issues.
    let s_memo = kaware::solve(&memo, &problem, &candidates, 2).expect("feasible");
    let s_proj = kaware::solve(&projected, &problem, &candidates, 2).expect("feasible");
    let s_dense = kaware::solve(&dense, &problem, &candidates, 2).expect("feasible");
    assert_eq!(s_memo, s_proj, "projected path must be bit-identical");
    assert_eq!(s_memo, s_dense, "dense path must be bit-identical");

    let memo_calls = memo.stats_snapshot().whatif_calls;
    let proj_calls = projected.stats_snapshot().whatif_calls;
    let dense_snap = dense.stats_snapshot();
    assert!(
        proj_calls < memo_calls,
        "projection must issue fewer raw calls: projected {proj_calls} vs memo {memo_calls}"
    );
    assert!(
        dense_snap.whatif_calls < memo_calls,
        "dense must issue fewer raw calls: dense {} vs memo {memo_calls}",
        dense_snap.whatif_calls
    );

    let mut group = criterion.benchmark_group("oracle");
    group.sample_size(10);
    group.metric("whatif_calls/memo", memo_calls as f64);
    group.metric("whatif_calls/projected", proj_calls as f64);
    group.metric("whatif_calls/dense", dense_snap.whatif_calls as f64);
    group.metric("dense/build_ms", dense_snap.dense_build_nanos as f64 / 1e6);
    group.metric("dense/bytes_resident", dense_snap.bytes_resident as f64);

    // Warm solves: pure lookup + solver work on each layer.
    group.bench_function("solve_warm/memo", |b| {
        b.iter(|| kaware::solve(&memo, &problem, &candidates, 2).expect("feasible"))
    });
    group.bench_function("solve_warm/projected", |b| {
        b.iter(|| kaware::solve(&projected, &problem, &candidates, 2).expect("feasible"))
    });
    group.bench_function("solve_warm/dense", |b| {
        b.iter(|| kaware::solve(&dense, &problem, &candidates, 2).expect("feasible"))
    });

    // Vocabulary-width scaling: wide-but-sparse solves through the
    // CoPhy decomposition must not slow down with the raw width.
    let (widths, timings, within_2x) = width_scaling();
    for (&m, &t) in widths.iter().zip(&timings) {
        group.metric(format!("width_scaling/solve_ms_{m}"), t * 1e3);
    }
    group.metric("width_scaling/within_2x_256", within_2x);
    group.finish();
}

/// A wide-but-sparse instance: `m` candidate structures of which only a
/// fixed 16-member active set — spread evenly across the vocabulary —
/// is ever relevant. Costs depend only on the active *ranks* present,
/// so instances at every width rename to the identical local problem:
/// solve costs must agree bit-for-bit, and solve time must not scale
/// with the vocabulary width.
struct SparseWide {
    n_stages: usize,
    m: usize,
    members: Vec<usize>,
    active: Config,
}

impl SparseWide {
    fn new(n_stages: usize, m: usize) -> SparseWide {
        let members: Vec<usize> = (0..16).map(|i| i * m / 16).collect();
        let active = members.iter().fold(Config::EMPTY, |acc, &g| acc.with(g));
        SparseWide {
            n_stages,
            m,
            members,
            active,
        }
    }

    /// The active ranks present in `config`, as a 16-bit code.
    fn code(&self, config: &Config) -> u64 {
        let mut code = 0u64;
        for (rank, &g) in self.members.iter().enumerate() {
            if config.contains(g) {
                code |= 1 << rank;
            }
        }
        code
    }
}

impl CostOracle for SparseWide {
    fn n_stages(&self) -> usize {
        self.n_stages
    }

    fn n_structures(&self) -> usize {
        self.m
    }

    fn exec(&self, stage: usize, config: &Config) -> Cost {
        // A deterministic pseudo-random table over (stage, active code):
        // rich enough that solves do real work, identical across widths.
        let code = self.code(config);
        let h = (stage as u64 + 1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(code.wrapping_mul(0xA24B_AED4_963E_E407));
        Cost::from_ios(200 + (h >> 48) - 10 * code.count_ones() as u64)
    }

    fn trans(&self, from: &Config, to: &Config) -> Cost {
        Cost::from_ios(40).scale(to.minus(from).len() as u64)
            + Cost::from_ios(2).scale(from.minus(to).len() as u64)
    }

    fn size(&self, config: &Config) -> u64 {
        config.len() as u64
    }
}

impl ProjectableOracle for SparseWide {
    fn relevance_mask(&self, _stage: usize) -> Config {
        self.active.clone()
    }
}

fn width_scaling() -> ([usize; 3], Vec<f64>, f64) {
    const STAGES: usize = 8;
    const K: usize = 3;
    const ITERS: u32 = 15;
    let widths = [64usize, 128, 256];
    let problem = Problem::default();

    let mut timings = Vec::new();
    let mut costs = Vec::new();
    for &m in &widths {
        let oracle = SparseWide::new(STAGES, m);
        // Warm-up (and correctness capture) outside the timed loop.
        let schedule = decompose::solve_decomposed(&oracle, &problem, K).expect("feasible");
        costs.push(schedule.total_cost());
        let started = std::time::Instant::now();
        for _ in 0..ITERS {
            decompose::solve_decomposed(&oracle, &problem, K).expect("feasible");
        }
        timings.push(started.elapsed().as_secs_f64() / f64::from(ITERS));
    }
    assert!(
        costs.iter().all(|&c| c == costs[0]),
        "every width renames to the same local instance: costs {costs:?}"
    );
    // The acceptance bar: a 256-wide sparse instance must solve within
    // 2x of the 64-wide one — the decomposition makes solve work scale
    // with the *active* width, not the vocabulary.
    let within_2x = timings[0] / timings[2];
    assert!(
        within_2x >= 0.5,
        "256-wide solve took {:.3}ms vs {:.3}ms at 64 wide (> 2x)",
        timings[2] * 1e3,
        timings[0] * 1e3
    );
    (widths, timings, within_2x)
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_oracle
}
criterion_main!(benches);

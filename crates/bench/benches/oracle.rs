//! The oracle-pipeline companion to the optimizer benches: how much
//! engine work (raw what-if calls) each caching layer issues for the
//! same solve, and how fast warm solves run on top of each.
//!
//! Three paths over the Table-1 instance (W1, paper design space):
//!
//! * `memo` — the seed behavior: one cache entry per distinct
//!   `(stage, config)`, restored via [`Unprojected`];
//! * `projected` — [`ProjectedOracle`] with per-stage relevance masks
//!   and part-level decomposition;
//! * `dense` — [`DenseOracle`]: per-part cost tables materialized up
//!   front in parallel, lock-free reads afterwards.
//!
//! The solver outputs must be bit-identical across all three; the
//! projected and dense paths must issue strictly fewer raw what-if
//! calls than the seed memo path. Both facts are asserted here and the
//! counters land in `BENCH_oracle.json` as metric records.

use cdpd::core::{enumerate_configs, kaware, OracleStats, Problem, ProjectedOracle, Unprojected};
use cdpd::engine::WhatIfEngine;
use cdpd::workload::{generate, paper, summarize, SummarizedWorkload};
use cdpd::EngineOracle;
use cdpd_bench::{build_database, paper_structures, Scale};
use cdpd_engine::Database;
use cdpd_testkit::bench::Criterion;
use cdpd_testkit::{criterion_group, criterion_main};

fn mk_engine(db: &Database, workload: &SummarizedWorkload) -> EngineOracle {
    EngineOracle::new(
        WhatIfEngine::snapshot(db, "t").expect("analyzed"),
        paper_structures(),
        workload,
    )
    .expect("valid oracle")
}

fn bench_oracle(criterion: &mut Criterion) {
    let scale = Scale {
        rows: 20_000,
        window_len: 100,
        seed: 42,
    };
    let db = build_database(&scale);
    let trace = generate(&paper::w1_with(&scale.params()), scale.seed);
    let workload = summarize(&trace, scale.window_len).expect("summarize");

    // Seed-memo baseline: full-config cache granularity, no projection.
    let memo_stats = OracleStats::shared();
    let mut seed_engine = mk_engine(&db, &workload);
    seed_engine.attach_stats(memo_stats.clone());
    let memo = ProjectedOracle::with_stats(Unprojected(seed_engine), memo_stats);

    let projected = mk_engine(&db, &workload).into_shared();
    let dense = mk_engine(&db, &workload).into_dense();
    assert!(dense.is_fully_dense(), "paper part masks fit the dense cap");

    let problem = Problem::paper_experiment();
    let candidates = enumerate_configs(&memo, None, Some(2)).expect("small m");

    // Cold solves: count the raw what-if calls each path issues.
    let s_memo = kaware::solve(&memo, &problem, &candidates, 2).expect("feasible");
    let s_proj = kaware::solve(&projected, &problem, &candidates, 2).expect("feasible");
    let s_dense = kaware::solve(&dense, &problem, &candidates, 2).expect("feasible");
    assert_eq!(s_memo, s_proj, "projected path must be bit-identical");
    assert_eq!(s_memo, s_dense, "dense path must be bit-identical");

    let memo_calls = memo.stats_snapshot().whatif_calls;
    let proj_calls = projected.stats_snapshot().whatif_calls;
    let dense_snap = dense.stats_snapshot();
    assert!(
        proj_calls < memo_calls,
        "projection must issue fewer raw calls: projected {proj_calls} vs memo {memo_calls}"
    );
    assert!(
        dense_snap.whatif_calls < memo_calls,
        "dense must issue fewer raw calls: dense {} vs memo {memo_calls}",
        dense_snap.whatif_calls
    );

    let mut group = criterion.benchmark_group("oracle");
    group.sample_size(10);
    group.metric("whatif_calls/memo", memo_calls as f64);
    group.metric("whatif_calls/projected", proj_calls as f64);
    group.metric("whatif_calls/dense", dense_snap.whatif_calls as f64);
    group.metric("dense/build_ms", dense_snap.dense_build_nanos as f64 / 1e6);
    group.metric("dense/bytes_resident", dense_snap.bytes_resident as f64);

    // Warm solves: pure lookup + solver work on each layer.
    group.bench_function("solve_warm/memo", |b| {
        b.iter(|| kaware::solve(&memo, &problem, &candidates, 2).expect("feasible"))
    });
    group.bench_function("solve_warm/projected", |b| {
        b.iter(|| kaware::solve(&projected, &problem, &candidates, 2).expect("feasible"))
    });
    group.bench_function("solve_warm/dense", |b| {
        b.iter(|| kaware::solve(&dense, &problem, &candidates, 2).expect("feasible"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_oracle
}
criterion_main!(benches);

//! Wire-serving throughput: statements/sec through the TCP front end
//! at 1, 2, and 8 concurrent sessions, and what moving the advisor
//! *inside* the serving loop costs foreground traffic.
//!
//! Five records land in `BENCH_server.json`:
//!
//! * **sessions_{1,2,8}/stmts_per_sec** — point `EXEC` statements per
//!   second through real TCP connections, one blocking client per
//!   session, everything on loopback. Per-connection requests are
//!   strictly serial, so this measures the full stack: frame codec,
//!   parse, epoch-pinned execution, per-statement `ThreadIoScope`
//!   attribution, response encode.
//! * **advisor/overhead_ratio** — the 2-session throughput with an
//!   [`OnlineAdvisor`] ingesting the live statement stream, divided by
//!   the same load on the same database (final recommended indexes
//!   installed) *without* the advisor. This isolates what the channel
//!   sends, window seals, and re-solves cost foreground traffic once
//!   the design is stable; it must stay near 1, and that is asserted.
//! * **advisor/speedup_vs_plain** — the advised throughput against the
//!   unindexed plain baseline: what adapting the design inside the
//!   serving loop buys (the indexes it builds turn point-select scans
//!   into seeks, so this is typically well above 1).
//! * **advisor/decisions** — windows the in-loop advisor sealed during
//!   the measured run, so the ratios above are known to cover actual
//!   advisor work and not an idle channel.

use cdpd::{AdvisorOptions, OnlineAdvisor, OnlineOptions};
use cdpd_bench::{build_database, paper_structures, Scale};
use cdpd_engine::Database;
use cdpd_server::{Client, Server};
use cdpd_testkit::bench::Criterion;
use cdpd_testkit::{criterion_group, criterion_main, Prng};
use std::sync::Arc;
use std::time::{Duration, Instant};

const ROWS: i64 = 20_000;
const WINDOW_LEN: usize = 100;
const STATEMENTS_PER_SESSION: usize = 400;
const RUNS: usize = 3;

/// Serve one complete load — `sessions` concurrent clients, each
/// issuing `STATEMENTS_PER_SESSION` point selects over the wire — and
/// return (statements/sec, advisor decisions observed).
fn serve_load(
    db: &Arc<Database>,
    scale: &Scale,
    sessions: usize,
    advisor: Option<OnlineOptions>,
) -> (f64, usize) {
    let mut server = Server::bind(db.clone(), "127.0.0.1:0").expect("bind ephemeral port");
    if let Some(options) = advisor {
        let online = OnlineAdvisor::new(db, "t", options).expect("advisor opens on analyzed table");
        // A long idle tick: windows seal on statement count, driven
        // entirely by the live session traffic.
        server = server.with_advisor(online, Duration::from_secs(30), 2);
    }
    let handle = server.handle().expect("handle");
    let join = std::thread::spawn(move || server.run());
    let addr = handle.addr();
    let domain = scale.domain();

    let start = Instant::now();
    std::thread::scope(|scope| {
        for s in 0..sessions {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect to loopback server");
                let mut rng = Prng::seed_from_u64(0xC11E_57A7 ^ s as u64);
                for _ in 0..STATEMENTS_PER_SESSION {
                    let v = rng.gen_range(0..domain);
                    client
                        .exec(&format!("SELECT * FROM t WHERE a = {v}"))
                        .expect("point select executes");
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();

    handle.shutdown();
    let report = join
        .join()
        .expect("server thread")
        .expect("serving succeeds");
    assert_eq!(
        report.sessions as usize, sessions,
        "every client became exactly one session"
    );
    let decisions = match &report.advisor {
        Some(advisor_report) => {
            assert_eq!(advisor_report.errors, 0, "in-loop advisor must not error");
            advisor_report.advisor.decisions().len()
        }
        None => 0,
    };
    let statements = (sessions * STATEMENTS_PER_SESSION) as f64;
    (statements / elapsed, decisions)
}

fn bench_server(criterion: &mut Criterion) {
    let scale = Scale {
        rows: ROWS,
        window_len: WINDOW_LEN,
        seed: 42,
    };
    let db = Arc::new(build_database(&scale));

    // Plain serving throughput at each session count, best of RUNS.
    let mut plain: Vec<(usize, f64)> = Vec::new();
    for sessions in [1usize, 2, 8] {
        let mut best = 0.0f64;
        for _ in 0..RUNS {
            best = best.max(serve_load(&db, &scale, sessions, None).0);
        }
        assert!(best > 0.0, "{sessions}-session load must make progress");
        plain.push((sessions, best));
    }
    let two_session = plain
        .iter()
        .find(|(n, _)| *n == 2)
        .expect("measured 2 sessions")
        .1;

    // The same 2-session load with the advisor in the serving loop,
    // on its own database so the builds it applies are real work every
    // run and never speed up the plain measurements above.
    let advised_db = Arc::new(build_database(&scale));
    let options = OnlineOptions {
        advisor: AdvisorOptions {
            k: Some(2),
            window_len: WINDOW_LEN,
            structures: Some(paper_structures()),
            max_structures_per_config: Some(1),
            ..AdvisorOptions::default()
        },
        ..OnlineOptions::default()
    };
    let mut advised = 0.0f64;
    let mut decisions = 0usize;
    for _ in 0..RUNS {
        let (tput, seen) = serve_load(&advised_db, &scale, 2, Some(options.clone()));
        advised = advised.max(tput);
        decisions = decisions.max(seen);
    }
    assert!(
        decisions >= 2,
        "the measured run must cover real advisor work ({decisions} decisions)"
    );

    // Steady-state baseline: the advisor's final configuration is now
    // installed on `advised_db`; serve the identical load there with
    // no advisor. The advised/indexed ratio is then pure serving-loop
    // overhead (channel sends, window seals, re-solves) rather than
    // the benefit of the indexes the advisor built.
    let mut indexed = 0.0f64;
    for _ in 0..RUNS {
        indexed = indexed.max(serve_load(&advised_db, &scale, 2, None).0);
    }
    let overhead_ratio = advised / indexed;
    let speedup = advised / two_session;
    assert!(
        overhead_ratio >= 0.3,
        "the in-loop advisor must not collapse steady-state serving: \
         {advised:.0} vs {indexed:.0} stmts/sec ({overhead_ratio:.2}x)"
    );
    assert!(
        speedup >= 0.8,
        "adapting the design online must not lose to never adapting: \
         {advised:.0} vs {two_session:.0} stmts/sec ({speedup:.2}x)"
    );

    let mut group = criterion.benchmark_group("server");
    for (sessions, tput) in &plain {
        group.metric(format!("sessions_{sessions}/stmts_per_sec"), *tput);
    }
    group.metric("advisor/stmts_per_sec", advised);
    group.metric("advisor/overhead_ratio", overhead_ratio);
    group.metric("advisor/speedup_vs_plain", speedup);
    group.metric("advisor/decisions", decisions as f64);
    group.finish();
}

criterion_group!(benches, bench_server);
criterion_main!(benches);

//! Criterion microbenchmarks for the B+-tree substrate: bulk load vs
//! incremental insert, point lookups, and full leaf scans (the three
//! operations whose I/O counts the cost model predicts).

use cdpd::storage::{BTree, Pager};
use cdpd::types::{PageId, Rid, Value};
use cdpd_testkit::bench::{BenchmarkId, Criterion};
use cdpd_testkit::{criterion_group, criterion_main};
use std::hint::black_box;
use std::sync::Arc;

fn entries(n: i64) -> Vec<(Vec<Value>, Rid)> {
    (0..n)
        .map(|i| {
            (
                vec![Value::Int(i)],
                Rid::new(PageId((i / 200) as u32), (i % 200) as u16),
            )
        })
        .collect()
}

fn bench_build(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("btree_build");
    group.sample_size(10);
    for n in [10_000i64, 100_000] {
        let sorted = entries(n);
        group.bench_with_input(BenchmarkId::new("bulk_load", n), &n, |b, _| {
            b.iter(|| BTree::bulk_load(Arc::new(Pager::new()), black_box(sorted.clone())).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter(|| {
                let mut tree = BTree::create(Arc::new(Pager::new())).unwrap();
                for (v, r) in &sorted {
                    tree.insert(v, *r).unwrap();
                }
                tree
            })
        });
    }
    group.finish();
}

fn bench_lookup_and_scan(criterion: &mut Criterion) {
    let tree = BTree::bulk_load(Arc::new(Pager::new()), entries(200_000)).unwrap();
    let mut group = criterion.benchmark_group("btree_read");
    group.bench_function("point_seek", |b| {
        let mut key = 0i64;
        b.iter(|| {
            key = (key * 6364136223846793005 + 1442695040888963407) % 200_000;
            let probe = vec![Value::Int(key.abs())];
            let mut cur = tree.seek(black_box(&probe)).unwrap();
            cur.next_entry().unwrap().map(|(_, rid)| rid)
        })
    });
    group.sample_size(20);
    group.bench_function("full_leaf_scan_200k", |b| {
        b.iter(|| {
            let mut cur = tree.scan_all().unwrap();
            let mut n = 0u64;
            while cur.next_entry().unwrap().is_some() {
                n += 1;
            }
            n
        })
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_lookup_and_scan);
criterion_main!(benches);

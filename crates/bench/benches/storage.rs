//! The parallel-read-path bench: what lock striping and the `&self`
//! read surface buy, on the Table-1/W1-scale instance.
//!
//! Records in `BENCH_storage.json`:
//!
//! * **batch read throughput** at 1 and 8 worker threads — a batch of
//!   covering index-only scans fanned out through
//!   [`cdpd::engine::parallel_map`] against one shared `&Database`;
//! * **read scaling** — the 8-thread/1-thread throughput ratio. On a
//!   host with ≥ 4 cores the ratio must be ≥ 2×; that is asserted,
//!   not just recorded. On smaller hosts (CI containers are often
//!   single-core) the assert degrades to "no contention collapse":
//!   parallelism may not help, but striping must keep it from
//!   *hurting* by more than 2×.
//! * **single-thread parity** — `parallel_map` at `threads == 1` takes
//!   the serial branch, so it must stay within 10% of a plain serial
//!   loop; asserted. Regression versus the *pre-refactor* serial read
//!   path is enforced separately by `ci.sh`'s bench-diff gate over the
//!   committed `BENCH_access_paths.json` timings.
//! * **striped pager scaling** — raw `Pager::read` fan-out below the
//!   engine, isolating the shard layer from planner/B-tree work.
//! * **durable tier** — WAL commit throughput over a 100k-commit log
//!   (every 10th commit logging a dirty page), checkpoint latency for
//!   the accumulated dirty set, and cold recovery time replaying that
//!   same 100k-transaction WAL. Recovery is verified in-bench: the
//!   reopened pager must land on the exact committed sequence and
//!   app-meta the writer reached.

use cdpd::engine::{parallel_map, Database, IndexSpec};
use cdpd::sql::SelectStmt;
use cdpd::storage::{DurableOptions, MemVfs, Pager};
use cdpd_bench::{build_database, Scale};
use cdpd_testkit::bench::Criterion;
use cdpd_testkit::{criterion_group, criterion_main};
use std::time::Instant;

const ROWS: i64 = 50_000;
/// Statements per batch: enough work (~30 ms serial) that worker
/// startup is noise, small enough that the bench stays quick.
const BATCH: usize = 64;
const THREADS: usize = 8;

fn db_with_indexes() -> Database {
    let scale = Scale {
        rows: ROWS,
        window_len: 500,
        seed: 5,
    };
    let db = build_database(&scale);
    db.create_index(&IndexSpec::new("t", &["a", "b"]))
        .expect("builds");
    db
}

/// A read batch dominated by covering index-only scans of I(a,b):
/// the heaviest indexed read path, so per-statement work dwarfs
/// scheduling overhead.
fn read_batch() -> Vec<SelectStmt> {
    let domain = ROWS / cdpd_bench::ROWS_PER_VALUE;
    (0..BATCH)
        .map(|k| SelectStmt::point("t", "b", (k as i64 * 131) % domain))
        .collect()
}

/// Execute the whole batch at `threads` workers; returns matched rows.
fn run_batch(db: &Database, batch: &[SelectStmt], threads: usize) -> u64 {
    parallel_map(batch.len(), threads, |k| db.query_count(&batch[k]))
        .expect("reads succeed")
        .iter()
        .map(|r| r.count)
        .sum()
}

fn best_of<R>(runs: usize, mut f: impl FnMut() -> R) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..runs {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_nanos() as u64);
    }
    best
}

/// Raw pager fan-out: every worker reads a disjoint slice of a page
/// set spread across all 16 shards — the layer the striping refactor
/// actually changed, with no planner or B-tree work on top.
fn pager_scaling() -> f64 {
    const PAGES: u32 = 4_096;
    const READS_PER_CHUNK: usize = 200_000;
    let pager = Pager::new();
    let ids: Vec<_> = (0..PAGES).map(|_| pager.allocate()).collect();
    let chunk = |i: usize| {
        let mut acc = 0u64;
        for r in 0..READS_PER_CHUNK {
            let id = ids[(i * READS_PER_CHUNK + r * 17) % ids.len()];
            acc = acc.wrapping_add(pager.read(id).expect("allocated")[0] as u64);
        }
        Ok(acc)
    };
    let t1 = best_of(3, || parallel_map(THREADS, 1, chunk).unwrap());
    let t8 = best_of(3, || parallel_map(THREADS, THREADS, chunk).unwrap());
    t1 as f64 / t8 as f64
}

/// Durable-tier measurements over a `MemVfs` (isolating the WAL /
/// checkpoint / recovery code paths from disk variance): commit
/// throughput, checkpoint latency, and cold recovery over a
/// 100k-transaction log.
struct DurableMetrics {
    commits_per_sec: f64,
    append_mib_per_sec: f64,
    checkpoint_ms: f64,
    recovery_ms: f64,
}

fn durable_metrics() -> DurableMetrics {
    const COMMITS: u64 = 100_000;
    const PAGES: usize = 1_024;
    let opts = DurableOptions {
        cache_pages: 0,
        group_commit: 16,
        checkpoint_wal_bytes: 0, // explicit checkpoints only
    };
    let vfs = MemVfs::new();
    let open = Pager::open_durable(std::sync::Arc::new(vfs.clone()), opts.clone())
        .expect("fresh durable pager");
    let pager = open.pager;
    let ids: Vec<_> = (0..PAGES).map(|_| pager.allocate()).collect();
    pager.commit(b"init").expect("commits");
    pager.checkpoint().expect("checkpoints");

    // The 100k-statement log: every commit carries app meta, every
    // 10th also logs a dirty page image.
    let start = Instant::now();
    for i in 0..COMMITS {
        if i % 10 == 0 {
            pager
                .update(ids[(i / 10) as usize % PAGES], |b| {
                    b[0] = b[0].wrapping_add(1)
                })
                .expect("updates");
        }
        pager.commit(&i.to_le_bytes()).expect("commits");
    }
    let append_s = start.elapsed().as_secs_f64();
    let wal_bytes = pager.wal_bytes();
    let final_seq = pager.committed_seq();

    // Freeze the surviving bytes *before* checkpointing, so recovery
    // is measured against the full 100k-transaction WAL.
    let frozen = MemVfs::new();
    for name in ["data", "sums", "wal", "hdr.0", "hdr.1"] {
        if let Some(bytes) = vfs.snapshot(name) {
            frozen.overwrite(name, bytes);
        }
    }

    let start = Instant::now();
    pager.checkpoint().expect("checkpoints");
    let checkpoint_s = start.elapsed().as_secs_f64();
    assert!(
        pager.wal_bytes() < wal_bytes,
        "checkpoint must truncate the WAL ({wal_bytes} -> {} bytes)",
        pager.wal_bytes()
    );

    let start = Instant::now();
    let recovered =
        Pager::open_durable(std::sync::Arc::new(frozen), opts).expect("recovery over the full WAL");
    let recovery_s = start.elapsed().as_secs_f64();
    assert_eq!(
        recovered.committed_seq, final_seq,
        "recovery lands on the writer's seq"
    );
    assert_eq!(
        recovered.app_meta,
        (COMMITS - 1).to_le_bytes(),
        "recovery yields the last committed app meta"
    );

    DurableMetrics {
        commits_per_sec: COMMITS as f64 / append_s,
        append_mib_per_sec: wal_bytes as f64 / (1024.0 * 1024.0) / append_s,
        checkpoint_ms: checkpoint_s * 1e3,
        recovery_ms: recovery_s * 1e3,
    }
}

fn bench_storage(criterion: &mut Criterion) {
    let db = db_with_indexes();
    let batch = read_batch();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Warm the read path once before timing anything.
    let expect_rows = run_batch(&db, &batch, 1);

    let serial_ns = best_of(5, || {
        batch
            .iter()
            .map(|q| db.query_count(q).expect("reads succeed").count)
            .sum::<u64>()
    });
    let t1_ns = best_of(5, || run_batch(&db, &batch, 1));
    let t8_ns = best_of(5, || run_batch(&db, &batch, THREADS));
    assert_eq!(run_batch(&db, &batch, THREADS), expect_rows);

    let per_sec = |ns: u64| BATCH as f64 / (ns as f64 / 1e9);
    let scaling = t1_ns as f64 / t8_ns as f64;

    // threads == 1 takes parallel_map's serial branch: the parallel
    // machinery must cost nothing when unused.
    assert!(
        t1_ns as f64 <= serial_ns as f64 * 1.10,
        "single-thread parallel_map regressed vs plain serial loop: \
         {t1_ns}ns vs {serial_ns}ns"
    );
    if cores >= 4 {
        assert!(
            scaling >= 2.0,
            "aggregate read throughput must scale at least 2x at \
             {THREADS} threads on a {cores}-core host: {scaling:.2}x \
             ({t1_ns}ns -> {t8_ns}ns)"
        );
    } else {
        // Too few cores for speedup; striping must still prevent the
        // old single-mutex collapse, where 8 threads serialized on one
        // lock and paid contention on top.
        assert!(
            scaling >= 0.5,
            "read path collapses under {THREADS} threads on a \
             {cores}-core host: {scaling:.2}x slower than serial"
        );
        println!(
            "note: {cores} core(s) available; recording scaling \
             ({scaling:.2}x) without the >=2x assert (needs >=4 cores)"
        );
    }

    let pager_x8 = pager_scaling();
    let durable = durable_metrics();

    let mut group = criterion.benchmark_group("storage");
    group.sample_size(10);
    group.metric("read/serial_stmts_per_sec", per_sec(serial_ns));
    group.metric("read/threads_1_stmts_per_sec", per_sec(t1_ns));
    group.metric("read/threads_8_stmts_per_sec", per_sec(t8_ns));
    group.metric("read/scaling_x8", scaling);
    group.metric("pager/scaling_x8", pager_x8);
    group.metric("wal/commits_per_sec", durable.commits_per_sec);
    group.metric("wal/append_mib_per_sec", durable.append_mib_per_sec);
    group.metric("checkpoint/latency_ms", durable.checkpoint_ms);
    group.metric("recovery/ms_100k_commits", durable.recovery_ms);
    group.bench_function("batch_reads/threads_1", |b| {
        b.iter(|| run_batch(&db, &batch, 1))
    });
    group.bench_function("batch_reads/threads_8", |b| {
        b.iter(|| run_batch(&db, &batch, THREADS))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_storage
}
criterion_main!(benches);

//! Criterion microbenchmarks for the execution engine and the what-if
//! optimizer: the access-path costs the whole reproduction stands on
//! (seek ≪ index-only scan < sequential scan), and the throughput of
//! what-if estimation (which bounds advisor scalability).

use cdpd::engine::{Database, IndexSpec, WhatIfEngine};
use cdpd::sql::SelectStmt;
use cdpd::types::{ColumnDef, Schema, Value};
use cdpd_bench::{build_database, paper_structures, Scale};
use cdpd_testkit::bench::Criterion;
use cdpd_testkit::{criterion_group, criterion_main};
use std::hint::black_box;

const ROWS: i64 = 50_000;

fn db_with_indexes() -> Database {
    let scale = Scale {
        rows: ROWS,
        window_len: 500,
        seed: 5,
    };
    let db = build_database(&scale);
    db.create_index(&IndexSpec::new("t", &["a", "b"]))
        .expect("builds");
    db.create_index(&IndexSpec::new("t", &["c"]))
        .expect("builds");
    db
}

/// Measured cost of each access path on the same data.
fn bench_access_paths(criterion: &mut Criterion) {
    let db = db_with_indexes();
    let mut group = criterion.benchmark_group("access_paths");
    group.sample_size(20);
    // Seek through I(a,b) on its leading column.
    group.bench_function("index_seek", |b| {
        let q = SelectStmt::point("t", "a", 777);
        b.iter(|| db.query_count(black_box(&q)).unwrap().count)
    });
    // Covering index-only scan of I(a,b) for a b-query.
    group.bench_function("index_only_scan", |b| {
        let q = SelectStmt::point("t", "b", 777);
        b.iter(|| db.query_count(black_box(&q)).unwrap().count)
    });
    // Full heap scan for the unindexed column.
    group.bench_function("seq_scan", |b| {
        let q = SelectStmt::point("t", "d", 777);
        b.iter(|| db.query_count(black_box(&q)).unwrap().count)
    });
    group.finish();
}

/// What-if estimation throughput: one EXEC estimate = one planner run
/// over hypothetical index shapes.
fn bench_whatif(criterion: &mut Criterion) {
    let scale = Scale {
        rows: ROWS,
        window_len: 500,
        seed: 5,
    };
    let db = build_database(&scale);
    let whatif = WhatIfEngine::snapshot(&db, "t").expect("analyzed");
    let structures = paper_structures();
    let q = SelectStmt::point("t", "b", 123);
    let mut group = criterion.benchmark_group("whatif");
    group.bench_function("exec_cost_6_indexes", |b| {
        b.iter(|| {
            whatif
                .exec_cost(black_box(&q), black_box(&structures))
                .unwrap()
        })
    });
    group.bench_function("trans_cost", |b| {
        b.iter(|| {
            whatif
                .trans_cost(black_box(&structures[..2]), black_box(&structures[2..]))
                .unwrap()
        })
    });
    group.finish();
}

/// Online index build (CREATE INDEX: scan + sort + bulk load) — the
/// real TRANS cost of a design change.
fn bench_ddl(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("ddl");
    group.sample_size(10);
    group.bench_function("create_drop_index_10k", |b| {
        let db = Database::new();
        db.create_table(
            "t",
            Schema::new(vec![ColumnDef::int("a"), ColumnDef::int("b")]),
        )
        .unwrap();
        for i in 0..10_000i64 {
            db.insert("t", &[Value::Int(i % 2_000), Value::Int(i)])
                .unwrap();
        }
        db.analyze("t").unwrap();
        let spec = IndexSpec::new("t", &["a"]);
        b.iter(|| {
            db.create_index(black_box(&spec)).unwrap();
            db.drop_index(&spec).unwrap();
        })
    });
    group.finish();
}

criterion_group!(benches, bench_access_paths, bench_whatif, bench_ddl);
criterion_main!(benches);

//! Overhead of the observability layer when tracing is **disabled**.
//!
//! The `cdpd-obs` contract is that instrumented binaries run at seed
//! speed: a `span!` with tracing off is one relaxed atomic load, a
//! counter bump is one `fetch_add` (plus one relaxed load for tracked
//! counters). This bench measures those disabled primitives directly,
//! counts how many of each one full table1 run actually executes, and
//! derives the instrumentation overhead ratio
//!
//! ```text
//! (spans × span_ns + bumps × counter_ns) / untraced wall ns
//! ```
//!
//! The ratio is asserted `< 2%` and recorded (with its inputs) into
//! `BENCH_obs.json` when `CDPD_BENCH_JSON_DIR` is set, so the
//! trajectory of the overhead is tracked across runs alongside the
//! timing benches.
//!
//! The calibration layer gets the same treatment: a quickstart-scale
//! replay runs with the predicted-vs-actual loop closed (the
//! `replay_with` default), its wall time and statement count are
//! measured, and the per-statement [`cdpd::WindowCalibration::record`]
//! cost plus a once-per-window [`Sampler::sample_now`] are priced
//! against it. That combined ratio is also asserted `< 2%`, and the
//! calibrated replay throughput lands in `BENCH_obs.json` for the
//! ci.sh bench-diff gate.

use cdpd::obs::timeseries::Sampler;
use cdpd::replay::replay_with;
use cdpd::workload::{generate, paper, QueryMix, WorkloadSpec};
use cdpd::{PathKind, WindowCalibration};
use cdpd_bench::{build_database, Scale};
use cdpd_testkit::bench::Criterion;
use cdpd_testkit::{criterion_group, criterion_main};
use std::time::Instant;

const OVERHEAD_BUDGET: f64 = 0.02;

/// The exact work of the table1 bin, spans included, printing elided:
/// generate the four paper mixes and tally observed column frequencies.
fn table1_work() -> u64 {
    let _run = cdpd_obs::span!("table1.run");
    let mixes = QueryMix::paper_mixes();
    let cols = ["a", "b", "c", "d"];
    let mut acc = 0u64;
    for mix in &mixes {
        let _span = cdpd_obs::span!("table1.mix", mix = mix.name.as_str());
        let spec = WorkloadSpec::new("t", 500_000, 10_000, vec![mix.clone()]).expect("valid spec");
        let trace = generate(&spec, 42);
        for stmt in trace.statements() {
            let col = stmt.conditions()[0].column();
            acc += cols.iter().position(|c| *c == col).expect("known column") as u64;
        }
    }
    acc
}

/// Best-of-`repeats` mean ns per call over `iters` calls.
fn measure_ns(repeats: usize, iters: u64, mut f: impl FnMut()) -> f64 {
    for _ in 0..iters {
        f(); // warmup
    }
    (0..repeats)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_nanos() as f64 / iters as f64
        })
        .fold(f64::INFINITY, f64::min)
}

fn bench_obs_overhead(criterion: &mut Criterion) {
    assert!(
        !cdpd_obs::trace::enabled(),
        "run this bench without CDPD_TRACE set"
    );
    let mut group = criterion.benchmark_group("obs");

    // Disabled primitives. The span is black_box'd through the closure
    // return so its construction and drop are both in the measurement.
    let span_ns = measure_ns(7, 2_000_000, || {
        let _span = std::hint::black_box(cdpd_obs::span!("bench.obs.noop"));
    });
    let counter_ns = measure_ns(7, 2_000_000, || {
        cdpd_obs::counter!("bench.obs.plain").inc();
    });
    let tracked_ns = measure_ns(7, 2_000_000, || {
        cdpd_obs::tracked_counter!("bench.obs.tracked").inc();
    });
    group.metric("span_disabled_ns", span_ns);
    group.metric("counter_add_ns", counter_ns);
    group.metric("tracked_counter_add_ns", tracked_ns);

    // Count the instrumentation ops one table1 run executes: registry
    // counter/histogram bumps from a metrics delta, span count from one
    // ring-traced run.
    let before = cdpd_obs::registry().snapshot();
    std::hint::black_box(table1_work());
    let delta = cdpd_obs::registry().snapshot().delta(&before);
    let bumps: u64 = delta
        .counters
        .iter()
        .filter(|(name, _)| !name.starts_with("bench.obs."))
        .map(|(_, v)| v)
        .sum::<u64>()
        + delta.histograms.values().map(|h| h.count).sum::<u64>();

    let t0 = cdpd_obs::trace::now_ns();
    cdpd_obs::trace::set_enabled(true);
    std::hint::black_box(table1_work());
    cdpd_obs::trace::set_enabled(false);
    let spans = cdpd_obs::trace::ring()
        .iter()
        .filter(|r| r.start_ns >= t0)
        .count() as u64;

    // Untraced wall time of the same run, best of 5.
    let wall_ns = measure_ns(5, 1, || {
        std::hint::black_box(table1_work());
    });

    let cost_ns = spans as f64 * span_ns + bumps as f64 * tracked_ns;
    let overhead_ratio = cost_ns / wall_ns;
    group.metric("table1_wall_ns", wall_ns);
    group.metric("table1_spans", spans as f64);
    group.metric("table1_counter_bumps", bumps as f64);
    group.metric("overhead_ratio", overhead_ratio);

    // --- Sampler + calibration overhead on a quickstart-scale replay.
    //
    // The replay runs with calibration on (replay_with's default
    // MeasuredIo pass), so its wall time already *includes* the loop;
    // pricing the per-statement record plus a once-per-window registry
    // sample against that wall is therefore conservative.
    const ROWS: i64 = 10_000;
    const WINDOW: usize = 200;
    let scale = Scale {
        rows: ROWS,
        window_len: WINDOW,
        seed: 7,
    };
    let params = paper::PaperParams {
        domain: ROWS / cdpd_bench::ROWS_PER_VALUE,
        window_len: WINDOW,
        ..Default::default()
    };
    let trace = generate(&paper::w1_with(&params), 42);
    let windows = trace.len().div_ceil(WINDOW);
    let schedule = vec![Vec::new(); windows];
    let mut replay_wall_ns = f64::INFINITY;
    let mut calibrated_samples = 0;
    for _ in 0..3 {
        let db = build_database(&scale);
        let start = Instant::now();
        let report =
            replay_with(&db, &trace, WINDOW, &schedule, None, 1).expect("calibrated replay runs");
        replay_wall_ns = replay_wall_ns.min(start.elapsed().as_nanos() as f64);
        let calib = report.calibration.expect("replay always calibrates");
        assert_eq!(calib.samples, trace.len() as u64);
        calibrated_samples = calib.samples;
    }

    // Per-statement calibration cost: one record() folding a pair into
    // the window accumulator and the global registry.
    let mut scratch = WindowCalibration::default();
    let record_ns = measure_ns(7, 1_000_000, || {
        scratch.record(
            std::hint::black_box(12),
            std::hint::black_box(10),
            PathKind::IndexSeek,
        );
    });
    // Per-sample cost of snapshotting the (by now fully populated)
    // registry into ring-buffer time series.
    let mut sampler = Sampler::new(1024);
    let sample_ns = measure_ns(5, 2_000, || {
        sampler.sample_now();
    });

    let calib_cost_ns = calibrated_samples as f64 * record_ns + windows as f64 * sample_ns;
    let calib_ratio = calib_cost_ns / replay_wall_ns;
    group.metric("sampler_sample_ns", sample_ns);
    group.metric("calibration_record_ns", record_ns);
    group.metric(
        "calibration/replay_stmts_per_sec",
        calibrated_samples as f64 / (replay_wall_ns / 1e9),
    );
    group.metric("calibration/overhead_ratio", calib_ratio);
    group.finish();

    assert!(
        overhead_ratio < OVERHEAD_BUDGET,
        "disabled-tracing overhead {:.4}% exceeds the {:.0}% budget \
         ({spans} spans × {span_ns:.1} ns + {bumps} bumps × {tracked_ns:.1} ns \
         over {wall_ns:.0} ns of work)",
        overhead_ratio * 100.0,
        OVERHEAD_BUDGET * 100.0,
    );
    assert!(
        calib_ratio < OVERHEAD_BUDGET,
        "calibration+sampling overhead {:.4}% exceeds the {:.0}% budget \
         ({calibrated_samples} records × {record_ns:.1} ns + {windows} samples × \
         {sample_ns:.1} ns over {replay_wall_ns:.0} ns of replay)",
        calib_ratio * 100.0,
        OVERHEAD_BUDGET * 100.0,
    );
    println!(
        "\ndisabled-tracing overhead: {:.5}% of table1 wall time (budget {:.0}%)",
        overhead_ratio * 100.0,
        OVERHEAD_BUDGET * 100.0
    );
    println!(
        "calibration+sampling overhead: {:.5}% of calibrated replay wall time (budget {:.0}%)",
        calib_ratio * 100.0,
        OVERHEAD_BUDGET * 100.0
    );
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);

//! Criterion microbenchmarks for the design optimizers — the Figure 4
//! companion, plus the §6.4 hybrid ablation.
//!
//! Uses a synthetic cost oracle (deterministic tables, no what-if
//! machinery) so the numbers isolate pure solver work. The instance
//! family mirrors the paper's workloads: phased preferences with minor
//! fluctuations, `m` structures, ≤1-structure configurations.

use cdpd_core::{
    enumerate_configs, hybrid, kaware, merging, ranking, seqgraph, Config, Problem, SyntheticOracle,
};
use cdpd_testkit::bench::{BenchmarkId, Criterion};
use cdpd_testkit::{criterion_group, criterion_main};
use cdpd_types::Cost;
use std::hint::black_box;

fn c(io: u64) -> Cost {
    Cost::from_ios(io)
}

/// W-style phased oracle: `phases` phases over `n` stages, minor
/// fluctuation every other stage, `m` structures.
fn phased(n: usize, m: usize, phases: usize) -> SyntheticOracle {
    SyntheticOracle::from_fn(
        n,
        m,
        move |stage, cfg| {
            let phase = (stage * phases) / n;
            let preferred = phase % m;
            let minor = (preferred + 1) % m;
            let want = if stage % 2 == 1 { minor } else { preferred };
            if cfg.contains(want) {
                c(20)
            } else if cfg.contains(preferred) {
                c(120)
            } else {
                c(300)
            }
        },
        vec![c(25); m],
        c(1),
        vec![1; m],
    )
}

fn instance(n: usize) -> (SyntheticOracle, Problem, Vec<Config>) {
    let oracle = phased(n, 6, 3);
    let problem = Problem::paper_experiment();
    let candidates = enumerate_configs(&oracle, None, Some(1)).expect("small m");
    (oracle, problem, candidates)
}

/// Solver runtime vs change budget k (the Figure 4 series).
fn bench_vs_k(criterion: &mut Criterion) {
    let (oracle, problem, candidates) = instance(120);
    let unconstrained = seqgraph::solve(&oracle, &problem, &candidates).expect("feasible");
    let mut group = criterion.benchmark_group("optimizer_vs_k");
    for k in [2usize, 6, 10, 14, 18] {
        group.bench_with_input(BenchmarkId::new("kaware", k), &k, |b, &k| {
            b.iter(|| kaware::solve(&oracle, &problem, &candidates, black_box(k)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("merging", k), &k, |b, &k| {
            b.iter(|| {
                merging::refine(&oracle, &problem, &candidates, black_box(k), &unconstrained)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("hybrid", k), &k, |b, &k| {
            b.iter(|| hybrid::solve(&oracle, &problem, &candidates, black_box(k)).unwrap())
        });
    }
    group.finish();
}

/// Solver runtime vs workload length n at fixed k.
fn bench_vs_n(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("optimizer_vs_n");
    for n in [30usize, 120, 480] {
        let (oracle, problem, candidates) = instance(n);
        group.bench_with_input(BenchmarkId::new("unconstrained", n), &n, |b, _| {
            b.iter(|| seqgraph::solve(&oracle, &problem, &candidates).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("kaware_k4", n), &n, |b, _| {
            b.iter(|| kaware::solve(&oracle, &problem, &candidates, 4).unwrap())
        });
    }
    group.finish();
}

/// Ranking in its friendly regime (k close to l), with the k-aware
/// graph on the same point for comparison.
fn bench_ranking_easy(criterion: &mut Criterion) {
    let (oracle, problem, candidates) = instance(60);
    let l = seqgraph::solve(&oracle, &problem, &candidates)
        .unwrap()
        .changes;
    let k = l.saturating_sub(1);
    let mut group = criterion.benchmark_group("ranking_near_l");
    group.bench_function("ranking", |b| {
        b.iter(|| ranking::solve(&oracle, &problem, &candidates, k, 1_000_000).unwrap())
    });
    group.bench_function("kaware", |b| {
        b.iter(|| kaware::solve(&oracle, &problem, &candidates, k).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_vs_k, bench_vs_n, bench_ranking_easy
}
criterion_main!(benches);

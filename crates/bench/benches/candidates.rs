//! Ablation bench for the §4.1 design choice: full `2^m` configuration
//! enumeration vs GREEDY-SEQ candidate restriction, as the number of
//! candidate structures m grows. This is the quantitative version of
//! the paper's claim that the exponential algorithms are "probably
//! impractical unless m is very small".
//!
//! Both solve the same constrained problem (k = 3); the greedy series
//! keeps working far past the point where full enumeration blows up.

use cdpd_core::{enumerate_configs, greedy, kaware, Problem, SyntheticOracle};
use cdpd_testkit::bench::{BenchmarkId, Criterion};
use cdpd_testkit::{criterion_group, criterion_main};
use cdpd_types::Cost;
use std::hint::black_box;

fn c(io: u64) -> Cost {
    Cost::from_ios(io)
}

fn oracle(n: usize, m: usize) -> SyntheticOracle {
    SyntheticOracle::from_fn(
        n,
        m,
        move |stage, cfg| {
            let want = (stage * m) / n;
            let width_penalty = 40 * cfg.len().saturating_sub(1) as u64;
            if cfg.contains(want) {
                c(15 + width_penalty)
            } else {
                c(250 + width_penalty)
            }
        },
        vec![c(30); m],
        c(1),
        vec![1; m],
    )
}

fn bench_candidate_strategies(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("candidate_strategies");
    group.sample_size(10);
    const N: usize = 40;
    const K: usize = 3;
    // Full enumeration is O(n·4^m) edges; m = 10 is already ~42M edges
    // at N = 40 and the whole point is that it stops scaling.
    for m in [4usize, 6, 8] {
        let o = oracle(N, m);
        let problem = Problem::paper_experiment();
        let full = enumerate_configs(&o, None, None).expect("m <= 20");
        group.bench_with_input(BenchmarkId::new("full_enumeration", m), &m, |b, _| {
            b.iter(|| kaware::solve(&o, &problem, black_box(&full), K).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("greedy_restricted", m), &m, |b, _| {
            b.iter(|| greedy::solve(&o, &problem, black_box(K)).unwrap())
        });
    }
    // Greedy alone where full enumeration is already hopeless.
    {
        let m = 14usize;
        let o = oracle(N, m);
        let problem = Problem::paper_experiment();
        group.bench_with_input(BenchmarkId::new("greedy_restricted", m), &m, |b, _| {
            b.iter(|| greedy::solve(&o, &problem, black_box(K)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_candidate_strategies);
criterion_main!(benches);

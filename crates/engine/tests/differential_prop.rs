//! Differential property tests: every statement must produce identical
//! results on an unindexed database (sequential-scan plans only) and on
//! a heavily indexed one (seeks, range scans, index-only scans,
//! extremum plans) — across random data, random predicates, random
//! projections/aggregates/orderings, and interleaved writes.
//!
//! This is the engine-level analogue of the B+-tree's model test: the
//! seq-scan executor is the model, the index plans are the system under
//! test.

use cdpd_engine::{Database, IndexSpec};
use cdpd_sql::{parse, Statement};
use cdpd_testkit::prop::{any_bool, vec_of, Config, Just, Strategy};
use cdpd_testkit::{one_of, props};
use cdpd_types::{ColumnDef, Schema, Value};

fn build_dbs(rows: &[(i64, i64, i64)]) -> (Database, Database) {
    let schema = || {
        Schema::new(vec![
            ColumnDef::int("a"),
            ColumnDef::int("b"),
            ColumnDef::int("c"),
        ])
    };
    let plain = Database::new();
    plain.create_table("t", schema()).unwrap();
    let indexed = Database::new();
    indexed.create_table("t", schema()).unwrap();
    for &(a, b, c) in rows {
        let row = vec![Value::Int(a), Value::Int(b), Value::Int(c)];
        plain.insert("t", &row).unwrap();
        indexed.insert("t", &row).unwrap();
    }
    plain.analyze("t").unwrap();
    indexed.analyze("t").unwrap();
    indexed.create_index(&IndexSpec::new("t", &["a"])).unwrap();
    indexed
        .create_index(&IndexSpec::new("t", &["b", "c"]))
        .unwrap();
    indexed
        .create_index(&IndexSpec::new("t", &["c", "a", "b"]))
        .unwrap();
    (plain, indexed)
}

fn col() -> impl Strategy<Value = &'static str> {
    one_of![Just("a"), Just("b"), Just("c")]
}

/// Random SQL statements over columns a, b, c with values in 0..30.
fn stmt_strategy() -> impl Strategy<Value = String> {
    let val = || 0i64..30;
    one_of![
        // Point queries with varying projections.
        (col(), col(), val()).prop_map(|(p, w, v)| format!("SELECT {p} FROM t WHERE {w} = {v}")),
        (col(), val()).prop_map(|(w, v)| format!("SELECT * FROM t WHERE {w} = {v}")),
        (col(), val()).prop_map(|(w, v)| format!("SELECT COUNT(*) FROM t WHERE {w} >= {v}")),
        // Ranges and conjunctions.
        (col(), val(), val()).prop_map(|(w, lo, hi)| {
            let (lo, hi) = (lo.min(hi), lo.max(hi));
            format!("SELECT {w} FROM t WHERE {w} BETWEEN {lo} AND {hi}")
        }),
        (col(), col(), val(), val()).prop_map(|(w1, w2, v1, v2)| {
            if w1 == w2 {
                format!("SELECT a, b FROM t WHERE {w1} = {v1}")
            } else {
                format!("SELECT a, b FROM t WHERE {w1} = {v1} AND {w2} < {v2}")
            }
        }),
        // Aggregates (incl. the IndexExtremum path: no predicate).
        (
            one_of![Just("SUM"), Just("MIN"), Just("MAX"), Just("AVG")],
            col()
        )
            .prop_map(|(f, c)| format!("SELECT {f}({c}) FROM t")),
        (
            one_of![Just("SUM"), Just("MIN"), Just("MAX")],
            col(),
            col(),
            val()
        )
            .prop_map(|(f, p, w, v)| format!("SELECT {f}({p}) FROM t WHERE {w} = {v}")),
        // ORDER BY / LIMIT.
        (col(), col(), val(), any_bool(), 0u64..10).prop_map(|(p, o, v, desc, lim)| format!(
            "SELECT {p} FROM t WHERE {p} >= {v} ORDER BY {o}{} LIMIT {lim}",
            if desc { " DESC" } else { "" }
        )),
        // Writes, applied to both databases.
        (col(), col(), val(), val())
            .prop_map(|(s, w, nv, v)| { format!("UPDATE t SET {s} = {nv} WHERE {w} = {v}") }),
        (col(), val()).prop_map(|(w, v)| format!("DELETE FROM t WHERE {w} = {v}")),
    ]
}

fn normalized_rows(r: &cdpd_engine::QueryResult) -> Option<Vec<Vec<Value>>> {
    r.rows.clone().map(|mut rows| {
        rows.sort();
        rows
    })
}

fn check_agreement(rows: &[(i64, i64, i64)], stmts: &[String]) {
    let (plain, indexed) = build_dbs(rows);
    for (i, sql) in stmts.iter().enumerate() {
        let a = plain.execute_sql(sql).unwrap();
        let b = indexed.execute_sql(sql).unwrap();
        assert_eq!(
            a.count, b.count,
            "stmt {i}: {sql} (plans {} vs {})",
            a.plan, b.plan
        );
        assert_eq!(
            a.aggregate, b.aggregate,
            "stmt {i}: {sql} (plans {} vs {})",
            a.plan, b.plan
        );
        // Row sets must match; ordering is only comparable when an
        // ORDER BY pins it (then compare verbatim).
        let is_ordered = match parse(sql).unwrap() {
            Statement::Select(s) => s.order_by.is_some() && s.limit.is_none(),
            _ => false,
        };
        if is_ordered {
            // With duplicates in the order column the tie order is
            // unspecified; compare the ordered projection of the
            // order column only via sorted full rows.
            assert_eq!(normalized_rows(&a), normalized_rows(&b), "stmt {i}: {sql}");
        } else {
            assert_eq!(normalized_rows(&a), normalized_rows(&b), "stmt {i}: {sql}");
        }
    }
    // Final state equivalence after all the writes.
    let a = plain.execute_sql("SELECT * FROM t").unwrap();
    let b = indexed.execute_sql("SELECT * FROM t").unwrap();
    assert_eq!(
        normalized_rows(&a),
        normalized_rows(&b),
        "final table state"
    );
}

props! {
    config: Config::with_cases(24);

    fn indexed_and_plain_databases_agree(
        rows in vec_of((0i64..30, 0i64..30, 0i64..30), 0..200),
        stmts in vec_of(stmt_strategy(), 1..25),
    ) {
        check_agreement(rows, stmts);
    }
}

/// Ported from the retired `differential_prop.proptest-regressions`
/// file: the minimal counterexample proptest once shrank to — an
/// extremum aggregate over duplicate rows.
#[test]
fn regression_min_aggregate_over_duplicate_rows() {
    check_agreement(
        &[(0, 0, 0), (0, 0, 0)],
        &["SELECT MIN(a) FROM t".to_owned()],
    );
}

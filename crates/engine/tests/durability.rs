//! Durable `Database` round-trips: open → mutate → reopen must restore
//! the catalog, data, indexes, and statistics exactly.
//!
//! The kill-at-any-point crash suite lives in the facade crate
//! (`tests/recovery_prop.rs`); these tests pin the clean-shutdown
//! contract the crash suite builds on.

use cdpd_engine::{Database, IndexSpec};
use cdpd_storage::{DurableOptions, MemVfs};
use cdpd_types::{ColumnDef, Schema, Value};
use std::sync::Arc;

fn iv(i: i64) -> Value {
    Value::Int(i)
}

fn open_mem(vfs: &MemVfs) -> Database {
    Database::open_with_vfs(Arc::new(vfs.clone()), DurableOptions::default()).unwrap()
}

fn abcd_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::int("a"),
        ColumnDef::int("b"),
        ColumnDef::int("c"),
        ColumnDef::text("d"),
    ])
}

fn load(db: &mut Database, rows: i64) {
    db.create_table("t", abcd_schema()).unwrap();
    let rows: Vec<Vec<Value>> = (0..rows)
        .map(|i| vec![iv(i), iv(i % 10), iv(i % 97), Value::Str(format!("row{i}"))])
        .collect();
    db.insert_many("t", rows.iter().map(Vec::as_slice)).unwrap();
    db.analyze("t").unwrap();
}

/// Observable logical state: every row of `t` in scan order, plus the
/// plan and count for a representative query.
fn digest(db: &Database) -> (Vec<Vec<Value>>, String, u64) {
    let q = cdpd_sql::parse("SELECT * FROM t WHERE b = 3").unwrap();
    let cdpd_sql::Statement::Select(sel) = q else {
        panic!("not a select")
    };
    let r = db.query(&sel).unwrap();
    let all = cdpd_sql::parse("SELECT * FROM t").unwrap();
    let cdpd_sql::Statement::Select(all) = all else {
        panic!("not a select")
    };
    let rows = db.query(&all).unwrap().rows.unwrap();
    (rows, r.plan, r.count)
}

#[test]
fn reopen_restores_rows_indexes_and_stats() {
    let vfs = MemVfs::new();
    let before = {
        let mut db = open_mem(&vfs);
        load(&mut db, 500);
        db.create_index(&IndexSpec::new("t", &["b"])).unwrap();
        db.execute_sql("UPDATE t SET c = 5 WHERE a < 50").unwrap();
        db.execute_sql("DELETE FROM t WHERE a = 499").unwrap();
        digest(&db)
    };
    let db = open_mem(&vfs);
    assert!(db.is_durable());
    assert_eq!(digest(&db), before);
    assert!(db.has_index(&IndexSpec::new("t", &["b"])));
    // Statistics survived field-exactly: same rows/pages and the same
    // folded (unrefreshed) snapshot the planner saw before shutdown.
    let stats = db.stats("t").unwrap().unwrap();
    assert_eq!(stats.row_count, 500);
}

#[test]
fn reopen_resumes_table_id_allocation_and_ddl() {
    let vfs = MemVfs::new();
    {
        let mut db = open_mem(&vfs);
        load(&mut db, 50);
        db.create_table("u", abcd_schema()).unwrap();
    }
    let db = open_mem(&vfs);
    // New DDL keeps working against the recovered pager and catalog.
    db.create_table("v", abcd_schema()).unwrap();
    db.insert("v", &[iv(1), iv(2), iv(3), Value::Str("x".into())])
        .unwrap();
    db.create_index(&IndexSpec::new("t", &["c"])).unwrap();
    db.execute_sql("DELETE FROM t WHERE b = 7").unwrap();
    let db2 = open_mem(&vfs);
    assert_eq!(digest(&db2), digest(&db));
}

#[test]
fn stale_stats_snapshot_survives_reopen() {
    // DML folded into the maintainer but NOT refreshed: the planner
    // must see the stale snapshot after reopen, and a refresh must
    // then report exactly the pending changes.
    let vfs = MemVfs::new();
    {
        let mut db = open_mem(&vfs);
        load(&mut db, 200);
        db.execute_sql("UPDATE t SET b = 11 WHERE a < 20").unwrap();
    }
    let mut control = Database::new();
    load(&mut control, 200);
    control
        .execute_sql("UPDATE t SET b = 11 WHERE a < 20")
        .unwrap();

    let db = open_mem(&vfs);
    let stats = db.stats("t").unwrap().unwrap();
    let cstats = control.stats("t").unwrap().unwrap();
    assert_eq!(stats.row_count, cstats.row_count);
    assert_eq!(stats.columns[1].distinct, cstats.columns[1].distinct);
    let r = db.refresh_stats("t").unwrap();
    let c = control.refresh_stats("t").unwrap();
    assert_eq!(r, c, "pending dirty flags survive recovery");
    assert_eq!(
        db.stats("t").unwrap().unwrap().columns[1].distinct,
        control.stats("t").unwrap().unwrap().columns[1].distinct
    );
}

#[test]
fn app_state_round_trips() {
    let vfs = MemVfs::new();
    {
        let db = open_mem(&vfs);
        db.set_app_state(b"advisor state v1".to_vec()).unwrap();
    }
    let db = open_mem(&vfs);
    assert_eq!(db.app_state(), b"advisor state v1");
    // In-memory databases accept but do not persist app state.
    let mem = Database::new();
    assert!(!mem.is_durable());
    mem.set_app_state(b"x".to_vec()).unwrap();
    assert_eq!(mem.app_state(), b"x");
}

#[test]
fn checkpoint_then_reopen_matches_wal_replay() {
    let vfs = MemVfs::new();
    let before = {
        let mut db = open_mem(&vfs);
        load(&mut db, 300);
        db.create_index(&IndexSpec::new("t", &["b", "c"])).unwrap();
        db.checkpoint().unwrap();
        // More work after the checkpoint: recovered partly from the
        // data file, partly from WAL replay.
        db.execute_sql("UPDATE t SET d = 'post' WHERE b = 1")
            .unwrap();
        digest(&db)
    };
    let db = open_mem(&vfs);
    assert_eq!(digest(&db), before);
}

#[test]
fn bounded_cache_database_round_trips() {
    let vfs = MemVfs::new();
    let opts = DurableOptions {
        cache_pages: 32,
        ..DurableOptions::default()
    };
    let before = {
        let mut db = Database::open_with_vfs(Arc::new(vfs.clone()), opts.clone()).unwrap();
        load(&mut db, 800);
        db.create_index(&IndexSpec::new("t", &["a"])).unwrap();
        db.checkpoint().unwrap();
        db.execute_sql("DELETE FROM t WHERE c = 13").unwrap();
        digest(&db)
    };
    let db = Database::open_with_vfs(Arc::new(vfs.clone()), opts).unwrap();
    assert_eq!(digest(&db), before);
}

/// Complements the `execute_script` statement-index tests in `db.rs`
/// (which already pin the parse- and execution-error tags): commit
/// granularity is per statement, so when a script dies at statement N,
/// exactly statements `0..N` survive a restart — the tagged index
/// tells the operator precisely where a replayed script must resume.
#[test]
fn failed_script_keeps_its_committed_prefix_across_restart() {
    let vfs = MemVfs::new();
    {
        let db = open_mem(&vfs);
        db.execute_script("CREATE TABLE s (x INT, y INT); INSERT INTO s VALUES (1, 10);")
            .unwrap();
        db.analyze("s").unwrap();
        let err = db
            .execute_script(
                "INSERT INTO s VALUES (2, 20); INSERT INTO s VALUES (3); \
                 INSERT INTO s VALUES (4, 40);",
            )
            .unwrap_err();
        assert!(
            matches!(&err, cdpd_types::Error::TypeMismatch(m) if m.starts_with("statement 1:")),
            "{err}"
        );
    }
    let db = open_mem(&vfs);
    let rows = db.execute_sql("SELECT x FROM s WHERE x >= 0").unwrap();
    // Statement 0 of the failed script committed; statement 1 failed
    // before touching anything; statement 2 never ran.
    assert_eq!(rows.count, 2);
    assert_eq!(
        db.execute_sql("SELECT MAX(x) FROM s").unwrap().aggregate,
        Some(Value::Int(2))
    );
}

#[test]
fn disk_backed_database_round_trips() {
    let dir = std::env::temp_dir().join(format!(
        "cdpd-durability-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let before = {
        let mut db = Database::open(&dir).unwrap();
        load(&mut db, 120);
        db.create_index(&IndexSpec::new("t", &["b"])).unwrap();
        digest(&db)
    };
    let db = Database::open(&dir).unwrap();
    let after = digest(&db);
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
    assert_eq!(after, before);
}

//! Table and column statistics, built by `ANALYZE`-style full scans.
//!
//! The what-if optimizer never touches data; everything it knows comes
//! from here: row/page counts, exact distinct counts (collected during
//! the analyze scan — affordable in-memory, and it removes one source
//! of estimation noise the paper's SQL Server setup had), min/max, and
//! an equi-depth histogram over a strided sample for range selectivity.
//!
//! Catalog entries hold a built [`TableStats`] behind an `Arc` and
//! replace it *wholesale* on refresh — never mutate it in place — so a
//! held `Arc<TableStats>` (e.g. inside a `WhatIfEngine` snapshot or a
//! concurrent planner run) is a stable point-in-time view. Keep it
//! that way: any future incremental maintenance must build a new value
//! and swap it.

use cdpd_types::{ColumnId, Value};

/// Equi-depth histogram: `bounds[i]` is the upper bound of a bucket and
/// `cum[i]` the fraction of sampled values ≤ that bound. Duplicate
/// bounds are merged by keeping the *largest* cumulative fraction, so
/// heavily skewed data (many buckets ending at the same value) keeps its
/// depth information.
#[derive(Clone, Debug)]
pub struct Histogram {
    bounds: Vec<Value>,
    cum: Vec<f64>,
    min: Option<Value>,
}

impl Histogram {
    /// Build from a (not necessarily sorted) sample with `buckets`
    /// buckets. Empty samples yield an empty histogram.
    pub fn build(mut sample: Vec<Value>, buckets: usize) -> Histogram {
        assert!(buckets > 0, "histogram needs at least one bucket");
        if sample.is_empty() {
            return Histogram {
                bounds: Vec::new(),
                cum: Vec::new(),
                min: None,
            };
        }
        sample.sort();
        let n = sample.len();
        let min = Some(sample[0].clone());
        let mut bounds: Vec<Value> = Vec::with_capacity(buckets);
        let mut cum: Vec<f64> = Vec::with_capacity(buckets);
        for b in 1..=buckets {
            let idx = (n * b / buckets).saturating_sub(1);
            let bound = sample[idx].clone();
            let frac = (idx + 1) as f64 / n as f64;
            if bounds.last() == Some(&bound) {
                *cum.last_mut().expect("non-empty") = frac.max(*cum.last().expect("non-empty"));
            } else {
                bounds.push(bound);
                cum.push(frac);
            }
        }
        *cum.last_mut().expect("non-empty") = 1.0;
        Histogram { bounds, cum, min }
    }

    /// Estimated fraction of values that are `< v` (or `≤ v` when
    /// `inclusive`). Buckets are assumed internally uniform; integer
    /// buckets interpolate linearly.
    pub fn fraction_below(&self, v: &Value, inclusive: bool) -> f64 {
        if self.bounds.is_empty() {
            return 0.5; // no information
        }
        let mut prev_cum = 0.0f64;
        let mut prev_bound: Option<&Value> = self.min.as_ref();
        for (b, c) in self.bounds.iter().zip(&self.cum) {
            if v <= b {
                if v == b && inclusive {
                    return *c;
                }
                let depth = c - prev_cum;
                let frac_in_bucket =
                    match (prev_bound.and_then(Value::as_int), b.as_int(), v.as_int()) {
                        (Some(lo), Some(hi), Some(x)) if hi > lo => {
                            ((x - lo) as f64 / (hi - lo) as f64).clamp(0.0, 1.0)
                        }
                        _ => 0.5,
                    };
                return (prev_cum + depth * frac_in_bucket).clamp(0.0, 1.0);
            }
            prev_cum = *c;
            prev_bound = Some(b);
        }
        1.0
    }

    /// Estimated selectivity of a (possibly one-sided) range.
    pub fn range_selectivity(
        &self,
        lo: Option<&Value>,
        lo_inclusive: bool,
        hi: Option<&Value>,
        hi_inclusive: bool,
    ) -> f64 {
        let below_hi = match hi {
            Some(h) => self.fraction_below(h, hi_inclusive),
            None => 1.0,
        };
        let below_lo = match lo {
            Some(l) => self.fraction_below(l, !lo_inclusive),
            None => 0.0,
        };
        (below_hi - below_lo).clamp(0.0, 1.0)
    }

    /// Number of buckets actually stored.
    pub fn bucket_count(&self) -> usize {
        self.bounds.len()
    }

    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        crate::persist::put_values(out, &self.bounds);
        crate::persist::put_u32(out, self.cum.len() as u32);
        for c in &self.cum {
            crate::persist::put_f64(out, *c);
        }
        crate::persist::put_opt_value(out, &self.min);
    }

    pub(crate) fn decode(r: &mut crate::persist::Reader<'_>) -> cdpd_types::Result<Histogram> {
        let bounds = r.values()?;
        let n = r.u32()? as usize;
        if n != bounds.len() {
            return Err(cdpd_types::Error::Corrupt(
                "histogram bounds/cum length mismatch".into(),
            ));
        }
        let mut cum = Vec::with_capacity(n);
        for _ in 0..n {
            cum.push(r.f64()?);
        }
        let min = r.opt_value()?;
        Ok(Histogram { bounds, cum, min })
    }
}

/// Per-column statistics.
#[derive(Clone, Debug)]
pub struct ColumnStats {
    /// Exact number of distinct values at analyze time.
    pub distinct: u64,
    /// Minimum value seen.
    pub min: Option<Value>,
    /// Maximum value seen.
    pub max: Option<Value>,
    /// Equi-depth histogram over a strided sample.
    pub histogram: Histogram,
    /// Average encoded width in bytes (for index size estimates).
    pub avg_width: f64,
}

impl ColumnStats {
    /// Selectivity of `col = v`: `1 / distinct`, bounded to [0, 1].
    pub fn eq_selectivity(&self) -> f64 {
        if self.distinct == 0 {
            0.0
        } else {
            1.0 / self.distinct as f64
        }
    }

    /// Histogram-informed selectivity of `col = v` for a *specific*
    /// literal, as IN-list and OR-branch estimates need: values outside
    /// the observed [min, max] domain match nothing, a point mass at an
    /// equi-depth bucket bound (a heavy hitter) dominates, and anything
    /// else falls back to the uniform `1 / distinct` estimate.
    pub fn point_selectivity(&self, v: &Value) -> f64 {
        if let (Some(min), Some(max)) = (&self.min, &self.max) {
            if v < min || v > max {
                return 0.0;
            }
        }
        let mass = self.histogram.fraction_below(v, true) - self.histogram.fraction_below(v, false);
        mass.max(0.0).max(self.eq_selectivity()).min(1.0)
    }
}

/// Statistics for one table.
#[derive(Clone, Debug)]
pub struct TableStats {
    /// Live row count at analyze time.
    pub row_count: u64,
    /// Heap page count (sequential scan cost).
    pub heap_pages: u64,
    /// Average encoded row width in bytes.
    pub avg_row_width: f64,
    /// Per-column stats, indexed by [`ColumnId`].
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Stats for column `col`.
    pub fn column(&self, col: ColumnId) -> &ColumnStats {
        &self.columns[col.index()]
    }

    /// Expected number of rows matching an equality on `col`.
    pub fn eq_rows(&self, col: ColumnId) -> f64 {
        self.row_count as f64 * self.column(col).eq_selectivity()
    }

    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        use crate::persist::{put_f64, put_opt_value, put_u16, put_u64};
        put_u64(out, self.row_count);
        put_u64(out, self.heap_pages);
        put_f64(out, self.avg_row_width);
        put_u16(out, self.columns.len() as u16);
        for c in &self.columns {
            put_u64(out, c.distinct);
            put_opt_value(out, &c.min);
            put_opt_value(out, &c.max);
            c.histogram.encode(out);
            put_f64(out, c.avg_width);
        }
    }

    pub(crate) fn decode(r: &mut crate::persist::Reader<'_>) -> cdpd_types::Result<TableStats> {
        let row_count = r.u64()?;
        let heap_pages = r.u64()?;
        let avg_row_width = r.f64()?;
        let n = r.u16()? as usize;
        let mut columns = Vec::with_capacity(n);
        for _ in 0..n {
            let distinct = r.u64()?;
            let min = r.opt_value()?;
            let max = r.opt_value()?;
            let histogram = Histogram::decode(r)?;
            let avg_width = r.f64()?;
            columns.push(ColumnStats {
                distinct,
                min,
                max,
                histogram,
                avg_width,
            });
        }
        Ok(TableStats {
            row_count,
            heap_pages,
            avg_row_width,
            columns,
        })
    }
}

/// Which statistics changed in a [`refresh`](crate::Database::refresh_stats).
///
/// The oracle layer uses this to invalidate only the memo entries whose
/// relevance masks intersect the changed columns instead of discarding
/// everything after every DML batch.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsRefresh {
    /// True when the table's row or page count moved — row count scales
    /// every cost estimate, so callers must treat *all* cached costs as
    /// stale.
    pub rows_changed: bool,
    /// Columns whose per-column statistics were rebuilt, in id order.
    /// Empty together with `rows_changed == false` means the refresh
    /// was a no-op (no DML since the last refresh).
    pub changed_columns: Vec<ColumnId>,
}

impl StatsRefresh {
    /// True when nothing changed since the last refresh.
    pub fn is_noop(&self) -> bool {
        !self.rows_changed && self.changed_columns.is_empty()
    }
}

/// Accumulates statistics during an analyze scan and *maintains* them
/// under subsequent DML, so statistics can be refreshed per batch in
/// O(sample size) instead of re-scanning the heap.
///
/// Maintenance is deliberately one-sided where exactness would require
/// a scan: distinct counts, min/max, and the histogram sample only ever
/// *gain* values (deletes leave them as stale upper bounds — the
/// standard engineering trade-off incremental ANALYZE makes). Row and
/// byte counts are exact.
pub(crate) struct StatsMaintainer {
    rows: u64,
    bytes: u64,
    /// Per column: distinct hash set, min, max, sample.
    cols: Vec<ColBuilder>,
    stride: u64,
    /// Sampling clock for updated values (inserts use the row counter).
    update_events: u64,
    /// Per-column dirty flags since the last snapshot.
    dirty: Vec<bool>,
    /// Row/byte counts moved since the last snapshot.
    rows_dirty: bool,
}

struct ColBuilder {
    distinct: std::collections::HashSet<Value>,
    min: Option<Value>,
    max: Option<Value>,
    sample: Vec<Value>,
    width_sum: u64,
}

impl ColBuilder {
    fn absorb(&mut self, v: &Value, sampled: bool) {
        self.distinct.insert(v.clone());
        if self.min.as_ref().is_none_or(|m| v < m) {
            self.min = Some(v.clone());
        }
        if self.max.as_ref().is_none_or(|m| v > m) {
            self.max = Some(v.clone());
        }
        if sampled {
            self.sample.push(v.clone());
        }
    }
}

pub(crate) const HISTOGRAM_BUCKETS: usize = 64;
const SAMPLE_TARGET: u64 = 20_000;

impl StatsMaintainer {
    pub(crate) fn new(n_columns: usize, expected_rows: u64) -> StatsMaintainer {
        StatsMaintainer {
            rows: 0,
            bytes: 0,
            cols: (0..n_columns)
                .map(|_| ColBuilder {
                    distinct: std::collections::HashSet::new(),
                    min: None,
                    max: None,
                    sample: Vec::new(),
                    width_sum: 0,
                })
                .collect(),
            stride: (expected_rows / SAMPLE_TARGET).max(1),
            update_events: 0,
            dirty: vec![false; n_columns],
            rows_dirty: false,
        }
    }

    pub(crate) fn add_row(&mut self, values: &[Value]) {
        let sampled = self.rows.is_multiple_of(self.stride);
        self.rows += 1;
        self.rows_dirty = true;
        for ((cb, v), dirty) in self.cols.iter_mut().zip(values).zip(&mut self.dirty) {
            let w = v.encoded_len() as u64;
            self.bytes += w;
            cb.width_sum += w;
            cb.absorb(v, sampled);
            *dirty = true;
        }
    }

    /// Fold one executed UPDATE into the statistics: only the columns
    /// whose value actually changed are touched (and marked dirty).
    pub(crate) fn update_row(&mut self, old: &[Value], new: &[Value]) {
        let sampled = self.update_events.is_multiple_of(self.stride);
        self.update_events += 1;
        for (i, (o, n)) in old.iter().zip(new).enumerate() {
            if o == n {
                continue;
            }
            let cb = &mut self.cols[i];
            let (ow, nw) = (o.encoded_len() as u64, n.encoded_len() as u64);
            self.bytes = self.bytes + nw - ow;
            cb.width_sum = cb.width_sum + nw - ow;
            cb.absorb(n, sampled);
            self.dirty[i] = true;
        }
    }

    /// Fold one executed DELETE into the statistics. Distinct counts,
    /// bounds, and samples keep the deleted values (stale upper
    /// bounds); row and byte counts shrink exactly.
    pub(crate) fn delete_row(&mut self, values: &[Value]) {
        self.rows = self.rows.saturating_sub(1);
        self.rows_dirty = true;
        for ((cb, v), dirty) in self.cols.iter_mut().zip(values).zip(&mut self.dirty) {
            let w = v.encoded_len() as u64;
            self.bytes = self.bytes.saturating_sub(w);
            cb.width_sum = cb.width_sum.saturating_sub(w);
            *dirty = true;
        }
    }

    /// True if any DML has been folded in since the last
    /// [`take_refresh`](StatsMaintainer::take_refresh).
    pub(crate) fn is_dirty(&self) -> bool {
        self.rows_dirty || self.dirty.iter().any(|&d| d)
    }

    /// Consume the dirty flags, reporting what changed.
    pub(crate) fn take_refresh(&mut self) -> StatsRefresh {
        let refresh = StatsRefresh {
            rows_changed: self.rows_dirty,
            changed_columns: self
                .dirty
                .iter()
                .enumerate()
                .filter(|&(_, &d)| d)
                .map(|(i, _)| ColumnId(i as u16))
                .collect(),
        };
        self.rows_dirty = false;
        self.dirty.iter_mut().for_each(|d| *d = false);
        refresh
    }

    /// Serialize every field exactly. The maintainer is *state*, not a
    /// cache: folded-forward statistics differ from a fresh analyze
    /// (deletes leave stale upper bounds), and the stride/`update_events`
    /// sampling clock decides which future values enter the histogram
    /// sample — so bit-identical recovery requires all of it. Distinct
    /// sets are written in sorted order so equal states serialize to
    /// equal bytes.
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        use crate::persist::{put_opt_value, put_u16, put_u64, put_u8, put_values};
        put_u64(out, self.rows);
        put_u64(out, self.bytes);
        put_u64(out, self.stride);
        put_u64(out, self.update_events);
        put_u8(out, self.rows_dirty as u8);
        put_u16(out, self.cols.len() as u16);
        for (cb, dirty) in self.cols.iter().zip(&self.dirty) {
            let mut distinct: Vec<Value> = cb.distinct.iter().cloned().collect();
            distinct.sort();
            put_values(out, &distinct);
            put_opt_value(out, &cb.min);
            put_opt_value(out, &cb.max);
            put_values(out, &cb.sample);
            put_u64(out, cb.width_sum);
            put_u8(out, *dirty as u8);
        }
    }

    pub(crate) fn decode(
        r: &mut crate::persist::Reader<'_>,
    ) -> cdpd_types::Result<StatsMaintainer> {
        let rows = r.u64()?;
        let bytes = r.u64()?;
        let stride = r.u64()?;
        if stride == 0 {
            return Err(cdpd_types::Error::Corrupt("zero sampling stride".into()));
        }
        let update_events = r.u64()?;
        let rows_dirty = r.u8()? != 0;
        let n = r.u16()? as usize;
        let mut cols = Vec::with_capacity(n);
        let mut dirty = Vec::with_capacity(n);
        for _ in 0..n {
            let distinct: std::collections::HashSet<Value> = r.values()?.into_iter().collect();
            let min = r.opt_value()?;
            let max = r.opt_value()?;
            let sample = r.values()?;
            let width_sum = r.u64()?;
            dirty.push(r.u8()? != 0);
            cols.push(ColBuilder {
                distinct,
                min,
                max,
                sample,
                width_sum,
            });
        }
        Ok(StatsMaintainer {
            rows,
            bytes,
            cols,
            stride,
            update_events,
            dirty,
            rows_dirty,
        })
    }

    /// Materialize [`TableStats`] from the retained state: O(sample)
    /// histogram rebuilds, no heap scan.
    pub(crate) fn snapshot(&self, heap_pages: u64) -> TableStats {
        let rows = self.rows;
        TableStats {
            row_count: rows,
            heap_pages,
            avg_row_width: if rows == 0 {
                0.0
            } else {
                self.bytes as f64 / rows as f64
            },
            columns: self
                .cols
                .iter()
                .map(|cb| ColumnStats {
                    distinct: cb.distinct.len() as u64,
                    min: cb.min.clone(),
                    max: cb.max.clone(),
                    histogram: Histogram::build(cb.sample.clone(), HISTOGRAM_BUCKETS),
                    avg_width: if rows == 0 {
                        0.0
                    } else {
                        cb.width_sum as f64 / rows as f64
                    },
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(i: i64) -> Value {
        Value::Int(i)
    }

    #[test]
    fn histogram_uniform_fractions() {
        let sample: Vec<Value> = (0..10_000).map(iv).collect();
        let h = Histogram::build(sample, 64);
        let f = h.fraction_below(&iv(2500), false);
        assert!((f - 0.25).abs() < 0.05, "got {f}");
        let f = h.fraction_below(&iv(9999), true);
        assert!(f > 0.98, "got {f}");
        let f = h.fraction_below(&iv(-5), false);
        assert!(f < 0.02, "got {f}");
    }

    #[test]
    fn histogram_range_selectivity() {
        let sample: Vec<Value> = (0..10_000).map(iv).collect();
        let h = Histogram::build(sample, 64);
        let s = h.range_selectivity(Some(&iv(1000)), true, Some(&iv(2000)), true);
        assert!((s - 0.10).abs() < 0.05, "got {s}");
        let s = h.range_selectivity(None, false, Some(&iv(5000)), false);
        assert!((s - 0.50).abs() < 0.05, "got {s}");
        assert_eq!(h.range_selectivity(None, false, None, false), 1.0);
    }

    #[test]
    fn empty_histogram_is_agnostic() {
        let h = Histogram::build(Vec::new(), 8);
        assert_eq!(h.bucket_count(), 0);
        assert_eq!(h.fraction_below(&iv(3), false), 0.5);
    }

    #[test]
    fn skewed_histogram_tracks_depth_not_width() {
        // 90% of values are < 10; equi-depth must reflect that.
        let mut sample: Vec<Value> = (0..9000).map(|i| iv(i % 10)).collect();
        sample.extend((0..1000).map(|i| iv(1000 + i)));
        let h = Histogram::build(sample, 64);
        let f = h.fraction_below(&iv(100), false);
        assert!(f > 0.85, "got {f}");
    }

    #[test]
    fn builder_computes_exact_distinct_and_bounds() {
        let mut b = StatsMaintainer::new(2, 100);
        for i in 0..100i64 {
            b.add_row(&[iv(i % 10), iv(i)]);
        }
        let stats = b.snapshot(7);
        assert_eq!(stats.row_count, 100);
        assert_eq!(stats.heap_pages, 7);
        assert_eq!(stats.columns[0].distinct, 10);
        assert_eq!(stats.columns[1].distinct, 100);
        assert_eq!(stats.columns[0].min, Some(iv(0)));
        assert_eq!(stats.columns[0].max, Some(iv(9)));
        assert!((stats.column(cdpd_types::ColumnId(0)).eq_selectivity() - 0.1).abs() < 1e-9);
        assert!((stats.eq_rows(cdpd_types::ColumnId(0)) - 10.0).abs() < 1e-9);
        assert!((stats.avg_row_width - 18.0).abs() < 1e-9);
    }

    #[test]
    fn builder_handles_empty_table() {
        let b = StatsMaintainer::new(1, 0);
        let stats = b.snapshot(0);
        assert_eq!(stats.row_count, 0);
        assert_eq!(stats.columns[0].distinct, 0);
        assert_eq!(stats.columns[0].eq_selectivity(), 0.0);
    }

    #[test]
    fn maintainer_folds_dml_without_rescans() {
        let mut m = StatsMaintainer::new(2, 100);
        for i in 0..100i64 {
            m.add_row(&[iv(i % 10), iv(i)]);
        }
        // The analyze scan itself marks everything dirty; drain it.
        let seed = m.take_refresh();
        assert!(seed.rows_changed);
        assert_eq!(seed.changed_columns.len(), 2);
        assert!(!m.is_dirty());
        assert!(m.take_refresh().is_noop());

        // An update touching only column 1 dirties only column 1.
        m.update_row(&[iv(3), iv(50)], &[iv(3), iv(5000)]);
        let r = m.take_refresh();
        assert!(!r.rows_changed);
        assert_eq!(r.changed_columns, vec![cdpd_types::ColumnId(1)]);
        let stats = m.snapshot(7);
        assert_eq!(stats.row_count, 100);
        assert_eq!(stats.columns[1].max, Some(iv(5000)), "max extends");
        assert_eq!(stats.columns[1].distinct, 101, "new value counted");
        assert_eq!(stats.columns[0].distinct, 10, "untouched column intact");

        // A no-op update (old == new everywhere) dirties nothing.
        m.update_row(&[iv(3), iv(7)], &[iv(3), iv(7)]);
        assert!(!m.is_dirty());

        // Deletes shrink the exact counters and dirty everything.
        m.delete_row(&[iv(3), iv(50)]);
        let r = m.take_refresh();
        assert!(r.rows_changed);
        assert_eq!(r.changed_columns.len(), 2);
        assert_eq!(m.snapshot(7).row_count, 99);

        // Inserts grow them back.
        m.add_row(&[iv(11), iv(200)]);
        let stats = m.snapshot(7);
        assert_eq!(stats.row_count, 100);
        assert_eq!(stats.columns[0].distinct, 11);
        assert_eq!(stats.columns[0].max, Some(iv(11)));
    }
}

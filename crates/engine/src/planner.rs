//! Cost-based access-path selection.
//!
//! The planner is configuration-driven: it receives a list of
//! [`IndexInfo`]s describing the indexes *assumed to exist* and knows
//! nothing about whether they are real B+-trees or hypothetical
//! what-if structures. `Database` plans against its materialized
//! indexes; [`crate::WhatIfEngine`] plans against estimated shapes.
//! One planner, two callers — that is the what-if interface.
//!
//! Planning is a pure function of the schema, the statistics snapshot,
//! and the assumed index shapes — no interior mutability — so
//! concurrent statements plan freely against one shared
//! `Arc<TableStats>` without synchronization.

use crate::cost::{CostModel, IndexShape};
use crate::stats::TableStats;
use cdpd_sql::{AggFunc, Condition, Dml, Projection, SelectStmt};
use cdpd_types::{ColumnId, Cost, Error, Result, Schema, Value};

/// An index as the planner sees it.
#[derive(Clone, Debug)]
pub struct IndexInfo {
    /// Canonical name (for plan descriptions and executor lookup).
    pub name: String,
    /// Key columns in key order.
    pub columns: Vec<ColumnId>,
    /// Physical shape (real or estimated).
    pub shape: IndexShape,
}

/// Bound projection: output columns (`None` = all), whether only a
/// count is needed, and an optional aggregate fold.
type BoundProjection = (Option<Vec<ColumnId>>, bool, Option<(AggFunc, ColumnId)>);

/// A resolved predicate term: condition with its column id(s).
#[derive(Clone, Debug)]
pub struct BoundCondition {
    /// Column the term constrains — for an `Or`, its first branch's
    /// column (see `branch_columns` for the full set).
    pub column: ColumnId,
    /// The original condition.
    pub condition: Condition,
    /// For [`Condition::Or`] terms: the column id of each branch,
    /// parallel to the branch list. Empty for simple terms.
    pub branch_columns: Vec<ColumnId>,
}

/// The chosen access path.
#[derive(Clone, Debug, PartialEq)]
pub enum Plan {
    /// Scan the heap, filter, project.
    SeqScan,
    /// Descend the index with an equality probe on the leading
    /// `eq_prefix` key columns.
    IndexSeek {
        /// Position in the planner's index list.
        index: usize,
        /// Number of leading key columns bound by equality.
        eq_prefix: usize,
        /// Whether the index covers the query (no heap fetches).
        covering: bool,
    },
    /// Scan the index range where the leading key column falls in the
    /// predicate's range.
    IndexRange {
        /// Position in the planner's index list.
        index: usize,
        /// Whether the index covers the query.
        covering: bool,
    },
    /// Scan every leaf of a covering index instead of the (wider) heap.
    IndexOnlyScan {
        /// Position in the planner's index list.
        index: usize,
    },
    /// Read one end of an index: `O(height)` evaluation of an
    /// unpredicated `MIN(col)` / `MAX(col)` over the leading key column.
    IndexExtremum {
        /// Position in the planner's index list.
        index: usize,
        /// True for `MAX` (rightmost entry), false for `MIN`.
        max: bool,
    },
    /// Rowid intersection: equality probes on two (or more) distinct
    /// indexes, each collecting the rids of one `Eq` conjunct; the
    /// sorted rid lists are intersected, the survivors fetched from the
    /// heap and residual-filtered.
    IndexAnd {
        /// `(index position, probe value)` per participant; each probes
        /// that index's leading key column.
        probes: Vec<(usize, Value)>,
    },
    /// Rowid union: one equality probe per `IN` value or `OR` branch
    /// (probes may target different indexes); the sorted rid lists are
    /// deduplicated, the union fetched from the heap and
    /// residual-filtered.
    IndexOr {
        /// `(index position, probe value)` per probe; each probes that
        /// index's leading key column. Deduplicated at plan time.
        probes: Vec<(usize, Value)>,
    },
}

/// Planner output: the plan, its cost estimate, and bound predicate.
#[derive(Clone, Debug)]
pub struct PlannedQuery {
    /// Chosen access path.
    pub plan: Plan,
    /// Estimated cost in logical I/Os.
    pub est_cost: Cost,
    /// Estimated number of matching rows.
    pub est_rows: f64,
    /// All predicate conjuncts, bound to column ids.
    pub conditions: Vec<BoundCondition>,
    /// Projected column ids (`None` = all columns).
    pub projection: Option<Vec<ColumnId>>,
    /// Whether the query only needs a row count (`COUNT(*)`).
    pub count_only: bool,
    /// Single-column aggregate to fold, if any.
    pub aggregate: Option<(AggFunc, ColumnId)>,
    /// Requested ordering `(column, desc)`, if any.
    pub order_by: Option<(ColumnId, bool)>,
    /// Row limit, if any.
    pub limit: Option<u64>,
    /// Whether the chosen access path already emits rows in the
    /// requested order (no sort needed).
    pub plan_ordered: bool,
    /// Index name used, if any.
    pub index_name: Option<String>,
}

impl PlannedQuery {
    /// One-line plan description, e.g. `IndexSeek(ix_t_a) cost=9`.
    pub fn describe(&self) -> String {
        let kind = match &self.plan {
            Plan::SeqScan => "SeqScan".to_owned(),
            Plan::IndexSeek { covering, .. } => format!(
                "IndexSeek({}{})",
                self.index_name.as_deref().unwrap_or("?"),
                if *covering { ", covering" } else { "" }
            ),
            Plan::IndexRange { covering, .. } => format!(
                "IndexRange({}{})",
                self.index_name.as_deref().unwrap_or("?"),
                if *covering { ", covering" } else { "" }
            ),
            Plan::IndexOnlyScan { .. } => {
                format!(
                    "IndexOnlyScan({})",
                    self.index_name.as_deref().unwrap_or("?")
                )
            }
            Plan::IndexExtremum { max, .. } => format!(
                "IndexExtremum({}, {})",
                self.index_name.as_deref().unwrap_or("?"),
                if *max { "max" } else { "min" }
            ),
            Plan::IndexAnd { probes } => format!(
                "IndexAnd({}, {} probes)",
                self.index_name.as_deref().unwrap_or("?"),
                probes.len()
            ),
            Plan::IndexOr { probes } => format!(
                "IndexOr({}, {} probe{})",
                self.index_name.as_deref().unwrap_or("?"),
                probes.len(),
                if probes.len() == 1 { "" } else { "s" }
            ),
        };
        format!("{kind} cost={}", self.est_cost)
    }
}

/// A planned `UPDATE` or `DELETE`: the row-locating access path plus
/// the estimated write-side cost.
#[derive(Clone, Debug)]
pub struct PlannedWrite {
    /// Access path used to locate the affected rows.
    pub find: PlannedQuery,
    /// Estimated total cost: locate + heap writes + index maintenance.
    pub est_total: Cost,
    /// Positions (in the planner's index list) of indexes that need
    /// per-row maintenance under this statement.
    pub maintained: Vec<usize>,
    /// Whether this is an update (vs a delete).
    pub is_update: bool,
}

impl PlannedWrite {
    /// One-line description, e.g. `Update via SeqScan, 2 index(es) maintained`.
    pub fn describe(&self) -> String {
        format!(
            "{} via {} maintaining {} index(es), cost={}",
            if self.is_update { "Update" } else { "Delete" },
            self.find.describe(),
            self.maintained.len(),
            self.est_total
        )
    }
}

/// Access-path feature flags, for ablation studies: disabling a path
/// shows how much of an experiment's outcome it carries. (Disabling
/// `index_only_scans` demotes `I(a,b)` from the paper's Table 2 winner
/// for mix A to a loser — the covering-scan path IS the Table 2 driver;
/// see the ablation tests and `cdpd-bench`.)
#[derive(Clone, Copy, Debug)]
pub struct PlannerFlags {
    /// Allow full index-only scans of covering indexes.
    pub index_only_scans: bool,
    /// Allow range scans over an index's leading column.
    pub range_scans: bool,
    /// Let seeks skip heap fetches when the index covers the query
    /// (off = every seek fetches, like a non-covering secondary index).
    pub covering_seeks: bool,
    /// Allow rowid-intersection plans ([`Plan::IndexAnd`]) over pairs
    /// of equality conjuncts served by distinct indexes.
    pub and_intersections: bool,
    /// Allow rowid-union plans ([`Plan::IndexOr`]) for `IN` lists and
    /// `OR` disjunctions of equality/`IN` branches.
    pub or_unions: bool,
}

impl Default for PlannerFlags {
    fn default() -> Self {
        PlannerFlags {
            index_only_scans: true,
            range_scans: true,
            covering_seeks: true,
            and_intersections: true,
            or_unions: true,
        }
    }
}

/// Cost-based single-table planner.
pub struct Planner<'a> {
    schema: &'a Schema,
    stats: &'a TableStats,
    indexes: &'a [IndexInfo],
    flags: PlannerFlags,
}

impl<'a> Planner<'a> {
    /// Plan against `schema`/`stats` with `indexes` assumed available.
    pub fn new(schema: &'a Schema, stats: &'a TableStats, indexes: &'a [IndexInfo]) -> Planner<'a> {
        Planner {
            schema,
            stats,
            indexes,
            flags: PlannerFlags::default(),
        }
    }

    /// Planner with non-default access-path flags (ablations).
    pub fn with_flags(
        schema: &'a Schema,
        stats: &'a TableStats,
        indexes: &'a [IndexInfo],
        flags: PlannerFlags,
    ) -> Planner<'a> {
        Planner {
            schema,
            stats,
            indexes,
            flags,
        }
    }

    /// Resolve and validate the statement, then pick the cheapest path.
    pub fn plan(&self, stmt: &SelectStmt) -> Result<PlannedQuery> {
        let conditions = self.bind_conditions(stmt)?;
        let (projection, count_only, aggregate) = self.bind_projection(stmt)?;
        let order_by = stmt
            .order_by
            .as_ref()
            .map(|ob| {
                self.schema
                    .column_id(&ob.column)
                    .map(|id| (id, ob.desc))
                    .ok_or_else(|| Error::NotFound(format!("column {}", ob.column)))
            })
            .transpose()?;
        if aggregate.is_some() && (order_by.is_some() || stmt.limit.is_some()) {
            return Err(Error::InvalidArgument(
                "ORDER BY / LIMIT on an aggregate query is meaningless (one result row)".into(),
            ));
        }

        // Columns the plan must produce (projection + predicate).
        let needed = Self::needed_columns(&conditions, &projection, count_only);
        // Key-side evaluation handles one column per term; a
        // multi-column OR needs the heap row, so such statements are
        // never served covering.
        let multi_col_or = conditions
            .iter()
            .any(|c| c.branch_columns.windows(2).any(|w| w[0] != w[1]));

        let est_rows = self.estimate_rows(&conditions);
        let mut best: Option<(Cost, u32, Plan, Option<String>)> = None;
        let mut consider = |cost: Cost, rank: u32, plan: Plan, name: Option<String>| {
            let better = match &best {
                None => true,
                Some((bc, br, ..)) => cost < *bc || (cost == *bc && rank < *br),
            };
            if better {
                best = Some((cost, rank, plan, name));
            }
        };

        consider(CostModel::seq_scan(self.stats), 3, Plan::SeqScan, None);

        // Unpredicated MIN/MAX over an index's leading column: read one
        // end of the tree.
        if conditions.is_empty() {
            if let Some((func @ (AggFunc::Min | AggFunc::Max), col)) = aggregate {
                for (i, info) in self.indexes.iter().enumerate() {
                    if info.columns[0] == col {
                        consider(
                            Cost::from_ios(info.shape.height as u64),
                            0,
                            Plan::IndexExtremum {
                                index: i,
                                max: func == AggFunc::Max,
                            },
                            Some(info.name.clone()),
                        );
                    }
                }
            }
        }

        for (i, info) in self.indexes.iter().enumerate() {
            let covering = self.flags.covering_seeks && !multi_col_or && self.covers(info, &needed);

            // Longest leading prefix bound by equality.
            let eq_prefix = info
                .columns
                .iter()
                .take_while(|col| {
                    conditions
                        .iter()
                        .any(|c| c.column == **col && matches!(c.condition, Condition::Eq { .. }))
                })
                .count();

            if eq_prefix > 0 {
                let rows = self.eq_prefix_rows(info, eq_prefix);
                let cost = CostModel::index_seek(self.stats, info.shape, rows, covering);
                consider(
                    cost,
                    0,
                    Plan::IndexSeek {
                        index: i,
                        eq_prefix,
                        covering,
                    },
                    Some(info.name.clone()),
                );
                continue;
            }

            // Range on the leading key column?
            let leading = info.columns[0];
            let range = conditions
                .iter()
                .find(|c| c.column == leading && matches!(c.condition, Condition::Range { .. }));
            if let Some(bc) = range.filter(|_| self.flags.range_scans) {
                if let Condition::Range {
                    lo,
                    lo_inclusive,
                    hi,
                    hi_inclusive,
                    ..
                } = &bc.condition
                {
                    let frac = self.stats.column(leading).histogram.range_selectivity(
                        lo.as_ref(),
                        *lo_inclusive,
                        hi.as_ref(),
                        *hi_inclusive,
                    );
                    let rows = self.stats.row_count as f64 * frac;
                    let cost = CostModel::index_range(self.stats, info.shape, frac, rows, covering);
                    consider(
                        cost,
                        1,
                        Plan::IndexRange { index: i, covering },
                        Some(info.name.clone()),
                    );
                    continue;
                }
            }

            if covering && self.flags.index_only_scans {
                let cost = CostModel::index_only_scan(info.shape);
                consider(
                    cost,
                    2,
                    Plan::IndexOnlyScan { index: i },
                    Some(info.name.clone()),
                );
            }
        }

        // Rowid-union candidates: one per IN / all-equality OR term
        // (an OR is union-servable iff *every* branch expands to
        // equality probes — snippet-1's rule). Each probe uses the
        // cheapest index leading on its column; the union is fetched
        // and residual-filtered, so the other conjuncts still apply.
        if self.flags.or_unions {
            'terms: for bc in &conditions {
                let Some(probes) = self.or_probes(bc) else {
                    continue;
                };
                let mut cost = Cost::ZERO;
                let mut chosen: Vec<(usize, Value)> = Vec::with_capacity(probes.len());
                let mut names: Vec<&str> = Vec::new();
                for (col, v) in probes {
                    // A probe column without a leading index sinks the
                    // whole union: its branch rows would be missed.
                    let Some((j, c)) = self.cheapest_probe(col) else {
                        continue 'terms;
                    };
                    cost += c;
                    if !names.contains(&self.indexes[j].name.as_str()) {
                        names.push(self.indexes[j].name.as_str());
                    }
                    chosen.push((j, v));
                }
                let rows = self.stats.row_count as f64 * self.term_selectivity(bc);
                cost += CostModel::rid_fetches(rows);
                let name = names.join(", ");
                consider(cost, 1, Plan::IndexOr { probes: chosen }, Some(name));
            }
        }

        // Rowid-intersection candidates: pairs of equality conjuncts on
        // distinct columns, each probed through its own leading index;
        // the intersected rid list is fetched and residual-filtered.
        if self.flags.and_intersections {
            let eq_terms: Vec<(ColumnId, &Value)> = conditions
                .iter()
                .filter_map(|c| match &c.condition {
                    Condition::Eq { value, .. } => Some((c.column, value)),
                    _ => None,
                })
                .collect();
            for (pi, (pcol, pval)) in eq_terms.iter().enumerate() {
                for (qcol, qval) in eq_terms.iter().skip(pi + 1) {
                    if pcol == qcol {
                        continue;
                    }
                    let (Some((pj, pc)), Some((qj, qc))) =
                        (self.cheapest_probe(*pcol), self.cheapest_probe(*qcol))
                    else {
                        continue;
                    };
                    let sel = self.stats.column(*pcol).eq_selectivity()
                        * self.stats.column(*qcol).eq_selectivity();
                    let rows = self.stats.row_count as f64 * sel;
                    let cost = pc + qc + CostModel::rid_fetches(rows);
                    let name = format!("{}, {}", self.indexes[pj].name, self.indexes[qj].name);
                    consider(
                        cost,
                        1,
                        Plan::IndexAnd {
                            probes: vec![(pj, (*pval).clone()), (qj, (*qval).clone())],
                        },
                        Some(name),
                    );
                }
            }
        }

        let (est_cost, _, plan, index_name) = best.expect("seq scan is always a candidate");
        match &plan {
            Plan::SeqScan => cdpd_obs::counter!("engine.planner.pick.seq_scan").inc(),
            Plan::IndexSeek { .. } => cdpd_obs::counter!("engine.planner.pick.index_seek").inc(),
            Plan::IndexRange { .. } => cdpd_obs::counter!("engine.planner.pick.index_range").inc(),
            Plan::IndexOnlyScan { .. } => {
                cdpd_obs::counter!("engine.planner.pick.index_only_scan").inc()
            }
            Plan::IndexExtremum { .. } => {
                cdpd_obs::counter!("engine.planner.pick.index_extremum").inc()
            }
            Plan::IndexAnd { .. } => cdpd_obs::counter!("engine.planner.pick.index_and").inc(),
            Plan::IndexOr { .. } => cdpd_obs::counter!("engine.planner.pick.index_or").inc(),
        }
        // Does the chosen path already emit rows in the requested order?
        // Index cursors run ascending over the key, so an ascending
        // ORDER BY on the index's leading column is free.
        let plan_ordered = match (&plan, order_by) {
            (_, None) => true,
            (
                Plan::IndexSeek { index, .. }
                | Plan::IndexRange { index, .. }
                | Plan::IndexOnlyScan { index },
                Some((col, false)),
            ) => self.indexes[*index].columns[0] == col,
            _ => false,
        };
        Ok(PlannedQuery {
            plan,
            est_cost,
            est_rows,
            conditions,
            projection,
            count_only,
            aggregate,
            order_by,
            limit: stmt.limit,
            plan_ordered,
            index_name,
        })
    }

    /// The index list this planner was constructed with.
    pub fn indexes(&self) -> &[IndexInfo] {
        self.indexes
    }

    /// Plan the write statements of Definition 1's "queries and
    /// updates": locate the affected rows with the cheapest access
    /// path, then charge heap writes plus per-row maintenance on every
    /// index the write invalidates (all indexes for a delete; indexes
    /// whose key columns intersect the SET list for an update).
    ///
    /// Updates are costed as in-place heap writes — exact for the
    /// fixed-width integer rows of this engine's workloads; a moved row
    /// additionally reindexes everything, which execution handles
    /// correctly but estimation ignores.
    ///
    /// # Errors
    /// `stmt` must be an `UPDATE` or `DELETE` (queries go through
    /// [`Planner::plan`]); SET columns must exist and be type-correct.
    pub fn plan_write(&self, stmt: &Dml) -> Result<PlannedWrite> {
        let (set_cols, is_update): (Vec<ColumnId>, bool) = match stmt {
            Dml::Update(u) => {
                let cols = u
                    .set
                    .iter()
                    .map(|(name, value)| {
                        let id = self
                            .schema
                            .column_id(name)
                            .ok_or_else(|| Error::NotFound(format!("column {name}")))?;
                        let ty = self.schema.column(id).expect("id just resolved").ty;
                        if value.value_type() != ty {
                            return Err(Error::TypeMismatch(format!(
                                "SET literal type does not match column {name}"
                            )));
                        }
                        Ok(id)
                    })
                    .collect::<Result<Vec<_>>>()?;
                (cols, true)
            }
            Dml::Delete(_) => (Vec::new(), false),
            Dml::Select(_) => {
                return Err(Error::InvalidArgument(
                    "plan_write takes UPDATE or DELETE statements".into(),
                ))
            }
        };
        // The locate phase only needs the predicate columns (rids are
        // collected first, then rows are mutated — no Halloween hazard).
        let find_stmt = SelectStmt {
            projection: Projection::CountStar,
            table: stmt.table().to_owned(),
            conditions: stmt.conditions().to_vec(),
            order_by: None,
            limit: None,
        };
        let find = self.plan(&find_stmt)?;
        let rows = find.est_rows;

        let maintained: Vec<usize> = self
            .indexes
            .iter()
            .enumerate()
            .filter(|(_, info)| {
                if is_update {
                    info.columns.iter().any(|c| set_cols.contains(c))
                } else {
                    true
                }
            })
            .map(|(i, _)| i)
            .collect();

        let mut est_total = find.est_cost + CostModel::heap_row_write().scale(rows.ceil() as u64);
        for &i in &maintained {
            let shape = self.indexes[i].shape;
            est_total += if is_update {
                CostModel::update_maintenance(shape, rows)
            } else {
                CostModel::delete_maintenance(shape, rows)
            };
        }
        Ok(PlannedWrite {
            find,
            est_total,
            maintained,
            is_update,
        })
    }

    /// Columns the plan must produce: projection + predicate columns,
    /// or `None` for `SELECT *` (every column).
    fn needed_columns(
        conditions: &[BoundCondition],
        projection: &Option<Vec<ColumnId>>,
        count_only: bool,
    ) -> Option<Vec<ColumnId>> {
        match (projection, count_only) {
            (Some(proj), _) => {
                let mut v = proj.clone();
                for c in conditions {
                    for col in Self::term_columns(c) {
                        if !v.contains(&col) {
                            v.push(col);
                        }
                    }
                }
                Some(v)
            }
            (None, true) => {
                let mut v = Vec::new();
                for c in conditions {
                    for col in Self::term_columns(c) {
                        if !v.contains(&col) {
                            v.push(col);
                        }
                    }
                }
                Some(v)
            }
            (None, false) => None, // SELECT *
        }
    }

    /// Columns one bound term reads (every `Or` branch's column).
    fn term_columns(c: &BoundCondition) -> Vec<ColumnId> {
        if c.branch_columns.is_empty() {
            vec![c.column]
        } else {
            c.branch_columns.clone()
        }
    }

    /// True if `info` holds every column in `needed` (`None` = all).
    fn covers(&self, info: &IndexInfo, needed: &Option<Vec<ColumnId>>) -> bool {
        match needed {
            Some(cols) => cols.iter().all(|c| info.columns.contains(c)),
            None => self
                .schema
                .columns()
                .iter()
                .enumerate()
                .all(|(j, _)| info.columns.contains(&ColumnId(j as u16))),
        }
    }

    /// Which indexes are *relevant* to `stmt`: `relevant[i]` is true
    /// iff index `i` can change the statement's estimated cost.
    ///
    /// An index only enters [`Planner::plan`]'s search when it
    /// generates a candidate access path, and each candidate's cost
    /// depends solely on that index (shape + key columns), the table
    /// statistics, and the statement — never on which *other* indexes
    /// exist. The chosen cost is a minimum over per-index candidates
    /// plus the always-present seq scan, so dropping a non-candidate
    /// index leaves the minimum untouched: relevance here is exact,
    /// not heuristic. Writes additionally charge per-row maintenance,
    /// which makes every maintained index relevant. This is what the
    /// oracle layer's configuration projection is built on.
    ///
    /// # Errors
    /// Propagates binding errors (unknown columns, type mismatches) —
    /// the same statements [`Planner::plan`]/[`Planner::plan_write`]
    /// reject.
    pub fn relevant_indexes(&self, stmt: &Dml) -> Result<Vec<bool>> {
        match stmt {
            Dml::Select(s) => self.relevant_for_select(s),
            Dml::Delete(_) => {
                // Deletes maintain every index: all relevant.
                Ok(vec![true; self.indexes.len()])
            }
            Dml::Update(u) => {
                let set_cols = u
                    .set
                    .iter()
                    .map(|(name, _)| {
                        self.schema
                            .column_id(name)
                            .ok_or_else(|| Error::NotFound(format!("column {name}")))
                    })
                    .collect::<Result<Vec<_>>>()?;
                // The locate phase plans this statement (see plan_write).
                let find_stmt = SelectStmt {
                    projection: Projection::CountStar,
                    table: stmt.table().to_owned(),
                    conditions: stmt.conditions().to_vec(),
                    order_by: None,
                    limit: None,
                };
                let mut relevant = self.relevant_for_select(&find_stmt)?;
                for (r, info) in relevant.iter_mut().zip(self.indexes) {
                    *r = *r || info.columns.iter().any(|c| set_cols.contains(c));
                }
                Ok(relevant)
            }
        }
    }

    /// [`Planner::relevant_indexes`] for queries: true iff the index
    /// generates at least one candidate in [`Planner::plan`]'s search
    /// (seek, range, index-only scan, or extremum read) — mirrors the
    /// candidate-generation conditions there exactly, flags included.
    fn relevant_for_select(&self, stmt: &SelectStmt) -> Result<Vec<bool>> {
        let conditions = self.bind_conditions(stmt)?;
        let (projection, count_only, aggregate) = self.bind_projection(stmt)?;
        let needed = Self::needed_columns(&conditions, &projection, count_only);
        let multi_col_or = conditions
            .iter()
            .any(|c| c.branch_columns.windows(2).any(|w| w[0] != w[1]));
        let extremum_col = match aggregate {
            Some((AggFunc::Min | AggFunc::Max, col)) if conditions.is_empty() => Some(col),
            _ => None,
        };
        // Columns probed by rowid-union candidates (IN / all-equality
        // OR terms within the fanout gate): an index leading on one
        // can join — and thereby change the cost of — a union plan.
        // Marking it relevant even when a sibling probe column lacks an
        // index over-approximates, which is safe: relevance masks only
        // need to *keep* every cost-affecting index.
        let mut union_cols: Vec<ColumnId> = Vec::new();
        if self.flags.or_unions {
            for bc in &conditions {
                if let Some(probes) = self.or_probes(bc) {
                    for (col, _) in probes {
                        if !union_cols.contains(&col) {
                            union_cols.push(col);
                        }
                    }
                }
            }
        }
        Ok(self
            .indexes
            .iter()
            .map(|info| {
                let leading = info.columns[0];
                if extremum_col == Some(leading) {
                    return true;
                }
                // Eq-leading serves seeks and IndexAnd probes alike.
                let eq_lead = conditions
                    .iter()
                    .any(|c| c.column == leading && matches!(c.condition, Condition::Eq { .. }));
                if eq_lead {
                    return true;
                }
                if union_cols.contains(&leading) {
                    return true;
                }
                let range_lead = self.flags.range_scans
                    && conditions.iter().any(|c| {
                        c.column == leading && matches!(c.condition, Condition::Range { .. })
                    });
                if range_lead {
                    return true;
                }
                self.flags.index_only_scans
                    && self.flags.covering_seeks
                    && !multi_col_or
                    && self.covers(info, &needed)
            })
            .collect())
    }

    fn bind_conditions(&self, stmt: &SelectStmt) -> Result<Vec<BoundCondition>> {
        stmt.conditions
            .iter()
            .map(|cond| self.bind_condition(cond))
            .collect()
    }

    /// Resolve one predicate term, type-checking every literal. `Or`
    /// terms resolve each branch to its own column id.
    fn bind_condition(&self, cond: &Condition) -> Result<BoundCondition> {
        if let Condition::Or(branches) = cond {
            if branches.is_empty() {
                return Err(Error::InvalidArgument("empty OR disjunction".into()));
            }
            let branch_columns = branches
                .iter()
                .map(|b| {
                    if matches!(b, Condition::Or(_)) {
                        return Err(Error::InvalidArgument(
                            "nested OR branches are not supported".into(),
                        ));
                    }
                    self.bind_simple(b)
                })
                .collect::<Result<Vec<_>>>()?;
            return Ok(BoundCondition {
                column: branch_columns[0],
                condition: cond.clone(),
                branch_columns,
            });
        }
        let column = self.bind_simple(cond)?;
        Ok(BoundCondition {
            column,
            condition: cond.clone(),
            branch_columns: Vec::new(),
        })
    }

    /// Resolve a simple (non-`Or`) condition's column id.
    fn bind_simple(&self, cond: &Condition) -> Result<ColumnId> {
        let name = cond.column();
        let column = self
            .schema
            .column_id(name)
            .ok_or_else(|| Error::NotFound(format!("column {name}")))?;
        let ty = self.schema.column(column).expect("id just resolved").ty;
        let lit_ok = match cond {
            Condition::Eq { value, .. } => value.value_type() == ty,
            Condition::Range { lo, hi, .. } => {
                lo.as_ref().is_none_or(|v| v.value_type() == ty)
                    && hi.as_ref().is_none_or(|v| v.value_type() == ty)
            }
            Condition::In { values, .. } => values.iter().all(|v| v.value_type() == ty),
            Condition::Or(_) => unreachable!("Or terms go through bind_condition"),
        };
        if !lit_ok {
            return Err(Error::TypeMismatch(format!(
                "literal type does not match column {name} ({ty:?})",
                ty = ty
            )));
        }
        Ok(column)
    }

    fn bind_projection(&self, stmt: &SelectStmt) -> Result<BoundProjection> {
        match &stmt.projection {
            Projection::Star => Ok((None, false, None)),
            Projection::CountStar => Ok((None, true, None)),
            Projection::Columns(cols) => {
                let ids = cols
                    .iter()
                    .map(|c| {
                        self.schema
                            .column_id(c)
                            .ok_or_else(|| Error::NotFound(format!("column {c}")))
                    })
                    .collect::<Result<Vec<_>>>()?;
                Ok((Some(ids), false, None))
            }
            Projection::Aggregate(func, col) => {
                let id = self
                    .schema
                    .column_id(col)
                    .ok_or_else(|| Error::NotFound(format!("column {col}")))?;
                Ok((Some(vec![id]), false, Some((*func, id))))
            }
        }
    }

    /// Independence-assumption row estimate over all conjuncts.
    fn estimate_rows(&self, conditions: &[BoundCondition]) -> f64 {
        let mut sel = 1.0f64;
        for bc in conditions {
            sel *= self.term_selectivity(bc);
        }
        self.stats.row_count as f64 * sel
    }

    /// Selectivity of a simple (non-`Or`) condition on `column`.
    fn simple_selectivity(&self, column: ColumnId, cond: &Condition) -> f64 {
        let col = self.stats.column(column);
        match cond {
            Condition::Eq { .. } => col.eq_selectivity(),
            Condition::Range {
                lo,
                lo_inclusive,
                hi,
                hi_inclusive,
                ..
            } => col.histogram.range_selectivity(
                lo.as_ref(),
                *lo_inclusive,
                hi.as_ref(),
                *hi_inclusive,
            ),
            Condition::In { values, .. } => {
                // Sum per-value point estimates over *distinct* values
                // (the executor probes each value once), capped at 1.
                let mut seen: Vec<&Value> = Vec::new();
                let mut sel = 0.0f64;
                for v in values {
                    if !seen.contains(&v) {
                        seen.push(v);
                        sel += col.point_selectivity(v);
                    }
                }
                sel.min(1.0)
            }
            Condition::Or(_) => unreachable!("Or terms go through term_selectivity"),
        }
    }

    /// Selectivity of one bound term; a disjunction is the capped sum
    /// of its branch selectivities (upper bound; exact when disjoint).
    fn term_selectivity(&self, bc: &BoundCondition) -> f64 {
        match &bc.condition {
            Condition::Or(branches) => branches
                .iter()
                .zip(&bc.branch_columns)
                .map(|(b, col)| self.simple_selectivity(*col, b))
                .sum::<f64>()
                .min(1.0),
            cond => self.simple_selectivity(bc.column, cond),
        }
    }

    /// Rows matching an equality probe on the first `eq_prefix` key
    /// columns of `info` (independence assumption).
    fn eq_prefix_rows(&self, info: &IndexInfo, eq_prefix: usize) -> f64 {
        let mut sel = 1.0f64;
        for col in &info.columns[..eq_prefix] {
            sel *= self.stats.column(*col).eq_selectivity();
        }
        self.stats.row_count as f64 * sel
    }

    /// Fanout gate for rowid-union plans: beyond this many probes a
    /// union of point seeks loses its locality advantage and the
    /// planner stops generating the candidate (large IN lists fall
    /// back to the scan-based paths).
    pub const MAX_OR_PROBES: usize = 16;

    /// The deduplicated `(column, value)` equality probes a term
    /// expands into for a rowid-union plan, or `None` when the term is
    /// not union-servable: simple Eq/Range terms, an OR with a Range
    /// branch, an empty probe list, or fanout beyond
    /// [`Planner::MAX_OR_PROBES`].
    fn or_probes(&self, bc: &BoundCondition) -> Option<Vec<(ColumnId, Value)>> {
        let mut raw: Vec<(ColumnId, &Value)> = Vec::new();
        match &bc.condition {
            Condition::In { values, .. } => {
                for v in values {
                    raw.push((bc.column, v));
                }
            }
            Condition::Or(branches) => {
                for (b, col) in branches.iter().zip(&bc.branch_columns) {
                    match b {
                        Condition::Eq { value, .. } => raw.push((*col, value)),
                        Condition::In { values, .. } => {
                            for v in values {
                                raw.push((*col, v));
                            }
                        }
                        // A Range branch has no equality probe: the
                        // whole term falls out of the union path.
                        _ => return None,
                    }
                }
            }
            _ => return None,
        }
        // Plan-time dedup: repeated IN values probe once.
        let mut probes: Vec<(ColumnId, Value)> = Vec::new();
        for (c, v) in raw {
            if !probes.iter().any(|(pc, pv)| *pc == c && pv == v) {
                probes.push((c, v.clone()));
            }
        }
        if probes.is_empty() || probes.len() > Self::MAX_OR_PROBES {
            return None;
        }
        Some(probes)
    }

    /// Cheapest single-value equality probe on `col`: index position
    /// and probe cost, or `None` when no index leads on `col`.
    fn cheapest_probe(&self, col: ColumnId) -> Option<(usize, Cost)> {
        let rows = self.stats.eq_rows(col);
        let mut best: Option<(usize, Cost)> = None;
        for (j, info) in self.indexes.iter().enumerate() {
            if info.columns[0] == col {
                let c = CostModel::index_probe(self.stats, info.shape, rows);
                if best.is_none_or(|(_, bc)| c < bc) {
                    best = Some((j, c));
                }
            }
        }
        best
    }

    /// The probe values for an [`Plan::IndexSeek`], in key order.
    pub fn seek_probe(&self, planned: &PlannedQuery, index: usize, eq_prefix: usize) -> Vec<Value> {
        self.indexes[index].columns[..eq_prefix]
            .iter()
            .map(|col| {
                planned
                    .conditions
                    .iter()
                    .find_map(|c| match &c.condition {
                        Condition::Eq { value, .. } if c.column == *col => Some(value.clone()),
                        _ => None,
                    })
                    .expect("eq_prefix column must have an Eq condition")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::StatsMaintainer;
    use cdpd_sql::parse;
    use cdpd_types::{ColumnDef, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::int("a"),
            ColumnDef::int("b"),
            ColumnDef::int("c"),
            ColumnDef::int("d"),
        ])
    }

    fn stats(rows: u64) -> TableStats {
        let mut b = StatsMaintainer::new(4, rows);
        for i in 0..rows as i64 {
            let v = (i * 2654435761) % 50_000;
            b.add_row(&[
                Value::Int(v),
                Value::Int(v / 2),
                Value::Int(v / 3),
                Value::Int(v / 4),
            ]);
        }
        b.snapshot((rows / 200).max(1))
    }

    fn info(name: &str, cols: &[u16], stats: &TableStats) -> IndexInfo {
        let ids: Vec<ColumnId> = cols.iter().map(|&c| ColumnId(c)).collect();
        IndexInfo {
            name: name.into(),
            shape: CostModel::estimate_shape(stats, &ids),
            columns: ids,
        }
    }

    fn plan_sql(sql: &str, schema: &Schema, stats: &TableStats, idx: &[IndexInfo]) -> PlannedQuery {
        let stmt = match parse(sql).unwrap() {
            cdpd_sql::Statement::Select(s) => s,
            _ => panic!("not a select"),
        };
        Planner::new(schema, stats, idx).plan(&stmt).unwrap()
    }

    #[test]
    fn no_indexes_means_seq_scan() {
        let (sc, st) = (schema(), stats(100_000));
        let p = plan_sql("SELECT a FROM t WHERE a = 5", &sc, &st, &[]);
        assert_eq!(p.plan, Plan::SeqScan);
        assert_eq!(p.est_cost, CostModel::seq_scan(&st));
    }

    #[test]
    fn matching_index_becomes_seek() {
        let (sc, st) = (schema(), stats(100_000));
        let idx = [info("ix_a", &[0], &st)];
        let p = plan_sql("SELECT a FROM t WHERE a = 5", &sc, &st, &idx);
        assert!(
            matches!(
                p.plan,
                Plan::IndexSeek {
                    index: 0,
                    eq_prefix: 1,
                    covering: true
                }
            ),
            "{:?}",
            p.plan
        );
        assert!(p.est_cost.ios() < 20);
    }

    #[test]
    fn composite_index_serves_leading_column() {
        let (sc, st) = (schema(), stats(100_000));
        let idx = [info("ix_ab", &[0, 1], &st)];
        let p = plan_sql("SELECT a FROM t WHERE a = 5", &sc, &st, &idx);
        assert!(matches!(p.plan, Plan::IndexSeek { covering: true, .. }));
    }

    #[test]
    fn composite_index_covers_second_column_via_index_only_scan() {
        // The Table 2 linchpin: query on b, index I(a,b) → index-only
        // scan, cheaper than the heap scan but dearer than a seek.
        let (sc, st) = (schema(), stats(100_000));
        let idx = [info("ix_ab", &[0, 1], &st)];
        let p = plan_sql("SELECT b FROM t WHERE b = 5", &sc, &st, &idx);
        assert!(
            matches!(p.plan, Plan::IndexOnlyScan { index: 0 }),
            "{:?}",
            p.plan
        );
        assert!(p.est_cost < CostModel::seq_scan(&st));
    }

    #[test]
    fn non_covering_index_on_other_column_is_useless() {
        let (sc, st) = (schema(), stats(100_000));
        let idx = [info("ix_c", &[2], &st)];
        let p = plan_sql("SELECT a FROM t WHERE a = 5", &sc, &st, &idx);
        assert_eq!(p.plan, Plan::SeqScan);
    }

    #[test]
    fn narrow_range_uses_index_range_scan() {
        let (sc, st) = (schema(), stats(100_000));
        let idx = [info("ix_a", &[0], &st)];
        let p = plan_sql("SELECT a FROM t WHERE a BETWEEN 10 AND 20", &sc, &st, &idx);
        assert!(
            matches!(
                p.plan,
                Plan::IndexRange {
                    index: 0,
                    covering: true
                }
            ),
            "{:?}",
            p.plan
        );
    }

    #[test]
    fn wide_non_covering_range_falls_back_to_scan() {
        let (sc, st) = (schema(), stats(100_000));
        let idx = [info("ix_a", &[0], &st)];
        let p = plan_sql(
            "SELECT d FROM t WHERE a BETWEEN 0 AND 49000",
            &sc,
            &st,
            &idx,
        );
        assert_eq!(
            p.plan,
            Plan::SeqScan,
            "fetching half the table via rids must lose"
        );
    }

    #[test]
    fn two_column_equality_uses_longest_prefix() {
        let (sc, st) = (schema(), stats(100_000));
        let idx = [info("ix_ab", &[0, 1], &st)];
        let p = plan_sql("SELECT a FROM t WHERE a = 5 AND b = 2", &sc, &st, &idx);
        assert!(
            matches!(p.plan, Plan::IndexSeek { eq_prefix: 2, .. }),
            "{:?}",
            p.plan
        );
    }

    #[test]
    fn picks_cheapest_among_indexes() {
        let (sc, st) = (schema(), stats(100_000));
        let idx = [info("ix_ab", &[0, 1], &st), info("ix_b", &[1], &st)];
        let p = plan_sql("SELECT b FROM t WHERE b = 5", &sc, &st, &idx);
        assert!(
            matches!(p.plan, Plan::IndexSeek { index: 1, .. }),
            "seek on I(b) must beat index-only scan of I(a,b): {:?}",
            p.plan
        );
    }

    #[test]
    fn unknown_column_and_type_mismatch_rejected() {
        let (sc, st) = (schema(), stats(1000));
        let planner_idx: [IndexInfo; 0] = [];
        let stmt = match parse("SELECT z FROM t").unwrap() {
            cdpd_sql::Statement::Select(s) => s,
            _ => unreachable!(),
        };
        assert!(Planner::new(&sc, &st, &planner_idx).plan(&stmt).is_err());
        let stmt = match parse("SELECT a FROM t WHERE a = 'x'").unwrap() {
            cdpd_sql::Statement::Select(s) => s,
            _ => unreachable!(),
        };
        assert!(Planner::new(&sc, &st, &planner_idx).plan(&stmt).is_err());
    }

    #[test]
    fn write_planning_charges_maintenance() {
        let (sc, st) = (schema(), stats(100_000));
        let idx = [info("ix_a", &[0], &st), info("ix_bc", &[1, 2], &st)];
        let planner = Planner::new(&sc, &st, &idx);
        let upd = match cdpd_sql::parse("UPDATE t SET b = 7 WHERE a = 5").unwrap() {
            cdpd_sql::Statement::Update(u) => cdpd_sql::Dml::Update(u),
            _ => unreachable!(),
        };
        let p = planner.plan_write(&upd).unwrap();
        assert!(p.is_update);
        // Only ix_bc contains the SET column b.
        assert_eq!(p.maintained, vec![1]);
        // The locate phase uses the index on a.
        assert!(
            matches!(p.find.plan, Plan::IndexSeek { index: 0, .. }),
            "{:?}",
            p.find.plan
        );
        assert!(p.est_total > p.find.est_cost);

        let del = match cdpd_sql::parse("DELETE FROM t WHERE a = 5").unwrap() {
            cdpd_sql::Statement::Delete(d) => cdpd_sql::Dml::Delete(d),
            _ => unreachable!(),
        };
        let p = planner.plan_write(&del).unwrap();
        assert!(!p.is_update);
        assert_eq!(p.maintained, vec![0, 1], "deletes maintain every index");
    }

    #[test]
    fn write_planning_validates_set_columns() {
        let (sc, st) = (schema(), stats(1_000));
        let planner_idx: [IndexInfo; 0] = [];
        let planner = Planner::new(&sc, &st, &planner_idx);
        for bad in ["UPDATE t SET z = 1", "UPDATE t SET a = 'x'"] {
            let stmt = match cdpd_sql::parse(bad).unwrap() {
                cdpd_sql::Statement::Update(u) => cdpd_sql::Dml::Update(u),
                _ => unreachable!(),
            };
            assert!(planner.plan_write(&stmt).is_err(), "should reject {bad}");
        }
        // Selects are rejected by plan_write.
        let sel = cdpd_sql::Dml::Select(SelectStmt::point("t", "a", 1));
        assert!(planner.plan_write(&sel).is_err());
    }

    #[test]
    fn more_indexes_make_writes_costlier() {
        let (sc, st) = (schema(), stats(100_000));
        let del = match cdpd_sql::parse("DELETE FROM t WHERE a = 5").unwrap() {
            cdpd_sql::Statement::Delete(d) => cdpd_sql::Dml::Delete(d),
            _ => unreachable!(),
        };
        let one = [info("ix_a", &[0], &st)];
        let three = [
            info("ix_a", &[0], &st),
            info("ix_b", &[1], &st),
            info("ix_cd", &[2, 3], &st),
        ];
        let cheap = Planner::new(&sc, &st, &one).plan_write(&del).unwrap();
        let dear = Planner::new(&sc, &st, &three).plan_write(&del).unwrap();
        assert!(
            dear.est_total > cheap.est_total,
            "every extra index taxes the delete: {} vs {}",
            dear.est_total,
            cheap.est_total
        );
    }

    #[test]
    fn ablation_flags_disable_paths() {
        let (sc, st) = (schema(), stats(100_000));
        let idx = [info("ix_ab", &[0, 1], &st)];
        let stmt = match parse("SELECT b FROM t WHERE b = 5").unwrap() {
            cdpd_sql::Statement::Select(s) => s,
            _ => unreachable!(),
        };
        // Default: covering index-only scan (the Table 2 driver).
        let p = Planner::new(&sc, &st, &idx).plan(&stmt).unwrap();
        assert!(matches!(p.plan, Plan::IndexOnlyScan { .. }));
        // Ablated: the index cannot serve the b-query at all.
        let flags = PlannerFlags {
            index_only_scans: false,
            ..Default::default()
        };
        let p = Planner::with_flags(&sc, &st, &idx, flags)
            .plan(&stmt)
            .unwrap();
        assert_eq!(
            p.plan,
            Plan::SeqScan,
            "without covering scans I(a,b) is useless for b"
        );

        // covering_seeks off: seeks still chosen but pay heap fetches.
        let stmt = match parse("SELECT a FROM t WHERE a = 5").unwrap() {
            cdpd_sql::Statement::Select(s) => s,
            _ => unreachable!(),
        };
        let with_cover = Planner::new(&sc, &st, &idx).plan(&stmt).unwrap();
        let flags = PlannerFlags {
            covering_seeks: false,
            ..Default::default()
        };
        let without = Planner::with_flags(&sc, &st, &idx, flags)
            .plan(&stmt)
            .unwrap();
        assert!(matches!(
            without.plan,
            Plan::IndexSeek {
                covering: false,
                ..
            }
        ));
        assert!(without.est_cost > with_cover.est_cost);

        // range_scans off: BETWEEN falls back to a scan.
        let stmt = match parse("SELECT a FROM t WHERE a BETWEEN 10 AND 20").unwrap() {
            cdpd_sql::Statement::Select(s) => s,
            _ => unreachable!(),
        };
        let idx_a = [info("ix_a", &[0], &st)];
        let flags = PlannerFlags {
            range_scans: false,
            ..Default::default()
        };
        let p = Planner::with_flags(&sc, &st, &idx_a, flags)
            .plan(&stmt)
            .unwrap();
        // Without range scans the planner falls back to a covering
        // index-only scan (still cheaper than the heap); with that off
        // too, only the seq scan remains.
        assert!(matches!(p.plan, Plan::IndexOnlyScan { .. }), "{:?}", p.plan);
        let flags = PlannerFlags {
            range_scans: false,
            index_only_scans: false,
            ..Default::default()
        };
        let p = Planner::with_flags(&sc, &st, &idx_a, flags)
            .plan(&stmt)
            .unwrap();
        assert_eq!(p.plan, Plan::SeqScan);
    }

    fn dml(sql: &str) -> Dml {
        match cdpd_sql::parse(sql).unwrap() {
            cdpd_sql::Statement::Select(s) => Dml::Select(s),
            cdpd_sql::Statement::Update(u) => Dml::Update(u),
            cdpd_sql::Statement::Delete(d) => Dml::Delete(d),
            _ => panic!("not a dml"),
        }
    }

    #[test]
    fn relevance_mirrors_candidate_generation() {
        let (sc, st) = (schema(), stats(100_000));
        // I(a), I(b), I(a,b), I(c,d) — the interesting shapes.
        let idx = [
            info("ix_a", &[0], &st),
            info("ix_b", &[1], &st),
            info("ix_ab", &[0, 1], &st),
            info("ix_cd", &[2, 3], &st),
        ];
        let planner = Planner::new(&sc, &st, &idx);
        let rel = |sql: &str| planner.relevant_indexes(&dml(sql)).unwrap();

        // Point query on a: seek on I(a)/I(a,b); I(b) neither seeks
        // nor covers {a}; I(c,d) is fully inert.
        assert_eq!(
            rel("SELECT a FROM t WHERE a = 5"),
            vec![true, false, true, false]
        );
        // Point query on b: seek on I(b), covering scan on I(a,b).
        assert_eq!(
            rel("SELECT b FROM t WHERE b = 5"),
            vec![false, true, true, false]
        );
        // Range on a: range scan on I(a)/I(a,b).
        assert_eq!(
            rel("SELECT a FROM t WHERE a BETWEEN 10 AND 20"),
            vec![true, false, true, false]
        );
        // SELECT * covers nothing short of the full schema: only the
        // seek on a remains.
        assert_eq!(
            rel("SELECT * FROM t WHERE a = 5"),
            vec![true, false, true, false]
        );
        // Updates: locate via a, maintain indexes whose keys contain b.
        assert_eq!(
            rel("UPDATE t SET b = 7 WHERE a = 5"),
            vec![true, true, true, false]
        );
        // Deletes maintain everything.
        assert_eq!(rel("DELETE FROM t WHERE a = 5"), vec![true; 4]);
        // Binding errors propagate, as in plan().
        assert!(planner.relevant_indexes(&dml("SELECT z FROM t")).is_err());
    }

    #[test]
    fn relevance_respects_flags_and_aggregates() {
        let (sc, st) = (schema(), stats(100_000));
        let idx = [info("ix_b", &[1], &st), info("ix_ab", &[0, 1], &st)];
        let q = dml("SELECT b FROM t WHERE b = 5");
        // Default: I(a,b) is relevant through the covering scan...
        let planner = Planner::new(&sc, &st, &idx);
        assert_eq!(planner.relevant_indexes(&q).unwrap(), vec![true, true]);
        // ...and ablating index-only scans makes it inert, exactly as
        // plan() stops generating the candidate.
        let flags = PlannerFlags {
            index_only_scans: false,
            ..Default::default()
        };
        let planner = Planner::with_flags(&sc, &st, &idx, flags);
        assert_eq!(planner.relevant_indexes(&q).unwrap(), vec![true, false]);

        // Unpredicated MIN reads one end of a leading-a index; I(b)
        // can't serve it, I(a,b) also covers the single-column scan.
        let idx = [
            info("ix_b", &[1], &st),
            info("ix_ab", &[0, 1], &st),
            info("ix_a", &[0], &st),
        ];
        let planner = Planner::new(&sc, &st, &idx);
        let agg = dml("SELECT MIN(a) FROM t");
        assert_eq!(
            planner.relevant_indexes(&agg).unwrap(),
            vec![false, true, true]
        );
    }

    #[test]
    fn in_list_plans_union_probes_with_dedup() {
        let (sc, st) = (schema(), stats(100_000));
        let idx = [info("ix_a", &[0], &st)];
        let p = plan_sql("SELECT * FROM t WHERE a IN (1, 2, 3)", &sc, &st, &idx);
        match &p.plan {
            Plan::IndexOr { probes } => {
                assert_eq!(probes.len(), 3);
                assert!(probes.iter().all(|(i, _)| *i == 0));
            }
            other => panic!("expected IndexOr: {other:?}"),
        }
        assert!(p.est_cost < CostModel::seq_scan(&st));
        assert!(
            p.describe().starts_with("IndexOr(ix_a, 3 probes)"),
            "{}",
            p.describe()
        );

        // Duplicate values probe once (plan-time dedup).
        let p = plan_sql("SELECT * FROM t WHERE a IN (7, 7, 7)", &sc, &st, &idx);
        match &p.plan {
            Plan::IndexOr { probes } => assert_eq!(probes, &vec![(0, Value::Int(7))]),
            other => panic!("expected IndexOr: {other:?}"),
        }
        assert!(
            p.describe().starts_with("IndexOr(ix_a, 1 probe)"),
            "{}",
            p.describe()
        );
    }

    #[test]
    fn in_list_boundaries_zero_one_large() {
        let (sc, st) = (schema(), stats(100_000));
        let idx = [info("ix_a", &[0], &st)];
        let planner = Planner::new(&sc, &st, &idx);

        // Empty IN list (unbuildable from SQL, reachable via the AST):
        // matches nothing, never panics, and costs no more than a scan.
        let stmt = SelectStmt {
            projection: cdpd_sql::Projection::Star,
            table: "t".into(),
            conditions: vec![Condition::In {
                column: "a".into(),
                values: vec![],
            }],
            order_by: None,
            limit: None,
        };
        let p = planner.plan(&stmt).unwrap();
        assert_eq!(p.plan, Plan::SeqScan, "{:?}", p.plan);
        assert_eq!(p.est_rows, 0.0);

        // Single-element IN behaves like a one-probe union.
        let p = plan_sql("SELECT * FROM t WHERE a IN (5)", &sc, &st, &idx);
        assert!(
            matches!(&p.plan, Plan::IndexOr { probes } if probes.len() == 1),
            "{:?}",
            p.plan
        );

        // Beyond the fanout gate the candidate is not generated at all.
        let many: Vec<String> = (0..(Planner::MAX_OR_PROBES as i64 + 1))
            .map(|v| (v * 97).to_string())
            .collect();
        let sql = format!("SELECT * FROM t WHERE a IN ({})", many.join(", "));
        let p = plan_sql(&sql, &sc, &st, &idx);
        assert_eq!(p.plan, Plan::SeqScan, "{:?}", p.plan);
    }

    #[test]
    fn or_disjunction_unions_across_indexes() {
        let (sc, st) = (schema(), stats(100_000));
        let idx = [info("ix_a", &[0], &st), info("ix_b", &[1], &st)];
        let p = plan_sql("SELECT * FROM t WHERE (a = 1 OR b = 2)", &sc, &st, &idx);
        match &p.plan {
            Plan::IndexOr { probes } => {
                assert_eq!(probes, &vec![(0, Value::Int(1)), (1, Value::Int(2))]);
            }
            other => panic!("expected IndexOr: {other:?}"),
        }
        assert!(
            p.describe().starts_with("IndexOr(ix_a, ix_b, 2 probes)"),
            "{}",
            p.describe()
        );

        // One branch without a leading index sinks the whole union.
        let only_a = [info("ix_a", &[0], &st)];
        let p = plan_sql("SELECT * FROM t WHERE (a = 1 OR b = 2)", &sc, &st, &only_a);
        assert_eq!(p.plan, Plan::SeqScan, "{:?}", p.plan);

        // A Range branch disqualifies the union path entirely; the
        // single-column disjunction is still served covering.
        let p = plan_sql(
            "SELECT a FROM t WHERE (a = 1 OR a >= 40000)",
            &sc,
            &st,
            &only_a,
        );
        assert!(
            matches!(p.plan, Plan::IndexOnlyScan { .. } | Plan::SeqScan),
            "{:?}",
            p.plan
        );
        assert!(!matches!(p.plan, Plan::IndexOr { .. }));
    }

    /// Stats with coarse 50-valued a/b columns: each equality matches
    /// ~2000 rows, so single-index seeks pay heavy fetch bills and the
    /// a∧b conjunction (≈40 rows) favours a rowid intersection.
    fn coarse_stats(rows: u64) -> TableStats {
        let mut b = StatsMaintainer::new(4, rows);
        for i in 0..rows as i64 {
            b.add_row(&[
                Value::Int(i % 50),
                Value::Int((i * 7) % 50),
                Value::Int(i % 1000),
                Value::Int(i),
            ]);
        }
        b.snapshot((rows / 200).max(1))
    }

    #[test]
    fn eq_pair_intersects_two_single_column_indexes() {
        let (sc, st) = (schema(), coarse_stats(100_000));
        let idx = [info("ix_a", &[0], &st), info("ix_b", &[1], &st)];
        let p = plan_sql("SELECT * FROM t WHERE a = 5 AND b = 2", &sc, &st, &idx);
        match &p.plan {
            Plan::IndexAnd { probes } => {
                assert_eq!(probes, &vec![(0, Value::Int(5)), (1, Value::Int(2))]);
            }
            other => panic!("expected IndexAnd: {other:?}"),
        }
        assert!(
            p.describe().starts_with("IndexAnd(ix_a, ix_b, 2 probes)"),
            "{}",
            p.describe()
        );
        // A composite covering both columns still beats the intersection.
        let with_ab = [
            info("ix_a", &[0], &st),
            info("ix_b", &[1], &st),
            info("ix_ab", &[0, 1], &st),
        ];
        let p = plan_sql("SELECT a FROM t WHERE a = 5 AND b = 2", &sc, &st, &with_ab);
        assert!(
            matches!(
                p.plan,
                Plan::IndexSeek {
                    index: 2,
                    eq_prefix: 2,
                    ..
                }
            ),
            "{:?}",
            p.plan
        );
    }

    #[test]
    fn new_path_ablation_flags() {
        let (sc, st) = (schema(), stats(100_000));
        let idx = [info("ix_a", &[0], &st), info("ix_b", &[1], &st)];

        let no_unions = PlannerFlags {
            or_unions: false,
            ..Default::default()
        };
        let stmt = match parse("SELECT * FROM t WHERE a IN (1, 2, 3)").unwrap() {
            cdpd_sql::Statement::Select(s) => s,
            _ => unreachable!(),
        };
        let p = Planner::with_flags(&sc, &st, &idx, no_unions)
            .plan(&stmt)
            .unwrap();
        assert_eq!(p.plan, Plan::SeqScan, "{:?}", p.plan);

        let no_and = PlannerFlags {
            and_intersections: false,
            ..Default::default()
        };
        let stmt = match parse("SELECT * FROM t WHERE a = 5 AND b = 2").unwrap() {
            cdpd_sql::Statement::Select(s) => s,
            _ => unreachable!(),
        };
        let p = Planner::with_flags(&sc, &st, &idx, no_and)
            .plan(&stmt)
            .unwrap();
        assert!(!matches!(p.plan, Plan::IndexAnd { .. }), "{:?}", p.plan);
    }

    #[test]
    fn fanout_gating_never_costs_more_than_scan_baseline() {
        // Property sweep: for IN lists of every size (including far past
        // the gate) and weak multi-branch ORs, the chosen plan's cost
        // never exceeds the seq-scan baseline, and beyond the gate the
        // union candidate disappears entirely.
        let (sc, st) = (schema(), stats(100_000));
        let idx = [
            info("ix_a", &[0], &st),
            info("ix_b", &[1], &st),
            info("ix_c", &[2], &st),
        ];
        let baseline = CostModel::seq_scan(&st);
        let mut rng_state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            rng_state
        };
        for len in 0..40usize {
            let vals: Vec<String> = (0..len.max(1))
                .map(|_| ((next() % 50_000) as i64).to_string())
                .collect();
            let sql = format!("SELECT * FROM t WHERE a IN ({})", vals.join(", "));
            let p = plan_sql(&sql, &sc, &st, &idx);
            assert!(
                p.est_cost <= baseline,
                "len={len}: {} > {baseline}",
                p.est_cost
            );
            let distinct = {
                let mut v = vals.clone();
                v.sort();
                v.dedup();
                v.len()
            };
            if distinct > Planner::MAX_OR_PROBES {
                assert_eq!(p.plan, Plan::SeqScan, "len={len} must be gated");
            }
        }
        // Weak OR branches (wide ranges / heavy fan-in) degrade to the
        // scan without ever exceeding it.
        for sql in [
            "SELECT * FROM t WHERE (a = 1 OR b >= 0)",
            "SELECT * FROM t WHERE (a = 1 OR b = 2 OR c = 3)",
        ] {
            let p = plan_sql(sql, &sc, &st, &idx);
            assert!(p.est_cost <= baseline, "{sql}: {}", p.est_cost);
        }
    }

    #[test]
    fn relevance_covers_union_and_intersection_paths() {
        let (sc, st) = (schema(), stats(100_000));
        let idx = [
            info("ix_a", &[0], &st),
            info("ix_b", &[1], &st),
            info("ix_ab", &[0, 1], &st),
            info("ix_cd", &[2, 3], &st),
        ];
        let planner = Planner::new(&sc, &st, &idx);
        let rel = |sql: &str| planner.relevant_indexes(&dml(sql)).unwrap();

        // IN on a: probes through anything leading on a.
        assert_eq!(
            rel("SELECT * FROM t WHERE a IN (1, 2)"),
            vec![true, false, true, false]
        );
        // Disjunction over a and b: both probe columns light up.
        assert_eq!(
            rel("SELECT * FROM t WHERE (a = 1 OR b = 2)"),
            vec![true, true, true, false]
        );
        // Ablating unions turns both statements inert again.
        let flags = PlannerFlags {
            or_unions: false,
            ..Default::default()
        };
        let ablated = Planner::with_flags(&sc, &st, &idx, flags);
        assert_eq!(
            ablated
                .relevant_indexes(&dml("SELECT * FROM t WHERE a IN (1, 2)"))
                .unwrap(),
            vec![false; 4]
        );
        // Eq conjuncts feed both seeks and intersections: covered by
        // the existing eq-leading rule.
        assert_eq!(
            rel("SELECT * FROM t WHERE a = 1 AND b = 2"),
            vec![true, true, true, false]
        );
    }

    #[test]
    fn count_star_plans_and_probe_extraction() {
        let (sc, st) = (schema(), stats(100_000));
        let idx = [info("ix_ab", &[0, 1], &st)];
        let p = plan_sql("SELECT COUNT(*) FROM t WHERE a = 7", &sc, &st, &idx);
        assert!(p.count_only);
        if let Plan::IndexSeek {
            index, eq_prefix, ..
        } = p.plan
        {
            let planner = Planner::new(&sc, &st, &idx);
            let probe = planner.seek_probe(&p, index, eq_prefix);
            assert_eq!(probe, vec![Value::Int(7)]);
        } else {
            panic!("expected seek: {:?}", p.plan);
        }
    }
}

//! Cost-based access-path selection.
//!
//! The planner is configuration-driven: it receives a list of
//! [`IndexInfo`]s describing the indexes *assumed to exist* and knows
//! nothing about whether they are real B+-trees or hypothetical
//! what-if structures. `Database` plans against its materialized
//! indexes; [`crate::WhatIfEngine`] plans against estimated shapes.
//! One planner, two callers — that is the what-if interface.
//!
//! Planning is a pure function of the schema, the statistics snapshot,
//! and the assumed index shapes — no interior mutability — so
//! concurrent statements plan freely against one shared
//! `Arc<TableStats>` without synchronization.

use crate::cost::{CostModel, IndexShape};
use crate::stats::TableStats;
use cdpd_sql::{AggFunc, Condition, Dml, Projection, SelectStmt};
use cdpd_types::{ColumnId, Cost, Error, Result, Schema, Value};

/// An index as the planner sees it.
#[derive(Clone, Debug)]
pub struct IndexInfo {
    /// Canonical name (for plan descriptions and executor lookup).
    pub name: String,
    /// Key columns in key order.
    pub columns: Vec<ColumnId>,
    /// Physical shape (real or estimated).
    pub shape: IndexShape,
}

/// Bound projection: output columns (`None` = all), whether only a
/// count is needed, and an optional aggregate fold.
type BoundProjection = (Option<Vec<ColumnId>>, bool, Option<(AggFunc, ColumnId)>);

/// A resolved predicate conjunct: condition with its column id.
#[derive(Clone, Debug)]
pub struct BoundCondition {
    /// Column the conjunct constrains.
    pub column: ColumnId,
    /// The original condition.
    pub condition: Condition,
}

/// The chosen access path.
#[derive(Clone, Debug, PartialEq)]
pub enum Plan {
    /// Scan the heap, filter, project.
    SeqScan,
    /// Descend the index with an equality probe on the leading
    /// `eq_prefix` key columns.
    IndexSeek {
        /// Position in the planner's index list.
        index: usize,
        /// Number of leading key columns bound by equality.
        eq_prefix: usize,
        /// Whether the index covers the query (no heap fetches).
        covering: bool,
    },
    /// Scan the index range where the leading key column falls in the
    /// predicate's range.
    IndexRange {
        /// Position in the planner's index list.
        index: usize,
        /// Whether the index covers the query.
        covering: bool,
    },
    /// Scan every leaf of a covering index instead of the (wider) heap.
    IndexOnlyScan {
        /// Position in the planner's index list.
        index: usize,
    },
    /// Read one end of an index: `O(height)` evaluation of an
    /// unpredicated `MIN(col)` / `MAX(col)` over the leading key column.
    IndexExtremum {
        /// Position in the planner's index list.
        index: usize,
        /// True for `MAX` (rightmost entry), false for `MIN`.
        max: bool,
    },
}

/// Planner output: the plan, its cost estimate, and bound predicate.
#[derive(Clone, Debug)]
pub struct PlannedQuery {
    /// Chosen access path.
    pub plan: Plan,
    /// Estimated cost in logical I/Os.
    pub est_cost: Cost,
    /// Estimated number of matching rows.
    pub est_rows: f64,
    /// All predicate conjuncts, bound to column ids.
    pub conditions: Vec<BoundCondition>,
    /// Projected column ids (`None` = all columns).
    pub projection: Option<Vec<ColumnId>>,
    /// Whether the query only needs a row count (`COUNT(*)`).
    pub count_only: bool,
    /// Single-column aggregate to fold, if any.
    pub aggregate: Option<(AggFunc, ColumnId)>,
    /// Requested ordering `(column, desc)`, if any.
    pub order_by: Option<(ColumnId, bool)>,
    /// Row limit, if any.
    pub limit: Option<u64>,
    /// Whether the chosen access path already emits rows in the
    /// requested order (no sort needed).
    pub plan_ordered: bool,
    /// Index name used, if any.
    pub index_name: Option<String>,
}

impl PlannedQuery {
    /// One-line plan description, e.g. `IndexSeek(ix_t_a) cost=9`.
    pub fn describe(&self) -> String {
        let kind = match &self.plan {
            Plan::SeqScan => "SeqScan".to_owned(),
            Plan::IndexSeek { covering, .. } => format!(
                "IndexSeek({}{})",
                self.index_name.as_deref().unwrap_or("?"),
                if *covering { ", covering" } else { "" }
            ),
            Plan::IndexRange { covering, .. } => format!(
                "IndexRange({}{})",
                self.index_name.as_deref().unwrap_or("?"),
                if *covering { ", covering" } else { "" }
            ),
            Plan::IndexOnlyScan { .. } => {
                format!(
                    "IndexOnlyScan({})",
                    self.index_name.as_deref().unwrap_or("?")
                )
            }
            Plan::IndexExtremum { max, .. } => format!(
                "IndexExtremum({}, {})",
                self.index_name.as_deref().unwrap_or("?"),
                if *max { "max" } else { "min" }
            ),
        };
        format!("{kind} cost={}", self.est_cost)
    }
}

/// A planned `UPDATE` or `DELETE`: the row-locating access path plus
/// the estimated write-side cost.
#[derive(Clone, Debug)]
pub struct PlannedWrite {
    /// Access path used to locate the affected rows.
    pub find: PlannedQuery,
    /// Estimated total cost: locate + heap writes + index maintenance.
    pub est_total: Cost,
    /// Positions (in the planner's index list) of indexes that need
    /// per-row maintenance under this statement.
    pub maintained: Vec<usize>,
    /// Whether this is an update (vs a delete).
    pub is_update: bool,
}

impl PlannedWrite {
    /// One-line description, e.g. `Update via SeqScan, 2 index(es) maintained`.
    pub fn describe(&self) -> String {
        format!(
            "{} via {} maintaining {} index(es), cost={}",
            if self.is_update { "Update" } else { "Delete" },
            self.find.describe(),
            self.maintained.len(),
            self.est_total
        )
    }
}

/// Access-path feature flags, for ablation studies: disabling a path
/// shows how much of an experiment's outcome it carries. (Disabling
/// `index_only_scans` demotes `I(a,b)` from the paper's Table 2 winner
/// for mix A to a loser — the covering-scan path IS the Table 2 driver;
/// see the ablation tests and `cdpd-bench`.)
#[derive(Clone, Copy, Debug)]
pub struct PlannerFlags {
    /// Allow full index-only scans of covering indexes.
    pub index_only_scans: bool,
    /// Allow range scans over an index's leading column.
    pub range_scans: bool,
    /// Let seeks skip heap fetches when the index covers the query
    /// (off = every seek fetches, like a non-covering secondary index).
    pub covering_seeks: bool,
}

impl Default for PlannerFlags {
    fn default() -> Self {
        PlannerFlags {
            index_only_scans: true,
            range_scans: true,
            covering_seeks: true,
        }
    }
}

/// Cost-based single-table planner.
pub struct Planner<'a> {
    schema: &'a Schema,
    stats: &'a TableStats,
    indexes: &'a [IndexInfo],
    flags: PlannerFlags,
}

impl<'a> Planner<'a> {
    /// Plan against `schema`/`stats` with `indexes` assumed available.
    pub fn new(schema: &'a Schema, stats: &'a TableStats, indexes: &'a [IndexInfo]) -> Planner<'a> {
        Planner {
            schema,
            stats,
            indexes,
            flags: PlannerFlags::default(),
        }
    }

    /// Planner with non-default access-path flags (ablations).
    pub fn with_flags(
        schema: &'a Schema,
        stats: &'a TableStats,
        indexes: &'a [IndexInfo],
        flags: PlannerFlags,
    ) -> Planner<'a> {
        Planner {
            schema,
            stats,
            indexes,
            flags,
        }
    }

    /// Resolve and validate the statement, then pick the cheapest path.
    pub fn plan(&self, stmt: &SelectStmt) -> Result<PlannedQuery> {
        let conditions = self.bind_conditions(stmt)?;
        let (projection, count_only, aggregate) = self.bind_projection(stmt)?;
        let order_by = stmt
            .order_by
            .as_ref()
            .map(|ob| {
                self.schema
                    .column_id(&ob.column)
                    .map(|id| (id, ob.desc))
                    .ok_or_else(|| Error::NotFound(format!("column {}", ob.column)))
            })
            .transpose()?;
        if aggregate.is_some() && (order_by.is_some() || stmt.limit.is_some()) {
            return Err(Error::InvalidArgument(
                "ORDER BY / LIMIT on an aggregate query is meaningless (one result row)".into(),
            ));
        }

        // Columns the plan must produce (projection + predicate).
        let needed = Self::needed_columns(&conditions, &projection, count_only);

        let est_rows = self.estimate_rows(&conditions);
        let mut best: Option<(Cost, u32, Plan, Option<String>)> = None;
        let mut consider = |cost: Cost, rank: u32, plan: Plan, name: Option<String>| {
            let better = match &best {
                None => true,
                Some((bc, br, ..)) => cost < *bc || (cost == *bc && rank < *br),
            };
            if better {
                best = Some((cost, rank, plan, name));
            }
        };

        consider(CostModel::seq_scan(self.stats), 3, Plan::SeqScan, None);

        // Unpredicated MIN/MAX over an index's leading column: read one
        // end of the tree.
        if conditions.is_empty() {
            if let Some((func @ (AggFunc::Min | AggFunc::Max), col)) = aggregate {
                for (i, info) in self.indexes.iter().enumerate() {
                    if info.columns[0] == col {
                        consider(
                            Cost::from_ios(info.shape.height as u64),
                            0,
                            Plan::IndexExtremum {
                                index: i,
                                max: func == AggFunc::Max,
                            },
                            Some(info.name.clone()),
                        );
                    }
                }
            }
        }

        for (i, info) in self.indexes.iter().enumerate() {
            let covering = self.flags.covering_seeks && self.covers(info, &needed);

            // Longest leading prefix bound by equality.
            let eq_prefix = info
                .columns
                .iter()
                .take_while(|col| {
                    conditions
                        .iter()
                        .any(|c| c.column == **col && matches!(c.condition, Condition::Eq { .. }))
                })
                .count();

            if eq_prefix > 0 {
                let rows = self.eq_prefix_rows(info, eq_prefix);
                let cost = CostModel::index_seek(self.stats, info.shape, rows, covering);
                consider(
                    cost,
                    0,
                    Plan::IndexSeek {
                        index: i,
                        eq_prefix,
                        covering,
                    },
                    Some(info.name.clone()),
                );
                continue;
            }

            // Range on the leading key column?
            let leading = info.columns[0];
            let range = conditions
                .iter()
                .find(|c| c.column == leading && matches!(c.condition, Condition::Range { .. }));
            if let Some(bc) = range.filter(|_| self.flags.range_scans) {
                if let Condition::Range {
                    lo,
                    lo_inclusive,
                    hi,
                    hi_inclusive,
                    ..
                } = &bc.condition
                {
                    let frac = self.stats.column(leading).histogram.range_selectivity(
                        lo.as_ref(),
                        *lo_inclusive,
                        hi.as_ref(),
                        *hi_inclusive,
                    );
                    let rows = self.stats.row_count as f64 * frac;
                    let cost = CostModel::index_range(self.stats, info.shape, frac, rows, covering);
                    consider(
                        cost,
                        1,
                        Plan::IndexRange { index: i, covering },
                        Some(info.name.clone()),
                    );
                    continue;
                }
            }

            if covering && self.flags.index_only_scans {
                let cost = CostModel::index_only_scan(info.shape);
                consider(
                    cost,
                    2,
                    Plan::IndexOnlyScan { index: i },
                    Some(info.name.clone()),
                );
            }
        }

        let (est_cost, _, plan, index_name) = best.expect("seq scan is always a candidate");
        match &plan {
            Plan::SeqScan => cdpd_obs::counter!("engine.planner.pick.seq_scan").inc(),
            Plan::IndexSeek { .. } => cdpd_obs::counter!("engine.planner.pick.index_seek").inc(),
            Plan::IndexRange { .. } => cdpd_obs::counter!("engine.planner.pick.index_range").inc(),
            Plan::IndexOnlyScan { .. } => {
                cdpd_obs::counter!("engine.planner.pick.index_only_scan").inc()
            }
            Plan::IndexExtremum { .. } => {
                cdpd_obs::counter!("engine.planner.pick.index_extremum").inc()
            }
        }
        // Does the chosen path already emit rows in the requested order?
        // Index cursors run ascending over the key, so an ascending
        // ORDER BY on the index's leading column is free.
        let plan_ordered = match (&plan, order_by) {
            (_, None) => true,
            (
                Plan::IndexSeek { index, .. }
                | Plan::IndexRange { index, .. }
                | Plan::IndexOnlyScan { index },
                Some((col, false)),
            ) => self.indexes[*index].columns[0] == col,
            _ => false,
        };
        Ok(PlannedQuery {
            plan,
            est_cost,
            est_rows,
            conditions,
            projection,
            count_only,
            aggregate,
            order_by,
            limit: stmt.limit,
            plan_ordered,
            index_name,
        })
    }

    /// The index list this planner was constructed with.
    pub fn indexes(&self) -> &[IndexInfo] {
        self.indexes
    }

    /// Plan the write statements of Definition 1's "queries and
    /// updates": locate the affected rows with the cheapest access
    /// path, then charge heap writes plus per-row maintenance on every
    /// index the write invalidates (all indexes for a delete; indexes
    /// whose key columns intersect the SET list for an update).
    ///
    /// Updates are costed as in-place heap writes — exact for the
    /// fixed-width integer rows of this engine's workloads; a moved row
    /// additionally reindexes everything, which execution handles
    /// correctly but estimation ignores.
    ///
    /// # Errors
    /// `stmt` must be an `UPDATE` or `DELETE` (queries go through
    /// [`Planner::plan`]); SET columns must exist and be type-correct.
    pub fn plan_write(&self, stmt: &Dml) -> Result<PlannedWrite> {
        let (set_cols, is_update): (Vec<ColumnId>, bool) = match stmt {
            Dml::Update(u) => {
                let cols = u
                    .set
                    .iter()
                    .map(|(name, value)| {
                        let id = self
                            .schema
                            .column_id(name)
                            .ok_or_else(|| Error::NotFound(format!("column {name}")))?;
                        let ty = self.schema.column(id).expect("id just resolved").ty;
                        if value.value_type() != ty {
                            return Err(Error::TypeMismatch(format!(
                                "SET literal type does not match column {name}"
                            )));
                        }
                        Ok(id)
                    })
                    .collect::<Result<Vec<_>>>()?;
                (cols, true)
            }
            Dml::Delete(_) => (Vec::new(), false),
            Dml::Select(_) => {
                return Err(Error::InvalidArgument(
                    "plan_write takes UPDATE or DELETE statements".into(),
                ))
            }
        };
        // The locate phase only needs the predicate columns (rids are
        // collected first, then rows are mutated — no Halloween hazard).
        let find_stmt = SelectStmt {
            projection: Projection::CountStar,
            table: stmt.table().to_owned(),
            conditions: stmt.conditions().to_vec(),
            order_by: None,
            limit: None,
        };
        let find = self.plan(&find_stmt)?;
        let rows = find.est_rows;

        let maintained: Vec<usize> = self
            .indexes
            .iter()
            .enumerate()
            .filter(|(_, info)| {
                if is_update {
                    info.columns.iter().any(|c| set_cols.contains(c))
                } else {
                    true
                }
            })
            .map(|(i, _)| i)
            .collect();

        let mut est_total = find.est_cost + CostModel::heap_row_write().scale(rows.ceil() as u64);
        for &i in &maintained {
            let shape = self.indexes[i].shape;
            est_total += if is_update {
                CostModel::update_maintenance(shape, rows)
            } else {
                CostModel::delete_maintenance(shape, rows)
            };
        }
        Ok(PlannedWrite {
            find,
            est_total,
            maintained,
            is_update,
        })
    }

    /// Columns the plan must produce: projection + predicate columns,
    /// or `None` for `SELECT *` (every column).
    fn needed_columns(
        conditions: &[BoundCondition],
        projection: &Option<Vec<ColumnId>>,
        count_only: bool,
    ) -> Option<Vec<ColumnId>> {
        match (projection, count_only) {
            (Some(proj), _) => {
                let mut v = proj.clone();
                for c in conditions {
                    if !v.contains(&c.column) {
                        v.push(c.column);
                    }
                }
                Some(v)
            }
            (None, true) => Some(conditions.iter().map(|c| c.column).collect()),
            (None, false) => None, // SELECT *
        }
    }

    /// True if `info` holds every column in `needed` (`None` = all).
    fn covers(&self, info: &IndexInfo, needed: &Option<Vec<ColumnId>>) -> bool {
        match needed {
            Some(cols) => cols.iter().all(|c| info.columns.contains(c)),
            None => self
                .schema
                .columns()
                .iter()
                .enumerate()
                .all(|(j, _)| info.columns.contains(&ColumnId(j as u16))),
        }
    }

    /// Which indexes are *relevant* to `stmt`: `relevant[i]` is true
    /// iff index `i` can change the statement's estimated cost.
    ///
    /// An index only enters [`Planner::plan`]'s search when it
    /// generates a candidate access path, and each candidate's cost
    /// depends solely on that index (shape + key columns), the table
    /// statistics, and the statement — never on which *other* indexes
    /// exist. The chosen cost is a minimum over per-index candidates
    /// plus the always-present seq scan, so dropping a non-candidate
    /// index leaves the minimum untouched: relevance here is exact,
    /// not heuristic. Writes additionally charge per-row maintenance,
    /// which makes every maintained index relevant. This is what the
    /// oracle layer's configuration projection is built on.
    ///
    /// # Errors
    /// Propagates binding errors (unknown columns, type mismatches) —
    /// the same statements [`Planner::plan`]/[`Planner::plan_write`]
    /// reject.
    pub fn relevant_indexes(&self, stmt: &Dml) -> Result<Vec<bool>> {
        match stmt {
            Dml::Select(s) => self.relevant_for_select(s),
            Dml::Delete(_) => {
                // Deletes maintain every index: all relevant.
                Ok(vec![true; self.indexes.len()])
            }
            Dml::Update(u) => {
                let set_cols = u
                    .set
                    .iter()
                    .map(|(name, _)| {
                        self.schema
                            .column_id(name)
                            .ok_or_else(|| Error::NotFound(format!("column {name}")))
                    })
                    .collect::<Result<Vec<_>>>()?;
                // The locate phase plans this statement (see plan_write).
                let find_stmt = SelectStmt {
                    projection: Projection::CountStar,
                    table: stmt.table().to_owned(),
                    conditions: stmt.conditions().to_vec(),
                    order_by: None,
                    limit: None,
                };
                let mut relevant = self.relevant_for_select(&find_stmt)?;
                for (r, info) in relevant.iter_mut().zip(self.indexes) {
                    *r = *r || info.columns.iter().any(|c| set_cols.contains(c));
                }
                Ok(relevant)
            }
        }
    }

    /// [`Planner::relevant_indexes`] for queries: true iff the index
    /// generates at least one candidate in [`Planner::plan`]'s search
    /// (seek, range, index-only scan, or extremum read) — mirrors the
    /// candidate-generation conditions there exactly, flags included.
    fn relevant_for_select(&self, stmt: &SelectStmt) -> Result<Vec<bool>> {
        let conditions = self.bind_conditions(stmt)?;
        let (projection, count_only, aggregate) = self.bind_projection(stmt)?;
        let needed = Self::needed_columns(&conditions, &projection, count_only);
        let extremum_col = match aggregate {
            Some((AggFunc::Min | AggFunc::Max, col)) if conditions.is_empty() => Some(col),
            _ => None,
        };
        Ok(self
            .indexes
            .iter()
            .map(|info| {
                let leading = info.columns[0];
                if extremum_col == Some(leading) {
                    return true;
                }
                let eq_lead = conditions
                    .iter()
                    .any(|c| c.column == leading && matches!(c.condition, Condition::Eq { .. }));
                if eq_lead {
                    return true;
                }
                let range_lead = self.flags.range_scans
                    && conditions.iter().any(|c| {
                        c.column == leading && matches!(c.condition, Condition::Range { .. })
                    });
                if range_lead {
                    return true;
                }
                self.flags.index_only_scans
                    && self.flags.covering_seeks
                    && self.covers(info, &needed)
            })
            .collect())
    }

    fn bind_conditions(&self, stmt: &SelectStmt) -> Result<Vec<BoundCondition>> {
        stmt.conditions
            .iter()
            .map(|cond| {
                let name = cond.column();
                let column = self
                    .schema
                    .column_id(name)
                    .ok_or_else(|| Error::NotFound(format!("column {name}")))?;
                let ty = self.schema.column(column).expect("id just resolved").ty;
                let lit_ok = match cond {
                    Condition::Eq { value, .. } => value.value_type() == ty,
                    Condition::Range { lo, hi, .. } => {
                        lo.as_ref().is_none_or(|v| v.value_type() == ty)
                            && hi.as_ref().is_none_or(|v| v.value_type() == ty)
                    }
                };
                if !lit_ok {
                    return Err(Error::TypeMismatch(format!(
                        "literal type does not match column {name} ({ty:?})",
                        ty = ty
                    )));
                }
                Ok(BoundCondition {
                    column,
                    condition: cond.clone(),
                })
            })
            .collect()
    }

    fn bind_projection(&self, stmt: &SelectStmt) -> Result<BoundProjection> {
        match &stmt.projection {
            Projection::Star => Ok((None, false, None)),
            Projection::CountStar => Ok((None, true, None)),
            Projection::Columns(cols) => {
                let ids = cols
                    .iter()
                    .map(|c| {
                        self.schema
                            .column_id(c)
                            .ok_or_else(|| Error::NotFound(format!("column {c}")))
                    })
                    .collect::<Result<Vec<_>>>()?;
                Ok((Some(ids), false, None))
            }
            Projection::Aggregate(func, col) => {
                let id = self
                    .schema
                    .column_id(col)
                    .ok_or_else(|| Error::NotFound(format!("column {col}")))?;
                Ok((Some(vec![id]), false, Some((*func, id))))
            }
        }
    }

    /// Independence-assumption row estimate over all conjuncts.
    fn estimate_rows(&self, conditions: &[BoundCondition]) -> f64 {
        let mut sel = 1.0f64;
        for bc in conditions {
            sel *= match &bc.condition {
                Condition::Eq { .. } => self.stats.column(bc.column).eq_selectivity(),
                Condition::Range {
                    lo,
                    lo_inclusive,
                    hi,
                    hi_inclusive,
                    ..
                } => self.stats.column(bc.column).histogram.range_selectivity(
                    lo.as_ref(),
                    *lo_inclusive,
                    hi.as_ref(),
                    *hi_inclusive,
                ),
            };
        }
        self.stats.row_count as f64 * sel
    }

    /// Rows matching an equality probe on the first `eq_prefix` key
    /// columns of `info` (independence assumption).
    fn eq_prefix_rows(&self, info: &IndexInfo, eq_prefix: usize) -> f64 {
        let mut sel = 1.0f64;
        for col in &info.columns[..eq_prefix] {
            sel *= self.stats.column(*col).eq_selectivity();
        }
        self.stats.row_count as f64 * sel
    }

    /// The probe values for an [`Plan::IndexSeek`], in key order.
    pub fn seek_probe(&self, planned: &PlannedQuery, index: usize, eq_prefix: usize) -> Vec<Value> {
        self.indexes[index].columns[..eq_prefix]
            .iter()
            .map(|col| {
                planned
                    .conditions
                    .iter()
                    .find_map(|c| match &c.condition {
                        Condition::Eq { value, .. } if c.column == *col => Some(value.clone()),
                        _ => None,
                    })
                    .expect("eq_prefix column must have an Eq condition")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::StatsMaintainer;
    use cdpd_sql::parse;
    use cdpd_types::{ColumnDef, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::int("a"),
            ColumnDef::int("b"),
            ColumnDef::int("c"),
            ColumnDef::int("d"),
        ])
    }

    fn stats(rows: u64) -> TableStats {
        let mut b = StatsMaintainer::new(4, rows);
        for i in 0..rows as i64 {
            let v = (i * 2654435761) % 50_000;
            b.add_row(&[
                Value::Int(v),
                Value::Int(v / 2),
                Value::Int(v / 3),
                Value::Int(v / 4),
            ]);
        }
        b.snapshot((rows / 200).max(1))
    }

    fn info(name: &str, cols: &[u16], stats: &TableStats) -> IndexInfo {
        let ids: Vec<ColumnId> = cols.iter().map(|&c| ColumnId(c)).collect();
        IndexInfo {
            name: name.into(),
            shape: CostModel::estimate_shape(stats, &ids),
            columns: ids,
        }
    }

    fn plan_sql(sql: &str, schema: &Schema, stats: &TableStats, idx: &[IndexInfo]) -> PlannedQuery {
        let stmt = match parse(sql).unwrap() {
            cdpd_sql::Statement::Select(s) => s,
            _ => panic!("not a select"),
        };
        Planner::new(schema, stats, idx).plan(&stmt).unwrap()
    }

    #[test]
    fn no_indexes_means_seq_scan() {
        let (sc, st) = (schema(), stats(100_000));
        let p = plan_sql("SELECT a FROM t WHERE a = 5", &sc, &st, &[]);
        assert_eq!(p.plan, Plan::SeqScan);
        assert_eq!(p.est_cost, CostModel::seq_scan(&st));
    }

    #[test]
    fn matching_index_becomes_seek() {
        let (sc, st) = (schema(), stats(100_000));
        let idx = [info("ix_a", &[0], &st)];
        let p = plan_sql("SELECT a FROM t WHERE a = 5", &sc, &st, &idx);
        assert!(
            matches!(
                p.plan,
                Plan::IndexSeek {
                    index: 0,
                    eq_prefix: 1,
                    covering: true
                }
            ),
            "{:?}",
            p.plan
        );
        assert!(p.est_cost.ios() < 20);
    }

    #[test]
    fn composite_index_serves_leading_column() {
        let (sc, st) = (schema(), stats(100_000));
        let idx = [info("ix_ab", &[0, 1], &st)];
        let p = plan_sql("SELECT a FROM t WHERE a = 5", &sc, &st, &idx);
        assert!(matches!(p.plan, Plan::IndexSeek { covering: true, .. }));
    }

    #[test]
    fn composite_index_covers_second_column_via_index_only_scan() {
        // The Table 2 linchpin: query on b, index I(a,b) → index-only
        // scan, cheaper than the heap scan but dearer than a seek.
        let (sc, st) = (schema(), stats(100_000));
        let idx = [info("ix_ab", &[0, 1], &st)];
        let p = plan_sql("SELECT b FROM t WHERE b = 5", &sc, &st, &idx);
        assert!(
            matches!(p.plan, Plan::IndexOnlyScan { index: 0 }),
            "{:?}",
            p.plan
        );
        assert!(p.est_cost < CostModel::seq_scan(&st));
    }

    #[test]
    fn non_covering_index_on_other_column_is_useless() {
        let (sc, st) = (schema(), stats(100_000));
        let idx = [info("ix_c", &[2], &st)];
        let p = plan_sql("SELECT a FROM t WHERE a = 5", &sc, &st, &idx);
        assert_eq!(p.plan, Plan::SeqScan);
    }

    #[test]
    fn narrow_range_uses_index_range_scan() {
        let (sc, st) = (schema(), stats(100_000));
        let idx = [info("ix_a", &[0], &st)];
        let p = plan_sql("SELECT a FROM t WHERE a BETWEEN 10 AND 20", &sc, &st, &idx);
        assert!(
            matches!(
                p.plan,
                Plan::IndexRange {
                    index: 0,
                    covering: true
                }
            ),
            "{:?}",
            p.plan
        );
    }

    #[test]
    fn wide_non_covering_range_falls_back_to_scan() {
        let (sc, st) = (schema(), stats(100_000));
        let idx = [info("ix_a", &[0], &st)];
        let p = plan_sql(
            "SELECT d FROM t WHERE a BETWEEN 0 AND 49000",
            &sc,
            &st,
            &idx,
        );
        assert_eq!(
            p.plan,
            Plan::SeqScan,
            "fetching half the table via rids must lose"
        );
    }

    #[test]
    fn two_column_equality_uses_longest_prefix() {
        let (sc, st) = (schema(), stats(100_000));
        let idx = [info("ix_ab", &[0, 1], &st)];
        let p = plan_sql("SELECT a FROM t WHERE a = 5 AND b = 2", &sc, &st, &idx);
        assert!(
            matches!(p.plan, Plan::IndexSeek { eq_prefix: 2, .. }),
            "{:?}",
            p.plan
        );
    }

    #[test]
    fn picks_cheapest_among_indexes() {
        let (sc, st) = (schema(), stats(100_000));
        let idx = [info("ix_ab", &[0, 1], &st), info("ix_b", &[1], &st)];
        let p = plan_sql("SELECT b FROM t WHERE b = 5", &sc, &st, &idx);
        assert!(
            matches!(p.plan, Plan::IndexSeek { index: 1, .. }),
            "seek on I(b) must beat index-only scan of I(a,b): {:?}",
            p.plan
        );
    }

    #[test]
    fn unknown_column_and_type_mismatch_rejected() {
        let (sc, st) = (schema(), stats(1000));
        let planner_idx: [IndexInfo; 0] = [];
        let stmt = match parse("SELECT z FROM t").unwrap() {
            cdpd_sql::Statement::Select(s) => s,
            _ => unreachable!(),
        };
        assert!(Planner::new(&sc, &st, &planner_idx).plan(&stmt).is_err());
        let stmt = match parse("SELECT a FROM t WHERE a = 'x'").unwrap() {
            cdpd_sql::Statement::Select(s) => s,
            _ => unreachable!(),
        };
        assert!(Planner::new(&sc, &st, &planner_idx).plan(&stmt).is_err());
    }

    #[test]
    fn write_planning_charges_maintenance() {
        let (sc, st) = (schema(), stats(100_000));
        let idx = [info("ix_a", &[0], &st), info("ix_bc", &[1, 2], &st)];
        let planner = Planner::new(&sc, &st, &idx);
        let upd = match cdpd_sql::parse("UPDATE t SET b = 7 WHERE a = 5").unwrap() {
            cdpd_sql::Statement::Update(u) => cdpd_sql::Dml::Update(u),
            _ => unreachable!(),
        };
        let p = planner.plan_write(&upd).unwrap();
        assert!(p.is_update);
        // Only ix_bc contains the SET column b.
        assert_eq!(p.maintained, vec![1]);
        // The locate phase uses the index on a.
        assert!(
            matches!(p.find.plan, Plan::IndexSeek { index: 0, .. }),
            "{:?}",
            p.find.plan
        );
        assert!(p.est_total > p.find.est_cost);

        let del = match cdpd_sql::parse("DELETE FROM t WHERE a = 5").unwrap() {
            cdpd_sql::Statement::Delete(d) => cdpd_sql::Dml::Delete(d),
            _ => unreachable!(),
        };
        let p = planner.plan_write(&del).unwrap();
        assert!(!p.is_update);
        assert_eq!(p.maintained, vec![0, 1], "deletes maintain every index");
    }

    #[test]
    fn write_planning_validates_set_columns() {
        let (sc, st) = (schema(), stats(1_000));
        let planner_idx: [IndexInfo; 0] = [];
        let planner = Planner::new(&sc, &st, &planner_idx);
        for bad in ["UPDATE t SET z = 1", "UPDATE t SET a = 'x'"] {
            let stmt = match cdpd_sql::parse(bad).unwrap() {
                cdpd_sql::Statement::Update(u) => cdpd_sql::Dml::Update(u),
                _ => unreachable!(),
            };
            assert!(planner.plan_write(&stmt).is_err(), "should reject {bad}");
        }
        // Selects are rejected by plan_write.
        let sel = cdpd_sql::Dml::Select(SelectStmt::point("t", "a", 1));
        assert!(planner.plan_write(&sel).is_err());
    }

    #[test]
    fn more_indexes_make_writes_costlier() {
        let (sc, st) = (schema(), stats(100_000));
        let del = match cdpd_sql::parse("DELETE FROM t WHERE a = 5").unwrap() {
            cdpd_sql::Statement::Delete(d) => cdpd_sql::Dml::Delete(d),
            _ => unreachable!(),
        };
        let one = [info("ix_a", &[0], &st)];
        let three = [
            info("ix_a", &[0], &st),
            info("ix_b", &[1], &st),
            info("ix_cd", &[2, 3], &st),
        ];
        let cheap = Planner::new(&sc, &st, &one).plan_write(&del).unwrap();
        let dear = Planner::new(&sc, &st, &three).plan_write(&del).unwrap();
        assert!(
            dear.est_total > cheap.est_total,
            "every extra index taxes the delete: {} vs {}",
            dear.est_total,
            cheap.est_total
        );
    }

    #[test]
    fn ablation_flags_disable_paths() {
        let (sc, st) = (schema(), stats(100_000));
        let idx = [info("ix_ab", &[0, 1], &st)];
        let stmt = match parse("SELECT b FROM t WHERE b = 5").unwrap() {
            cdpd_sql::Statement::Select(s) => s,
            _ => unreachable!(),
        };
        // Default: covering index-only scan (the Table 2 driver).
        let p = Planner::new(&sc, &st, &idx).plan(&stmt).unwrap();
        assert!(matches!(p.plan, Plan::IndexOnlyScan { .. }));
        // Ablated: the index cannot serve the b-query at all.
        let flags = PlannerFlags {
            index_only_scans: false,
            ..Default::default()
        };
        let p = Planner::with_flags(&sc, &st, &idx, flags)
            .plan(&stmt)
            .unwrap();
        assert_eq!(
            p.plan,
            Plan::SeqScan,
            "without covering scans I(a,b) is useless for b"
        );

        // covering_seeks off: seeks still chosen but pay heap fetches.
        let stmt = match parse("SELECT a FROM t WHERE a = 5").unwrap() {
            cdpd_sql::Statement::Select(s) => s,
            _ => unreachable!(),
        };
        let with_cover = Planner::new(&sc, &st, &idx).plan(&stmt).unwrap();
        let flags = PlannerFlags {
            covering_seeks: false,
            ..Default::default()
        };
        let without = Planner::with_flags(&sc, &st, &idx, flags)
            .plan(&stmt)
            .unwrap();
        assert!(matches!(
            without.plan,
            Plan::IndexSeek {
                covering: false,
                ..
            }
        ));
        assert!(without.est_cost > with_cover.est_cost);

        // range_scans off: BETWEEN falls back to a scan.
        let stmt = match parse("SELECT a FROM t WHERE a BETWEEN 10 AND 20").unwrap() {
            cdpd_sql::Statement::Select(s) => s,
            _ => unreachable!(),
        };
        let idx_a = [info("ix_a", &[0], &st)];
        let flags = PlannerFlags {
            range_scans: false,
            ..Default::default()
        };
        let p = Planner::with_flags(&sc, &st, &idx_a, flags)
            .plan(&stmt)
            .unwrap();
        // Without range scans the planner falls back to a covering
        // index-only scan (still cheaper than the heap); with that off
        // too, only the seq scan remains.
        assert!(matches!(p.plan, Plan::IndexOnlyScan { .. }), "{:?}", p.plan);
        let flags = PlannerFlags {
            range_scans: false,
            index_only_scans: false,
            ..Default::default()
        };
        let p = Planner::with_flags(&sc, &st, &idx_a, flags)
            .plan(&stmt)
            .unwrap();
        assert_eq!(p.plan, Plan::SeqScan);
    }

    fn dml(sql: &str) -> Dml {
        match cdpd_sql::parse(sql).unwrap() {
            cdpd_sql::Statement::Select(s) => Dml::Select(s),
            cdpd_sql::Statement::Update(u) => Dml::Update(u),
            cdpd_sql::Statement::Delete(d) => Dml::Delete(d),
            _ => panic!("not a dml"),
        }
    }

    #[test]
    fn relevance_mirrors_candidate_generation() {
        let (sc, st) = (schema(), stats(100_000));
        // I(a), I(b), I(a,b), I(c,d) — the interesting shapes.
        let idx = [
            info("ix_a", &[0], &st),
            info("ix_b", &[1], &st),
            info("ix_ab", &[0, 1], &st),
            info("ix_cd", &[2, 3], &st),
        ];
        let planner = Planner::new(&sc, &st, &idx);
        let rel = |sql: &str| planner.relevant_indexes(&dml(sql)).unwrap();

        // Point query on a: seek on I(a)/I(a,b); I(b) neither seeks
        // nor covers {a}; I(c,d) is fully inert.
        assert_eq!(
            rel("SELECT a FROM t WHERE a = 5"),
            vec![true, false, true, false]
        );
        // Point query on b: seek on I(b), covering scan on I(a,b).
        assert_eq!(
            rel("SELECT b FROM t WHERE b = 5"),
            vec![false, true, true, false]
        );
        // Range on a: range scan on I(a)/I(a,b).
        assert_eq!(
            rel("SELECT a FROM t WHERE a BETWEEN 10 AND 20"),
            vec![true, false, true, false]
        );
        // SELECT * covers nothing short of the full schema: only the
        // seek on a remains.
        assert_eq!(
            rel("SELECT * FROM t WHERE a = 5"),
            vec![true, false, true, false]
        );
        // Updates: locate via a, maintain indexes whose keys contain b.
        assert_eq!(
            rel("UPDATE t SET b = 7 WHERE a = 5"),
            vec![true, true, true, false]
        );
        // Deletes maintain everything.
        assert_eq!(rel("DELETE FROM t WHERE a = 5"), vec![true; 4]);
        // Binding errors propagate, as in plan().
        assert!(planner.relevant_indexes(&dml("SELECT z FROM t")).is_err());
    }

    #[test]
    fn relevance_respects_flags_and_aggregates() {
        let (sc, st) = (schema(), stats(100_000));
        let idx = [info("ix_b", &[1], &st), info("ix_ab", &[0, 1], &st)];
        let q = dml("SELECT b FROM t WHERE b = 5");
        // Default: I(a,b) is relevant through the covering scan...
        let planner = Planner::new(&sc, &st, &idx);
        assert_eq!(planner.relevant_indexes(&q).unwrap(), vec![true, true]);
        // ...and ablating index-only scans makes it inert, exactly as
        // plan() stops generating the candidate.
        let flags = PlannerFlags {
            index_only_scans: false,
            ..Default::default()
        };
        let planner = Planner::with_flags(&sc, &st, &idx, flags);
        assert_eq!(planner.relevant_indexes(&q).unwrap(), vec![true, false]);

        // Unpredicated MIN reads one end of a leading-a index; I(b)
        // can't serve it, I(a,b) also covers the single-column scan.
        let idx = [
            info("ix_b", &[1], &st),
            info("ix_ab", &[0, 1], &st),
            info("ix_a", &[0], &st),
        ];
        let planner = Planner::new(&sc, &st, &idx);
        let agg = dml("SELECT MIN(a) FROM t");
        assert_eq!(
            planner.relevant_indexes(&agg).unwrap(),
            vec![false, true, true]
        );
    }

    #[test]
    fn count_star_plans_and_probe_extraction() {
        let (sc, st) = (schema(), stats(100_000));
        let idx = [info("ix_ab", &[0, 1], &st)];
        let p = plan_sql("SELECT COUNT(*) FROM t WHERE a = 7", &sc, &st, &idx);
        assert!(p.count_only);
        if let Plan::IndexSeek {
            index, eq_prefix, ..
        } = p.plan
        {
            let planner = Planner::new(&sc, &st, &idx);
            let probe = planner.seek_probe(&p, index, eq_prefix);
            assert_eq!(probe, vec![Value::Int(7)]);
        } else {
            panic!("expected seek: {:?}", p.plan);
        }
    }
}

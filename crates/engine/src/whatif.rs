//! The what-if optimizer: `EXEC`, `TRANS`, and `SIZE` estimates for
//! hypothetical index configurations.
//!
//! Commercial design advisors rely on the server's "what-if" interface:
//! plant fake index metadata, ask the optimizer to cost a query, read
//! the estimate. [`WhatIfEngine`] is that interface for this engine.
//! It snapshots a table's schema and statistics once, fabricates
//! [`IndexShape`]s for any [`IndexSpec`] from the statistics, and runs
//! the *same planner* the executor uses — so estimates and measured
//! costs diverge only where statistics do.

use crate::catalog::IndexSpec;
use crate::cost::{CostModel, IndexShape};
use crate::db::Database;
use crate::planner::{IndexInfo, Planner};
use crate::stats::TableStats;
use cdpd_sql::{Dml, SelectStmt};
use cdpd_types::{ColumnId, Cost, Error, Result, Schema};
use std::collections::HashMap;
use std::sync::Arc;

/// Snapshot-based what-if cost oracle for one table.
///
/// Schema and statistics are shared via `Arc` with the engine's
/// catalog, so a snapshot is two refcount bumps — cheap enough to take
/// per window in the online pipeline. Statistics objects are replaced
/// wholesale on `refresh_stats`/`analyze`, never mutated in place, so
/// the snapshot stays immutable even as the database moves on.
pub struct WhatIfEngine {
    table: String,
    schema: Arc<Schema>,
    stats: Arc<TableStats>,
    /// Materialized shapes of currently-built indexes, by canonical
    /// index name — captured by [`WhatIfEngine::snapshot_live`] so
    /// costing the *current* configuration uses the executor's real
    /// B-tree geometry instead of a statistics estimate. Empty for
    /// plain snapshots; hypothetical indexes always fall back to
    /// [`CostModel::estimate_shape`].
    live_shapes: HashMap<String, IndexShape>,
}

impl WhatIfEngine {
    /// Snapshot `table`'s schema and statistics from `db` (cheap: the
    /// snapshot shares them with the catalog, no copies).
    ///
    /// # Errors
    /// The table must exist and have been `ANALYZE`d.
    pub fn snapshot(db: &Database, table: &str) -> Result<WhatIfEngine> {
        let _span = cdpd_obs::span!("whatif.snapshot");
        let schema = db.schema(table)?;
        let stats = db.stats(table)?.ok_or_else(|| {
            Error::InvalidArgument(format!("table {table} has no statistics; run analyze()"))
        })?;
        Ok(WhatIfEngine {
            table: table.to_owned(),
            schema,
            stats,
            live_shapes: HashMap::new(),
        })
    }

    /// Like [`WhatIfEngine::snapshot`], but additionally captures the
    /// materialized shapes of every index currently built on `table`.
    /// Costing a configuration then uses the executor's real B-tree
    /// geometry for indexes that are built (matched by canonical name)
    /// and falls back to the statistics estimate for hypothetical ones
    /// — so predictions for the *live* configuration agree exactly
    /// with the planner costs the executor reports.
    ///
    /// # Errors
    /// The table must exist and have been `ANALYZE`d.
    pub fn snapshot_live(db: &Database, table: &str) -> Result<WhatIfEngine> {
        let mut engine = Self::snapshot(db, table)?;
        engine.live_shapes = db
            .index_shapes(table)?
            .into_iter()
            .map(|(spec, shape)| (spec.name(), shape))
            .collect();
        Ok(engine)
    }

    /// Number of materialized shapes captured at snapshot time (0 for
    /// plain snapshots).
    pub fn live_shape_count(&self) -> usize {
        self.live_shapes.len()
    }

    /// Build directly from parts (tests, simulations). Accepts plain
    /// values or pre-shared `Arc`s.
    pub fn from_parts(
        table: impl Into<String>,
        schema: impl Into<Arc<Schema>>,
        stats: impl Into<Arc<TableStats>>,
    ) -> WhatIfEngine {
        WhatIfEngine {
            table: table.into(),
            schema: schema.into(),
            stats: stats.into(),
            live_shapes: HashMap::new(),
        }
    }

    /// The table this oracle describes.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// The snapshot statistics.
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// The snapshot schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    fn resolve(&self, spec: &IndexSpec) -> Result<Vec<ColumnId>> {
        if spec.table != self.table {
            return Err(Error::InvalidArgument(format!(
                "index {} is on table {}, oracle is for {}",
                spec.name(),
                spec.table,
                self.table
            )));
        }
        spec.columns
            .iter()
            .map(|c| {
                self.schema
                    .column_id(c)
                    .ok_or_else(|| Error::NotFound(format!("column {c}")))
            })
            .collect()
    }

    /// Physical shape of an index: the captured materialized shape for
    /// indexes built at [`WhatIfEngine::snapshot_live`] time, else the
    /// statistics estimate.
    pub fn shape(&self, spec: &IndexSpec) -> Result<IndexShape> {
        let columns = self.resolve(spec)?;
        if let Some(shape) = self.live_shapes.get(&spec.name()) {
            return Ok(*shape);
        }
        Ok(CostModel::estimate_shape(&self.stats, &columns))
    }

    /// Estimated size of one index, in pages.
    pub fn index_size_pages(&self, spec: &IndexSpec) -> Result<u64> {
        Ok(self.shape(spec)?.total_pages)
    }

    /// Estimated size of a whole configuration, in pages (`SIZE(C)`).
    pub fn config_size_pages(&self, config: &[IndexSpec]) -> Result<u64> {
        config.iter().map(|s| self.index_size_pages(s)).sum()
    }

    /// Estimated cost of executing `stmt` under hypothetical
    /// configuration `config` (`EXEC(S, C)`).
    pub fn exec_cost(&self, stmt: &SelectStmt, config: &[IndexSpec]) -> Result<Cost> {
        if stmt.table != self.table {
            return Err(Error::InvalidArgument(format!(
                "statement is on table {}, oracle is for {}",
                stmt.table, self.table
            )));
        }
        cdpd_obs::tracked_counter!("engine.whatif.calls").inc();
        let infos = self.infos(config)?;
        let planner = Planner::new(&self.schema, &self.stats, &infos);
        Ok(planner.plan(stmt)?.est_cost)
    }

    /// Estimated cost of executing any workload statement (query,
    /// update, or delete) under hypothetical configuration `config` —
    /// the general `EXEC(S, C)` of Definition 1's "queries and
    /// updates". Writes charge the cheapest row-locating path *plus*
    /// per-row maintenance of every hypothetical index the statement
    /// would invalidate, so update-heavy phases penalize configurations
    /// with many (or wide) indexes.
    pub fn dml_cost(&self, stmt: &Dml, config: &[IndexSpec]) -> Result<Cost> {
        match stmt {
            Dml::Select(s) => self.exec_cost(s, config),
            Dml::Update(_) | Dml::Delete(_) => {
                if stmt.table() != self.table {
                    return Err(Error::InvalidArgument(format!(
                        "statement is on table {}, oracle is for {}",
                        stmt.table(),
                        self.table
                    )));
                }
                cdpd_obs::tracked_counter!("engine.whatif.calls").inc();
                let infos = self.infos(config)?;
                let planner = Planner::new(&self.schema, &self.stats, &infos);
                Ok(planner.plan_write(stmt)?.est_total)
            }
        }
    }

    /// Which of `structures` are *relevant* to `stmt` — can change its
    /// estimated cost under any configuration drawn from `structures`.
    /// Entry `i` of the returned vector corresponds to `structures[i]`
    /// (a vector, not a fixed-width mask, so the candidate vocabulary
    /// is unbounded).
    ///
    /// Exactness comes from the planner (see
    /// `Planner::relevant_indexes`): an index outside the mask
    /// generates no candidate access path and no maintenance charge
    /// for `stmt`, so adding or removing it cannot move the min-cost
    /// plan. The oracle layer uses these masks to project
    /// configurations before costing.
    ///
    /// # Errors
    /// `structures` must belong to this table and name real columns;
    /// `stmt` must bind against the schema.
    pub fn relevant_structures(&self, stmt: &Dml, structures: &[IndexSpec]) -> Result<Vec<bool>> {
        if stmt.table() != self.table {
            return Err(Error::InvalidArgument(format!(
                "statement is on table {}, oracle is for {}",
                stmt.table(),
                self.table
            )));
        }
        let infos = self.infos(structures)?;
        let planner = Planner::new(&self.schema, &self.stats, &infos);
        planner.relevant_indexes(stmt)
    }

    fn infos(&self, config: &[IndexSpec]) -> Result<Vec<IndexInfo>> {
        config
            .iter()
            .map(|spec| {
                let columns = self.resolve(spec)?;
                let shape = match self.live_shapes.get(&spec.name()) {
                    Some(shape) => *shape,
                    None => CostModel::estimate_shape(&self.stats, &columns),
                };
                Ok(IndexInfo {
                    name: spec.name(),
                    shape,
                    columns,
                })
            })
            .collect()
    }

    /// Estimated cost of changing the design from `from` to `to`
    /// (`TRANS(C_i, C_j)`): builds for new indexes, a catalog write per
    /// dropped index, zero when the sets match.
    pub fn trans_cost(&self, from: &[IndexSpec], to: &[IndexSpec]) -> Result<Cost> {
        let mut total = Cost::ZERO;
        for spec in to {
            if !from.contains(spec) {
                total += CostModel::build(&self.stats, self.shape(spec)?);
            }
        }
        for spec in from {
            if !to.contains(spec) {
                total += CostModel::drop();
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Database;
    use cdpd_types::{ColumnDef, Value};

    fn paper_db(rows: i64) -> Database {
        let db = Database::new();
        db.create_table(
            "t",
            Schema::new(vec![
                ColumnDef::int("a"),
                ColumnDef::int("b"),
                ColumnDef::int("c"),
                ColumnDef::int("d"),
            ]),
        )
        .unwrap();
        let dom = rows / 5; // ~5 rows per value, like the paper's 2.5M/500k
        for i in 0..rows {
            let h = |k: i64| Value::Int(((i * 2654435761).wrapping_mul(k + 1) % dom + dom) % dom);
            db.insert("t", &[h(0), h(1), h(2), h(3)]).unwrap();
        }
        db.analyze("t").unwrap();
        db
    }

    fn spec(cols: &[&str]) -> IndexSpec {
        IndexSpec::new("t", cols)
    }

    #[test]
    fn snapshot_requires_stats() {
        let db = Database::new();
        db.create_table("t", Schema::new(vec![ColumnDef::int("a")]))
            .unwrap();
        assert!(WhatIfEngine::snapshot(&db, "t").is_err());
        db.analyze("t").unwrap();
        assert!(WhatIfEngine::snapshot(&db, "t").is_ok());
        assert!(WhatIfEngine::snapshot(&db, "missing").is_err());
    }

    #[test]
    fn exec_cost_orderings_match_table2_logic() {
        let db = paper_db(50_000);
        let w = WhatIfEngine::snapshot(&db, "t").unwrap();
        let qa = SelectStmt::point("t", "a", 7);
        let qb = SelectStmt::point("t", "b", 7);

        let empty: Vec<IndexSpec> = vec![];
        let ia = vec![spec(&["a"])];
        let iab = vec![spec(&["a", "b"])];
        let ib = vec![spec(&["b"])];

        // Seek beats everything for the indexed column.
        let seek_a = w.exec_cost(&qa, &ia).unwrap();
        let scan = w.exec_cost(&qa, &empty).unwrap();
        assert!(seek_a.ios() * 20 < scan.ios());

        // I(a,b) serves a-queries via seek AND b-queries via covering
        // index-only scan (cheaper than heap scan) — the Table 2 driver.
        let seek_a_ab = w.exec_cost(&qa, &iab).unwrap();
        assert!(seek_a_ab.ios() < 30);
        let b_under_ab = w.exec_cost(&qb, &iab).unwrap();
        assert!(b_under_ab < scan, "index-only scan must beat heap scan");
        let b_under_b = w.exec_cost(&qb, &ib).unwrap();
        assert!(b_under_b < b_under_ab, "seek must beat index-only scan");
    }

    #[test]
    fn mix_economics_reproduce_paper_design_choices() {
        // Mix A = 55% a, 25% b, 10% c, 10% d. Under the paper's Table 2,
        // I(a,b) must be the best single-index configuration for mix A
        // and I(b) the best for mix B (the mirror).
        let db = paper_db(50_000);
        let w = WhatIfEngine::snapshot(&db, "t").unwrap();
        let q: Vec<SelectStmt> = ["a", "b", "c", "d"]
            .iter()
            .map(|c| SelectStmt::point("t", *c, 7))
            .collect();
        let mix_cost = |weights: [u64; 4], config: &[IndexSpec]| -> u64 {
            weights
                .iter()
                .zip(&q)
                .map(|(wt, stmt)| w.exec_cost(stmt, config).unwrap().ios() * wt)
                .sum()
        };
        let configs: Vec<(&str, Vec<IndexSpec>)> = vec![
            ("empty", vec![]),
            ("I(a)", vec![spec(&["a"])]),
            ("I(b)", vec![spec(&["b"])]),
            ("I(c)", vec![spec(&["c"])]),
            ("I(d)", vec![spec(&["d"])]),
            ("I(a,b)", vec![spec(&["a", "b"])]),
            ("I(c,d)", vec![spec(&["c", "d"])]),
        ];
        let best = |weights: [u64; 4]| -> &str {
            configs
                .iter()
                .min_by_key(|(_, c)| mix_cost(weights, c))
                .unwrap()
                .0
        };
        assert_eq!(best([55, 25, 10, 10]), "I(a,b)", "mix A");
        assert_eq!(best([25, 55, 10, 10]), "I(b)", "mix B");
        assert_eq!(best([10, 10, 55, 25]), "I(c,d)", "mix C");
        assert_eq!(best([10, 10, 25, 55]), "I(d)", "mix D");
    }

    #[test]
    fn write_costs_penalize_indexes() {
        let db = paper_db(50_000);
        let w = WhatIfEngine::snapshot(&db, "t").unwrap();
        let upd = match cdpd_sql::parse("UPDATE t SET b = 1 WHERE a = 7").unwrap() {
            cdpd_sql::Statement::Update(u) => Dml::Update(u),
            _ => unreachable!(),
        };
        let empty: Vec<IndexSpec> = vec![];
        let ia = vec![spec(&["a"])];
        let iab = vec![spec(&["a", "b"])];

        // I(a) speeds up the locate phase and is not maintained (b is
        // not in its key) → cheaper than no index at all.
        let bare = w.dml_cost(&upd, &empty).unwrap();
        let with_a = w.dml_cost(&upd, &ia).unwrap();
        assert!(with_a < bare, "{with_a} !< {bare}");
        // I(a,b) also locates fast but must be maintained.
        let with_ab = w.dml_cost(&upd, &iab).unwrap();
        assert!(with_ab > with_a, "maintenance must cost something");

        // A full-table update under many indexes is much worse than
        // under none.
        let touch_all = match cdpd_sql::parse("UPDATE t SET a = 1").unwrap() {
            cdpd_sql::Statement::Update(u) => Dml::Update(u),
            _ => unreachable!(),
        };
        let none = w.dml_cost(&touch_all, &empty).unwrap();
        let many = w
            .dml_cost(&touch_all, &[spec(&["a"]), spec(&["a", "b"])])
            .unwrap();
        assert!(many.raw() > none.raw() * 2, "{many} vs {none}");

        // Deletes maintain every index, even ones not containing the
        // SET columns.
        let del = match cdpd_sql::parse("DELETE FROM t WHERE a = 7").unwrap() {
            cdpd_sql::Statement::Delete(d) => Dml::Delete(d),
            _ => unreachable!(),
        };
        let d_bare = w.dml_cost(&del, &empty).unwrap();
        let d_ab = w.dml_cost(&del, &iab).unwrap();
        let _ = (d_bare, d_ab); // locate savings vs maintenance can go either way
                                // Select delegation matches exec_cost.
        let q = Dml::Select(SelectStmt::point("t", "a", 7));
        assert_eq!(
            w.dml_cost(&q, &ia).unwrap(),
            w.exec_cost(&SelectStmt::point("t", "a", 7), &ia).unwrap()
        );
    }

    #[test]
    fn relevance_projection_is_exact() {
        // The guarantee the oracle layer's projection rests on: for any
        // statement and any configuration C drawn from the candidate
        // set, cost(stmt, C) == cost(stmt, C ∩ mask(stmt)).
        let db = paper_db(20_000);
        let w = WhatIfEngine::snapshot(&db, "t").unwrap();
        let structures = [
            spec(&["a"]),
            spec(&["b"]),
            spec(&["c"]),
            spec(&["d"]),
            spec(&["a", "b"]),
            spec(&["c", "d"]),
        ];
        let stmts: Vec<Dml> = vec![
            Dml::Select(SelectStmt::point("t", "a", 7)),
            Dml::Select(SelectStmt::point("t", "c", 7)),
            match cdpd_sql::parse("SELECT b FROM t WHERE b BETWEEN 5 AND 9").unwrap() {
                cdpd_sql::Statement::Select(s) => Dml::Select(s),
                _ => unreachable!(),
            },
            match cdpd_sql::parse("UPDATE t SET b = 1 WHERE a = 7").unwrap() {
                cdpd_sql::Statement::Update(u) => Dml::Update(u),
                _ => unreachable!(),
            },
            match cdpd_sql::parse("DELETE FROM t WHERE d = 3").unwrap() {
                cdpd_sql::Statement::Delete(d) => Dml::Delete(d),
                _ => unreachable!(),
            },
            // Multi-index paths: the IN probes light up every a-leading
            // structure; the disjunction spans a and c at once; the Eq
            // pair can intersect through I(a) × I(b).
            match cdpd_sql::parse("SELECT * FROM t WHERE a IN (2, 4, 6)").unwrap() {
                cdpd_sql::Statement::Select(s) => Dml::Select(s),
                _ => unreachable!(),
            },
            match cdpd_sql::parse("SELECT * FROM t WHERE (a = 1 OR c = 2)").unwrap() {
                cdpd_sql::Statement::Select(s) => Dml::Select(s),
                _ => unreachable!(),
            },
            match cdpd_sql::parse("SELECT * FROM t WHERE a = 1 AND b = 2").unwrap() {
                cdpd_sql::Statement::Select(s) => Dml::Select(s),
                _ => unreachable!(),
            },
        ];
        let specs_of = |bits: u64| -> Vec<IndexSpec> {
            structures
                .iter()
                .enumerate()
                .filter(|(i, _)| (bits >> i) & 1 == 1)
                .map(|(_, s)| s.clone())
                .collect()
        };
        for stmt in &stmts {
            let relevant = w.relevant_structures(stmt, &structures).unwrap();
            assert_eq!(relevant.len(), structures.len());
            let mask = relevant
                .iter()
                .enumerate()
                .fold(0u64, |m, (i, &r)| if r { m | (1 << i) } else { m });
            let mut projection_bit = false;
            for bits in 0..(1u64 << structures.len()) {
                let full = w.dml_cost(stmt, &specs_of(bits)).unwrap();
                let projected = w.dml_cost(stmt, &specs_of(bits & mask)).unwrap();
                assert_eq!(full, projected, "stmt {stmt} bits {bits:b} mask {mask:b}");
                projection_bit |= bits & mask != bits;
            }
            // Every statement here has at least one irrelevant
            // structure except the delete (which maintains all six).
            if !matches!(stmt, Dml::Delete(_)) {
                assert!(projection_bit, "mask {mask:b} projected nothing for {stmt}");
            }
        }
        // No fixed-width cap: a 65+-structure vocabulary is accepted.
        let many: Vec<IndexSpec> = (0..65).map(|_| spec(&["a"])).collect();
        let wide = w
            .relevant_structures(&Dml::Select(SelectStmt::point("t", "a", 1)), &many)
            .unwrap();
        assert_eq!(wide.len(), 65);
        assert!(wide.iter().all(|&r| r), "every copy of I(a) is relevant");
    }

    #[test]
    fn trans_cost_asymmetry() {
        let db = paper_db(20_000);
        let w = WhatIfEngine::snapshot(&db, "t").unwrap();
        let ia = vec![spec(&["a"])];
        let ib = vec![spec(&["b"])];
        assert_eq!(w.trans_cost(&ia, &ia).unwrap(), Cost::ZERO);
        let build = w.trans_cost(&[], &ia).unwrap();
        let drop = w.trans_cost(&ia, &[]).unwrap();
        assert!(build.ios() > 100 * drop.ios());
        let swap = w.trans_cost(&ia, &ib).unwrap();
        assert_eq!(swap, build + drop, "swap = build new + drop old");
    }

    #[test]
    fn size_estimates_scale_with_width() {
        let db = paper_db(20_000);
        let w = WhatIfEngine::snapshot(&db, "t").unwrap();
        let one = w.index_size_pages(&spec(&["a"])).unwrap();
        let two = w.index_size_pages(&spec(&["a", "b"])).unwrap();
        assert!(two > one);
        assert_eq!(
            w.config_size_pages(&[spec(&["a"]), spec(&["a", "b"])])
                .unwrap(),
            one + two
        );
        assert_eq!(w.config_size_pages(&[]).unwrap(), 0);
    }

    #[test]
    fn estimated_shape_tracks_real_build() {
        let db = paper_db(30_000);
        let w = WhatIfEngine::snapshot(&db, "t").unwrap();
        let s = spec(&["a", "b"]);
        let est = w.shape(&s).unwrap();
        db.create_index(&s).unwrap();
        // Compare against the materialized tree via a fresh snapshot of
        // the executor's measured seek cost.
        let q = SelectStmt::point("t", "a", 7);
        let measured = db.query_count(&q).unwrap();
        let estimated = w.exec_cost(&q, &[s]).unwrap();
        let (e, m) = (estimated.ios().max(1), measured.io.total().max(1));
        assert!(
            e.max(m) / e.min(m) < 3,
            "estimated {e} vs measured {m} (shape {est:?})"
        );
    }

    #[test]
    fn live_snapshot_matches_executor_estimates_exactly() {
        let db = paper_db(30_000);
        db.create_index(&spec(&["a"])).unwrap();
        db.create_index(&spec(&["c", "d"])).unwrap();
        let w = WhatIfEngine::snapshot_live(&db, "t").unwrap();
        assert_eq!(w.live_shape_count(), 2);
        let config = [spec(&["a"]), spec(&["c", "d"])];
        // Reads: the oracle's prediction for the live configuration is
        // bit-identical to the planner estimate the executor reports —
        // same model, same stats, same materialized shapes.
        for q in [
            SelectStmt::point("t", "a", 7),
            SelectStmt::point("t", "c", 3),
            SelectStmt::point("t", "b", 1), // seq scan: no index helps
        ] {
            let predicted = w.exec_cost(&q, &config).unwrap();
            let reported = db.query_count(&q).unwrap().est_cost;
            assert_eq!(predicted, reported, "query on {q}");
        }
        // Writes too: predicted before execution, compared to the
        // est_total the executor attaches to the result.
        let upd = match cdpd_sql::parse("UPDATE t SET b = 1 WHERE a = 7").unwrap() {
            cdpd_sql::Statement::Update(u) => Dml::Update(u),
            _ => unreachable!(),
        };
        let predicted = w.dml_cost(&upd, &config).unwrap();
        let reported = db.execute_dml(&upd).unwrap().est_cost;
        assert_eq!(predicted, reported, "update est_total");
        // A plain (statistics-only) snapshot is close but not exact in
        // general; the live capture is what removes the shape gap.
        let plain = WhatIfEngine::snapshot(&db, "t").unwrap();
        assert_eq!(plain.live_shape_count(), 0);
    }

    #[test]
    fn wrong_table_rejected() {
        let db = paper_db(1_000);
        let w = WhatIfEngine::snapshot(&db, "t").unwrap();
        let other = IndexSpec::new("u", &["a"]);
        assert!(w.index_size_pages(&other).is_err());
        assert!(w.exec_cost(&SelectStmt::point("u", "a", 1), &[]).is_err());
        assert!(w.shape(&IndexSpec::new("t", &["nope"])).is_err());
    }
}

//! The I/O cost model shared by the planner and the what-if optimizer.
//!
//! Costs are logical page I/Os, the same unit the executor measures, so
//! estimates and measurements are directly comparable. The model is
//! deliberately classical (System-R flavoured):
//!
//! * sequential scan = heap pages;
//! * index seek = tree height + matching leaf pages + one heap fetch
//!   per matching row when the index does not cover the query;
//! * index range scan = height + (selectivity × leaf pages) + fetches;
//! * index-only scan = height + all leaf pages.
//!
//! These four formulas are what produce the paper's Table 2 design
//! choices: `I(a,b)` beats `I(a)` under mix A precisely because a
//! covering index-only scan of `I(a,b)` (≈ 0.6 × heap pages) is cheaper
//! than a full heap scan for the 25% of queries on `b`.

use crate::stats::TableStats;
use cdpd_storage::PAGE_SIZE;
use cdpd_types::{ColumnId, Cost};

/// Physical shape of a (real or hypothetical) index, as the cost model
/// needs it: leaf page count, height, and total pages (for `SIZE` and
/// build cost).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct IndexShape {
    /// Number of leaf pages.
    pub leaf_pages: u64,
    /// Levels from root to leaf, inclusive.
    pub height: u32,
    /// All pages (leaves + internal).
    pub total_pages: u64,
}

/// Stateless cost model. Constants are associated consts so ablation
/// benches can document exactly what is being assumed.
#[derive(Clone, Copy, Default, Debug)]
pub struct CostModel;

impl CostModel {
    /// Fraction of a page usable after bulk-load fill factor.
    pub const FILL: f64 = 0.9;
    /// Per-entry overhead in a leaf: 2-byte length prefix + 6-byte rid.
    pub const LEAF_ENTRY_OVERHEAD: f64 = 8.0;
    /// Memcomparable encoding overhead per key column (tag byte).
    pub const KEY_COL_OVERHEAD: f64 = 1.0;
    /// Cost of a `DROP INDEX` (one catalog page write).
    pub const DROP_COST_IOS: u64 = 1;

    /// Estimated average encoded key width for an index over `cols`.
    fn key_width(stats: &TableStats, cols: &[ColumnId]) -> f64 {
        cols.iter()
            .map(|c| {
                // Row-codec width ≈ memcomparable width for ints (9 vs 9)
                // and close enough for strings (3+len vs 3+len).
                stats.column(*c).avg_width.max(2.0) + Self::KEY_COL_OVERHEAD - 1.0
            })
            .sum()
    }

    /// Estimate the shape a B+-tree over `cols` would have.
    pub fn estimate_shape(stats: &TableStats, cols: &[ColumnId]) -> IndexShape {
        let rows = stats.row_count;
        if rows == 0 {
            return IndexShape {
                leaf_pages: 1,
                height: 1,
                total_pages: 1,
            };
        }
        let entry = Self::key_width(stats, cols) + Self::LEAF_ENTRY_OVERHEAD;
        let leaf_cap = (PAGE_SIZE as f64 * Self::FILL / entry).max(1.0);
        let leaves = (rows as f64 / leaf_cap).ceil().max(1.0);
        // Internal fanout: entry + 4-byte child pointer.
        let fanout = (PAGE_SIZE as f64 * Self::FILL / (entry + 4.0)).max(2.0);
        let mut height = 1u32;
        let mut level = leaves;
        let mut total = leaves;
        while level > 1.0 {
            level = (level / fanout).ceil();
            total += level;
            height += 1;
        }
        IndexShape {
            leaf_pages: leaves as u64,
            height,
            total_pages: total as u64,
        }
    }

    /// Rows stored per leaf for `shape` (≥ 1).
    fn rows_per_leaf(stats: &TableStats, shape: IndexShape) -> f64 {
        (stats.row_count as f64 / shape.leaf_pages as f64).max(1.0)
    }

    /// Sequential heap scan.
    pub fn seq_scan(stats: &TableStats) -> Cost {
        Cost::from_ios(stats.heap_pages.max(1))
    }

    /// Index seek matching ~`rows` entries; `covering` skips heap
    /// fetches (one random page read per matching row otherwise).
    pub fn index_seek(stats: &TableStats, shape: IndexShape, rows: f64, covering: bool) -> Cost {
        let leaf_ios = (rows / Self::rows_per_leaf(stats, shape)).ceil().max(1.0);
        let fetches = if covering { 0.0 } else { rows.ceil() };
        Cost::from_ios(shape.height as u64 + leaf_ios as u64 + fetches as u64)
    }

    /// Range scan over `fraction` of the index, matching ~`rows` rows.
    pub fn index_range(
        stats: &TableStats,
        shape: IndexShape,
        fraction: f64,
        rows: f64,
        covering: bool,
    ) -> Cost {
        let _ = stats;
        let leaf_ios = (fraction * shape.leaf_pages as f64).ceil().max(1.0);
        let fetches = if covering { 0.0 } else { rows.ceil() };
        Cost::from_ios(shape.height as u64 + leaf_ios as u64 + fetches as u64)
    }

    /// Full index-only scan of every leaf.
    pub fn index_only_scan(shape: IndexShape) -> Cost {
        Cost::from_ios(shape.height as u64 + shape.leaf_pages)
    }

    /// One rid-only equality probe matching ~`rows` entries: descend the
    /// tree and read the matching leaves, but fetch no heap rows — the
    /// rids feed a sorted intersection ([`crate::planner::Plan::IndexAnd`])
    /// or union ([`crate::planner::Plan::IndexOr`]) downstream.
    pub fn index_probe(stats: &TableStats, shape: IndexShape, rows: f64) -> Cost {
        let leaf_ios = (rows / Self::rows_per_leaf(stats, shape)).ceil().max(1.0);
        Cost::from_ios(shape.height as u64 + leaf_ios as u64)
    }

    /// Heap fetches for the ~`rows` rids surviving an intersection or
    /// union (one random page read per row, like a non-covering seek).
    pub fn rid_fetches(rows: f64) -> Cost {
        Cost::from_ios(rows.ceil() as u64)
    }

    /// Cost of building the index: scan the heap, bulk-write the tree.
    /// (The in-memory sort's CPU time is not an I/O and is excluded, as
    /// are the measured numbers it is compared against.)
    pub fn build(stats: &TableStats, shape: IndexShape) -> Cost {
        Cost::from_ios(stats.heap_pages + shape.total_pages)
    }

    /// Cost of dropping an index.
    pub fn drop() -> Cost {
        Cost::from_ios(Self::DROP_COST_IOS)
    }

    /// Cost of one index-entry mutation (insert or delete of a single
    /// entry): descend the tree and read-modify-write the leaf.
    pub fn index_entry_op(shape: IndexShape) -> Cost {
        Cost::from_ios(shape.height as u64 + 2)
    }

    /// Cost of rewriting one heap row in place (read-modify-write of
    /// its page).
    pub fn heap_row_write() -> Cost {
        Cost::from_ios(2)
    }

    /// Maintenance cost of an `UPDATE` touching ~`rows` rows for one
    /// index: affected indexes pay a delete + insert per row.
    pub fn update_maintenance(shape: IndexShape, rows: f64) -> Cost {
        Self::index_entry_op(shape)
            .scale(2)
            .scale(rows.ceil() as u64)
    }

    /// Maintenance cost of a `DELETE` touching ~`rows` rows for one
    /// index: one entry removal per row.
    pub fn delete_maintenance(shape: IndexShape, rows: f64) -> Cost {
        Self::index_entry_op(shape).scale(rows.ceil() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::StatsMaintainer;
    use cdpd_types::Value;

    /// Stats resembling the paper's table: 4 int columns, uniform.
    fn paper_stats(rows: u64) -> TableStats {
        let mut b = StatsMaintainer::new(4, rows);
        for i in 0..rows as i64 {
            let v = (i * 2654435761) % 500_000;
            b.add_row(&[
                Value::Int(v),
                Value::Int(v / 2),
                Value::Int(v / 3),
                Value::Int(v / 4),
            ]);
        }
        // ~200 rows/page (36 encoded bytes + 4 slot bytes).
        b.snapshot(rows / 200)
    }

    fn cols(ids: &[u16]) -> Vec<ColumnId> {
        ids.iter().map(|&i| ColumnId(i)).collect()
    }

    #[test]
    fn single_column_shape_is_plausible() {
        let stats = paper_stats(100_000);
        let shape = CostModel::estimate_shape(&stats, &cols(&[0]));
        // entry ≈ 9 + 8 = 17 bytes → ~430/leaf → ~230 leaves.
        assert!((200..280).contains(&shape.leaf_pages), "{shape:?}");
        assert_eq!(shape.height, 2);
        assert!(shape.total_pages > shape.leaf_pages);
    }

    #[test]
    fn two_column_index_is_bigger_but_smaller_than_heap() {
        let stats = paper_stats(100_000);
        let one = CostModel::estimate_shape(&stats, &cols(&[0]));
        let two = CostModel::estimate_shape(&stats, &cols(&[0, 1]));
        assert!(two.leaf_pages > one.leaf_pages);
        assert!(
            two.leaf_pages < stats.heap_pages * 8 / 10,
            "covering scan must beat heap scan: {} vs {}",
            two.leaf_pages,
            stats.heap_pages
        );
    }

    #[test]
    fn seek_is_orders_cheaper_than_scan() {
        let stats = paper_stats(100_000);
        let shape = CostModel::estimate_shape(&stats, &cols(&[0]));
        let rows = stats.eq_rows(ColumnId(0));
        let seek = CostModel::index_seek(&stats, shape, rows, false);
        let scan = CostModel::seq_scan(&stats);
        assert!(seek.ios() * 20 < scan.ios(), "seek {seek} vs scan {scan}");
    }

    #[test]
    fn covering_seek_cheaper_than_fetching() {
        let stats = paper_stats(100_000);
        let shape = CostModel::estimate_shape(&stats, &cols(&[0, 1]));
        let c = CostModel::index_seek(&stats, shape, 5.0, true);
        let nc = CostModel::index_seek(&stats, shape, 5.0, false);
        assert!(c < nc);
    }

    #[test]
    fn range_scales_with_fraction() {
        let stats = paper_stats(100_000);
        let shape = CostModel::estimate_shape(&stats, &cols(&[0]));
        let narrow = CostModel::index_range(&stats, shape, 0.01, 1000.0, true);
        let wide = CostModel::index_range(&stats, shape, 0.5, 50_000.0, true);
        assert!(narrow < wide);
        // A wide non-covering range should lose to a seq scan.
        let wide_fetch = CostModel::index_range(&stats, shape, 0.5, 50_000.0, false);
        assert!(CostModel::seq_scan(&stats) < wide_fetch);
    }

    #[test]
    fn build_cost_scan_plus_write() {
        let stats = paper_stats(50_000);
        let shape = CostModel::estimate_shape(&stats, &cols(&[0]));
        let build = CostModel::build(&stats, shape);
        assert_eq!(build.ios(), stats.heap_pages + shape.total_pages);
        assert_eq!(CostModel::drop().ios(), 1);
    }

    #[test]
    fn maintenance_scales_with_rows_and_height() {
        let stats = paper_stats(100_000);
        let shape = CostModel::estimate_shape(&stats, &cols(&[0]));
        let one = CostModel::delete_maintenance(shape, 1.0);
        let many = CostModel::delete_maintenance(shape, 10.0);
        assert_eq!(many.raw(), one.raw() * 10);
        let upd = CostModel::update_maintenance(shape, 10.0);
        assert_eq!(upd.raw(), many.raw() * 2, "update = delete + insert");
        assert_eq!(CostModel::heap_row_write().ios(), 2);
    }

    #[test]
    fn empty_table_has_minimal_shape() {
        let stats = StatsMaintainer::new(2, 0).snapshot(0);
        let shape = CostModel::estimate_shape(&stats, &cols(&[0]));
        assert_eq!(
            shape,
            IndexShape {
                leaf_pages: 1,
                height: 1,
                total_pages: 1
            }
        );
        assert_eq!(CostModel::seq_scan(&stats).ios(), 1);
    }
}

//! Plan execution against the storage substrate.
//!
//! The executor is deliberately dumb: it runs exactly the access path
//! the planner chose and lets the pager count the I/O. Hot paths avoid
//! per-row allocation: heap scans evaluate predicates through
//! [`RowView`] column extraction, and index scans evaluate them by
//! decoding fixed-width integer segments straight out of the
//! memcomparable key bytes.
//!
//! Execution borrows the [`TableEntry`] immutably, so it is part of
//! the engine's shared read surface: any number of statements may
//! execute concurrently against one entry (each under its own
//! `ThreadIoScope`, so per-statement I/O attribution survives the
//! interleaving).

use crate::catalog::{IndexEntry, TableEntry};
use crate::planner::{BoundCondition, Plan, PlannedQuery, Planner};
use cdpd_sql::{AggFunc, Condition};
use cdpd_storage::codec::{decode_key, encode_key, RowView};
use cdpd_types::{ColumnId, Error, Result, Rid, Value, ValueType};

/// Result of executing one query.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecOutcome {
    /// Number of rows that matched.
    pub count: u64,
    /// Materialized rows (only when requested).
    pub rows: Option<Vec<Vec<Value>>>,
    /// Aggregate result, for aggregate projections.
    pub aggregate: Option<Value>,
}

/// Execute `planned` against `table`. `materialize` controls whether
/// result rows are built (query results) or merely counted (workload
/// replay, where only cost matters). Aggregates, ORDER BY, and LIMIT
/// are applied here, on top of the chosen access path.
pub(crate) fn execute(
    table: &TableEntry,
    planner: &Planner<'_>,
    planned: &PlannedQuery,
    materialize: bool,
) -> Result<ExecOutcome> {
    // Extremum plans answer the aggregate directly from one tree spine.
    if let Plan::IndexExtremum { index, max } = planned.plan {
        return index_extremum(table, planner, planned, index, max);
    }
    // Aggregates and sorts need the rows regardless of caller intent.
    let need_rows = planned.aggregate.is_some() || planned.order_by.is_some();
    let materialize = (materialize || need_rows) && !planned.count_only;
    let mut outcome = match &planned.plan {
        Plan::SeqScan => seq_scan(table, planned, materialize)?,
        Plan::IndexSeek {
            index,
            eq_prefix,
            covering,
        } => {
            let probe = planner.seek_probe(planned, *index, *eq_prefix);
            index_seek(
                table,
                planned,
                planner,
                *index,
                &probe,
                *covering,
                materialize,
            )?
        }
        Plan::IndexRange { index, covering } => {
            index_range(table, planned, planner, *index, *covering, materialize)?
        }
        Plan::IndexOnlyScan { index } => index_only(table, planned, planner, *index, materialize)?,
        Plan::IndexAnd { probes } => {
            let rids = intersect_rids(table, planner, probes)?;
            fetch_filtered(table, planned, &rids, materialize)?
        }
        Plan::IndexOr { probes } => {
            let rids = union_rids(table, planner, probes)?;
            fetch_filtered(table, planned, &rids, materialize)?
        }
        Plan::IndexExtremum { .. } => unreachable!("handled above"),
    };

    if let Some((func, col)) = planned.aggregate {
        let rows = outcome.rows.take().unwrap_or_default();
        // The aggregate column is the sole output column
        // (bind_projection); `count` stays the number of rows folded.
        let _ = col;
        outcome.count = rows.len() as u64;
        outcome.aggregate = Some(fold_aggregate(func, rows)?);
        outcome.rows = None;
        return Ok(outcome);
    }

    if let Some(rows) = &mut outcome.rows {
        if let Some((col, desc)) = planned.order_by {
            if !planned.plan_ordered || desc {
                // The order column was appended as the last output
                // column when absent from the projection; sort on the
                // position output_columns() placed it at.
                let pos = order_column_position(table, planned, col);
                rows.sort_by(|a, b| a[pos].cmp(&b[pos]));
            }
            if desc {
                rows.reverse();
            }
        }
        if let Some(limit) = planned.limit {
            rows.truncate(limit as usize);
            outcome.count = rows.len() as u64;
        }
        // Strip a trailing order-by helper column not in the projection.
        if let (Some(proj), Some((col, _))) = (&planned.projection, planned.order_by) {
            if !proj.contains(&col) {
                for row in rows.iter_mut() {
                    row.pop();
                }
            }
        }
    } else if let Some(limit) = planned.limit {
        outcome.count = outcome.count.min(limit);
    }
    Ok(outcome)
}

/// Position of the ORDER BY column in the executed output rows.
fn order_column_position(table: &TableEntry, planned: &PlannedQuery, col: ColumnId) -> usize {
    let _ = table;
    match &planned.projection {
        Some(proj) => proj.iter().position(|c| *c == col).unwrap_or(proj.len()),
        None => col.index(), // SELECT * keeps schema order
    }
}

fn fold_aggregate(func: AggFunc, rows: Vec<Vec<Value>>) -> Result<Value> {
    let values = rows.into_iter().map(|mut r| r.swap_remove(0));
    match func {
        AggFunc::Count => Ok(Value::Int(values.count() as i64)),
        AggFunc::Min => Ok(values.min().unwrap_or(Value::Int(0))),
        AggFunc::Max => Ok(values.max().unwrap_or(Value::Int(0))),
        AggFunc::Sum | AggFunc::Avg => {
            let mut sum: i64 = 0;
            let mut n: i64 = 0;
            for v in values {
                let i = v
                    .as_int()
                    .ok_or_else(|| Error::TypeMismatch("SUM/AVG need an integer column".into()))?;
                sum = sum.wrapping_add(i);
                n += 1;
            }
            Ok(Value::Int(if func == AggFunc::Sum {
                sum
            } else if n == 0 {
                0
            } else {
                sum / n
            }))
        }
    }
}

/// `O(height)` MIN/MAX: read one end of the index.
fn index_extremum(
    table: &TableEntry,
    planner: &Planner<'_>,
    _planned: &PlannedQuery,
    index: usize,
    max: bool,
) -> Result<ExecOutcome> {
    let entry = index_entry(table, planner, index)?;
    let key = if max {
        entry.btree.last_entry()?.map(|(k, _)| k)
    } else {
        let mut cur = entry.btree.scan_all()?;
        cur.next_entry()?.map(|(k, _)| k.to_vec())
    };
    let aggregate = match key {
        Some(k) => Some(decode_key(&k)?.swap_remove(0)),
        None => Some(Value::Int(0)), // empty-table aggregate convention
    };
    // For aggregate queries `count` is the number of rows aggregated,
    // matching the fold-based paths.
    Ok(ExecOutcome {
        count: entry.btree.entry_count(),
        rows: None,
        aggregate,
    })
}

fn index_entry<'t>(
    table: &'t TableEntry,
    planner: &Planner<'_>,
    index: usize,
) -> Result<&'t IndexEntry> {
    let name = &planner.indexes()[index].name;
    table
        .indexes
        .get(name)
        .ok_or_else(|| Error::NotFound(format!("index {name} is not materialized")))
}

/// Output columns of the query, in order. When an ORDER BY column is
/// not part of the projection it is appended as a helper column (the
/// execute() wrapper sorts on it and strips it before returning).
fn output_columns(table: &TableEntry, planned: &PlannedQuery) -> Vec<ColumnId> {
    let mut cols = match &planned.projection {
        Some(cols) => cols.clone(),
        None => (0..table.schema.len())
            .map(|i| ColumnId(i as u16))
            .collect(),
    };
    if let Some((col, _)) = planned.order_by {
        if !cols.contains(&col) {
            cols.push(col);
        }
    }
    cols
}

/// Evaluate all conjuncts against a heap row.
fn row_matches(view: &RowView<'_>, conds: &[BoundCondition]) -> Result<bool> {
    for bc in conds {
        let hit = if let Condition::Or(branches) = &bc.condition {
            // Each branch reads its own column (branches of one OR may
            // reference different columns).
            let mut any = false;
            for (b, col) in branches.iter().zip(&bc.branch_columns) {
                if b.matches(&view.value(col.index())?) {
                    any = true;
                    break;
                }
            }
            any
        } else {
            // Fast path: column value compared against literal(s).
            bc.condition.matches(&view.value(bc.column.index())?)
        };
        if !hit {
            return Ok(false);
        }
    }
    Ok(true)
}

fn project_row(view: &RowView<'_>, cols: &[ColumnId]) -> Result<Vec<Value>> {
    cols.iter().map(|c| view.value(c.index())).collect()
}

// --- Key-side predicate evaluation --------------------------------------

/// Evaluates conditions directly on encoded index keys.
///
/// When every key column is `INT`, each column occupies a fixed 9-byte
/// segment of the memcomparable key, so a condition on key position `p`
/// decodes 8 bytes at offset `9p + 1` — no allocation. Otherwise the
/// matcher falls back to a full `decode_key`.
struct KeyMatcher {
    /// (key position, condition) for every conjunct on a key column.
    checks: Vec<(usize, Condition)>,
    all_int: bool,
}

impl KeyMatcher {
    /// Build a matcher for the conjuncts of `planned` that reference key
    /// columns of `index` at or after `skip_prefix` (probe-satisfied
    /// leading equalities are skipped).
    fn new(
        table: &TableEntry,
        planner: &Planner<'_>,
        planned: &PlannedQuery,
        index: usize,
        skip_prefix: usize,
    ) -> KeyMatcher {
        let cols = &planner.indexes()[index].columns;
        let all_int = cols
            .iter()
            .all(|c| table.schema.column(*c).map(|d| d.ty) == Some(ValueType::Int));
        let mut checks = Vec::new();
        for bc in &planned.conditions {
            if let Some(pos) = cols.iter().position(|c| *c == bc.column) {
                if pos < skip_prefix && matches!(bc.condition, Condition::Eq { .. }) {
                    continue; // satisfied by the probe
                }
                checks.push((pos, bc.condition.clone()));
            }
        }
        KeyMatcher { checks, all_int }
    }

    fn decode_int_segment(key: &[u8], pos: usize) -> Option<i64> {
        let off = pos * 9 + 1;
        let seg = key.get(off..off + 8)?;
        let raw = u64::from_be_bytes(seg.try_into().ok()?);
        Some((raw ^ (1u64 << 63)) as i64)
    }

    fn matches(&self, key: &[u8]) -> Result<bool> {
        if self.checks.is_empty() {
            return Ok(true);
        }
        if self.all_int {
            for (pos, cond) in &self.checks {
                let v = Self::decode_int_segment(key, *pos)
                    .ok_or_else(|| Error::Corrupt("short index key".into()))?;
                if !cond.matches(&Value::Int(v)) {
                    return Ok(false);
                }
            }
            Ok(true)
        } else {
            let vals = decode_key(key)?;
            for (pos, cond) in &self.checks {
                if !cond.matches(&vals[*pos]) {
                    return Ok(false);
                }
            }
            Ok(true)
        }
    }
}

/// Project output columns out of an index key (covering plans).
fn project_key(
    key: &[u8],
    key_cols: &[ColumnId],
    out_cols: &[ColumnId],
    all_int: bool,
) -> Result<Vec<Value>> {
    if all_int {
        out_cols
            .iter()
            .map(|c| {
                let pos = key_cols
                    .iter()
                    .position(|k| k == c)
                    .ok_or_else(|| Error::Corrupt("projection column not in key".into()))?;
                KeyMatcher::decode_int_segment(key, pos)
                    .map(Value::Int)
                    .ok_or_else(|| Error::Corrupt("short index key".into()))
            })
            .collect()
    } else {
        let vals = decode_key(key)?;
        out_cols
            .iter()
            .map(|c| {
                let pos = key_cols
                    .iter()
                    .position(|k| k == c)
                    .ok_or_else(|| Error::Corrupt("projection column not in key".into()))?;
                Ok(vals[pos].clone())
            })
            .collect()
    }
}

// --- Multi-index rid operators -------------------------------------------

/// The sorted, deduplicated rid list of one equality probe
/// `(index, value)` on the index's leading key column.
fn probe_rids(
    table: &TableEntry,
    planner: &Planner<'_>,
    index: usize,
    value: &Value,
) -> Result<Vec<Rid>> {
    let entry = index_entry(table, planner, index)?;
    let probe = std::slice::from_ref(value);
    let probe_bytes = encode_key(probe);
    let mut cursor = entry.btree.seek(probe)?;
    let mut rids = Vec::new();
    while let Some((key, rid)) = cursor.next_entry()? {
        if !key.starts_with(&probe_bytes) {
            break;
        }
        rids.push(rid);
    }
    rids.sort_unstable();
    rids.dedup();
    Ok(rids)
}

/// Union of the per-probe rid lists, sorted and deduplicated — the
/// rid set of an [`Plan::IndexOr`] before heap fetch.
fn union_rids(
    table: &TableEntry,
    planner: &Planner<'_>,
    probes: &[(usize, Value)],
) -> Result<Vec<Rid>> {
    let mut all = Vec::new();
    for (index, value) in probes {
        all.extend(probe_rids(table, planner, *index, value)?);
    }
    all.sort_unstable();
    all.dedup();
    Ok(all)
}

/// Intersection of the per-probe sorted rid lists — the rid set of an
/// [`Plan::IndexAnd`] before heap fetch.
fn intersect_rids(
    table: &TableEntry,
    planner: &Planner<'_>,
    probes: &[(usize, Value)],
) -> Result<Vec<Rid>> {
    let mut iter = probes.iter();
    let Some((i0, v0)) = iter.next() else {
        return Ok(Vec::new());
    };
    let mut acc = probe_rids(table, planner, *i0, v0)?;
    for (i, v) in iter {
        if acc.is_empty() {
            break;
        }
        let next = probe_rids(table, planner, *i, v)?;
        let mut out = Vec::with_capacity(acc.len().min(next.len()));
        let (mut a, mut b) = (0usize, 0usize);
        while a < acc.len() && b < next.len() {
            match acc[a].cmp(&next[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    out.push(acc[a]);
                    a += 1;
                    b += 1;
                }
            }
        }
        acc = out;
    }
    Ok(acc)
}

/// Fetch each rid from the heap and apply the *full* predicate (the
/// probes satisfied only their own term; other conjuncts — and, for a
/// union, the residual of the OR itself — are re-checked on the row).
fn fetch_filtered(
    table: &TableEntry,
    planned: &PlannedQuery,
    rids: &[Rid],
    materialize: bool,
) -> Result<ExecOutcome> {
    let out_cols = output_columns(table, planned);
    let mut count = 0u64;
    let mut rows = materialize.then(Vec::new);
    for &rid in rids {
        let bytes = table.heap.fetch(rid)?;
        let view = RowView::new(&bytes);
        if row_matches(&view, &planned.conditions)? {
            count += 1;
            if let Some(rows) = &mut rows {
                rows.push(project_row(&view, &out_cols)?);
            }
        }
    }
    Ok(ExecOutcome {
        count,
        rows,
        aggregate: None,
    })
}

// --- Access paths --------------------------------------------------------

fn seq_scan(table: &TableEntry, planned: &PlannedQuery, materialize: bool) -> Result<ExecOutcome> {
    let out_cols = output_columns(table, planned);
    let mut count = 0u64;
    let mut rows = materialize.then(Vec::new);
    let mut scan = table.heap.scan();
    while let Some((_rid, view)) = scan.next_row()? {
        if row_matches(&view, &planned.conditions)? {
            count += 1;
            if let Some(rows) = &mut rows {
                rows.push(project_row(&view, &out_cols)?);
            }
        }
    }
    Ok(ExecOutcome {
        count,
        rows,
        aggregate: None,
    })
}

#[allow(clippy::too_many_arguments)]
fn index_seek(
    table: &TableEntry,
    planned: &PlannedQuery,
    planner: &Planner<'_>,
    index: usize,
    probe: &[Value],
    covering: bool,
    materialize: bool,
) -> Result<ExecOutcome> {
    let entry = index_entry(table, planner, index)?;
    let matcher = KeyMatcher::new(table, planner, planned, index, probe.len());
    let out_cols = output_columns(table, planned);
    let probe_bytes = encode_key(probe);
    let mut cursor = entry.btree.seek(probe)?;
    let mut count = 0u64;
    let mut rows = materialize.then(Vec::new);
    while let Some((key, rid)) = cursor.next_entry()? {
        if !key.starts_with(&probe_bytes) {
            break;
        }
        if covering {
            if matcher.matches(key)? {
                count += 1;
                if let Some(rows) = &mut rows {
                    rows.push(project_key(
                        key,
                        &entry.columns,
                        &out_cols,
                        matcher.all_int,
                    )?);
                }
            }
        } else {
            let bytes = table.heap.fetch(rid)?;
            let view = RowView::new(&bytes);
            if row_matches(&view, &planned.conditions)? {
                count += 1;
                if let Some(rows) = &mut rows {
                    rows.push(project_row(&view, &out_cols)?);
                }
            }
        }
    }
    Ok(ExecOutcome {
        count,
        rows,
        aggregate: None,
    })
}

fn index_range(
    table: &TableEntry,
    planned: &PlannedQuery,
    planner: &Planner<'_>,
    index: usize,
    covering: bool,
    materialize: bool,
) -> Result<ExecOutcome> {
    let entry = index_entry(table, planner, index)?;
    let leading = entry.columns[0];
    let range = planned
        .conditions
        .iter()
        .find(|c| c.column == leading && matches!(c.condition, Condition::Range { .. }))
        .ok_or_else(|| Error::Corrupt("range plan without range condition".into()))?;
    let Condition::Range {
        lo,
        hi,
        hi_inclusive,
        ..
    } = &range.condition
    else {
        unreachable!()
    };
    let matcher = KeyMatcher::new(table, planner, planned, index, 0);
    let out_cols = output_columns(table, planned);

    let mut cursor = match lo {
        Some(lo) => entry.btree.seek(std::slice::from_ref(lo))?,
        None => entry.btree.scan_all()?,
    };
    let mut count = 0u64;
    let mut rows = materialize.then(Vec::new);
    while let Some((key, rid)) = cursor.next_entry()? {
        // Stop once the leading column exceeds the upper bound.
        if let Some(hi) = hi {
            let lead = if matcher.all_int {
                Value::Int(
                    KeyMatcher::decode_int_segment(key, 0)
                        .ok_or_else(|| Error::Corrupt("short index key".into()))?,
                )
            } else {
                decode_key(key)?.swap_remove(0)
            };
            if lead > *hi || (!hi_inclusive && lead == *hi) {
                break;
            }
        }
        if covering {
            if matcher.matches(key)? {
                count += 1;
                if let Some(rows) = &mut rows {
                    rows.push(project_key(
                        key,
                        &entry.columns,
                        &out_cols,
                        matcher.all_int,
                    )?);
                }
            }
        } else {
            // The matcher (including the range itself) may still reject
            // e.g. an exclusive lower bound; check on the fetched row.
            let bytes = table.heap.fetch(rid)?;
            let view = RowView::new(&bytes);
            if row_matches(&view, &planned.conditions)? {
                count += 1;
                if let Some(rows) = &mut rows {
                    rows.push(project_row(&view, &out_cols)?);
                }
            }
        }
    }
    Ok(ExecOutcome {
        count,
        rows,
        aggregate: None,
    })
}

fn index_only(
    table: &TableEntry,
    planned: &PlannedQuery,
    planner: &Planner<'_>,
    index: usize,
    materialize: bool,
) -> Result<ExecOutcome> {
    let entry = index_entry(table, planner, index)?;
    let matcher = KeyMatcher::new(table, planner, planned, index, 0);
    let out_cols = output_columns(table, planned);
    let mut cursor = entry.btree.scan_all()?;
    let mut count = 0u64;
    let mut rows = materialize.then(Vec::new);
    while let Some((key, _rid)) = cursor.next_entry()? {
        if matcher.matches(key)? {
            count += 1;
            if let Some(rows) = &mut rows {
                rows.push(project_key(
                    key,
                    &entry.columns,
                    &out_cols,
                    matcher.all_int,
                )?);
            }
        }
    }
    Ok(ExecOutcome {
        count,
        rows,
        aggregate: None,
    })
}

/// Collect the rids of every row matching `planned`'s predicate, using
/// the planned access path. This is the locate phase of UPDATE/DELETE:
/// rids are fully materialized *before* any mutation, so the write
/// phase cannot re-see rows it already changed (no Halloween problem).
pub(crate) fn collect_rids(
    table: &TableEntry,
    planner: &Planner<'_>,
    planned: &PlannedQuery,
) -> Result<Vec<Rid>> {
    let mut out = Vec::new();
    match &planned.plan {
        Plan::SeqScan => {
            let mut scan = table.heap.scan();
            while let Some((rid, view)) = scan.next_row()? {
                if row_matches(&view, &planned.conditions)? {
                    out.push(rid);
                }
            }
        }
        Plan::IndexSeek {
            index,
            eq_prefix,
            covering,
        } => {
            let entry = index_entry(table, planner, *index)?;
            let probe = planner.seek_probe(planned, *index, *eq_prefix);
            let probe_bytes = encode_key(&probe);
            let matcher = KeyMatcher::new(table, planner, planned, *index, probe.len());
            let mut cursor = entry.btree.seek(&probe)?;
            while let Some((key, rid)) = cursor.next_entry()? {
                if !key.starts_with(&probe_bytes) {
                    break;
                }
                if *covering {
                    if matcher.matches(key)? {
                        out.push(rid);
                    }
                } else {
                    let bytes = table.heap.fetch(rid)?;
                    if row_matches(&RowView::new(&bytes), &planned.conditions)? {
                        out.push(rid);
                    }
                }
            }
        }
        Plan::IndexRange { index, covering } => {
            let entry = index_entry(table, planner, *index)?;
            let leading = entry.columns[0];
            let range = planned
                .conditions
                .iter()
                .find(|c| c.column == leading && matches!(c.condition, Condition::Range { .. }))
                .ok_or_else(|| Error::Corrupt("range plan without range condition".into()))?;
            let Condition::Range {
                lo,
                hi,
                hi_inclusive,
                ..
            } = &range.condition
            else {
                unreachable!()
            };
            let matcher = KeyMatcher::new(table, planner, planned, *index, 0);
            let mut cursor = match lo {
                Some(lo) => entry.btree.seek(std::slice::from_ref(lo))?,
                None => entry.btree.scan_all()?,
            };
            while let Some((key, rid)) = cursor.next_entry()? {
                if let Some(hi) = hi {
                    let lead = if matcher.all_int {
                        Value::Int(
                            KeyMatcher::decode_int_segment(key, 0)
                                .ok_or_else(|| Error::Corrupt("short index key".into()))?,
                        )
                    } else {
                        decode_key(key)?.swap_remove(0)
                    };
                    if lead > *hi || (!hi_inclusive && lead == *hi) {
                        break;
                    }
                }
                if *covering {
                    if matcher.matches(key)? {
                        out.push(rid);
                    }
                } else {
                    let bytes = table.heap.fetch(rid)?;
                    if row_matches(&RowView::new(&bytes), &planned.conditions)? {
                        out.push(rid);
                    }
                }
            }
        }
        Plan::IndexOnlyScan { index } => {
            let entry = index_entry(table, planner, *index)?;
            let matcher = KeyMatcher::new(table, planner, planned, *index, 0);
            let mut cursor = entry.btree.scan_all()?;
            while let Some((key, rid)) = cursor.next_entry()? {
                if matcher.matches(key)? {
                    out.push(rid);
                }
            }
        }
        Plan::IndexAnd { probes } => {
            for rid in intersect_rids(table, planner, probes)? {
                let bytes = table.heap.fetch(rid)?;
                if row_matches(&RowView::new(&bytes), &planned.conditions)? {
                    out.push(rid);
                }
            }
        }
        Plan::IndexOr { probes } => {
            for rid in union_rids(table, planner, probes)? {
                let bytes = table.heap.fetch(rid)?;
                if row_matches(&RowView::new(&bytes), &planned.conditions)? {
                    out.push(rid);
                }
            }
        }
        Plan::IndexExtremum { .. } => {
            return Err(Error::Corrupt(
                "extremum plans never locate write targets".into(),
            ))
        }
    }
    Ok(out)
}

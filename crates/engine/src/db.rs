use crate::catalog::{BuildLog, IndexEntry, IndexSpec, RowDelta, TableEntry, TableSnapshot};
use crate::cost::IndexShape;
use crate::exec::{self, ExecOutcome};
use crate::planner::{IndexInfo, PlannedQuery, Planner};
use crate::stats::{StatsMaintainer, StatsRefresh, TableStats};
use cdpd_sql::{DeleteStmt, Dml, SelectStmt, Statement, UpdateStmt};
use cdpd_storage::{codec, BTree, IoStats, Pager, ThreadIoScope};
use cdpd_types::{ColumnId, Error, Result, Rid, Schema, TableId, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Result of one executed query: output plus measured cost.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// Matching row count. For aggregate queries this is the number of
    /// rows aggregated (not the single logical result row); for writes
    /// it is the number of rows affected.
    pub count: u64,
    /// Materialized rows, when requested.
    pub rows: Option<Vec<Vec<Value>>>,
    /// Aggregate result, for aggregate projections.
    pub aggregate: Option<Value>,
    /// Logical I/O measured during execution.
    pub io: IoStats,
    /// Planner estimate for the executed plan.
    pub est_cost: cdpd_types::Cost,
    /// One-line plan description.
    pub plan: String,
}

/// Result of a DDL operation (or a whole design change).
#[derive(Clone, Debug, Default)]
pub struct DdlReport {
    /// Logical I/O the operation cost — the *measured* `TRANS`.
    pub io: IoStats,
    /// Indexes created, by canonical name.
    pub created: Vec<String>,
    /// Indexes dropped, by canonical name.
    pub dropped: Vec<String>,
}

/// An embedded single-node database: catalog + storage + executor.
///
/// One shared [`Pager`] holds every table and index, so
/// [`Pager::stats`] is the single I/O ledger the experiments read.
/// `DROP INDEX` returns the tree's pages to the pager's free list, so
/// a long replay that builds and drops indexes at every design change
/// stays at a bounded footprint.
///
/// # Concurrency model
///
/// Every public method — reads *and* mutations — takes `&self`, so one
/// `Arc<Database>` serves any number of sessions concurrently. The
/// engine provides **statement-granularity serializability**:
///
/// * The catalog is `RwLock`-striped (`RwLock<BTreeMap>` of
///   `Arc<RwLock<TableEntry>>`). A read statement holds its table's
///   read lock for its whole duration; a mutating statement holds the
///   write lock. Statements on one table therefore never interleave
///   mid-statement, and statements on different tables commute — the
///   observable history of any concurrent run equals *some* serial
///   interleaving (property-tested in `tests/concurrent_writers.rs`).
/// * Each `TableEntry` is **epoch-versioned**: every mutating
///   statement bumps the table's epoch and invalidates its cached
///   `TableSnapshot`; `Database::pin` hands out the current epoch's
///   snapshot as one `Arc` clone. Pinned snapshots are immutable —
///   successors are installed under the table write lock, never edits.
/// * **Online index builds** ([`Database::create_index`],
///   [`Database::apply_configuration_with`]) pin a snapshot, register a
///   build log, and scan/sort/bulk-load with *no lock held* — DML from
///   other sessions interleaves freely, appending row deltas to the
///   log under the table write lock. At install the build drains the
///   log into the new tree (idempotently: tolerant deletes,
///   duplicate-skipping inserts) and publishes it atomically, so the
///   installed index is exactly what a blocking build at the install
///   point would have produced.
/// * On a durable database, a **commit phase lock** orders mutation
///   against WAL commits: statement mutation holds it shared,
///   [`Pager::commit`] runs under it exclusively — so a commit only
///   ever snapshots *complete* statements and the kill-at-any-point
///   recovery property (`tests/recovery_prop.rs`) survives racing
///   writers.
///
/// Per-statement I/O is measured with a [`ThreadIoScope`] (not a
/// global-counter delta), so [`QueryResult::io`] stays exact under any
/// interleaving and concurrent per-statement costs sum bit-identically
/// to a serial run.
pub struct Database {
    pub(crate) pager: Arc<Pager>,
    pub(crate) tables: RwLock<BTreeMap<String, Arc<RwLock<TableEntry>>>>,
    pub(crate) next_table_id: AtomicU32,
    /// Opaque application state (the advisory layer's warm state),
    /// persisted with the catalog on every durable commit.
    pub(crate) app_state: RwLock<Vec<u8>>,
    /// Commit phase lock: mutating statements hold it shared for their
    /// mutation, `commit_if_durable` holds it exclusively — a durable
    /// commit never captures a half-applied statement.
    pub(crate) write_phase: RwLock<()>,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// An empty in-memory database (no durability; mutations are lost
    /// on drop). Use [`Database::open`] for a durable one.
    pub fn new() -> Database {
        Database {
            pager: Arc::new(Pager::new()),
            tables: RwLock::new(BTreeMap::new()),
            next_table_id: AtomicU32::new(0),
            app_state: RwLock::new(Vec::new()),
            write_phase: RwLock::new(()),
        }
    }

    /// Open (creating if absent) a durable database rooted at directory
    /// `dir`, recovering to the newest committed state: the write-ahead
    /// log is replayed past the last checkpoint, the committed catalog
    /// is decoded, and every table, index, and statistics object is
    /// re-attached exactly as the last successful commit left it.
    pub fn open(dir: impl AsRef<std::path::Path>) -> Result<Database> {
        let vfs = cdpd_storage::DiskVfs::new(dir.as_ref())?;
        Self::open_with_vfs(Arc::new(vfs), cdpd_storage::DurableOptions::default())
    }

    /// [`Database::open`] over an explicit VFS (e.g. [`cdpd_storage::MemVfs`]
    /// for tests, or a fault-injecting wrapper) with tuning knobs.
    pub fn open_with_vfs(
        vfs: Arc<dyn cdpd_storage::Vfs>,
        opts: cdpd_storage::DurableOptions,
    ) -> Result<Database> {
        let opened = Pager::open_durable(vfs, opts)?;
        let pager = Arc::new(opened.pager);
        if opened.app_meta.is_empty() {
            Ok(Database {
                pager,
                tables: RwLock::new(BTreeMap::new()),
                next_table_id: AtomicU32::new(0),
                app_state: RwLock::new(Vec::new()),
                write_phase: RwLock::new(()),
            })
        } else {
            crate::persist::decode_catalog(&opened.app_meta, pager)
        }
    }

    /// Whether this database persists commits (opened via
    /// [`Database::open`] rather than [`Database::new`]).
    pub fn is_durable(&self) -> bool {
        self.pager.is_durable()
    }

    /// Sequence number of the newest committed transaction (0 when
    /// nothing has committed, or for an in-memory database).
    pub fn committed_seq(&self) -> u64 {
        self.pager.committed_seq()
    }

    /// Flush dirty pages to the data file and truncate the write-ahead
    /// log. A no-op for in-memory databases. Every public mutation
    /// commits on completion, so this is safe to call at any quiescent
    /// point; recovery time after a crash is proportional to the WAL
    /// written since the last checkpoint.
    pub fn checkpoint(&self) -> Result<()> {
        if self.pager.is_durable() {
            self.pager.checkpoint()
        } else {
            Ok(())
        }
    }

    /// Replace the opaque application-state blob persisted alongside
    /// the catalog (the advisory layer's warm state), and commit.
    pub fn set_app_state(&self, state: Vec<u8>) -> Result<()> {
        {
            let _phase = self.mutation_phase();
            *self.app_state.write().expect("app state poisoned") = state;
        }
        self.commit_if_durable()
    }

    /// The application-state blob from the newest commit (empty if
    /// never set).
    pub fn app_state(&self) -> Vec<u8> {
        self.app_state.read().expect("app state poisoned").clone()
    }

    /// Shared commit-phase guard: held for the duration of every
    /// statement's mutation so a durable commit (which holds the phase
    /// exclusively) never snapshots a half-applied statement. Acquired
    /// *before* any table lock — the one lock-order rule writers
    /// follow.
    fn mutation_phase(&self) -> RwLockReadGuard<'_, ()> {
        self.write_phase.read().expect("phase lock poisoned")
    }

    /// Commit the current state durably: serialize the catalog and
    /// append every page mutated since the last commit to the WAL as
    /// one transaction. In-memory databases return `Ok` untouched.
    /// Called by every public mutator on successful completion, after
    /// all table guards are released.
    ///
    /// Holds the commit phase exclusively: no statement is mid-mutation
    /// while the dirty-page set and the catalog are captured, so what a
    /// racing writer committed is always a set of whole statements — a
    /// serial prefix, which is what the recovery property requires.
    fn commit_if_durable(&self) -> Result<()> {
        if !self.pager.is_durable() {
            return Ok(());
        }
        let _phase = self.write_phase.write().expect("phase lock poisoned");
        let blob = crate::persist::encode_catalog(self);
        self.pager.commit(&blob)?;
        Ok(())
    }

    /// The shared pager (I/O ledger).
    pub fn pager(&self) -> &Arc<Pager> {
        &self.pager
    }

    /// Total pages ever allocated (live + free-listed).
    pub fn page_count(&self) -> u64 {
        self.pager.page_count()
    }

    fn table(&self, name: &str) -> Result<Arc<RwLock<TableEntry>>> {
        self.tables
            .read()
            .expect("catalog lock poisoned")
            .get(name)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("table {name}")))
    }

    fn read_entry(entry: &RwLock<TableEntry>) -> RwLockReadGuard<'_, TableEntry> {
        entry.read().expect("table lock poisoned")
    }

    fn write_entry(entry: &RwLock<TableEntry>) -> RwLockWriteGuard<'_, TableEntry> {
        entry.write().expect("table lock poisoned")
    }

    /// Create a table.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<()> {
        {
            let _phase = self.mutation_phase();
            let mut tables = self.tables.write().expect("catalog lock poisoned");
            if tables.contains_key(name) {
                return Err(Error::AlreadyExists(format!("table {name}")));
            }
            let id = TableId(self.next_table_id.fetch_add(1, Ordering::Relaxed));
            tables.insert(
                name.to_owned(),
                Arc::new(RwLock::new(TableEntry::new(id, schema, self.pager.clone()))),
            );
        }
        self.commit_if_durable()
    }

    /// Pin the current epoch of `table`: an immutable
    /// [`TableSnapshot`] shared as one `Arc` clone. Writers install
    /// successor versions under the per-table write lock (bumping the
    /// epoch); a held pin is never mutated. Repeated pins between
    /// mutations return the same cached `Arc`.
    pub fn pin(&self, table: &str) -> Result<Arc<TableSnapshot>> {
        let entry = self.table(table)?;
        {
            let guard = Self::read_entry(&entry);
            if let Some(v) = &guard.version {
                return Ok(v.clone());
            }
        }
        // Cache miss: the last statement was a mutation. Escalate to
        // the write lock just long enough to rebuild the snapshot.
        let snap = Self::write_entry(&entry).snapshot();
        Ok(snap)
    }

    /// The current catalog epoch of `table` (bumped by every mutating
    /// statement on it; per-process, reset by recovery).
    pub fn table_epoch(&self, table: &str) -> Result<u64> {
        let entry = self.table(table)?;
        let guard = Self::read_entry(&entry);
        Ok(guard.epoch)
    }

    /// The schema of `table` (shared, cheap to clone).
    pub fn schema(&self, table: &str) -> Result<Arc<Schema>> {
        let entry = self.table(table)?;
        let guard = Self::read_entry(&entry);
        Ok(guard.schema.clone())
    }

    /// Statistics for `table`, if `ANALYZE` has run (shared, cheap to
    /// clone).
    pub fn stats(&self, table: &str) -> Result<Option<Arc<TableStats>>> {
        let entry = self.table(table)?;
        let guard = Self::read_entry(&entry);
        Ok(guard.stats.clone())
    }

    /// Insert one row, maintaining all indexes.
    pub fn insert(&self, table: &str, values: &[Value]) -> Result<Rid> {
        let rid = self.insert_inner(table, values)?;
        self.commit_if_durable()?;
        Ok(rid)
    }

    fn insert_inner(&self, table: &str, values: &[Value]) -> Result<Rid> {
        let _phase = self.mutation_phase();
        let entry = self.table(table)?;
        let entry = &mut *Self::write_entry(&entry);
        if !entry.schema.validates(values) {
            return Err(Error::TypeMismatch(format!(
                "row does not match schema of {table}"
            )));
        }
        let mut bytes = Vec::with_capacity(values.iter().map(Value::encoded_len).sum());
        codec::encode_row(values, &mut bytes);
        let rid = entry.heap.insert(&bytes)?;
        for index in entry.indexes.values_mut() {
            let key: Vec<Value> = index
                .columns
                .iter()
                .map(|c| values[c.index()].clone())
                .collect();
            index.btree.insert(&key, rid)?;
        }
        if let Some(m) = entry.maintainer.as_mut() {
            m.add_row(values);
        }
        entry.log_delta(|| RowDelta::Insert(values.to_vec(), rid));
        entry.bump_epoch();
        Ok(rid)
    }

    /// Bulk-insert rows (convenience for loaders). On a durable
    /// database the whole batch is one commit — one WAL transaction —
    /// so bulk loads do not pay a per-row serialization.
    pub fn insert_many<'r>(
        &self,
        table: &str,
        rows: impl IntoIterator<Item = &'r [Value]>,
    ) -> Result<u64> {
        let mut n = 0;
        for row in rows {
            self.insert_inner(table, row)?;
            n += 1;
        }
        self.commit_if_durable()?;
        Ok(n)
    }

    /// Full-scan `table` and rebuild its statistics. The scan's
    /// accumulated state is retained as a stats maintainer so later
    /// DML can be folded in and [`Database::refresh_stats`] can rebuild
    /// statistics without another scan.
    pub fn analyze(&self, table: &str) -> Result<Arc<TableStats>> {
        let stats = self.analyze_inner(table)?;
        self.commit_if_durable()?;
        Ok(stats)
    }

    fn analyze_inner(&self, table: &str) -> Result<Arc<TableStats>> {
        let _span = cdpd_obs::span!("engine.analyze", table = table);
        let _phase = self.mutation_phase();
        let entry = self.table(table)?;
        let entry = &mut *Self::write_entry(&entry);
        let mut maintainer = StatsMaintainer::new(entry.schema.len(), entry.heap.row_count());
        {
            let mut scan = entry.heap.scan();
            while let Some((_, view)) = scan.next_row()? {
                maintainer.add_row(&view.decode_all()?);
            }
        }
        maintainer.take_refresh(); // the scan itself is not pending DML
        let stats = Arc::new(maintainer.snapshot(entry.heap.page_count()));
        entry.stats = Some(stats.clone());
        entry.maintainer = Some(maintainer);
        entry.bump_epoch();
        Ok(stats)
    }

    /// Rebuild `table`'s statistics from the retained analyze state —
    /// O(sample) histogram rebuilds, no heap scan — and report what
    /// changed since the last refresh (or analyze). A no-op (empty)
    /// refresh is returned when no DML has touched the table.
    ///
    /// # Errors
    /// The table must exist and have been `ANALYZE`d at least once.
    pub fn refresh_stats(&self, table: &str) -> Result<StatsRefresh> {
        let refresh = self.refresh_stats_inner(table)?;
        // A no-op refresh mutated nothing; skip the commit entirely.
        if !refresh.is_noop() {
            self.commit_if_durable()?;
        }
        Ok(refresh)
    }

    fn refresh_stats_inner(&self, table: &str) -> Result<StatsRefresh> {
        let _phase = self.mutation_phase();
        let entry = self.table(table)?;
        let entry = &mut *Self::write_entry(&entry);
        let Some(maintainer) = entry.maintainer.as_mut() else {
            return Err(Error::InvalidArgument(format!(
                "table {table} has no statistics; run analyze()"
            )));
        };
        if !maintainer.is_dirty() {
            return Ok(StatsRefresh::default());
        }
        let _span = cdpd_obs::span!("engine.refresh_stats", table = table);
        cdpd_obs::counter!("engine.stats.refreshes").inc();
        let refresh = maintainer.take_refresh();
        entry.stats = Some(Arc::new(maintainer.snapshot(entry.heap.page_count())));
        entry.bump_epoch();
        Ok(refresh)
    }

    /// The materialized index specs on `table`, in name order.
    pub fn index_specs(&self, table: &str) -> Result<Vec<IndexSpec>> {
        let entry = self.table(table)?;
        let guard = Self::read_entry(&entry);
        Ok(guard.indexes.values().map(|e| e.spec.clone()).collect())
    }

    /// Materialized shapes of `table`'s built indexes, exactly as the
    /// executor's planner sees them: `(spec, shape)` per index, shapes
    /// read from the live B-trees rather than estimated from
    /// statistics. This is the bridge the calibration layer uses to run
    /// the what-if planner against the real catalog (see
    /// [`crate::WhatIfEngine::snapshot_live`]).
    pub fn index_shapes(&self, table: &str) -> Result<Vec<(IndexSpec, IndexShape)>> {
        let entry = self.table(table)?;
        let guard = Self::read_entry(&entry);
        Ok(guard
            .indexes
            .values()
            .map(|e| {
                (
                    e.spec.clone(),
                    IndexShape {
                        leaf_pages: e.btree.leaf_count(),
                        height: e.btree.height(),
                        total_pages: e.btree.page_count(),
                    },
                )
            })
            .collect())
    }

    /// Whether `spec` is materialized.
    pub fn has_index(&self, spec: &IndexSpec) -> bool {
        self.table(&spec.table)
            .is_ok_and(|t| Self::read_entry(&t).indexes.contains_key(&spec.name()))
    }

    /// Scan → sort → bulk-load one index over a pinned snapshot's heap,
    /// without touching the catalog. Runs lock-free against the frozen
    /// page chain (pager pages are copy-on-write), so any number of
    /// builds — and foreground DML on the live entry — proceed
    /// concurrently. Returns the resolved key columns, the loaded tree,
    /// and the build's measured I/O (scoped to this thread).
    fn build_index(
        pager: &Arc<Pager>,
        snap: &TableSnapshot,
        spec: &IndexSpec,
    ) -> Result<(Vec<ColumnId>, BTree, IoStats)> {
        let scope = ThreadIoScope::start();
        let columns: Vec<ColumnId> = spec
            .columns
            .iter()
            .map(|c| {
                snap.schema
                    .column_id(c)
                    .ok_or_else(|| Error::NotFound(format!("column {c}")))
            })
            .collect::<Result<Vec<_>>>()?;

        // Scan the heap collecting (key, rid), then sort: the in-memory
        // stand-in for an external sort.
        let mut entries: Vec<(Vec<Value>, Rid)> =
            Vec::with_capacity(snap.heap.row_count() as usize);
        {
            let mut scan = snap.heap.scan();
            while let Some((rid, view)) = scan.next_row()? {
                let key: Vec<Value> = columns
                    .iter()
                    .map(|c| view.value(c.index()))
                    .collect::<Result<Vec<_>>>()?;
                entries.push((key, rid));
            }
        }
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        let btree = BTree::bulk_load(pager.clone(), entries)?;
        Ok((columns, btree, scope.delta()))
    }

    /// Replay the row deltas DML logged while an online build was
    /// scanning into the freshly bulk-loaded tree, in chronological
    /// order. Each delta is applied idempotently — the scan may or may
    /// not have seen the row the delta describes, so an insert of an
    /// already-present `(key, rid)` and a delete of an absent one are
    /// both fine — which makes the installed tree exactly what a build
    /// at the install point would have produced.
    fn catch_up_index(btree: &mut BTree, columns: &[ColumnId], deltas: &[RowDelta]) -> Result<()> {
        for delta in deltas {
            match delta {
                RowDelta::Insert(values, rid) => {
                    let key: Vec<Value> =
                        columns.iter().map(|c| values[c.index()].clone()).collect();
                    match btree.insert(&key, *rid) {
                        Ok(()) | Err(Error::AlreadyExists(_)) => {}
                        Err(e) => return Err(e),
                    }
                }
                RowDelta::Delete(values, rid) => {
                    let key: Vec<Value> =
                        columns.iter().map(|c| values[c.index()].clone()).collect();
                    btree.delete(&key, *rid)?;
                }
            }
        }
        Ok(())
    }

    /// `CREATE INDEX`: an *online* scan → sort → bulk load. The build
    /// registers a side log and pins the table's current epoch snapshot
    /// under the write lock, then scans and loads with **no lock held**
    /// — concurrent sessions keep reading and writing the table, their
    /// row deltas accumulating in the log — and finally reacquires the
    /// write lock to drain the log into the new tree and install it
    /// atomically. The report's `io` is the measured transition cost of
    /// this build (scan + load + catch-up).
    pub fn create_index(&self, spec: &IndexSpec) -> Result<DdlReport> {
        let report = self.create_index_inner(spec)?;
        self.commit_if_durable()?;
        Ok(report)
    }

    fn create_index_inner(&self, spec: &IndexSpec) -> Result<DdlReport> {
        let _span = cdpd_obs::span!("ddl.create_index", index = spec.name());
        let name = spec.name();
        let entry = self.table(&spec.table)?;
        // Register: under the phase + table write lock, check the name
        // is free, register a build log for concurrent DML to feed, and
        // pin the current snapshot.
        let (log, snap) = {
            let _phase = self.mutation_phase();
            let e = &mut *Self::write_entry(&entry);
            if e.indexes.contains_key(&name) {
                return Err(Error::AlreadyExists(format!("index {name}")));
            }
            let log: BuildLog = Arc::new(Mutex::new(Vec::new()));
            e.build_logs.push(log.clone());
            (log, e.snapshot())
        };
        // Build: no lock held; DML from other sessions interleaves here.
        let built = Self::build_index(&self.pager, &snap, spec);
        // Install: unregister the log first (even on build failure),
        // then catch up and publish under the write lock.
        let _phase = self.mutation_phase();
        let e = &mut *Self::write_entry(&entry);
        e.build_logs.retain(|l| !Arc::ptr_eq(l, &log));
        let (columns, btree, io) = built?;
        if e.indexes.contains_key(&name) {
            // A racing session installed the same index while we built;
            // surrender and return our tree's pages.
            self.pager.free(&btree.into_pages());
            return Err(Error::AlreadyExists(format!("index {name}")));
        }
        let mut btree = btree;
        let scope = ThreadIoScope::start();
        let deltas = std::mem::take(&mut *log.lock().expect("build log poisoned"));
        Self::catch_up_index(&mut btree, &columns, &deltas)?;
        let catchup = scope.delta();
        e.indexes.insert(
            name.clone(),
            IndexEntry {
                spec: spec.clone(),
                columns,
                btree,
            },
        );
        e.bump_epoch();
        Ok(DdlReport {
            io: IoStats {
                reads: io.reads + catchup.reads,
                writes: io.writes + catchup.writes,
                allocs: io.allocs + catchup.allocs,
            },
            created: vec![name],
            dropped: Vec::new(),
        })
    }

    /// `DROP INDEX`. Cost model: one catalog write; the tree's pages
    /// return to the free list for reuse by later builds.
    pub fn drop_index(&self, spec: &IndexSpec) -> Result<DdlReport> {
        let report = self.drop_index_inner(spec)?;
        self.commit_if_durable()?;
        Ok(report)
    }

    fn drop_index_inner(&self, spec: &IndexSpec) -> Result<DdlReport> {
        let _span = cdpd_obs::span!("ddl.drop_index", index = spec.name());
        let scope = ThreadIoScope::start();
        let _phase = self.mutation_phase();
        let entry = self.table(&spec.table)?;
        let entry = &mut *Self::write_entry(&entry);
        let name = spec.name();
        let Some(dropped) = entry.indexes.remove(&name) else {
            return Err(Error::NotFound(format!("index {name}")));
        };
        entry.bump_epoch();
        self.pager.free(&dropped.btree.into_pages());
        // Account the catalog write on a real page so measured TRANS
        // matches the model: touch page 0 if it exists, else skip.
        if self.pager.page_count() > 0 {
            self.pager.update(cdpd_types::PageId(0), |_| ())?;
        }
        Ok(DdlReport {
            io: scope.delta(),
            created: Vec::new(),
            dropped: vec![name],
        })
    }

    /// Morph `table`'s index set into exactly `target`: drop what is no
    /// longer wanted, build what is missing. Returns the combined
    /// measured transition cost — the real-world `TRANS(C_i, C_j)`.
    ///
    /// Builds run serially; use
    /// [`Database::apply_configuration_with`] to build missing indexes
    /// concurrently.
    pub fn apply_configuration(&self, table: &str, target: &[IndexSpec]) -> Result<DdlReport> {
        self.apply_configuration_with(table, target, 1)
    }

    /// [`Database::apply_configuration`] with up to `threads` concurrent
    /// index builds.
    ///
    /// Drops are applied first, serially (each is one catalog touch).
    /// Missing indexes are then built concurrently: every build needs
    /// only a shared read view of the heap, so worker threads scan and
    /// bulk-load in parallel against the lock-striped pager, and the
    /// finished trees are installed into the catalog serially in
    /// `target` order. The report is deterministic regardless of
    /// `threads`: `created`/`dropped` orders follow `target`/name
    /// order, and each build's I/O is measured on its own thread
    /// ([`ThreadIoScope`]) so the summed transition cost is
    /// bit-identical to a serial application.
    pub fn apply_configuration_with(
        &self,
        table: &str,
        target: &[IndexSpec],
        threads: usize,
    ) -> Result<DdlReport> {
        let report = self.apply_configuration_inner(table, target, threads)?;
        // One commit for the whole design change: drops and builds land
        // as a single WAL transaction.
        self.commit_if_durable()?;
        Ok(report)
    }

    fn apply_configuration_inner(
        &self,
        table: &str,
        target: &[IndexSpec],
        threads: usize,
    ) -> Result<DdlReport> {
        for spec in target {
            if spec.table != table {
                return Err(Error::InvalidArgument(format!(
                    "configuration index {} is not on table {table}",
                    spec.name()
                )));
            }
        }
        let current = self.index_specs(table)?;
        let mut report = DdlReport::default();
        for spec in &current {
            if !target.contains(spec) {
                let r = self.drop_index_inner(spec)?;
                report.io.reads += r.io.reads;
                report.io.writes += r.io.writes;
                report.io.allocs += r.io.allocs;
                report.dropped.extend(r.dropped);
            }
        }
        let missing: Vec<&IndexSpec> = target.iter().filter(|s| !current.contains(s)).collect();
        if missing.len() <= 1 || threads <= 1 {
            for spec in missing {
                let r = self.create_index_inner(spec)?;
                report.io.reads += r.io.reads;
                report.io.writes += r.io.writes;
                report.io.allocs += r.io.allocs;
                report.created.extend(r.created);
            }
            return Ok(report);
        }
        // Online parallel build: register ONE shared log and pin one
        // snapshot under the write lock, fan the scans/loads out with
        // no lock held (DML from other sessions interleaves, feeding
        // the log), then reacquire the lock to catch up and install
        // every tree in one atomic step.
        let entry = self.table(table)?;
        let (log, snap) = {
            let _phase = self.mutation_phase();
            let e = &mut *Self::write_entry(&entry);
            for spec in &missing {
                if e.indexes.contains_key(&spec.name()) {
                    return Err(Error::AlreadyExists(format!("index {}", spec.name())));
                }
            }
            let log: BuildLog = Arc::new(Mutex::new(Vec::new()));
            e.build_logs.push(log.clone());
            (log, e.snapshot())
        };
        let built = {
            let pager = &self.pager;
            let snap = &snap;
            crate::par::parallel_map(missing.len(), threads, |i| {
                let _span = cdpd_obs::span!("ddl.create_index", index = missing[i].name());
                Self::build_index(pager, snap, missing[i])
            })
        };
        let _phase = self.mutation_phase();
        let entry = &mut *Self::write_entry(&entry);
        entry.build_logs.retain(|l| !Arc::ptr_eq(l, &log));
        let built = built?;
        let deltas = std::mem::take(&mut *log.lock().expect("build log poisoned"));
        for (spec, (columns, mut btree, io)) in missing.iter().zip(built) {
            if entry.indexes.contains_key(&spec.name()) {
                self.pager.free(&btree.into_pages());
                return Err(Error::AlreadyExists(format!("index {}", spec.name())));
            }
            let scope = ThreadIoScope::start();
            Self::catch_up_index(&mut btree, &columns, &deltas)?;
            let catchup = scope.delta();
            entry.indexes.insert(
                spec.name(),
                IndexEntry {
                    spec: (*spec).clone(),
                    columns,
                    btree,
                },
            );
            report.io.reads += io.reads + catchup.reads;
            report.io.writes += io.writes + catchup.writes;
            report.io.allocs += io.allocs + catchup.allocs;
            report.created.push(spec.name());
        }
        entry.bump_epoch();
        Ok(report)
    }

    /// Planner inputs for `table`'s materialized indexes.
    fn index_infos(entry: &TableEntry) -> Vec<IndexInfo> {
        entry
            .indexes
            .values()
            .map(|e| IndexInfo {
                name: e.spec.name(),
                columns: e.columns.clone(),
                shape: IndexShape {
                    leaf_pages: e.btree.leaf_count(),
                    height: e.btree.height(),
                    total_pages: e.btree.page_count(),
                },
            })
            .collect()
    }

    /// Execute a query on the shareable read surface: `&self`, so any
    /// number of threads may call this concurrently (each statement
    /// read-locks its table entry and measures its own I/O via a
    /// [`ThreadIoScope`]). `materialize` selects between returning rows
    /// and counting matches.
    pub fn execute_select(&self, stmt: &SelectStmt, materialize: bool) -> Result<QueryResult> {
        let entry = self.table(&stmt.table)?;
        let entry = &*Self::read_entry(&entry);
        let stats = entry.stats.as_deref().ok_or_else(|| {
            Error::InvalidArgument(format!(
                "table {} has no statistics; run analyze()",
                stmt.table
            ))
        })?;
        let infos = Self::index_infos(entry);
        let planner = Planner::new(&entry.schema, stats, &infos);
        let planned: PlannedQuery = planner.plan(stmt)?;
        let scope = ThreadIoScope::start();
        let ExecOutcome {
            count,
            rows,
            aggregate,
        } = exec::execute(entry, &planner, &planned, materialize)?;
        Ok(QueryResult {
            count,
            rows,
            aggregate,
            io: scope.delta(),
            est_cost: planned.est_cost,
            plan: planned.describe(),
        })
    }

    /// Execute a query, materializing result rows.
    pub fn query(&self, stmt: &SelectStmt) -> Result<QueryResult> {
        self.execute_select(stmt, true)
    }

    /// Execute a query counting matches only (workload replay: all cost,
    /// no result materialization).
    pub fn query_count(&self, stmt: &SelectStmt) -> Result<QueryResult> {
        self.execute_select(stmt, false)
    }

    /// Plan a query without executing it.
    pub fn explain(&self, stmt: &SelectStmt) -> Result<String> {
        let entry = self.table(&stmt.table)?;
        let entry = &*Self::read_entry(&entry);
        let stats = entry.stats.as_deref().ok_or_else(|| {
            Error::InvalidArgument(format!(
                "table {} has no statistics; run analyze()",
                stmt.table
            ))
        })?;
        let infos = Self::index_infos(entry);
        let planner = Planner::new(&entry.schema, stats, &infos);
        Ok(planner.plan(stmt)?.describe())
    }

    /// Execute a workload statement (query, update, or delete).
    ///
    /// Queries run in counting mode (no result materialization) since
    /// this is the workload-replay entry point; use [`Database::query`]
    /// for materialized results.
    pub fn execute_dml(&self, stmt: &Dml) -> Result<QueryResult> {
        match stmt {
            Dml::Select(s) => self.query_count(s),
            Dml::Update(u) => self.run_update(u),
            Dml::Delete(d) => self.run_delete(d),
        }
    }

    /// Locate the rows a write statement affects, using the cost-based
    /// access path. Returns rids plus the plan (fully materialized
    /// before mutation — no Halloween hazard).
    fn locate_write(
        entry: &TableEntry,
        stmt: &Dml,
    ) -> Result<(Vec<Rid>, crate::planner::PlannedWrite)> {
        let stats = entry.stats.as_deref().ok_or_else(|| {
            Error::InvalidArgument(format!(
                "table {} has no statistics; run analyze()",
                stmt.table()
            ))
        })?;
        let infos = Self::index_infos(entry);
        let planner = Planner::new(&entry.schema, stats, &infos);
        let planned = planner.plan_write(stmt)?;
        let rids = exec::collect_rids(entry, &planner, &planned.find)?;
        Ok((rids, planned))
    }

    fn run_update(&self, stmt: &UpdateStmt) -> Result<QueryResult> {
        let result = self.run_update_inner(stmt)?;
        self.commit_if_durable()?;
        Ok(result)
    }

    fn run_update_inner(&self, stmt: &UpdateStmt) -> Result<QueryResult> {
        let scope = ThreadIoScope::start();
        let _phase = self.mutation_phase();
        let dml = Dml::Update(stmt.clone());
        let entry = self.table(&stmt.table)?;
        let entry = &mut *Self::write_entry(&entry);
        let (rids, planned) = Self::locate_write(entry, &dml)?;
        let set: Vec<(ColumnId, Value)> = stmt
            .set
            .iter()
            .map(|(name, value)| {
                let id = entry
                    .schema
                    .column_id(name)
                    .expect("validated by plan_write");
                (id, value.clone())
            })
            .collect();
        let count = rids.len() as u64;
        for rid in rids {
            let old_bytes = entry.heap.fetch(rid)?;
            let old_values = codec::decode_row(&old_bytes)?;
            let mut new_values = old_values.clone();
            for (col, value) in &set {
                new_values[col.index()] = value.clone();
            }
            let mut new_bytes = Vec::with_capacity(old_bytes.len());
            codec::encode_row(&new_values, &mut new_bytes);
            let new_rid = entry.heap.update(rid, &new_bytes)?;
            for index in entry.indexes.values_mut() {
                let old_key: Vec<Value> = index
                    .columns
                    .iter()
                    .map(|c| old_values[c.index()].clone())
                    .collect();
                let new_key: Vec<Value> = index
                    .columns
                    .iter()
                    .map(|c| new_values[c.index()].clone())
                    .collect();
                if old_key != new_key || new_rid != rid {
                    index.btree.delete(&old_key, rid)?;
                    index.btree.insert(&new_key, new_rid)?;
                }
            }
            if let Some(m) = entry.maintainer.as_mut() {
                m.update_row(&old_values, &new_values);
            }
            entry.log_delta(|| RowDelta::Delete(old_values.clone(), rid));
            entry.log_delta(|| RowDelta::Insert(new_values.clone(), new_rid));
        }
        if count > 0 {
            entry.bump_epoch();
        }
        Ok(QueryResult {
            count,
            rows: None,
            aggregate: None,
            io: scope.delta(),
            est_cost: planned.est_total,
            plan: planned.describe(),
        })
    }

    fn run_delete(&self, stmt: &DeleteStmt) -> Result<QueryResult> {
        let result = self.run_delete_inner(stmt)?;
        self.commit_if_durable()?;
        Ok(result)
    }

    fn run_delete_inner(&self, stmt: &DeleteStmt) -> Result<QueryResult> {
        let scope = ThreadIoScope::start();
        let _phase = self.mutation_phase();
        let dml = Dml::Delete(stmt.clone());
        let entry = self.table(&stmt.table)?;
        let entry = &mut *Self::write_entry(&entry);
        let (rids, planned) = Self::locate_write(entry, &dml)?;
        let count = rids.len() as u64;
        for rid in rids {
            let old_bytes = entry.heap.fetch(rid)?;
            let old_values = codec::decode_row(&old_bytes)?;
            entry.heap.delete(rid)?;
            for index in entry.indexes.values_mut() {
                let key: Vec<Value> = index
                    .columns
                    .iter()
                    .map(|c| old_values[c.index()].clone())
                    .collect();
                index.btree.delete(&key, rid)?;
            }
            if let Some(m) = entry.maintainer.as_mut() {
                m.delete_row(&old_values);
            }
            entry.log_delta(|| RowDelta::Delete(old_values.clone(), rid));
        }
        if count > 0 {
            entry.bump_epoch();
        }
        Ok(QueryResult {
            count,
            rows: None,
            aggregate: None,
            io: scope.delta(),
            est_cost: planned.est_total,
            plan: planned.describe(),
        })
    }

    /// Parse and execute a `;`-separated SQL script, returning one
    /// result per statement. Execution stops at the first error
    /// (statements already executed stay applied — no transactions).
    /// Errors are tagged with the zero-based statement index (`parse`
    /// errors by the `;` count before the failing offset), so a failure
    /// in a multi-statement script is attributable even when scripts
    /// are replayed out of band.
    pub fn execute_script(&self, sql: &str) -> Result<Vec<QueryResult>> {
        let stmts = cdpd_sql::parse_many(sql).map_err(|e| {
            if let Error::Parse { offset, .. } = e {
                let index = sql[..offset.min(sql.len())].matches(';').count();
                Self::tag_statement(e, index)
            } else {
                e
            }
        })?;
        stmts
            .into_iter()
            .enumerate()
            .map(|(i, stmt)| {
                self.execute_statement(stmt)
                    .map_err(|e| Self::tag_statement(e, i))
            })
            .collect()
    }

    /// Prefix an error's message with the index of the script statement
    /// that produced it.
    fn tag_statement(err: Error, index: usize) -> Error {
        let tag = |m: String| format!("statement {index}: {m}");
        match err {
            Error::Parse { offset, message } => Error::Parse {
                offset,
                message: tag(message),
            },
            Error::NotFound(m) => Error::NotFound(tag(m)),
            Error::AlreadyExists(m) => Error::AlreadyExists(tag(m)),
            Error::TypeMismatch(m) => Error::TypeMismatch(tag(m)),
            Error::InvalidArgument(m) => Error::InvalidArgument(tag(m)),
            Error::Corrupt(m) => Error::Corrupt(tag(m)),
            other => other,
        }
    }

    /// Parse and execute one SQL statement.
    pub fn execute_sql(&self, sql: &str) -> Result<QueryResult> {
        self.execute_statement(cdpd_sql::parse(sql)?)
    }

    /// Execute one already-parsed statement. Queries run in counting
    /// mode; see [`Database::query`] for materialized results.
    pub fn execute_statement(&self, stmt: Statement) -> Result<QueryResult> {
        match stmt {
            Statement::Select(stmt) => self.query(&stmt),
            Statement::Update(stmt) => self.run_update(&stmt),
            Statement::Delete(stmt) => self.run_delete(&stmt),
            Statement::CreateTable { name, columns } => {
                let schema = Schema::new(
                    columns
                        .into_iter()
                        .map(|(n, t)| cdpd_types::ColumnDef::new(n, t))
                        .collect(),
                );
                self.create_table(&name, schema)?;
                Ok(Self::ddl_result())
            }
            // Index names are canonicalized from table + columns
            // (`ix_<table>_<cols>`); the name in CREATE INDEX is
            // advisory and the canonical name is reported back in the
            // plan string. DROP INDEX takes the canonical name.
            Statement::CreateIndex { table, columns, .. } => {
                let spec = IndexSpec { table, columns };
                let report = self.create_index(&spec)?;
                Ok(QueryResult {
                    count: 0,
                    rows: None,
                    aggregate: None,
                    io: report.io,
                    est_cost: cdpd_types::Cost::ZERO,
                    plan: format!("CreateIndex({})", report.created.join(",")),
                })
            }
            Statement::DropIndex { name } => {
                let spec = self
                    .tables
                    .read()
                    .expect("catalog lock poisoned")
                    .values()
                    .find_map(|t| {
                        Self::read_entry(t)
                            .indexes
                            .values()
                            .find(|e| e.spec.name() == name)
                            .map(|e| e.spec.clone())
                    })
                    .ok_or_else(|| Error::NotFound(format!("index {name}")))?;
                let report = self.drop_index(&spec)?;
                Ok(QueryResult {
                    count: 0,
                    rows: None,
                    aggregate: None,
                    io: report.io,
                    est_cost: cdpd_types::Cost::ZERO,
                    plan: format!("DropIndex({})", report.dropped.join(",")),
                })
            }
            Statement::Insert { table, values } => {
                self.insert(&table, &values)?;
                Ok(Self::ddl_result())
            }
        }
    }

    fn ddl_result() -> QueryResult {
        QueryResult {
            count: 0,
            rows: None,
            aggregate: None,
            io: IoStats::default(),
            est_cost: cdpd_types::Cost::ZERO,
            plan: "Ddl".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdpd_types::ColumnDef;

    fn abcd_schema() -> Schema {
        Schema::new(vec![
            ColumnDef::int("a"),
            ColumnDef::int("b"),
            ColumnDef::int("c"),
            ColumnDef::int("d"),
        ])
    }

    /// A small deterministic table in the paper's shape.
    fn load_db(rows: i64, modulus: i64) -> Database {
        let db = Database::new();
        db.create_table("t", abcd_schema()).unwrap();
        for i in 0..rows {
            let v = (i * 2654435761) % modulus;
            db.insert(
                "t",
                &[
                    Value::Int(v),
                    Value::Int((v * 7 + 1) % modulus),
                    Value::Int((v * 13 + 2) % modulus),
                    Value::Int((v * 31 + 3) % modulus),
                ],
            )
            .unwrap();
        }
        db.analyze("t").unwrap();
        db
    }

    #[test]
    fn create_insert_query_roundtrip() {
        let db = Database::new();
        db.create_table("t", abcd_schema()).unwrap();
        db.execute_sql("INSERT INTO t VALUES (1, 2, 3, 4)").unwrap();
        db.insert(
            "t",
            &[Value::Int(5), Value::Int(6), Value::Int(7), Value::Int(8)],
        )
        .unwrap();
        db.analyze("t").unwrap();
        let r = db.execute_sql("SELECT b FROM t WHERE a = 5").unwrap();
        assert_eq!(r.count, 1);
        assert_eq!(r.rows, Some(vec![vec![Value::Int(6)]]));
    }

    #[test]
    fn rejects_bad_rows_and_missing_objects() {
        let db = Database::new();
        db.create_table("t", abcd_schema()).unwrap();
        assert!(db.create_table("t", abcd_schema()).is_err());
        assert!(db.insert("t", &[Value::Int(1)]).is_err());
        assert!(db.insert("missing", &[]).is_err());
        assert!(db.query(&SelectStmt::point("missing", "a", 1)).is_err());
        // Query before analyze is an explicit error.
        assert!(db.query(&SelectStmt::point("t", "a", 1)).is_err());
    }

    #[test]
    fn index_changes_plan_and_cost() {
        let db = load_db(20_000, 5_000);
        let q = SelectStmt::point("t", "a", 1234);
        let scan = db.query_count(&q).unwrap();
        assert!(scan.plan.starts_with("SeqScan"), "{}", scan.plan);

        let spec = IndexSpec::new("t", &["a"]);
        let report = db.create_index(&spec).unwrap();
        assert!(report.io.reads > 0 && report.io.writes > 0);

        let seek = db.query_count(&q).unwrap();
        assert!(seek.plan.contains("IndexSeek"), "{}", seek.plan);
        assert!(
            seek.io.reads * 10 < scan.io.reads,
            "seek {} vs scan {}",
            seek.io.reads,
            scan.io.reads
        );
        // Same answer both ways.
        assert_eq!(seek.count, scan.count);
    }

    #[test]
    fn query_results_match_between_plans() {
        let db = load_db(5_000, 500);
        let q = SelectStmt::point("t", "b", 123);
        let baseline = db.query(&q).unwrap();
        db.create_index(&IndexSpec::new("t", &["b"])).unwrap();
        let via_seek = db.query(&q).unwrap();
        db.create_index(&IndexSpec::new("t", &["a", "b"])).unwrap();
        let mut base_rows = baseline.rows.clone().unwrap();
        let mut seek_rows = via_seek.rows.clone().unwrap();
        base_rows.sort();
        seek_rows.sort();
        assert_eq!(base_rows, seek_rows);
        assert_eq!(baseline.count, via_seek.count);
    }

    #[test]
    fn index_maintenance_on_insert() {
        let db = load_db(1_000, 100);
        db.create_index(&IndexSpec::new("t", &["a"])).unwrap();
        db.insert(
            "t",
            &[
                Value::Int(424242),
                Value::Int(0),
                Value::Int(0),
                Value::Int(0),
            ],
        )
        .unwrap();
        // Stats are stale (424242 unseen), but execution must find it.
        let r = db.query(&SelectStmt::point("t", "a", 424242)).unwrap();
        assert_eq!(r.count, 1);
        assert!(r.plan.contains("IndexSeek"), "{}", r.plan);
    }

    #[test]
    fn apply_configuration_diffs() {
        let db = load_db(2_000, 500);
        let a = IndexSpec::new("t", &["a"]);
        let cd = IndexSpec::new("t", &["c", "d"]);
        let b = IndexSpec::new("t", &["b"]);
        db.apply_configuration("t", &[a.clone(), cd.clone()])
            .unwrap();
        assert!(db.has_index(&a) && db.has_index(&cd));

        let report = db
            .apply_configuration("t", &[a.clone(), b.clone()])
            .unwrap();
        assert_eq!(report.dropped, vec![cd.name()]);
        assert_eq!(report.created, vec![b.name()]);
        assert!(db.has_index(&b) && !db.has_index(&cd));

        // No-op transition costs nothing.
        let report = db
            .apply_configuration("t", &[a.clone(), b.clone()])
            .unwrap();
        assert_eq!(report.io.total(), 0);
        assert!(report.created.is_empty() && report.dropped.is_empty());
    }

    #[test]
    fn drop_index_is_cheap_create_is_not() {
        let db = load_db(10_000, 1_000);
        let spec = IndexSpec::new("t", &["a"]);
        let create = db.create_index(&spec).unwrap();
        let drop = db.drop_index(&spec).unwrap();
        assert!(drop.io.total() * 10 < create.io.total());
        assert!(drop.io.total() <= 2, "drop is a catalog touch");
        assert!(db.create_index(&spec).is_ok(), "can recreate after drop");
        assert!(db.drop_index(&IndexSpec::new("t", &["z"])).is_err());
    }

    #[test]
    fn repeated_design_changes_reuse_pages() {
        let db = load_db(5_000, 1_000);
        let a = IndexSpec::new("t", &["a"]);
        let b = IndexSpec::new("t", &["b"]);
        db.create_index(&a).unwrap();
        let after_first = db.page_count();
        for _ in 0..5 {
            db.apply_configuration("t", std::slice::from_ref(&b))
                .unwrap();
            db.apply_configuration("t", std::slice::from_ref(&a))
                .unwrap();
        }
        // Ten rebuilds later the footprint must not have grown by more
        // than one transient index worth of pages.
        assert!(
            db.page_count() <= after_first + after_first / 3,
            "pages grew {} -> {}",
            after_first,
            db.page_count()
        );
        // Queries still work against the recycled pages.
        let r = db.query_count(&SelectStmt::point("t", "a", 7)).unwrap();
        assert!(r.plan.contains("IndexSeek"), "{}", r.plan);
    }

    #[test]
    fn estimates_track_measurements() {
        // The planner's estimated I/O and the executor's measured I/O
        // must agree within a small factor for every access path.
        let db = load_db(50_000, 10_000);
        db.create_index(&IndexSpec::new("t", &["a", "b"])).unwrap();
        db.create_index(&IndexSpec::new("t", &["c"])).unwrap();
        let queries = [
            SelectStmt::point("t", "a", 7),
            SelectStmt::point("t", "b", 7),
            SelectStmt::point("t", "c", 7),
            SelectStmt::point("t", "d", 7),
        ];
        for q in &queries {
            let r = db.query_count(q).unwrap();
            let est = r.est_cost.ios().max(1) as f64;
            let meas = (r.io.total().max(1)) as f64;
            let ratio = est.max(meas) / est.min(meas);
            assert!(
                ratio < 2.5,
                "estimate {est} vs measured {meas} (plan {}) for {q}",
                r.plan
            );
        }
    }

    #[test]
    fn update_executes_and_maintains_indexes() {
        let db = load_db(5_000, 500);
        db.create_index(&IndexSpec::new("t", &["a"])).unwrap();
        db.create_index(&IndexSpec::new("t", &["b"])).unwrap();
        let before = db
            .execute_sql("SELECT COUNT(*) FROM t WHERE a = 123")
            .unwrap()
            .count;
        assert!(before > 0);
        let upd = db
            .execute_sql("UPDATE t SET b = 999999 WHERE a = 123")
            .unwrap();
        assert_eq!(upd.count, before);
        assert!(upd.plan.starts_with("Update via IndexSeek"), "{}", upd.plan);
        // The b-index must now find the rows under the new value.
        let hit = db
            .execute_sql("SELECT COUNT(*) FROM t WHERE b = 999999")
            .unwrap();
        assert!(hit.plan.contains("IndexSeek"), "{}", hit.plan);
        assert_eq!(hit.count, before);
        // And the a-index is unchanged (a untouched).
        let again = db
            .execute_sql("SELECT COUNT(*) FROM t WHERE a = 123")
            .unwrap();
        assert_eq!(again.count, before);
    }

    #[test]
    fn delete_executes_and_maintains_indexes() {
        let db = load_db(5_000, 500);
        db.create_index(&IndexSpec::new("t", &["c"])).unwrap();
        let victims = db
            .execute_sql("SELECT COUNT(*) FROM t WHERE c = 77")
            .unwrap()
            .count;
        assert!(victims > 0);
        let del = db.execute_sql("DELETE FROM t WHERE c = 77").unwrap();
        assert_eq!(del.count, victims);
        assert_eq!(
            db.execute_sql("SELECT COUNT(*) FROM t WHERE c = 77")
                .unwrap()
                .count,
            0
        );
        // Index and heap agree after the delete.
        let via_index = db
            .execute_sql("SELECT COUNT(*) FROM t WHERE c >= 0")
            .unwrap();
        let db2 = load_db(5_000, 500);
        db2.execute_sql("DELETE FROM t WHERE c = 77").unwrap();
        let via_scan = db2
            .execute_sql("SELECT COUNT(*) FROM t WHERE c >= 0")
            .unwrap();
        assert_eq!(via_index.count, via_scan.count);
    }

    #[test]
    fn refresh_stats_folds_dml_without_rescan() {
        let db = load_db(5_000, 500);
        assert!(
            db.refresh_stats("t").unwrap().is_noop(),
            "fresh analyze leaves nothing pending"
        );
        assert!(db.refresh_stats("missing").is_err());

        // Inserts move the row count without a re-analyze.
        let before = db.stats("t").unwrap().unwrap().row_count;
        for i in 0..50 {
            db.insert(
                "t",
                &[
                    Value::Int(900_000 + i),
                    Value::Int(0),
                    Value::Int(0),
                    Value::Int(0),
                ],
            )
            .unwrap();
        }
        let r = db.refresh_stats("t").unwrap();
        assert!(r.rows_changed);
        assert_eq!(r.changed_columns.len(), 4);
        let stats = db.stats("t").unwrap().unwrap();
        assert_eq!(stats.row_count, before + 50);
        assert_eq!(stats.columns[0].max, Some(Value::Int(900_049)));

        // An update touching one column reports just that column.
        db.execute_sql("UPDATE t SET b = 777777 WHERE a = 123")
            .unwrap();
        let r = db.refresh_stats("t").unwrap();
        assert!(!r.rows_changed);
        assert_eq!(r.changed_columns, vec![ColumnId(1)]);
        assert_eq!(
            db.stats("t").unwrap().unwrap().columns[1].max,
            Some(Value::Int(777_777))
        );

        // Deletes shrink the exact row count.
        let victims = db.execute_sql("DELETE FROM t WHERE c = 77").unwrap().count;
        assert!(victims > 0);
        let r = db.refresh_stats("t").unwrap();
        assert!(r.rows_changed);
        assert_eq!(
            db.stats("t").unwrap().unwrap().row_count,
            before + 50 - victims
        );

        // Refreshed stats keep the planner sound: estimates still track
        // measurements after a refresh-only (no re-analyze) cycle.
        let q = SelectStmt::point("t", "a", 123);
        let res = db.query_count(&q).unwrap();
        let est = res.est_cost.ios().max(1) as f64;
        let meas = res.io.total().max(1) as f64;
        assert!(est.max(meas) / est.min(meas) < 3.0, "{est} vs {meas}");
    }

    #[test]
    fn refresh_matches_full_analyze_on_inserts() {
        // For insert-only deltas (no stale-distinct asymmetry) the
        // refreshed statistics must agree with a from-scratch analyze
        // on every exact field.
        let db = load_db(2_000, 500);
        for i in 0..100 {
            db.insert(
                "t",
                &[
                    Value::Int(i % 37),
                    Value::Int(i % 11),
                    Value::Int(i),
                    Value::Int(5),
                ],
            )
            .unwrap();
        }
        db.refresh_stats("t").unwrap();
        let refreshed = db.stats("t").unwrap().unwrap().clone();
        db.analyze("t").unwrap();
        let scanned = db.stats("t").unwrap().unwrap();
        assert_eq!(refreshed.row_count, scanned.row_count);
        assert_eq!(refreshed.heap_pages, scanned.heap_pages);
        assert!((refreshed.avg_row_width - scanned.avg_row_width).abs() < 1e-9);
        for (r, s) in refreshed.columns.iter().zip(&scanned.columns) {
            assert_eq!(r.distinct, s.distinct);
            assert_eq!(r.min, s.min);
            assert_eq!(r.max, s.max);
        }
    }

    #[test]
    fn execute_dml_routes_all_kinds() {
        let db = load_db(2_000, 100);
        let q = Dml::Select(SelectStmt::point("t", "a", 5));
        let qr = db.execute_dml(&q).unwrap();
        assert!(qr.rows.is_none(), "replay mode counts only");
        let u = match cdpd_sql::parse("UPDATE t SET d = 1 WHERE a = 5").unwrap() {
            Statement::Update(u) => Dml::Update(u),
            _ => unreachable!(),
        };
        assert_eq!(db.execute_dml(&u).unwrap().count, qr.count);
        let d = match cdpd_sql::parse("DELETE FROM t WHERE a = 5").unwrap() {
            Statement::Delete(d) => Dml::Delete(d),
            _ => unreachable!(),
        };
        assert_eq!(db.execute_dml(&d).unwrap().count, qr.count);
        assert_eq!(db.execute_dml(&q).unwrap().count, 0);
    }

    #[test]
    fn unpredicated_update_touches_every_row() {
        let db = load_db(1_000, 100);
        let r = db.execute_sql("UPDATE t SET a = 42").unwrap();
        assert_eq!(r.count, 1_000);
        assert_eq!(
            db.execute_sql("SELECT COUNT(*) FROM t WHERE a = 42")
                .unwrap()
                .count,
            1_000
        );
    }

    #[test]
    fn write_estimates_track_measurements() {
        let db = load_db(20_000, 4_000);
        db.create_index(&IndexSpec::new("t", &["a"])).unwrap();
        db.create_index(&IndexSpec::new("t", &["b", "c"])).unwrap();
        let r = db.execute_sql("UPDATE t SET b = 7 WHERE a = 99").unwrap();
        let est = r.est_cost.ios().max(1) as f64;
        let meas = r.io.total().max(1) as f64;
        let ratio = est.max(meas) / est.min(meas);
        assert!(
            ratio < 3.0,
            "estimate {est} vs measured {meas} ({})",
            r.plan
        );
    }

    #[test]
    fn count_star_and_star_queries() {
        let db = load_db(2_000, 100);
        let r = db
            .execute_sql("SELECT COUNT(*) FROM t WHERE a = 5")
            .unwrap();
        assert!(r.count > 0);
        assert!(r.rows.is_none());
        let r = db.execute_sql("SELECT * FROM t WHERE a = 5").unwrap();
        assert_eq!(r.rows.as_ref().unwrap().len(), r.count as usize);
        assert_eq!(r.rows.unwrap()[0].len(), 4);
    }

    #[test]
    fn execute_script_runs_statement_sequences() {
        let db = Database::new();
        let results = db
            .execute_script(
                "CREATE TABLE s (x INT, y INT);\n\
                 INSERT INTO s VALUES (1, 10);\n\
                 INSERT INTO s VALUES (2, 20);\n\
                 INSERT INTO s VALUES (3, 30);",
            )
            .unwrap();
        assert_eq!(results.len(), 4);
        db.analyze("s").unwrap();
        let results = db
            .execute_script("CREATE INDEX i_x ON s (x); SELECT SUM(y) FROM s WHERE x >= 2;")
            .unwrap();
        assert!(
            results[0].plan.contains("ix_s_x"),
            "canonical name reported"
        );
        assert_eq!(results[1].aggregate, Some(Value::Int(50)));
        // First error aborts, earlier statements stay applied (drop
        // uses the canonical name).
        let err = db
            .execute_script("DROP INDEX ix_s_x; DROP INDEX nope;")
            .unwrap_err();
        assert!(err.to_string().contains("nope"), "{err}");
        assert!(!db.has_index(&IndexSpec::new("s", &["x"])));
        // Execution errors name the zero-based failing statement.
        assert!(err.to_string().contains("statement 1:"), "{err}");
    }

    #[test]
    fn execute_script_errors_report_statement_index() {
        let db = Database::new();
        db.execute_script("CREATE TABLE s (x INT, y INT);").unwrap();
        db.analyze("s").unwrap();
        // Parse errors are attributed by the `;` count before the
        // failing offset — here the third statement (index 2).
        let err = db
            .execute_script(
                "INSERT INTO s VALUES (1, 10); INSERT INTO s VALUES (2, 20); SELEC x FROM s;",
            )
            .unwrap_err();
        assert!(
            matches!(&err, Error::Parse { message, .. } if message.starts_with("statement 2:")),
            "{err}"
        );
        // Nothing ran: parsing fails the whole script up front.
        let count = db.execute_sql("SELECT x FROM s WHERE x >= 0").unwrap();
        assert_eq!(count.count, 0);
        // Type errors during execution carry their index too.
        let err = db
            .execute_script("INSERT INTO s VALUES (1, 10); INSERT INTO s VALUES (2);")
            .unwrap_err();
        assert!(
            matches!(&err, Error::TypeMismatch(m) if m.starts_with("statement 1:")),
            "{err}"
        );
    }

    #[test]
    fn aggregates_match_brute_force() {
        let db = load_db(5_000, 400);
        // Ground truth from materialized rows.
        let all_b = db.execute_sql("SELECT b FROM t WHERE a = 123").unwrap();
        let vals: Vec<i64> = all_b
            .rows
            .unwrap()
            .iter()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        assert!(!vals.is_empty());

        let sum = db
            .execute_sql("SELECT SUM(b) FROM t WHERE a = 123")
            .unwrap();
        assert_eq!(sum.aggregate, Some(Value::Int(vals.iter().sum())));
        let min = db
            .execute_sql("SELECT MIN(b) FROM t WHERE a = 123")
            .unwrap();
        assert_eq!(min.aggregate, Some(Value::Int(*vals.iter().min().unwrap())));
        let max = db
            .execute_sql("SELECT MAX(b) FROM t WHERE a = 123")
            .unwrap();
        assert_eq!(max.aggregate, Some(Value::Int(*vals.iter().max().unwrap())));
        let avg = db
            .execute_sql("SELECT AVG(b) FROM t WHERE a = 123")
            .unwrap();
        assert_eq!(
            avg.aggregate,
            Some(Value::Int(vals.iter().sum::<i64>() / vals.len() as i64))
        );
        let count = db
            .execute_sql("SELECT COUNT(b) FROM t WHERE a = 123")
            .unwrap();
        assert_eq!(count.aggregate, Some(Value::Int(vals.len() as i64)));
    }

    #[test]
    fn unpredicated_min_max_use_index_extremum() {
        let db = load_db(20_000, 3_000);
        db.create_index(&IndexSpec::new("t", &["a"])).unwrap();
        // Brute-force extremes via a scan on another column path.
        let all = db.execute_sql("SELECT a FROM t").unwrap();
        let vals: Vec<i64> = all
            .rows
            .unwrap()
            .iter()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        let (lo, hi) = (*vals.iter().min().unwrap(), *vals.iter().max().unwrap());

        let min = db.execute_sql("SELECT MIN(a) FROM t").unwrap();
        assert!(min.plan.contains("IndexExtremum"), "{}", min.plan);
        assert_eq!(min.aggregate, Some(Value::Int(lo)));
        assert!(
            min.io.total() < 10,
            "O(height) reads, got {}",
            min.io.total()
        );

        let max = db.execute_sql("SELECT MAX(a) FROM t").unwrap();
        assert!(max.plan.contains("IndexExtremum"), "{}", max.plan);
        assert_eq!(max.aggregate, Some(Value::Int(hi)));

        // With a predicate the extremum shortcut does not apply.
        let pred = db.execute_sql("SELECT MAX(a) FROM t WHERE b = 5").unwrap();
        assert!(!pred.plan.contains("IndexExtremum"), "{}", pred.plan);
    }

    #[test]
    fn order_by_and_limit() {
        let db = load_db(3_000, 500);
        let r = db
            .execute_sql("SELECT a FROM t WHERE b = 77 ORDER BY a")
            .unwrap();
        let got: Vec<i64> = r
            .rows
            .unwrap()
            .iter()
            .map(|x| x[0].as_int().unwrap())
            .collect();
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(got, sorted, "ascending order");
        assert!(got.len() > 2);

        let r = db
            .execute_sql("SELECT a FROM t WHERE b = 77 ORDER BY a DESC LIMIT 2")
            .unwrap();
        let desc: Vec<i64> = r
            .rows
            .unwrap()
            .iter()
            .map(|x| x[0].as_int().unwrap())
            .collect();
        assert_eq!(desc.len(), 2);
        assert_eq!(desc[0], *sorted.last().unwrap());
        assert!(desc[0] >= desc[1]);
        assert_eq!(r.count, 2, "count reflects the limit");

        // ORDER BY a column outside the projection: the helper column
        // must not leak into the output rows.
        let r = db
            .execute_sql("SELECT c FROM t WHERE b = 77 ORDER BY a")
            .unwrap();
        assert!(r.rows.unwrap().iter().all(|row| row.len() == 1));

        // An index on the order column makes the output index-ordered
        // without a sort (same answer either way).
        db.create_index(&IndexSpec::new("t", &["b", "a"])).unwrap();
        let r2 = db
            .execute_sql("SELECT a FROM t WHERE b = 77 ORDER BY a")
            .unwrap();
        let got2: Vec<i64> = r2
            .rows
            .unwrap()
            .iter()
            .map(|x| x[0].as_int().unwrap())
            .collect();
        assert_eq!(got2, sorted);
    }

    #[test]
    fn range_queries_execute_correctly() {
        let db = load_db(5_000, 1_000);
        db.create_index(&IndexSpec::new("t", &["a"])).unwrap();
        let scan = db
            .execute_sql("SELECT COUNT(*) FROM t WHERE a BETWEEN 100 AND 120 AND b >= 0")
            .unwrap();
        // Verify against a brute-force count via seq scan on column d
        // (no index): same predicate must give the same count.
        let db2 = load_db(5_000, 1_000);
        let brute = db2
            .execute_sql("SELECT COUNT(*) FROM t WHERE a BETWEEN 100 AND 120 AND b >= 0")
            .unwrap();
        assert_eq!(scan.count, brute.count);
        assert!(scan.count > 0);
    }
}

use cdpd_storage::{BTree, HeapFile};
use cdpd_types::{ColumnId, Rid, Schema, TableId, Value};
use std::fmt;
use std::sync::{Arc, Mutex};

/// A logical index description: the unit the design advisor reasons
/// about. Two specs are the same index iff table and key columns (in
/// order) match; the canonical [`IndexSpec::name`] encodes both.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct IndexSpec {
    /// Indexed table.
    pub table: String,
    /// Key columns in key order.
    pub columns: Vec<String>,
}

impl IndexSpec {
    /// Build a spec.
    pub fn new(table: impl Into<String>, columns: &[&str]) -> IndexSpec {
        IndexSpec {
            table: table.into(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
        }
    }

    /// Canonical catalog name, e.g. `ix_t_a_b` for `I(a,b)` on `t`.
    pub fn name(&self) -> String {
        let mut s = format!("ix_{}", self.table);
        for c in &self.columns {
            s.push('_');
            s.push_str(c);
        }
        s
    }

    /// Paper-style display, e.g. `I(a,b)`.
    pub fn display_short(&self) -> String {
        format!("I({})", self.columns.join(","))
    }
}

impl fmt::Display for IndexSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_short())
    }
}

/// A materialized index: spec resolved to column ids plus its B+-tree.
pub(crate) struct IndexEntry {
    pub(crate) spec: IndexSpec,
    pub(crate) columns: Vec<ColumnId>,
    pub(crate) btree: BTree,
}

/// One row-level change appended to every active build log by a DML
/// statement that runs while an online index build is scanning. An
/// `UPDATE` logs a `Delete` of the old image followed by an `Insert`
/// of the new one (at the row's possibly-moved rid).
pub(crate) enum RowDelta {
    /// Row `rid` now holds these values.
    Insert(Vec<Value>, Rid),
    /// Row `rid` no longer holds these values.
    Delete(Vec<Value>, Rid),
}

/// The side channel an online index build registers before its
/// lock-free scan: DML statements append their row deltas (under the
/// table write lock), and the build drains the log into the freshly
/// bulk-loaded tree at install time — so the installed index is
/// exactly what a build at the install point would have produced.
pub(crate) type BuildLog = Arc<Mutex<Vec<RowDelta>>>;

/// An immutable view of one table as of a catalog epoch: what readers
/// (and online index builds) pin with one `Arc` clone. The heap handle
/// shares the pager but freezes the page chain; schema and statistics
/// are the same shared `Arc`s the live entry holds. Writers bump the
/// entry's epoch and drop the cached snapshot, so a pinned snapshot is
/// never mutated — the next pin builds a successor.
#[derive(Clone)]
pub struct TableSnapshot {
    /// Epoch this snapshot was taken at (monotone per table, bumped by
    /// every mutating statement).
    pub epoch: u64,
    /// The table's schema.
    pub schema: Arc<Schema>,
    /// Frozen heap handle: page chain and row count as of the epoch.
    pub heap: HeapFile,
    /// Statistics as of the epoch, if `ANALYZE` has run.
    pub stats: Option<Arc<crate::stats::TableStats>>,
    /// Specs of the indexes materialized at the epoch, in name order.
    pub index_specs: Vec<IndexSpec>,
}

/// A table in the catalog. Schema and statistics are behind `Arc` so a
/// statement (or a what-if snapshot) can share them without copying;
/// statistics are replaced wholesale on refresh, never mutated, so a
/// held `Arc` is a stable snapshot.
pub(crate) struct TableEntry {
    #[allow(dead_code)]
    pub(crate) id: TableId,
    pub(crate) schema: std::sync::Arc<Schema>,
    pub(crate) heap: HeapFile,
    pub(crate) stats: Option<std::sync::Arc<crate::stats::TableStats>>,
    /// Retained analyze state, folded forward under DML so statistics
    /// refresh without re-scanning (seeded by `ANALYZE`).
    pub(crate) maintainer: Option<crate::stats::StatsMaintainer>,
    /// Indexes keyed by canonical name, iterated in name order so
    /// planning is deterministic.
    pub(crate) indexes: std::collections::BTreeMap<String, IndexEntry>,
    /// Catalog epoch: bumped by every mutating statement on this
    /// table. Per-process (not persisted); recovery restarts at 0.
    pub(crate) epoch: u64,
    /// Cached snapshot of the current epoch, built lazily on pin and
    /// invalidated (dropped) by every mutation.
    pub(crate) version: Option<Arc<TableSnapshot>>,
    /// Logs of the online index builds currently scanning this table;
    /// every mutating statement appends its row deltas to each.
    pub(crate) build_logs: Vec<BuildLog>,
}

impl TableEntry {
    /// Fresh entry with no rows, stats, or indexes.
    pub(crate) fn new(id: TableId, schema: Schema, pager: Arc<cdpd_storage::Pager>) -> TableEntry {
        TableEntry {
            id,
            schema: Arc::new(schema),
            heap: HeapFile::create(pager),
            stats: None,
            maintainer: None,
            indexes: std::collections::BTreeMap::new(),
            epoch: 0,
            version: None,
            build_logs: Vec::new(),
        }
    }

    /// Note a mutation: advance the epoch and drop the cached snapshot
    /// so the next pin sees the new state. Callers hold the table
    /// write lock.
    pub(crate) fn bump_epoch(&mut self) {
        self.epoch += 1;
        self.version = None;
    }

    /// The current epoch's snapshot, building and caching it if the
    /// last mutation invalidated it. Callers hold the table write
    /// lock (reader pinning goes through `Database::pin`, which
    /// escalates to the write lock only on a cache miss).
    pub(crate) fn snapshot(&mut self) -> Arc<TableSnapshot> {
        if let Some(v) = &self.version {
            return v.clone();
        }
        let snap = Arc::new(TableSnapshot {
            epoch: self.epoch,
            schema: self.schema.clone(),
            heap: self.heap.clone(),
            stats: self.stats.clone(),
            index_specs: self.indexes.values().map(|e| e.spec.clone()).collect(),
        });
        self.version = Some(snap.clone());
        snap
    }

    /// Append one row delta to every active build log. Called by DML
    /// under the table write lock; a no-op when no build is scanning.
    pub(crate) fn log_delta(&self, make: impl Fn() -> RowDelta) {
        for log in &self.build_logs {
            log.lock().expect("build log poisoned").push(make());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_names() {
        let ab = IndexSpec::new("t", &["a", "b"]);
        assert_eq!(ab.name(), "ix_t_a_b");
        assert_eq!(ab.display_short(), "I(a,b)");
        assert_eq!(ab.to_string(), "I(a,b)");
    }

    #[test]
    fn column_order_distinguishes_specs() {
        let ab = IndexSpec::new("t", &["a", "b"]);
        let ba = IndexSpec::new("t", &["b", "a"]);
        assert_ne!(ab, ba);
        assert_ne!(ab.name(), ba.name());
    }
}

use cdpd_storage::{BTree, HeapFile};
use cdpd_types::{ColumnId, Schema, TableId};
use std::fmt;

/// A logical index description: the unit the design advisor reasons
/// about. Two specs are the same index iff table and key columns (in
/// order) match; the canonical [`IndexSpec::name`] encodes both.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct IndexSpec {
    /// Indexed table.
    pub table: String,
    /// Key columns in key order.
    pub columns: Vec<String>,
}

impl IndexSpec {
    /// Build a spec.
    pub fn new(table: impl Into<String>, columns: &[&str]) -> IndexSpec {
        IndexSpec {
            table: table.into(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
        }
    }

    /// Canonical catalog name, e.g. `ix_t_a_b` for `I(a,b)` on `t`.
    pub fn name(&self) -> String {
        let mut s = format!("ix_{}", self.table);
        for c in &self.columns {
            s.push('_');
            s.push_str(c);
        }
        s
    }

    /// Paper-style display, e.g. `I(a,b)`.
    pub fn display_short(&self) -> String {
        format!("I({})", self.columns.join(","))
    }
}

impl fmt::Display for IndexSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_short())
    }
}

/// A materialized index: spec resolved to column ids plus its B+-tree.
pub(crate) struct IndexEntry {
    pub(crate) spec: IndexSpec,
    pub(crate) columns: Vec<ColumnId>,
    pub(crate) btree: BTree,
}

/// A table in the catalog. Schema and statistics are behind `Arc` so a
/// statement (or a what-if snapshot) can share them without copying;
/// statistics are replaced wholesale on refresh, never mutated, so a
/// held `Arc` is a stable snapshot.
pub(crate) struct TableEntry {
    #[allow(dead_code)]
    pub(crate) id: TableId,
    pub(crate) schema: std::sync::Arc<Schema>,
    pub(crate) heap: HeapFile,
    pub(crate) stats: Option<std::sync::Arc<crate::stats::TableStats>>,
    /// Retained analyze state, folded forward under DML so statistics
    /// refresh without re-scanning (seeded by `ANALYZE`).
    pub(crate) maintainer: Option<crate::stats::StatsMaintainer>,
    /// Indexes keyed by canonical name, iterated in name order so
    /// planning is deterministic.
    pub(crate) indexes: std::collections::BTreeMap<String, IndexEntry>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_names() {
        let ab = IndexSpec::new("t", &["a", "b"]);
        assert_eq!(ab.name(), "ix_t_a_b");
        assert_eq!(ab.display_short(), "I(a,b)");
        assert_eq!(ab.to_string(), "I(a,b)");
    }

    #[test]
    fn column_order_distinguishes_specs() {
        let ab = IndexSpec::new("t", &["a", "b"]);
        let ba = IndexSpec::new("t", &["b", "a"]);
        assert_ne!(ab, ba);
        assert_ne!(ab.name(), ba.name());
    }
}

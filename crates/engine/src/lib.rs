//! Query engine and what-if optimizer over the `cdpd-storage` substrate.
//!
//! This crate plays the role SQL Server 2005 played in the paper's
//! experiments:
//!
//! * [`Database`] — catalog, heap + index maintenance, `ANALYZE`
//!   statistics, query execution with measured logical-I/O cost, and
//!   *online DDL*: `CREATE INDEX` does a scan → sort → bulk-load whose
//!   measured I/O is the real `TRANS` cost of a design change.
//! * [`Planner`] — cost-based access-path selection (sequential scan,
//!   index seek, index range scan, index-only scan). The same planner
//!   runs over *real* indexes when executing and over *hypothetical*
//!   indexes when estimating, which is exactly the "what-if" interface
//!   commercial design advisors expose.
//! * [`WhatIfEngine`] — the `EXEC` / `TRANS` / `SIZE` oracle the design
//!   advisor consumes: estimates statement cost under a hypothetical
//!   index configuration without materializing anything.
//!
//! Costs are *logical page I/Os* ([`cdpd_types::Cost`]); the planner's
//! estimates are validated against executor measurements in this
//! crate's tests.

#![warn(missing_docs)]

mod catalog;
mod cost;
mod db;
mod exec;
pub mod par;
mod persist;
mod planner;
mod stats;
mod whatif;

pub use catalog::{IndexSpec, TableSnapshot};
pub use cost::{CostModel, IndexShape};
pub use db::{Database, DdlReport, QueryResult};
pub use exec::ExecOutcome;
pub use par::{default_threads, parallel_map};
pub use planner::{BoundCondition, IndexInfo, PlannedWrite, PlannerFlags};
pub use planner::{Plan, PlannedQuery, Planner};
pub use stats::{ColumnStats, Histogram, StatsRefresh, TableStats};
pub use whatif::WhatIfEngine;

//! Catalog persistence: the byte codec behind [`Database::open`].
//!
//! Every durable commit carries a serialized catalog as the WAL
//! transaction's application metadata: table schemas, heap/B+-tree
//! *shapes* (page lists and counters — the page *contents* travel in
//! the WAL as page images), statistics, retained analyze state, and an
//! opaque application-state blob (the advisory layer's warm state).
//! Recovery decodes the newest committed catalog and re-attaches every
//! structure to the recovered pager with zero I/O.
//!
//! The encoding is versioned (magic + version byte) and *strict*: any
//! truncation, trailing bytes, or length mismatch decodes to
//! [`Error::Corrupt`], never to a half-built catalog. Statistics are
//! persisted field-exactly — including the maintainer's sampling clock
//! and dirty flags — so a recovered database plans every statement
//! bit-identically to the uninterrupted run.

use crate::catalog::{IndexEntry, IndexSpec, TableEntry};
use crate::Database;
use cdpd_storage::{codec, BTree, HeapFile, Pager};
use cdpd_types::{ColumnDef, ColumnId, Error, PageId, Result, Schema, TableId, Value, ValueType};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, RwLock};

/// Catalog blob magic: format name + version in one token.
const MAGIC: &[u8; 8] = b"cdpdcat1";

// ---------------------------------------------------------------------
// Primitive writers
// ---------------------------------------------------------------------

pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// `f64` as IEEE-754 bits: exact round-trip, no formatting involved.
pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

pub(crate) fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, u32::try_from(bytes.len()).expect("blob too large"));
    out.extend_from_slice(bytes);
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// A value list, reusing the row codec (tagged, self-delimiting).
pub(crate) fn put_values(out: &mut Vec<u8>, values: &[Value]) {
    let mut tmp = Vec::new();
    codec::encode_row(values, &mut tmp);
    put_u32(out, u32::try_from(values.len()).expect("too many values"));
    put_bytes(out, &tmp);
}

pub(crate) fn put_opt_value(out: &mut Vec<u8>, v: &Option<Value>) {
    match v {
        None => put_u8(out, 0),
        Some(v) => {
            put_u8(out, 1);
            put_values(out, std::slice::from_ref(v));
        }
    }
}

// ---------------------------------------------------------------------
// Strict reader
// ---------------------------------------------------------------------

/// Cursor over a catalog blob. Every accessor fails with
/// [`Error::Corrupt`] on truncation; [`Reader::finish`] rejects
/// trailing bytes.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() < n {
            return Err(Error::Corrupt(format!(
                "catalog truncated: need {n} bytes, have {}",
                self.buf.len()
            )));
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    pub(crate) fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len")))
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len")))
    }

    pub(crate) fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    pub(crate) fn str(&mut self) -> Result<String> {
        let bytes = self.bytes()?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| Error::Corrupt("catalog string is not UTF-8".into()))
    }

    pub(crate) fn values(&mut self) -> Result<Vec<Value>> {
        let count = self.u32()? as usize;
        let bytes = self.bytes()?;
        let values = codec::decode_row(bytes)?;
        if values.len() != count {
            return Err(Error::Corrupt(format!(
                "value list decodes to {} values, header says {count}",
                values.len()
            )));
        }
        Ok(values)
    }

    pub(crate) fn opt_value(&mut self) -> Result<Option<Value>> {
        match self.u8()? {
            0 => Ok(None),
            1 => {
                let mut vs = self.values()?;
                if vs.len() != 1 {
                    return Err(Error::Corrupt("optional value is not a singleton".into()));
                }
                Ok(vs.pop())
            }
            t => Err(Error::Corrupt(format!("bad option tag {t}"))),
        }
    }

    pub(crate) fn finish(self) -> Result<()> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(Error::Corrupt(format!(
                "catalog has {} trailing bytes",
                self.buf.len()
            )))
        }
    }
}

// ---------------------------------------------------------------------
// Catalog codec
// ---------------------------------------------------------------------

/// Serialize the whole catalog (plus the application-state blob) into
/// the byte string a durable commit carries as `app_meta`.
pub(crate) fn encode_catalog(db: &Database) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, db.next_table_id.load(Ordering::Relaxed));
    put_bytes(&mut out, &db.app_state.read().expect("app state poisoned"));
    let tables = db.tables.read().expect("catalog lock poisoned");
    put_u32(&mut out, tables.len() as u32);
    for (name, entry) in tables.iter() {
        let e = entry.read().expect("table lock poisoned");
        put_str(&mut out, name);
        encode_table(&mut out, &e);
    }
    out
}

fn encode_table(out: &mut Vec<u8>, e: &TableEntry) {
    put_u32(out, e.id.0);
    // Schema: column names + type tags.
    put_u16(out, e.schema.len() as u16);
    for col in e.schema.columns() {
        put_str(out, &col.name);
        put_u8(out, type_tag(col.ty));
    }
    // Heap shape.
    put_u32(out, e.heap.pages().len() as u32);
    for p in e.heap.pages() {
        put_u32(out, p.0);
    }
    put_u64(out, e.heap.row_count());
    // Retained analyze state and the materialized snapshot. Both are
    // persisted: the snapshot may lag the maintainer (DML folded in but
    // not yet refreshed), and recovery must reproduce exactly that.
    match &e.maintainer {
        None => put_u8(out, 0),
        Some(m) => {
            put_u8(out, 1);
            m.encode(out);
        }
    }
    match &e.stats {
        None => put_u8(out, 0),
        Some(s) => {
            put_u8(out, 1);
            s.encode(out);
        }
    }
    // Indexes, in canonical-name order (BTreeMap iteration).
    put_u32(out, e.indexes.len() as u32);
    for ix in e.indexes.values() {
        put_str(out, &ix.spec.table);
        put_u16(out, ix.spec.columns.len() as u16);
        for c in &ix.spec.columns {
            put_str(out, c);
        }
        put_u16(out, ix.columns.len() as u16);
        for c in &ix.columns {
            put_u16(out, c.0);
        }
        put_u32(out, ix.btree.root().0);
        put_u32(out, ix.btree.height());
        put_u32(out, ix.btree.pages().len() as u32);
        for p in ix.btree.pages() {
            put_u32(out, p.0);
        }
        put_u64(out, ix.btree.leaf_count());
        put_u64(out, ix.btree.entry_count());
    }
}

/// Rebuild a [`Database`] from a committed catalog blob and the
/// recovered pager. Pure metadata surgery: no page I/O happens here.
pub(crate) fn decode_catalog(bytes: &[u8], pager: Arc<Pager>) -> Result<Database> {
    let mut r = Reader::new(bytes);
    let magic = r.take(MAGIC.len())?;
    if magic != MAGIC {
        return Err(Error::Corrupt("bad catalog magic".into()));
    }
    let next_table_id = r.u32()?;
    let app_state = r.bytes()?.to_vec();
    let n_tables = r.u32()? as usize;
    let mut tables = BTreeMap::new();
    for _ in 0..n_tables {
        let name = r.str()?;
        let entry = decode_table(&mut r, &pager)?;
        if tables.insert(name, Arc::new(RwLock::new(entry))).is_some() {
            return Err(Error::Corrupt("duplicate table in catalog".into()));
        }
    }
    r.finish()?;
    Ok(Database {
        pager,
        tables: RwLock::new(tables),
        next_table_id: AtomicU32::new(next_table_id),
        app_state: RwLock::new(app_state),
        write_phase: RwLock::new(()),
    })
}

fn decode_table(r: &mut Reader<'_>, pager: &Arc<Pager>) -> Result<TableEntry> {
    let id = TableId(r.u32()?);
    let n_cols = r.u16()? as usize;
    let mut cols = Vec::with_capacity(n_cols);
    for _ in 0..n_cols {
        let name = r.str()?;
        let ty = type_from_tag(r.u8()?)?;
        cols.push(ColumnDef::new(name, ty));
    }
    let schema = Arc::new(Schema::new(cols));
    let heap_pages = read_pages(r)?;
    let row_count = r.u64()?;
    let heap = HeapFile::from_parts(pager.clone(), heap_pages, row_count);
    let maintainer = match r.u8()? {
        0 => None,
        1 => Some(crate::stats::StatsMaintainer::decode(r)?),
        t => return Err(Error::Corrupt(format!("bad maintainer tag {t}"))),
    };
    let stats = match r.u8()? {
        0 => None,
        1 => Some(Arc::new(crate::stats::TableStats::decode(r)?)),
        t => return Err(Error::Corrupt(format!("bad stats tag {t}"))),
    };
    let n_indexes = r.u32()? as usize;
    let mut indexes = BTreeMap::new();
    for _ in 0..n_indexes {
        let table = r.str()?;
        let n_spec_cols = r.u16()? as usize;
        let mut spec_cols = Vec::with_capacity(n_spec_cols);
        for _ in 0..n_spec_cols {
            spec_cols.push(r.str()?);
        }
        let spec = IndexSpec {
            table,
            columns: spec_cols,
        };
        let n_key_cols = r.u16()? as usize;
        let mut columns = Vec::with_capacity(n_key_cols);
        for _ in 0..n_key_cols {
            columns.push(ColumnId(r.u16()?));
        }
        let root = PageId(r.u32()?);
        let height = r.u32()?;
        let pages = read_pages(r)?;
        let leaf_count = r.u64()?;
        let entry_count = r.u64()?;
        let btree = BTree::from_parts(pager.clone(), root, height, pages, leaf_count, entry_count);
        if indexes
            .insert(
                spec.name(),
                IndexEntry {
                    spec,
                    columns,
                    btree,
                },
            )
            .is_some()
        {
            return Err(Error::Corrupt("duplicate index in catalog".into()));
        }
    }
    // Epochs are per-process: a recovered catalog restarts at 0 with
    // no pinned snapshots or in-flight builds.
    Ok(TableEntry {
        id,
        schema,
        heap,
        stats,
        maintainer,
        indexes,
        epoch: 0,
        version: None,
        build_logs: Vec::new(),
    })
}

fn read_pages(r: &mut Reader<'_>) -> Result<Vec<PageId>> {
    let n = r.u32()? as usize;
    let mut pages = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        pages.push(PageId(r.u32()?));
    }
    Ok(pages)
}

fn type_tag(ty: ValueType) -> u8 {
    match ty {
        ValueType::Int => 0,
        ValueType::Str => 1,
    }
}

fn type_from_tag(tag: u8) -> Result<ValueType> {
    match tag {
        0 => Ok(ValueType::Int),
        1 => Ok(ValueType::Str),
        t => Err(Error::Corrupt(format!("bad column type tag {t}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_rejects_truncation_and_trailing_bytes() {
        let mut out = Vec::new();
        put_u64(&mut out, 7);
        let mut r = Reader::new(&out[..4]);
        assert!(r.u64().is_err());
        let mut r = Reader::new(&out);
        assert_eq!(r.u64().unwrap(), 7);
        r.finish().unwrap();
        let mut out = Vec::new();
        put_u64(&mut out, 7);
        put_u8(&mut out, 1);
        let mut r = Reader::new(&out);
        r.u64().unwrap();
        assert!(matches!(r.finish(), Err(Error::Corrupt(_))));
    }

    #[test]
    fn value_round_trips() {
        let vals = vec![
            Value::Int(-5),
            Value::Str("héllo".into()),
            Value::Int(i64::MAX),
        ];
        let mut out = Vec::new();
        put_values(&mut out, &vals);
        put_opt_value(&mut out, &Some(Value::Str("x".into())));
        put_opt_value(&mut out, &None);
        let mut r = Reader::new(&out);
        assert_eq!(r.values().unwrap(), vals);
        assert_eq!(r.opt_value().unwrap(), Some(Value::Str("x".into())));
        assert_eq!(r.opt_value().unwrap(), None);
        r.finish().unwrap();
    }

    #[test]
    fn bad_magic_is_corrupt() {
        let pager = Arc::new(Pager::new());
        match decode_catalog(b"notacat!rest", pager) {
            Err(Error::Corrupt(_)) => {}
            Err(e) => panic!("expected Corrupt, got {e}"),
            Ok(_) => panic!("bad magic decoded"),
        }
    }
}

//! Std-only scoped worker pool for data-parallel fan-out.
//!
//! The engine's read surface is `&self` (see [`crate::Database`]), so a
//! batch of independent read statements can execute on any number of
//! threads. [`parallel_map`] is the one primitive every parallel caller
//! uses: run `f(0..n)` across a bounded set of scoped workers and
//! return results **in index order**, with deterministic error
//! selection — so a parallel run is observably identical to a serial
//! one wherever `f` is side-effect-commutative (as reads are).

use cdpd_types::Result;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default worker count: the `CDPD_THREADS` environment variable when
/// set to a positive integer, else [`std::thread::available_parallelism`]
/// (1 if unknown). `CDPD_THREADS=1` forces every parallel path in the
/// workspace down its serial branch, which is how the CI stress gate
/// pins thread counts.
pub fn default_threads() -> usize {
    match std::env::var("CDPD_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => 1,
        },
        Err(_) => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Apply `f` to every index in `0..n` using up to `threads` scoped
/// worker threads and return the results in index order.
///
/// * `threads <= 1` (or `n <= 1`) runs serially on the caller's thread
///   with no pool at all — the serial and parallel branches are
///   observably identical for commutative `f`, which is what the
///   parallel-replay equivalence tests pin down.
/// * Work is distributed by an atomic cursor, so stragglers don't
///   stall the queue; results are merged back by index.
/// * On failure the error for the **smallest failing index** is
///   returned, matching what a serial left-to-right run would surface.
///   (Unlike the serial branch, workers past the failing index may
///   already have run — acceptable for reads, which have no effects
///   beyond I/O counters.)
///
/// # Panics
/// Propagates panics from `f`.
pub fn parallel_map<T: Send>(
    n: usize,
    threads: usize,
    f: impl Fn(usize) -> Result<T> + Sync,
) -> Result<Vec<T>> {
    if n == 0 {
        return Ok(Vec::new());
    }
    let workers = threads.min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<Result<T>>> = std::iter::repeat_with(|| None).take(n).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            for (i, r) in handle.join().expect("parallel_map worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    let mut results = Vec::with_capacity(n);
    for slot in slots {
        results.push(slot.expect("every index visited")?);
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdpd_types::Error;

    #[test]
    fn preserves_index_order() {
        for threads in [1, 2, 8] {
            let out = parallel_map(100, threads, |i| Ok(i * 3)).unwrap();
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(parallel_map(0, 8, |_| Ok(1)).unwrap(), Vec::<i32>::new());
        assert_eq!(parallel_map(1, 8, Ok).unwrap(), vec![0]);
    }

    #[test]
    fn reports_smallest_failing_index() {
        for threads in [1, 2, 8] {
            let err = parallel_map(64, threads, |i| -> Result<usize> {
                if i % 2 == 1 {
                    Err(Error::InvalidArgument(format!("boom {i}")))
                } else {
                    Ok(i)
                }
            })
            .unwrap_err();
            assert_eq!(
                err.to_string(),
                "invalid argument: boom 1",
                "threads={threads}"
            );
        }
    }

    #[test]
    fn all_indexes_visited_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let out = parallel_map(1000, 8, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            Ok(i)
        })
        .unwrap();
        assert_eq!(out.len(), 1000);
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn env_override_parses() {
        // Can't mutate the environment safely in-process; just pin the
        // fallback contract.
        assert!(default_threads() >= 1);
    }
}

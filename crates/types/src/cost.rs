use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// Fixed-point cost unit used throughout the workspace.
///
/// One *logical page I/O* equals [`Cost::IO_SCALE`] raw units, so CPU
/// terms smaller than a page read can still be expressed without
/// resorting to floating point. Using an integer keeps costs totally
/// ordered (`Ord`), hashable, and bit-for-bit deterministic across
/// platforms — all three properties are load-bearing for the shortest
/// path and path-ranking algorithms, which sort and deduplicate by cost.
///
/// Arithmetic saturates rather than wrapping: an "infinite" cost (e.g. a
/// configuration that violates the space bound) is modelled as
/// [`Cost::MAX`] and must stay maximal under addition.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cost(u64);

impl Cost {
    /// The zero cost.
    pub const ZERO: Cost = Cost(0);
    /// Saturation point; used as "infinity" for infeasible choices.
    pub const MAX: Cost = Cost(u64::MAX);
    /// Raw units per logical page I/O (fixed-point scale).
    pub const IO_SCALE: u64 = 1024;

    /// Cost of `pages` logical page I/Os.
    pub const fn from_ios(pages: u64) -> Cost {
        Cost(pages.saturating_mul(Self::IO_SCALE))
    }

    /// Cost from raw fixed-point units.
    pub const fn from_raw(raw: u64) -> Cost {
        Cost(raw)
    }

    /// Raw fixed-point units.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// This cost expressed in logical page I/Os (rounded down).
    pub const fn ios(self) -> u64 {
        self.0 / Self::IO_SCALE
    }

    /// This cost as a floating-point number of page I/Os (for reporting).
    pub fn as_f64_ios(self) -> f64 {
        self.0 as f64 / Self::IO_SCALE as f64
    }

    /// Saturating addition.
    pub const fn saturating_add(self, rhs: Cost) -> Cost {
        Cost(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (clamps at zero).
    pub const fn saturating_sub(self, rhs: Cost) -> Cost {
        Cost(self.0.saturating_sub(rhs.0))
    }

    /// Multiply this cost by an integer weight (e.g. a statement that
    /// occurs `w` times in a summarized workload block), saturating.
    pub const fn scale(self, w: u64) -> Cost {
        Cost(self.0.saturating_mul(w))
    }

    /// True if this cost is the "infinite" sentinel.
    pub const fn is_infinite(self) -> bool {
        self.0 == u64::MAX
    }
}

impl Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        self.saturating_add(rhs)
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        *self = *self + rhs;
    }
}

impl Sub for Cost {
    type Output = Cost;
    fn sub(self, rhs: Cost) -> Cost {
        self.saturating_sub(rhs)
    }
}

impl Mul<u64> for Cost {
    type Output = Cost;
    fn mul(self, rhs: u64) -> Cost {
        self.scale(rhs)
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, Add::add)
    }
}

impl fmt::Debug for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "Cost(∞)")
        } else {
            write!(f, "Cost({:.3} IOs)", self.as_f64_ios())
        }
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            write!(f, "∞")
        } else {
            write!(f, "{:.1}", self.as_f64_ios())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_roundtrip() {
        let c = Cost::from_ios(12_500);
        assert_eq!(c.ios(), 12_500);
        assert_eq!(c.raw(), 12_500 * Cost::IO_SCALE);
    }

    #[test]
    fn saturation_preserves_infinity() {
        let inf = Cost::MAX;
        assert!(inf.is_infinite());
        assert!((inf + Cost::from_ios(5)).is_infinite());
        assert!(inf.scale(3).is_infinite());
    }

    #[test]
    fn ordering_and_sum() {
        let a = Cost::from_ios(1);
        let b = Cost::from_ios(2);
        assert!(a < b);
        let total: Cost = [a, b, a].into_iter().sum();
        assert_eq!(total, Cost::from_ios(4));
    }

    #[test]
    fn sub_clamps_at_zero() {
        assert_eq!(Cost::from_ios(1) - Cost::from_ios(5), Cost::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Cost::from_ios(3).to_string(), "3.0");
        assert_eq!(Cost::MAX.to_string(), "∞");
    }

    #[test]
    fn scale_by_weight() {
        assert_eq!(Cost::from_ios(10) * 3, Cost::from_ios(30));
    }
}

//! Shared primitive types for the `cdpd` workspace.
//!
//! This crate holds the vocabulary that every other crate speaks:
//! [`Value`]s and [`Schema`]s describing relational data, typed
//! identifiers ([`TableId`], [`ColumnId`], [`IndexId`], [`PageId`],
//! [`Rid`]), the fixed-point [`Cost`] unit used by the cost model and the
//! design advisor, and the workspace-wide [`Error`] type.
//!
//! Keeping these in a leaf crate lets the algorithm crates
//! (`cdpd-graph`, `cdpd-core`) stay independent of the storage engine
//! while still sharing one cost and error vocabulary with it.

#![warn(missing_docs)]

mod cost;
mod error;
mod ids;
mod schema;
mod value;

pub use cost::Cost;
pub use error::{Error, Result};
pub use ids::{ColumnId, IndexId, PageId, Rid, TableId};
pub use schema::{ColumnDef, Schema};
pub use value::{Value, ValueType};

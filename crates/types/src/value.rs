use std::cmp::Ordering;
use std::fmt;

/// The data types storable in a column.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ValueType {
    /// 64-bit signed integer.
    Int,
    /// Variable-length UTF-8 string.
    Str,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueType::Int => write!(f, "INT"),
            ValueType::Str => write!(f, "TEXT"),
        }
    }
}

/// A single column value.
///
/// Values of different types never compare equal and have a fixed
/// cross-type order (`Int < Str`) so that composite index keys remain
/// totally ordered even if a schema is mistyped; well-typed code never
/// relies on the cross-type branch.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// The type of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Int(_) => ValueType::Int,
            Value::Str(_) => ValueType::Str,
        }
    }

    /// The integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Str(_) => None,
        }
    }

    /// The string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Int(_) => None,
        }
    }

    /// Number of bytes this value occupies in the on-page row encoding
    /// (tag byte + payload; strings carry a u16 length prefix).
    pub fn encoded_len(&self) -> usize {
        match self {
            Value::Int(_) => 1 + 8,
            Value::Str(s) => 1 + 2 + s.len(),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Value) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Value) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Int(_), Value::Str(_)) => Ordering::Less,
            (Value::Str(_), Value::Int(_)) => Ordering::Greater,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Int(5).as_str(), None);
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from("x").value_type(), ValueType::Str);
    }

    #[test]
    fn total_order() {
        let mut v = vec![
            Value::from("b"),
            Value::Int(10),
            Value::from("a"),
            Value::Int(-3),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Value::Int(-3),
                Value::Int(10),
                Value::from("a"),
                Value::from("b")
            ]
        );
    }

    #[test]
    fn encoded_len_matches_layout() {
        assert_eq!(Value::Int(0).encoded_len(), 9);
        assert_eq!(Value::from("abc").encoded_len(), 6);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::from("hi").to_string(), "'hi'");
    }
}

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $inner);

        impl $name {
            /// The raw numeric identifier.
            pub const fn raw(self) -> $inner {
                self.0
            }
            /// The identifier as a `usize`, for direct slice indexing.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                $name(v)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a table within a [`crate::Schema`]-bearing catalog.
    TableId,
    u32,
    "t"
);
id_type!(
    /// Zero-based position of a column within its table's schema.
    ColumnId,
    u16,
    "c"
);
id_type!(
    /// Identifies a (candidate or materialized) index.
    IndexId,
    u32,
    "ix"
);
id_type!(
    /// Identifies a page within a pager / file.
    PageId,
    u32,
    "p"
);

/// A record identifier: physical address of a heap tuple.
///
/// `Rid`s order first by page then by slot, which is also physical scan
/// order; B+-tree entries use the `Rid` as a key tiebreaker so duplicate
/// index keys stay deterministic.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Rid {
    /// Heap page containing the tuple.
    pub page: PageId,
    /// Slot number within the page.
    pub slot: u16,
}

impl Rid {
    /// Construct a record id from page and slot.
    pub const fn new(page: PageId, slot: u16) -> Rid {
        Rid { page, slot }
    }
}

impl fmt::Debug for Rid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}:{})", self.page, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_basics() {
        let t = TableId::from(7);
        assert_eq!(t.raw(), 7);
        assert_eq!(t.index(), 7);
        assert_eq!(format!("{t}"), "t7");
        assert_eq!(format!("{t:?}"), "t7");
    }

    #[test]
    fn rid_orders_by_page_then_slot() {
        let a = Rid::new(PageId(1), 9);
        let b = Rid::new(PageId(2), 0);
        let c = Rid::new(PageId(2), 1);
        assert!(a < b && b < c);
    }

    #[test]
    fn ids_usable_as_map_keys() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(ColumnId(3), "c");
        assert_eq!(m[&ColumnId(3)], "c");
    }
}

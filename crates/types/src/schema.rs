use crate::{ColumnId, Value, ValueType};
use std::fmt;

/// Definition of a single column.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ColumnDef {
    /// Column name (unique within the table, case-sensitive).
    pub name: String,
    /// Declared type.
    pub ty: ValueType,
}

impl ColumnDef {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: ValueType) -> ColumnDef {
        ColumnDef {
            name: name.into(),
            ty,
        }
    }

    /// An `INT` column.
    pub fn int(name: impl Into<String>) -> ColumnDef {
        ColumnDef::new(name, ValueType::Int)
    }

    /// A `TEXT` column.
    pub fn text(name: impl Into<String>) -> ColumnDef {
        ColumnDef::new(name, ValueType::Str)
    }
}

/// An ordered list of column definitions describing a table's rows.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Build a schema from column definitions.
    ///
    /// # Panics
    /// Panics if two columns share a name — schemas are built by library
    /// code from validated DDL, so this is a programming error.
    pub fn new(columns: Vec<ColumnDef>) -> Schema {
        for (i, a) in columns.iter().enumerate() {
            for b in &columns[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate column name {:?}", a.name);
            }
        }
        Schema { columns }
    }

    /// The column definitions in declaration order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Resolve a column name to its position.
    pub fn column_id(&self, name: &str) -> Option<ColumnId> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .map(|i| ColumnId(i as u16))
    }

    /// The definition of column `id`.
    pub fn column(&self, id: ColumnId) -> Option<&ColumnDef> {
        self.columns.get(id.index())
    }

    /// Check that `row` matches this schema (arity and types).
    pub fn validates(&self, row: &[Value]) -> bool {
        row.len() == self.columns.len()
            && row
                .iter()
                .zip(&self.columns)
                .all(|(v, c)| v.value_type() == c.ty)
    }

    /// Upper bound on the encoded byte length of a row of this schema,
    /// assuming strings of at most `max_str` bytes. Used by the page
    /// layout to size slots.
    pub fn max_row_len(&self, max_str: usize) -> usize {
        self.columns
            .iter()
            .map(|c| match c.ty {
                ValueType::Int => 9,
                ValueType::Str => 3 + max_str,
            })
            .sum()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abcd() -> Schema {
        Schema::new(vec![
            ColumnDef::int("a"),
            ColumnDef::int("b"),
            ColumnDef::int("c"),
            ColumnDef::int("d"),
        ])
    }

    #[test]
    fn lookup_by_name() {
        let s = abcd();
        assert_eq!(s.column_id("c"), Some(ColumnId(2)));
        assert_eq!(s.column_id("z"), None);
        assert_eq!(s.column(ColumnId(0)).unwrap().name, "a");
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn rejects_duplicate_names() {
        Schema::new(vec![ColumnDef::int("a"), ColumnDef::int("a")]);
    }

    #[test]
    fn row_validation() {
        let s = abcd();
        let ok: Vec<Value> = (0..4).map(Value::Int).collect();
        assert!(s.validates(&ok));
        assert!(!s.validates(&ok[..3]));
        let bad = vec![
            Value::Int(1),
            Value::from("x"),
            Value::Int(3),
            Value::Int(4),
        ];
        assert!(!s.validates(&bad));
    }

    #[test]
    fn display_and_max_len() {
        let s = Schema::new(vec![ColumnDef::int("a"), ColumnDef::text("t")]);
        assert_eq!(s.to_string(), "(a INT, t TEXT)");
        assert_eq!(s.max_row_len(10), 9 + 13);
    }
}

use std::fmt;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced anywhere in the `cdpd` workspace.
///
/// A single error enum (rather than one per crate) keeps `?` flowing
/// across crate boundaries without a ladder of `From` impls; variants
/// are grouped by subsystem.
#[derive(Debug)]
pub enum Error {
    /// SQL text failed to lex or parse. Carries position and message.
    Parse {
        /// Byte offset into the input where the error was detected.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// A named catalog object (table, column, index) does not exist.
    NotFound(String),
    /// An object with this name already exists.
    AlreadyExists(String),
    /// A row or value did not match the schema it was used with.
    TypeMismatch(String),
    /// A page, slot, or record id was out of range.
    Corrupt(String),
    /// A value or row is too large for the page layout.
    TooLarge(String),
    /// The design problem is infeasible (e.g. no configuration fits the
    /// space bound, or the change budget cannot reach a required final
    /// configuration).
    Infeasible(String),
    /// Invalid argument to a public API.
    InvalidArgument(String),
    /// Underlying I/O error (trace files, experiment output).
    Io(std::io::Error),
}

impl Error {
    /// Shorthand for a parse error.
    pub fn parse(offset: usize, message: impl Into<String>) -> Error {
        Error::Parse {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            Error::NotFound(what) => write!(f, "not found: {what}"),
            Error::AlreadyExists(what) => write!(f, "already exists: {what}"),
            Error::TypeMismatch(what) => write!(f, "type mismatch: {what}"),
            Error::Corrupt(what) => write!(f, "storage corruption: {what}"),
            Error::TooLarge(what) => write!(f, "too large: {what}"),
            Error::Infeasible(what) => write!(f, "infeasible design problem: {what}"),
            Error::InvalidArgument(what) => write!(f, "invalid argument: {what}"),
            Error::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Error {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            Error::parse(5, "expected FROM").to_string(),
            "parse error at byte 5: expected FROM"
        );
        assert_eq!(
            Error::NotFound("table t".into()).to_string(),
            "not found: table t"
        );
    }

    #[test]
    fn io_source_chains() {
        use std::error::Error as _;
        let e = Error::from(std::io::Error::other("boom"));
        assert!(e.source().is_some());
    }

    #[test]
    fn question_mark_compatible() {
        fn inner() -> Result<()> {
            Err(Error::Infeasible("k too small".into()))
        }
        assert!(inner().is_err());
    }
}

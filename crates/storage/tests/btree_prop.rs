//! Property tests: the paged B+-tree must behave exactly like an
//! in-memory ordered map over `(values, rid)` keys, under arbitrary
//! interleavings of inserts and deletes, and seeks must match the
//! model's range queries.
//!
//! The durable variants run the same model against a file-backed pager:
//! mutate → commit → checkpoint → reopen must reattach the identical
//! tree (with both unbounded and tiny page caches, so recovery reads go
//! through eviction + backend refetch), and corrupted data or checksum
//! files must surface as clean [`Err`]s — never as wrong answers or UB.

use cdpd_storage::codec::decode_key;
use cdpd_storage::{BTree, DurableOptions, MemVfs, Pager, PAGE_SIZE};
use cdpd_testkit::prop::{btree_set_of, vec_of, Config, Strategy};
use cdpd_testkit::{one_of, props};
use cdpd_types::{PageId, Rid, Value};
use std::collections::BTreeSet;
use std::sync::Arc;

#[derive(Clone, Debug)]
enum Op {
    Insert(i64, u32),
    Delete(i64, u32),
    Seek(i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    one_of![
        3 => (0i64..200, 0u32..8).prop_map(|(k, r)| Op::Insert(k, r)),
        1 => (0i64..200, 0u32..8).prop_map(|(k, r)| Op::Delete(k, r)),
        // Deletes targeting the pre-populated rid range of the
        // pre-split variant (hits separator keys).
        1 => (0i64..200, 100u32..108).prop_map(|(k, r)| Op::Delete(k, r)),
        1 => (0i64..220).prop_map(Op::Seek),
    ]
}

fn tree_entries(tree: &BTree) -> Vec<(i64, Rid)> {
    let mut out = Vec::new();
    let mut cur = tree.scan_all().unwrap();
    while let Some((k, rid)) = cur.next_entry().unwrap() {
        let vals = decode_key(k).unwrap();
        out.push((vals[0].as_int().unwrap(), rid));
    }
    out
}

/// Apply `ops` to both the tree and the model, checking each step.
fn run_ops(tree: &mut BTree, model: &mut BTreeSet<(i64, u32)>, ops: &[Op]) {
    for op in ops {
        match *op {
            Op::Insert(k, r) => {
                let res = tree.insert(&[Value::Int(k)], Rid::new(PageId(r), 0));
                if model.insert((k, r)) {
                    assert!(res.is_ok());
                } else {
                    assert!(res.is_err(), "duplicate must be rejected");
                }
            }
            Op::Delete(k, r) => {
                let removed = tree
                    .delete(&[Value::Int(k)], Rid::new(PageId(r), 0))
                    .unwrap();
                assert_eq!(removed, model.remove(&(k, r)));
            }
            Op::Seek(k) => {
                let mut cur = tree.seek(&[Value::Int(k)]).unwrap();
                let got = cur.next_entry().unwrap().map(|(key, rid)| {
                    (
                        decode_key(key).unwrap()[0].as_int().unwrap(),
                        rid.page.raw(),
                    )
                });
                let want = model.range((k, 0)..).next().copied();
                assert_eq!(got, want, "seek({k}) diverged from model");
            }
        }
    }
}

fn assert_matches_model(tree: &BTree, model: &BTreeSet<(i64, u32)>) {
    let got = tree_entries(tree);
    let want: Vec<(i64, Rid)> = model
        .iter()
        .map(|&(k, r)| (k, Rid::new(PageId(r), 0)))
        .collect();
    assert_eq!(got, want);
}

props! {
    config: Config::with_cases(48);

    fn matches_ordered_set_model(ops in vec_of(op_strategy(), 1..300)) {
        let mut tree = BTree::create(Arc::new(Pager::new())).unwrap();
        let mut model: BTreeSet<(i64, u32)> = BTreeSet::new();
        run_ops(&mut tree, &mut model, ops);
        assert_matches_model(&tree, &model);
        assert_eq!(tree.entry_count() as usize, model.len());
    }

    fn matches_model_on_presplit_tree(ops in vec_of(op_strategy(), 1..200)) {
        // Same model test, but starting from a tree big enough to have
        // split (multi-level), so separator-boundary behaviour is
        // exercised — a descent bug here once survived the small-tree
        // variant above.
        let mut tree = BTree::create(Arc::new(Pager::new())).unwrap();
        let mut model: BTreeSet<(i64, u32)> = BTreeSet::new();
        for i in 0..1500i64 {
            let (k, r) = (i % 200, (i / 200) as u32 + 100);
            tree.insert(&[Value::Int(k)], Rid::new(PageId(r), 0)).unwrap();
            model.insert((k, r));
        }
        assert!(tree.height() >= 2, "pre-population must split");
        run_ops(&mut tree, &mut model, ops);
        assert_matches_model(&tree, &model);
    }

    fn bulk_load_matches_model(keys in btree_set_of((0i64..100_000, 0u32..4), 0..2000)) {
        let entries: Vec<(Vec<Value>, Rid)> = keys
            .iter()
            .map(|&(k, r)| (vec![Value::Int(k)], Rid::new(PageId(r), 0)))
            .collect();
        let tree = BTree::bulk_load(Arc::new(Pager::new()), entries).unwrap();
        let got = tree_entries(&tree);
        let want: Vec<(i64, Rid)> = keys
            .iter()
            .map(|&(k, r)| (k, Rid::new(PageId(r), 0)))
            .collect();
        assert_eq!(got, want);
    }

    fn durable_tree_round_trips_through_commit_and_reopen(
        ops in vec_of(op_strategy(), 1..200),
    ) {
        // Tiny cache on odd-length scripts: dirty pages pin, clean ones
        // evict, and the post-reopen verification must refetch from the
        // file backend.
        let cache_pages = if ops.len() % 2 == 0 { 0 } else { 8 };
        let opts = DurableOptions {
            cache_pages,
            group_commit: 1,
            checkpoint_wal_bytes: 0,
        };
        let vfs = MemVfs::new();
        let mut model: BTreeSet<(i64, u32)> = BTreeSet::new();
        let parts = {
            let open = Pager::open_durable(Arc::new(vfs.clone()), opts.clone()).unwrap();
            let pager = Arc::new(open.pager);
            let mut tree = BTree::create(Arc::clone(&pager)).unwrap();
            // Commit mid-script too, so reopen replays a WAL whose tail
            // rewrites pages an earlier checkpoint already wrote back.
            let mid = ops.len() / 2;
            run_ops(&mut tree, &mut model, &ops[..mid]);
            pager.commit(b"mid").unwrap();
            pager.checkpoint().unwrap();
            run_ops(&mut tree, &mut model, &ops[mid..]);
            pager.commit(b"end").unwrap();
            if ops.len() % 3 == 0 {
                pager.checkpoint().unwrap();
            }
            (
                tree.root(),
                tree.height(),
                tree.pages().to_vec(),
                tree.leaf_count(),
                tree.entry_count(),
            )
        };

        let open = Pager::open_durable(Arc::new(vfs), opts).unwrap();
        assert_eq!(open.app_meta, b"end");
        let (root, height, pages, leaves, entries) = parts;
        let mut tree =
            BTree::from_parts(Arc::new(open.pager), root, height, pages, leaves, entries);
        assert_matches_model(&tree, &model);
        assert_eq!(tree.entry_count() as usize, model.len());
        // Seeks against the recovered tree still match the model.
        run_ops(
            &mut tree,
            &mut model,
            &[Op::Seek(0), Op::Seek(100), Op::Seek(219)],
        );
    }

    fn composite_keys_scan_in_tuple_order(
        pairs in btree_set_of((0i64..50, 0i64..50), 0..500),
    ) {
        let entries: Vec<(Vec<Value>, Rid)> = pairs
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| {
                (vec![Value::Int(a), Value::Int(b)], Rid::new(PageId(i as u32), 0))
            })
            .collect();
        let mut sorted = entries.clone();
        sorted.sort_by(|x, y| x.0.cmp(&y.0).then(x.1.cmp(&y.1)));
        let tree = BTree::bulk_load(Arc::new(Pager::new()), sorted).unwrap();
        let mut cur = tree.scan_all().unwrap();
        let mut prev: Option<Vec<Value>> = None;
        let mut n = 0;
        while let Some((k, _)) = cur.next_entry().unwrap() {
            let vals = decode_key(k).unwrap();
            if let Some(p) = &prev {
                assert!(p <= &vals, "scan out of order");
            }
            prev = Some(vals);
            n += 1;
        }
        assert_eq!(n, pairs.len());
    }
}

// --- Corruption negatives ----------------------------------------------

type Parts = (PageId, u32, Vec<PageId>, u64, u64);

/// A checkpointed multi-level tree on a `MemVfs`, ready to be damaged.
fn checkpointed_tree(vfs: &MemVfs) -> Parts {
    let opts = DurableOptions {
        // Evict everything evictable so post-reopen reads must hit the
        // (damaged) file backend rather than a warm cache.
        cache_pages: 1,
        group_commit: 1,
        checkpoint_wal_bytes: 0,
    };
    let open = Pager::open_durable(Arc::new(vfs.clone()), opts).unwrap();
    let pager = Arc::new(open.pager);
    let mut tree = BTree::create(Arc::clone(&pager)).unwrap();
    for i in 0..1500i64 {
        tree.insert(
            &[Value::Int(i % 200)],
            Rid::new(PageId((i / 200) as u32), 0),
        )
        .unwrap();
    }
    assert!(tree.height() >= 2);
    pager.commit(b"tree").unwrap();
    pager.checkpoint().unwrap();
    (
        tree.root(),
        tree.height(),
        tree.pages().to_vec(),
        tree.leaf_count(),
        tree.entry_count(),
    )
}

/// Reopen over (possibly damaged) bytes and fully scan the tree;
/// `Ok(n)` is the entry count, `Err` is the clean failure under test.
fn reopen_and_scan(vfs: &MemVfs, parts: &Parts) -> cdpd_types::Result<usize> {
    let opts = DurableOptions {
        cache_pages: 1,
        group_commit: 1,
        checkpoint_wal_bytes: 0,
    };
    let open = Pager::open_durable(Arc::new(vfs.clone()), opts)?;
    let (root, height, pages, leaves, entries) = parts.clone();
    let tree = BTree::from_parts(Arc::new(open.pager), root, height, pages, leaves, entries);
    let mut cur = tree.scan_all()?;
    let mut n = 0;
    while cur.next_entry()?.is_some() {
        n += 1;
    }
    Ok(n)
}

/// A bit flip in any committed data page is detected by the page
/// checksum: reads fail cleanly instead of decoding garbage.
#[test]
fn torn_or_flipped_data_pages_fail_reads_cleanly() {
    let vfs = MemVfs::new();
    let parts = checkpointed_tree(&vfs);
    assert_eq!(reopen_and_scan(&vfs, &parts).unwrap(), 1500);

    // Flip one byte in every page so the scan cannot dodge the damage.
    let mut data = vfs.snapshot("data").unwrap();
    for page in data.chunks_mut(PAGE_SIZE) {
        page[page.len() / 3] ^= 0x40;
    }
    vfs.overwrite("data", data);
    let err = reopen_and_scan(&vfs, &parts).expect_err("corruption must not decode");
    assert!(
        err.to_string().contains("checksum") || err.to_string().contains("corrupt"),
        "unexpected error shape: {err}"
    );

    // A torn (short) data file fails cleanly too.
    let vfs = MemVfs::new();
    let parts = checkpointed_tree(&vfs);
    let data = vfs.snapshot("data").unwrap();
    vfs.overwrite("data", data[..data.len() / 2].to_vec());
    reopen_and_scan(&vfs, &parts).expect_err("torn data file must not decode");
}

/// Damage to the checksum file itself is just as fatal — a stale or
/// truncated `sums` must never vouch for the wrong bytes.
#[test]
fn corrupt_checksum_file_fails_cleanly() {
    let vfs = MemVfs::new();
    let parts = checkpointed_tree(&vfs);

    let sums = vfs.snapshot("sums").unwrap();
    let mut bad = sums.clone();
    for b in bad.iter_mut() {
        *b ^= 0x11;
    }
    vfs.overwrite("sums", bad);
    reopen_and_scan(&vfs, &parts).expect_err("mismatched checksums must not verify");

    vfs.overwrite("sums", sums[..sums.len() / 2].to_vec());
    reopen_and_scan(&vfs, &parts).expect_err("truncated checksum file must not verify");
}

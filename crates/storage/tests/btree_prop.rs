//! Property tests: the paged B+-tree must behave exactly like an
//! in-memory ordered map over `(values, rid)` keys, under arbitrary
//! interleavings of inserts and deletes, and seeks must match the
//! model's range queries.

use cdpd_storage::codec::decode_key;
use cdpd_storage::{BTree, Pager};
use cdpd_testkit::prop::{btree_set_of, vec_of, Config, Strategy};
use cdpd_testkit::{one_of, props};
use cdpd_types::{PageId, Rid, Value};
use std::collections::BTreeSet;
use std::sync::Arc;

#[derive(Clone, Debug)]
enum Op {
    Insert(i64, u32),
    Delete(i64, u32),
    Seek(i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    one_of![
        3 => (0i64..200, 0u32..8).prop_map(|(k, r)| Op::Insert(k, r)),
        1 => (0i64..200, 0u32..8).prop_map(|(k, r)| Op::Delete(k, r)),
        // Deletes targeting the pre-populated rid range of the
        // pre-split variant (hits separator keys).
        1 => (0i64..200, 100u32..108).prop_map(|(k, r)| Op::Delete(k, r)),
        1 => (0i64..220).prop_map(Op::Seek),
    ]
}

fn tree_entries(tree: &BTree) -> Vec<(i64, Rid)> {
    let mut out = Vec::new();
    let mut cur = tree.scan_all().unwrap();
    while let Some((k, rid)) = cur.next_entry().unwrap() {
        let vals = decode_key(k).unwrap();
        out.push((vals[0].as_int().unwrap(), rid));
    }
    out
}

/// Apply `ops` to both the tree and the model, checking each step.
fn run_ops(tree: &mut BTree, model: &mut BTreeSet<(i64, u32)>, ops: &[Op]) {
    for op in ops {
        match *op {
            Op::Insert(k, r) => {
                let res = tree.insert(&[Value::Int(k)], Rid::new(PageId(r), 0));
                if model.insert((k, r)) {
                    assert!(res.is_ok());
                } else {
                    assert!(res.is_err(), "duplicate must be rejected");
                }
            }
            Op::Delete(k, r) => {
                let removed = tree
                    .delete(&[Value::Int(k)], Rid::new(PageId(r), 0))
                    .unwrap();
                assert_eq!(removed, model.remove(&(k, r)));
            }
            Op::Seek(k) => {
                let mut cur = tree.seek(&[Value::Int(k)]).unwrap();
                let got = cur.next_entry().unwrap().map(|(key, rid)| {
                    (
                        decode_key(key).unwrap()[0].as_int().unwrap(),
                        rid.page.raw(),
                    )
                });
                let want = model.range((k, 0)..).next().copied();
                assert_eq!(got, want, "seek({k}) diverged from model");
            }
        }
    }
}

fn assert_matches_model(tree: &BTree, model: &BTreeSet<(i64, u32)>) {
    let got = tree_entries(tree);
    let want: Vec<(i64, Rid)> = model
        .iter()
        .map(|&(k, r)| (k, Rid::new(PageId(r), 0)))
        .collect();
    assert_eq!(got, want);
}

props! {
    config: Config::with_cases(48);

    fn matches_ordered_set_model(ops in vec_of(op_strategy(), 1..300)) {
        let mut tree = BTree::create(Arc::new(Pager::new())).unwrap();
        let mut model: BTreeSet<(i64, u32)> = BTreeSet::new();
        run_ops(&mut tree, &mut model, ops);
        assert_matches_model(&tree, &model);
        assert_eq!(tree.entry_count() as usize, model.len());
    }

    fn matches_model_on_presplit_tree(ops in vec_of(op_strategy(), 1..200)) {
        // Same model test, but starting from a tree big enough to have
        // split (multi-level), so separator-boundary behaviour is
        // exercised — a descent bug here once survived the small-tree
        // variant above.
        let mut tree = BTree::create(Arc::new(Pager::new())).unwrap();
        let mut model: BTreeSet<(i64, u32)> = BTreeSet::new();
        for i in 0..1500i64 {
            let (k, r) = (i % 200, (i / 200) as u32 + 100);
            tree.insert(&[Value::Int(k)], Rid::new(PageId(r), 0)).unwrap();
            model.insert((k, r));
        }
        assert!(tree.height() >= 2, "pre-population must split");
        run_ops(&mut tree, &mut model, ops);
        assert_matches_model(&tree, &model);
    }

    fn bulk_load_matches_model(keys in btree_set_of((0i64..100_000, 0u32..4), 0..2000)) {
        let entries: Vec<(Vec<Value>, Rid)> = keys
            .iter()
            .map(|&(k, r)| (vec![Value::Int(k)], Rid::new(PageId(r), 0)))
            .collect();
        let tree = BTree::bulk_load(Arc::new(Pager::new()), entries).unwrap();
        let got = tree_entries(&tree);
        let want: Vec<(i64, Rid)> = keys
            .iter()
            .map(|&(k, r)| (k, Rid::new(PageId(r), 0)))
            .collect();
        assert_eq!(got, want);
    }

    fn composite_keys_scan_in_tuple_order(
        pairs in btree_set_of((0i64..50, 0i64..50), 0..500),
    ) {
        let entries: Vec<(Vec<Value>, Rid)> = pairs
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| {
                (vec![Value::Int(a), Value::Int(b)], Rid::new(PageId(i as u32), 0))
            })
            .collect();
        let mut sorted = entries.clone();
        sorted.sort_by(|x, y| x.0.cmp(&y.0).then(x.1.cmp(&y.1)));
        let tree = BTree::bulk_load(Arc::new(Pager::new()), sorted).unwrap();
        let mut cur = tree.scan_all().unwrap();
        let mut prev: Option<Vec<Value>> = None;
        let mut n = 0;
        while let Some((k, _)) = cur.next_entry().unwrap() {
            let vals = decode_key(k).unwrap();
            if let Some(p) = &prev {
                assert!(p <= &vals, "scan out of order");
            }
            prev = Some(vals);
            n += 1;
        }
        assert_eq!(n, pairs.len());
    }
}

//! Write-ahead log: the durable pager's crash-consistency mechanism.
//!
//! The log is a flat sequence of checksummed frames on one VFS file:
//!
//! ```text
//! page frame:   [0x01][page_id: u32 LE][payload: PAGE_SIZE bytes][crc64: u64 LE]
//! commit frame: [0x02][seq: u64 LE][meta_len: u32 LE][meta][crc64: u64 LE]
//! ```
//!
//! A *transaction* is zero or more page frames followed by one commit
//! frame; the commit's `meta` carries the pager allocation state and
//! the application's catalog blob, so replaying a committed prefix
//! reconstructs both page contents and everything needed to interpret
//! them. Each crc64 covers its whole frame (tag through payload), so
//! recovery ([`scan`]) can walk the log from the start and stop at the
//! first torn, short, or corrupt frame: everything up to the last valid
//! *commit* frame is the committed prefix, and the torn tail past it is
//! truncated and never observed.
//!
//! Durability policy is group commit: the writer counts commits and
//! fsyncs every `group_commit`-th one ([`WalWriter::append_commit`]),
//! trading a bounded window of recent commits for fewer fsyncs —
//! checkpointing ([`crate::Pager::checkpoint`]) later flushes dirty
//! pages to the data file and truncates the log.

use crate::crc::{crc64_begin, crc64_finish, crc64_update};
use crate::pager::{Page, PAGE_SIZE};
use cdpd_types::{PageId, Result};
use std::sync::Arc;

const TAG_PAGE: u8 = 1;
const TAG_COMMIT: u8 = 2;

/// On-log size of one page frame.
pub(crate) const PAGE_FRAME_LEN: u64 = 1 + 4 + PAGE_SIZE as u64 + 8;

/// Appends frames to the log file and tracks its valid length.
pub(crate) struct WalWriter {
    file: Box<dyn crate::vfs::VfsFile>,
    len: u64,
    commits_since_sync: usize,
}

impl WalWriter {
    /// Wrap `file`, treating `valid_len` (from a recovery [`scan`]) as
    /// the end of the log; anything past it is truncated away.
    pub(crate) fn new(file: Box<dyn crate::vfs::VfsFile>, valid_len: u64) -> Result<WalWriter> {
        if file.len()? > valid_len {
            file.truncate(valid_len)?;
        }
        Ok(WalWriter {
            file,
            len: valid_len,
            commits_since_sync: 0,
        })
    }

    /// Current log length in bytes.
    pub(crate) fn len(&self) -> u64 {
        self.len
    }

    /// Append one page frame (no fsync; pages are only durable once
    /// their commit frame is).
    pub(crate) fn append_page(&mut self, id: PageId, page: &Page) -> Result<()> {
        let mut frame = Vec::with_capacity(PAGE_FRAME_LEN as usize);
        frame.push(TAG_PAGE);
        frame.extend_from_slice(&id.raw().to_le_bytes());
        frame.extend_from_slice(&page[..]);
        let crc = crc64_finish(crc64_update(crc64_begin(), &frame));
        frame.extend_from_slice(&crc.to_le_bytes());
        self.file.write_at(self.len, &frame)?;
        self.len += frame.len() as u64;
        Ok(())
    }

    /// Append a commit frame sealing the transaction, then fsync if
    /// `group_commit` commits have accumulated since the last sync.
    /// Returns whether this commit was synced.
    pub(crate) fn append_commit(
        &mut self,
        seq: u64,
        meta: &[u8],
        group_commit: usize,
    ) -> Result<bool> {
        let mut frame = Vec::with_capacity(1 + 8 + 4 + meta.len() + 8);
        frame.push(TAG_COMMIT);
        frame.extend_from_slice(&seq.to_le_bytes());
        frame.extend_from_slice(&(meta.len() as u32).to_le_bytes());
        frame.extend_from_slice(meta);
        let crc = crc64_finish(crc64_update(crc64_begin(), &frame));
        frame.extend_from_slice(&crc.to_le_bytes());
        self.file.write_at(self.len, &frame)?;
        self.len += frame.len() as u64;
        self.commits_since_sync += 1;
        if self.commits_since_sync >= group_commit.max(1) {
            self.file.sync()?;
            self.commits_since_sync = 0;
            return Ok(true);
        }
        Ok(false)
    }

    /// Force the log to stable storage regardless of group-commit debt.
    pub(crate) fn sync(&mut self) -> Result<()> {
        self.file.sync()?;
        self.commits_since_sync = 0;
        Ok(())
    }

    /// Discard the whole log (after a checkpoint made it redundant).
    pub(crate) fn reset(&mut self) -> Result<()> {
        self.file.truncate(0)?;
        self.file.sync()?;
        self.len = 0;
        self.commits_since_sync = 0;
        Ok(())
    }
}

/// One committed transaction recovered from the log.
pub(crate) struct WalTxn {
    /// Commit sequence number (monotonic across the pager's life).
    pub(crate) seq: u64,
    /// Page images written by this transaction, in append order.
    pub(crate) pages: Vec<(PageId, Page)>,
    /// The commit frame's metadata payload.
    pub(crate) meta: Vec<u8>,
}

/// Scan a log file, returning every *committed* transaction in order
/// plus the byte length of the valid committed prefix.
///
/// The scan stops at the first frame that is short, has an unknown
/// tag, or fails its checksum — by construction everything after a torn
/// write is garbage. Page frames not yet sealed by a commit are
/// dropped (the transaction never committed).
pub(crate) fn scan(file: &dyn crate::vfs::VfsFile) -> Result<(Vec<WalTxn>, u64)> {
    let total = file.len()?;
    let mut txns = Vec::new();
    let mut pending: Vec<(PageId, Page)> = Vec::new();
    let mut off = 0u64;
    let mut committed_end = 0u64;

    loop {
        let mut tag = [0u8; 1];
        if file.read_at(off, &mut tag)? < 1 {
            break;
        }
        match tag[0] {
            TAG_PAGE => {
                if total - off < PAGE_FRAME_LEN {
                    break;
                }
                let mut frame = vec![0u8; PAGE_FRAME_LEN as usize];
                if file.read_at(off, &mut frame)? < frame.len() {
                    break;
                }
                let (body, crc_bytes) = frame.split_at(frame.len() - 8);
                let crc = u64::from_le_bytes(crc_bytes.try_into().expect("8 bytes"));
                if crc64_finish(crc64_update(crc64_begin(), body)) != crc {
                    break;
                }
                let id = PageId(u32::from_le_bytes(body[1..5].try_into().expect("4 bytes")));
                let mut page = [0u8; PAGE_SIZE];
                page.copy_from_slice(&body[5..]);
                pending.push((id, Arc::new(page)));
                off += PAGE_FRAME_LEN;
            }
            TAG_COMMIT => {
                let mut hdr = [0u8; 13];
                if file.read_at(off, &mut hdr)? < hdr.len() {
                    break;
                }
                let meta_len = u32::from_le_bytes(hdr[9..13].try_into().expect("4 bytes")) as u64;
                let frame_len = 13 + meta_len + 8;
                if total - off < frame_len {
                    break;
                }
                let mut frame = vec![0u8; frame_len as usize];
                if file.read_at(off, &mut frame)? < frame.len() {
                    break;
                }
                let (body, crc_bytes) = frame.split_at(frame.len() - 8);
                let crc = u64::from_le_bytes(crc_bytes.try_into().expect("8 bytes"));
                if crc64_finish(crc64_update(crc64_begin(), body)) != crc {
                    break;
                }
                let seq = u64::from_le_bytes(body[1..9].try_into().expect("8 bytes"));
                txns.push(WalTxn {
                    seq,
                    pages: std::mem::take(&mut pending),
                    meta: body[13..].to_vec(),
                });
                off += frame_len;
                committed_end = off;
            }
            _ => break,
        }
    }
    Ok((txns, committed_end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{MemVfs, Vfs};

    fn page_of(b: u8) -> Page {
        Arc::new([b; PAGE_SIZE])
    }

    #[test]
    fn roundtrip_transactions() {
        let vfs = MemVfs::new();
        let mut w = WalWriter::new(vfs.open("wal").unwrap(), 0).unwrap();
        w.append_page(PageId(3), &page_of(0xAA)).unwrap();
        w.append_page(PageId(7), &page_of(0xBB)).unwrap();
        assert!(w.append_commit(1, b"meta-one", 1).unwrap());
        assert!(w.append_commit(2, b"", 1).unwrap());

        let (txns, end) = scan(&*vfs.open("wal").unwrap()).unwrap();
        assert_eq!(end, w.len());
        assert_eq!(txns.len(), 2);
        assert_eq!(txns[0].seq, 1);
        assert_eq!(txns[0].pages.len(), 2);
        assert_eq!(txns[0].pages[0].0, PageId(3));
        assert_eq!(txns[0].pages[0].1[0], 0xAA);
        assert_eq!(txns[0].meta, b"meta-one");
        assert_eq!(txns[1].seq, 2);
        assert!(txns[1].pages.is_empty());
    }

    #[test]
    fn torn_tail_is_truncated_to_last_commit() {
        let vfs = MemVfs::new();
        let mut w = WalWriter::new(vfs.open("wal").unwrap(), 0).unwrap();
        w.append_commit(1, b"a", 1).unwrap();
        let committed = w.len();
        w.append_page(PageId(0), &page_of(1)).unwrap();
        w.append_commit(2, b"b", 1).unwrap();
        // Tear the second transaction's commit frame mid-write.
        let mut bytes = vfs.snapshot("wal").unwrap();
        bytes.truncate(bytes.len() - 3);
        vfs.overwrite("wal", bytes);

        let (txns, end) = scan(&*vfs.open("wal").unwrap()).unwrap();
        assert_eq!(txns.len(), 1, "torn commit must not count");
        assert_eq!(end, committed);

        // Reopening the writer at the committed prefix truncates the
        // torn tail and appends cleanly after it.
        let mut w = WalWriter::new(vfs.open("wal").unwrap(), end).unwrap();
        assert_eq!(w.len(), committed);
        w.append_commit(2, b"retry", 1).unwrap();
        let (txns, _) = scan(&*vfs.open("wal").unwrap()).unwrap();
        assert_eq!(txns.len(), 2);
        assert_eq!(txns[1].meta, b"retry");
    }

    #[test]
    fn corrupt_frame_stops_scan_cleanly() {
        let vfs = MemVfs::new();
        let mut w = WalWriter::new(vfs.open("wal").unwrap(), 0).unwrap();
        w.append_page(PageId(5), &page_of(9)).unwrap();
        w.append_commit(1, b"x", 1).unwrap();
        w.append_commit(2, b"y", 1).unwrap();
        // Flip a byte inside the second commit's metadata.
        let mut bytes = vfs.snapshot("wal").unwrap();
        let n = bytes.len();
        bytes[n - 9] ^= 0xFF;
        vfs.overwrite("wal", bytes);
        let (txns, end) = scan(&*vfs.open("wal").unwrap()).unwrap();
        assert_eq!(txns.len(), 1);
        assert!(end < w.len());
    }

    #[test]
    fn uncommitted_pages_are_dropped() {
        let vfs = MemVfs::new();
        let mut w = WalWriter::new(vfs.open("wal").unwrap(), 0).unwrap();
        w.append_commit(1, b"only", 1).unwrap();
        w.append_page(PageId(2), &page_of(2)).unwrap();
        let (txns, end) = scan(&*vfs.open("wal").unwrap()).unwrap();
        assert_eq!(txns.len(), 1);
        assert!(txns[0].pages.is_empty());
        assert!(end < w.len(), "unsealed page frame is not committed");
    }

    #[test]
    fn group_commit_batches_syncs() {
        let vfs = MemVfs::new();
        let mut w = WalWriter::new(vfs.open("wal").unwrap(), 0).unwrap();
        assert!(!w.append_commit(1, b"", 3).unwrap());
        assert!(!w.append_commit(2, b"", 3).unwrap());
        assert!(w.append_commit(3, b"", 3).unwrap(), "third commit syncs");
        assert!(!w.append_commit(4, b"", 3).unwrap());
        w.sync().unwrap();
        assert!(!w.append_commit(5, b"", 3).unwrap(), "sync reset the debt");
    }

    #[test]
    fn reset_empties_log() {
        let vfs = MemVfs::new();
        let mut w = WalWriter::new(vfs.open("wal").unwrap(), 0).unwrap();
        w.append_commit(1, b"", 1).unwrap();
        w.reset().unwrap();
        assert_eq!(w.len(), 0);
        let (txns, end) = scan(&*vfs.open("wal").unwrap()).unwrap();
        assert!(txns.is_empty());
        assert_eq!(end, 0);
    }
}

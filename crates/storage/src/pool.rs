use crate::pager::{Page, Pager, PAGER_SHARDS};
use cdpd_types::{PageId, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;

/// An LRU buffer pool in front of a [`Pager`].
///
/// The pager counts *logical* reads — the deterministic quantity the
/// cost model predicts. The buffer pool adds the second axis a real
/// system has: which of those logical reads would have touched storage
/// ("physical" fetches, i.e. pool misses). The executor reads through
/// the pool so experiments can report both numbers.
///
/// The pool is **sharded into per-stripe LRUs** using the same
/// page-to-stripe mapping as the pager ([`PAGER_SHARDS`] stripes,
/// `page mod SHARDS`), so concurrent readers of different pages contend
/// on neither the pager's page-table locks nor the pool's. Capacity is
/// split evenly across stripes (each stripe gets at least one slot) and
/// eviction is strict LRU *within a stripe*, implemented as a clock on
/// a per-stripe access stamp. Because sequentially allocated pages
/// spread round-robin over stripes, a working set that fits the total
/// capacity still fits the per-stripe capacities for the scan and
/// index-probe patterns the executor produces.
///
/// Writes invalidate the cached copy so the next read re-fetches
/// (write-through, drop-on-write); this keeps the pool trivially
/// coherent with copy-on-write pages.
pub struct BufferPool {
    pager: Arc<Pager>,
    /// Per-stripe capacity in pages.
    stripe_capacity: usize,
    stripes: [Mutex<PoolStripe>; PAGER_SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Default)]
struct PoolStripe {
    /// page -> (cached page, last-access stamp)
    map: HashMap<u32, (Page, u64)>,
    clock: u64,
}

#[inline]
fn stripe_of(id: PageId) -> usize {
    (id.raw() as usize) % PAGER_SHARDS
}

impl BufferPool {
    /// A pool caching at most `capacity` pages of `pager` in aggregate.
    /// Capacity is divided evenly across the [`PAGER_SHARDS`] stripes,
    /// rounding up so every stripe holds at least one page.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(pager: Arc<Pager>, capacity: usize) -> BufferPool {
        assert!(capacity > 0, "buffer pool capacity must be positive");
        BufferPool {
            pager,
            stripe_capacity: capacity.div_ceil(PAGER_SHARDS).max(1),
            stripes: std::array::from_fn(|_| Mutex::new(PoolStripe::default())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The underlying pager.
    pub fn pager(&self) -> &Arc<Pager> {
        &self.pager
    }

    /// Maximum pages cached per stripe.
    pub fn stripe_capacity(&self) -> usize {
        self.stripe_capacity
    }

    /// Read a page through the cache. A hit does *not* touch the pager
    /// (so it is neither a logical nor a physical read there); callers
    /// who want logical-read accounting should count at their own level
    /// or read the pager directly.
    pub fn read(&self, id: PageId) -> Result<Page> {
        let stripe = &self.stripes[stripe_of(id)];
        let mut inner = stripe.lock().expect("pool lock poisoned");
        inner.clock += 1;
        let stamp = inner.clock;
        if let Some((page, last)) = inner.map.get_mut(&id.raw()) {
            *last = stamp;
            self.hits.fetch_add(1, Ordering::Relaxed);
            cdpd_obs::counter!("storage.pool.hits").inc();
            return Ok(page.clone());
        }
        drop(inner);
        let page = self.pager.read(id)?;
        let mut inner = stripe.lock().expect("pool lock poisoned");
        let mut delta = 1i64;
        if inner.map.len() >= self.stripe_capacity && !inner.map.contains_key(&id.raw()) {
            // Evict the stripe's least recently used entry.
            if let Some((&victim, _)) = inner.map.iter().min_by_key(|(_, (_, t))| *t) {
                inner.map.remove(&victim);
                cdpd_obs::counter!("storage.pool.evictions").inc();
                delta -= 1;
            }
        }
        if inner.map.insert(id.raw(), (page.clone(), stamp)).is_some() {
            delta -= 1;
        }
        cdpd_obs::gauge!("storage.pool.resident").add(delta);
        self.misses.fetch_add(1, Ordering::Relaxed);
        cdpd_obs::counter!("storage.pool.misses").inc();
        Ok(page)
    }

    /// Invalidate a cached page (call after writing through the pager).
    pub fn invalidate(&self, id: PageId) {
        let removed = self.stripes[stripe_of(id)]
            .lock()
            .expect("pool lock poisoned")
            .map
            .remove(&id.raw());
        if removed.is_some() {
            cdpd_obs::gauge!("storage.pool.resident").add(-1);
        }
    }

    /// Drop all cached pages (e.g. after a bulk load).
    pub fn clear(&self) {
        let mut dropped = 0i64;
        for stripe in &self.stripes {
            let mut inner = stripe.lock().expect("pool lock poisoned");
            dropped += inner.map.len() as i64;
            inner.map.clear();
        }
        cdpd_obs::gauge!("storage.pool.resident").add(-dropped);
    }

    /// `(hits, misses)` since construction. Misses are physical fetches.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of pages currently cached across all stripes.
    pub fn resident(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("pool lock poisoned").map.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(n: u32, cap: usize) -> (Arc<Pager>, BufferPool) {
        let pager = Arc::new(Pager::new());
        for _ in 0..n {
            pager.allocate();
        }
        let pool = BufferPool::new(pager.clone(), cap);
        (pager, pool)
    }

    /// Page ids `0`, `SHARDS`, `2·SHARDS` all land in stripe 0, so LRU
    /// behaviour within one stripe is observable exactly as it was for
    /// the old single-lock pool.
    fn same_stripe(k: u32) -> PageId {
        PageId(k * PAGER_SHARDS as u32)
    }

    #[test]
    fn hit_does_not_touch_pager() {
        let (pager, pool) = setup(1, 4);
        pool.read(PageId(0)).unwrap();
        let before = pager.stats();
        pool.read(PageId(0)).unwrap();
        assert_eq!(pager.stats().delta(before).reads, 0);
        assert_eq!(pool.stats(), (1, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used_within_stripe() {
        // Capacity 2·SHARDS gives each stripe exactly 2 slots; all three
        // pages below share stripe 0.
        let (_pager, pool) = setup(3 * PAGER_SHARDS as u32, 2 * PAGER_SHARDS);
        assert_eq!(pool.stripe_capacity(), 2);
        pool.read(same_stripe(0)).unwrap(); // miss
        pool.read(same_stripe(1)).unwrap(); // miss
        pool.read(same_stripe(0)).unwrap(); // hit; page 16 is now LRU
        pool.read(same_stripe(2)).unwrap(); // miss, evicts 16
        pool.read(same_stripe(0)).unwrap(); // hit
        pool.read(same_stripe(1)).unwrap(); // miss (was evicted)
        assert_eq!(pool.stats(), (2, 4));
        assert_eq!(pool.resident(), 2);
    }

    #[test]
    fn stripes_do_not_evict_each_other() {
        // Aggregate capacity SHARDS ⇒ one slot per stripe. Pages 0..SHARDS
        // each land in a distinct stripe, so all of them stay resident.
        let (_pager, pool) = setup(PAGER_SHARDS as u32, PAGER_SHARDS);
        for p in 0..PAGER_SHARDS as u32 {
            pool.read(PageId(p)).unwrap();
        }
        for p in 0..PAGER_SHARDS as u32 {
            pool.read(PageId(p)).unwrap();
        }
        assert_eq!(pool.stats(), (PAGER_SHARDS as u64, PAGER_SHARDS as u64));
        assert_eq!(pool.resident(), PAGER_SHARDS);
    }

    #[test]
    fn invalidate_forces_refetch() {
        let (pager, pool) = setup(1, 4);
        pool.read(PageId(0)).unwrap();
        pager.update(PageId(0), |b| b[0] = 42).unwrap();
        pool.invalidate(PageId(0));
        let page = pool.read(PageId(0)).unwrap();
        assert_eq!(page[0], 42);
        assert_eq!(pool.stats(), (0, 2));
    }

    #[test]
    fn clear_empties_pool() {
        let (_pager, pool) = setup(2, 4);
        pool.read(PageId(0)).unwrap();
        pool.read(PageId(1)).unwrap();
        pool.clear();
        assert_eq!(pool.resident(), 0);
    }

    #[test]
    fn concurrent_reads_are_coherent() {
        let (pager, pool) = setup(64, 32);
        for p in 0..64u32 {
            pager.update(PageId(p), |b| b[0] = p as u8).unwrap();
        }
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let pool = &pool;
                s.spawn(move || {
                    for i in 0..400u32 {
                        let id = PageId((t * 17 + i) % 64);
                        let page = pool.read(id).unwrap();
                        assert_eq!(page[0], id.raw() as u8);
                    }
                });
            }
        });
        let (hits, misses) = pool.stats();
        assert_eq!(hits + misses, 4 * 400);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let pager = Arc::new(Pager::new());
        BufferPool::new(pager, 0);
    }
}

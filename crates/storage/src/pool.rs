use crate::pager::{Page, Pager};
use cdpd_types::{PageId, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;

/// An LRU buffer pool in front of a [`Pager`].
///
/// The pager counts *logical* reads — the deterministic quantity the
/// cost model predicts. The buffer pool adds the second axis a real
/// system has: which of those logical reads would have touched storage
/// ("physical" fetches, i.e. pool misses). The executor reads through
/// the pool so experiments can report both numbers.
///
/// Eviction is strict LRU over page fetches, implemented as a clock on a
/// monotonically increasing access stamp. Writes invalidate the cached
/// copy so the next read re-fetches (write-through, drop-on-write); this
/// keeps the pool trivially coherent with copy-on-write pages.
pub struct BufferPool {
    pager: Arc<Pager>,
    capacity: usize,
    inner: Mutex<PoolInner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

struct PoolInner {
    /// page -> (cached page, last-access stamp)
    map: HashMap<u32, (Page, u64)>,
    clock: u64,
}

impl BufferPool {
    /// A pool caching at most `capacity` pages of `pager`.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(pager: Arc<Pager>, capacity: usize) -> BufferPool {
        assert!(capacity > 0, "buffer pool capacity must be positive");
        BufferPool {
            pager,
            capacity,
            inner: Mutex::new(PoolInner {
                map: HashMap::new(),
                clock: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The underlying pager.
    pub fn pager(&self) -> &Arc<Pager> {
        &self.pager
    }

    /// Read a page through the cache. A hit does *not* touch the pager
    /// (so it is neither a logical nor a physical read there); callers
    /// who want logical-read accounting should count at their own level
    /// or read the pager directly.
    pub fn read(&self, id: PageId) -> Result<Page> {
        let mut inner = self.inner.lock().expect("pool lock poisoned");
        inner.clock += 1;
        let stamp = inner.clock;
        if let Some((page, last)) = inner.map.get_mut(&id.raw()) {
            *last = stamp;
            self.hits.fetch_add(1, Ordering::Relaxed);
            cdpd_obs::counter!("storage.pool.hits").inc();
            return Ok(page.clone());
        }
        drop(inner);
        let page = self.pager.read(id)?;
        let mut inner = self.inner.lock().expect("pool lock poisoned");
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&id.raw()) {
            // Evict the least recently used entry.
            if let Some((&victim, _)) = inner.map.iter().min_by_key(|(_, (_, t))| *t) {
                inner.map.remove(&victim);
                cdpd_obs::counter!("storage.pool.evictions").inc();
            }
        }
        inner.map.insert(id.raw(), (page.clone(), stamp));
        cdpd_obs::gauge!("storage.pool.resident").set(inner.map.len() as i64);
        self.misses.fetch_add(1, Ordering::Relaxed);
        cdpd_obs::counter!("storage.pool.misses").inc();
        Ok(page)
    }

    /// Invalidate a cached page (call after writing through the pager).
    pub fn invalidate(&self, id: PageId) {
        self.inner
            .lock()
            .expect("pool lock poisoned")
            .map
            .remove(&id.raw());
    }

    /// Drop all cached pages (e.g. after a bulk load).
    pub fn clear(&self) {
        self.inner.lock().expect("pool lock poisoned").map.clear();
    }

    /// `(hits, misses)` since construction. Misses are physical fetches.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of pages currently cached.
    pub fn resident(&self) -> usize {
        self.inner.lock().expect("pool lock poisoned").map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(n: u32, cap: usize) -> (Arc<Pager>, BufferPool) {
        let pager = Arc::new(Pager::new());
        for _ in 0..n {
            pager.allocate();
        }
        let pool = BufferPool::new(pager.clone(), cap);
        (pager, pool)
    }

    #[test]
    fn hit_does_not_touch_pager() {
        let (pager, pool) = setup(1, 4);
        pool.read(PageId(0)).unwrap();
        let before = pager.stats();
        pool.read(PageId(0)).unwrap();
        assert_eq!(pager.stats().delta(before).reads, 0);
        assert_eq!(pool.stats(), (1, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let (_pager, pool) = setup(3, 2);
        pool.read(PageId(0)).unwrap(); // miss
        pool.read(PageId(1)).unwrap(); // miss
        pool.read(PageId(0)).unwrap(); // hit; 1 is now LRU
        pool.read(PageId(2)).unwrap(); // miss, evicts 1
        pool.read(PageId(0)).unwrap(); // hit
        pool.read(PageId(1)).unwrap(); // miss (was evicted)
        assert_eq!(pool.stats(), (2, 4));
        assert_eq!(pool.resident(), 2);
    }

    #[test]
    fn invalidate_forces_refetch() {
        let (pager, pool) = setup(1, 4);
        pool.read(PageId(0)).unwrap();
        pager.update(PageId(0), |b| b[0] = 42).unwrap();
        pool.invalidate(PageId(0));
        let page = pool.read(PageId(0)).unwrap();
        assert_eq!(page[0], 42);
        assert_eq!(pool.stats(), (0, 2));
    }

    #[test]
    fn clear_empties_pool() {
        let (_pager, pool) = setup(2, 4);
        pool.read(PageId(0)).unwrap();
        pool.read(PageId(1)).unwrap();
        pool.clear();
        assert_eq!(pool.resident(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let pager = Arc::new(Pager::new());
        BufferPool::new(pager, 0);
    }
}

use crate::pager::{Page, Pager, PAGER_SHARDS};
use cdpd_types::{PageId, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;

/// One cached page: its image, a per-stripe LRU stamp, and whether the
/// cached copy is newer than the pager's (dirty, awaiting writeback).
struct Entry {
    page: Page,
    stamp: u64,
    dirty: bool,
}

/// An LRU buffer pool in front of a [`Pager`].
///
/// The pager counts *logical* reads — the deterministic quantity the
/// cost model predicts. The buffer pool adds the second axis a real
/// system has: which of those logical reads would have touched storage
/// ("physical" fetches, i.e. pool misses). The executor reads through
/// the pool so experiments can report both numbers.
///
/// The pool is **sharded into per-stripe LRUs** using the same
/// page-to-stripe mapping as the pager ([`PAGER_SHARDS`] stripes,
/// `page mod SHARDS`), so concurrent readers of different pages contend
/// on neither the pager's page-table locks nor the pool's. Capacity is
/// split evenly across stripes (each stripe gets at least one slot) and
/// eviction is strict LRU *within a stripe*, implemented as a clock on
/// a per-stripe access stamp. Because sequentially allocated pages
/// spread round-robin over stripes, a working set that fits the total
/// capacity still fits the per-stripe capacities for the scan and
/// index-probe patterns the executor produces.
///
/// The pool is a *write-back* cache: [`BufferPool::write`] replaces the
/// cached copy and marks it dirty without touching the pager; dirty
/// pages reach the pager when they are evicted or when the caller
/// [`BufferPool::flush`]es (e.g. before a durable pager's commit).
/// Callers that write through the pager directly instead must
/// [`BufferPool::invalidate`] the stale cached copy, exactly as before.
pub struct BufferPool {
    pager: Arc<Pager>,
    /// Per-stripe capacity in pages.
    stripe_capacity: usize,
    stripes: [Mutex<PoolStripe>; PAGER_SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Default)]
struct PoolStripe {
    /// page -> cached entry
    map: HashMap<u32, Entry>,
    clock: u64,
}

#[inline]
fn stripe_of(id: PageId) -> usize {
    (id.raw() as usize) % PAGER_SHARDS
}

impl BufferPool {
    /// A pool caching at most `capacity` pages of `pager` in aggregate.
    /// Capacity is divided evenly across the [`PAGER_SHARDS`] stripes,
    /// rounding up so every stripe holds at least one page.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(pager: Arc<Pager>, capacity: usize) -> BufferPool {
        assert!(capacity > 0, "buffer pool capacity must be positive");
        BufferPool {
            pager,
            stripe_capacity: capacity.div_ceil(PAGER_SHARDS).max(1),
            stripes: std::array::from_fn(|_| Mutex::new(PoolStripe::default())),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The underlying pager.
    pub fn pager(&self) -> &Arc<Pager> {
        &self.pager
    }

    /// Maximum pages cached per stripe.
    pub fn stripe_capacity(&self) -> usize {
        self.stripe_capacity
    }

    /// Read a page through the cache. A hit does *not* touch the pager
    /// (so it is neither a logical nor a physical read there); callers
    /// who want logical-read accounting should count at their own level
    /// or read the pager directly.
    pub fn read(&self, id: PageId) -> Result<Page> {
        let stripe = &self.stripes[stripe_of(id)];
        let mut inner = stripe.lock().expect("pool lock poisoned");
        inner.clock += 1;
        let stamp = inner.clock;
        if let Some(entry) = inner.map.get_mut(&id.raw()) {
            entry.stamp = stamp;
            self.hits.fetch_add(1, Ordering::Relaxed);
            cdpd_obs::counter!("storage.pool.hits").inc();
            return Ok(entry.page.clone());
        }
        drop(inner);
        let page = self.pager.read(id)?;
        let mut inner = stripe.lock().expect("pool lock poisoned");
        self.evict_for(&mut inner, id)?;
        let mut delta = 1i64;
        if inner
            .map
            .insert(
                id.raw(),
                Entry {
                    page: page.clone(),
                    stamp,
                    dirty: false,
                },
            )
            .is_some()
        {
            delta -= 1;
        }
        cdpd_obs::gauge!("storage.pool.resident").add(delta);
        self.misses.fetch_add(1, Ordering::Relaxed);
        cdpd_obs::counter!("storage.pool.misses").inc();
        Ok(page)
    }

    /// Cache `page` as the new contents of `id` and mark it dirty; the
    /// pager sees the write when the entry is evicted or flushed.
    pub fn write(&self, id: PageId, page: Page) -> Result<()> {
        let stripe = &self.stripes[stripe_of(id)];
        let mut inner = stripe.lock().expect("pool lock poisoned");
        inner.clock += 1;
        let stamp = inner.clock;
        self.evict_for(&mut inner, id)?;
        if inner
            .map
            .insert(
                id.raw(),
                Entry {
                    page,
                    stamp,
                    dirty: true,
                },
            )
            .is_none()
        {
            cdpd_obs::gauge!("storage.pool.resident").add(1);
        }
        cdpd_obs::counter!("storage.pool.dirty_writes").inc();
        Ok(())
    }

    /// Make room for `id` in a full stripe by evicting the least
    /// recently used entry, writing it back through the pager first
    /// when dirty.
    fn evict_for(&self, inner: &mut PoolStripe, id: PageId) -> Result<()> {
        if inner.map.len() < self.stripe_capacity || inner.map.contains_key(&id.raw()) {
            return Ok(());
        }
        if let Some((&victim, _)) = inner.map.iter().min_by_key(|(_, e)| e.stamp) {
            let entry = inner.map.remove(&victim).expect("victim resident");
            if entry.dirty {
                self.pager.write(PageId(victim), entry.page)?;
                cdpd_obs::counter!("storage.pool.writebacks").inc();
            }
            cdpd_obs::counter!("storage.pool.evictions").inc();
            cdpd_obs::gauge!("storage.pool.resident").add(-1);
        }
        Ok(())
    }

    /// Write every dirty page back through the pager (leaving it cached
    /// clean) and return how many were written. Call before committing
    /// a durable pager so its WAL sees the pool's latest images.
    pub fn flush(&self) -> Result<u64> {
        let mut written = 0u64;
        for stripe in &self.stripes {
            let mut inner = stripe.lock().expect("pool lock poisoned");
            // Deterministic writeback order within the stripe.
            let mut dirty: Vec<u32> = inner
                .map
                .iter()
                .filter(|(_, e)| e.dirty)
                .map(|(&id, _)| id)
                .collect();
            dirty.sort_unstable();
            for id in dirty {
                let entry = inner.map.get_mut(&id).expect("dirty entry resident");
                self.pager.write(PageId(id), entry.page.clone())?;
                entry.dirty = false;
                written += 1;
                cdpd_obs::counter!("storage.pool.writebacks").inc();
            }
        }
        Ok(written)
    }

    /// Number of dirty pages currently cached.
    pub fn dirty(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| {
                s.lock()
                    .expect("pool lock poisoned")
                    .map
                    .values()
                    .filter(|e| e.dirty)
                    .count()
            })
            .sum()
    }

    /// Invalidate a cached page (call after writing through the pager
    /// directly). Discards the cached copy even if dirty — the caller
    /// is asserting the pager's copy is newer.
    pub fn invalidate(&self, id: PageId) {
        let removed = self.stripes[stripe_of(id)]
            .lock()
            .expect("pool lock poisoned")
            .map
            .remove(&id.raw());
        if removed.is_some() {
            cdpd_obs::gauge!("storage.pool.resident").add(-1);
        }
    }

    /// Drop all cached pages (e.g. after a bulk load), discarding any
    /// dirty ones — [`BufferPool::flush`] first to keep them.
    pub fn clear(&self) {
        let mut dropped = 0i64;
        for stripe in &self.stripes {
            let mut inner = stripe.lock().expect("pool lock poisoned");
            dropped += inner.map.len() as i64;
            inner.map.clear();
        }
        cdpd_obs::gauge!("storage.pool.resident").add(-dropped);
    }

    /// `(hits, misses)` since construction. Misses are physical fetches.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of pages currently cached across all stripes.
    pub fn resident(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("pool lock poisoned").map.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(n: u32, cap: usize) -> (Arc<Pager>, BufferPool) {
        let pager = Arc::new(Pager::new());
        for _ in 0..n {
            pager.allocate();
        }
        let pool = BufferPool::new(pager.clone(), cap);
        (pager, pool)
    }

    /// Page ids `0`, `SHARDS`, `2·SHARDS` all land in stripe 0, so LRU
    /// behaviour within one stripe is observable exactly as it was for
    /// the old single-lock pool.
    fn same_stripe(k: u32) -> PageId {
        PageId(k * PAGER_SHARDS as u32)
    }

    #[test]
    fn hit_does_not_touch_pager() {
        let (pager, pool) = setup(1, 4);
        pool.read(PageId(0)).unwrap();
        let before = pager.stats();
        pool.read(PageId(0)).unwrap();
        assert_eq!(pager.stats().delta(before).reads, 0);
        assert_eq!(pool.stats(), (1, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used_within_stripe() {
        // Capacity 2·SHARDS gives each stripe exactly 2 slots; all three
        // pages below share stripe 0.
        let (_pager, pool) = setup(3 * PAGER_SHARDS as u32, 2 * PAGER_SHARDS);
        assert_eq!(pool.stripe_capacity(), 2);
        pool.read(same_stripe(0)).unwrap(); // miss
        pool.read(same_stripe(1)).unwrap(); // miss
        pool.read(same_stripe(0)).unwrap(); // hit; page 16 is now LRU
        pool.read(same_stripe(2)).unwrap(); // miss, evicts 16
        pool.read(same_stripe(0)).unwrap(); // hit
        pool.read(same_stripe(1)).unwrap(); // miss (was evicted)
        assert_eq!(pool.stats(), (2, 4));
        assert_eq!(pool.resident(), 2);
    }

    #[test]
    fn stripes_do_not_evict_each_other() {
        // Aggregate capacity SHARDS ⇒ one slot per stripe. Pages 0..SHARDS
        // each land in a distinct stripe, so all of them stay resident.
        let (_pager, pool) = setup(PAGER_SHARDS as u32, PAGER_SHARDS);
        for p in 0..PAGER_SHARDS as u32 {
            pool.read(PageId(p)).unwrap();
        }
        for p in 0..PAGER_SHARDS as u32 {
            pool.read(PageId(p)).unwrap();
        }
        assert_eq!(pool.stats(), (PAGER_SHARDS as u64, PAGER_SHARDS as u64));
        assert_eq!(pool.resident(), PAGER_SHARDS);
    }

    #[test]
    fn invalidate_forces_refetch() {
        let (pager, pool) = setup(1, 4);
        pool.read(PageId(0)).unwrap();
        pager.update(PageId(0), |b| b[0] = 42).unwrap();
        pool.invalidate(PageId(0));
        let page = pool.read(PageId(0)).unwrap();
        assert_eq!(page[0], 42);
        assert_eq!(pool.stats(), (0, 2));
    }

    #[test]
    fn clear_empties_pool() {
        let (_pager, pool) = setup(2, 4);
        pool.read(PageId(0)).unwrap();
        pool.read(PageId(1)).unwrap();
        pool.clear();
        assert_eq!(pool.resident(), 0);
    }

    #[test]
    fn concurrent_reads_are_coherent() {
        let (pager, pool) = setup(64, 32);
        for p in 0..64u32 {
            pager.update(PageId(p), |b| b[0] = p as u8).unwrap();
        }
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let pool = &pool;
                s.spawn(move || {
                    for i in 0..400u32 {
                        let id = PageId((t * 17 + i) % 64);
                        let page = pool.read(id).unwrap();
                        assert_eq!(page[0], id.raw() as u8);
                    }
                });
            }
        });
        let (hits, misses) = pool.stats();
        assert_eq!(hits + misses, 4 * 400);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let pager = Arc::new(Pager::new());
        BufferPool::new(pager, 0);
    }

    fn page_of(b: u8) -> Page {
        Arc::new([b; crate::PAGE_SIZE])
    }

    #[test]
    fn dirty_write_is_cached_not_written_through() {
        let (pager, pool) = setup(1, 4);
        let before = pager.stats();
        pool.write(PageId(0), page_of(7)).unwrap();
        assert_eq!(pager.stats().delta(before).writes, 0, "write is deferred");
        assert_eq!(pool.dirty(), 1);
        // The pool serves its own dirty copy…
        assert_eq!(pool.read(PageId(0)).unwrap()[0], 7);
        // …while the pager still has the old bytes.
        assert_eq!(pager.read(PageId(0)).unwrap()[0], 0);
    }

    #[test]
    fn flush_writes_dirty_pages_back() {
        let (pager, pool) = setup(3, 8);
        pool.write(PageId(0), page_of(1)).unwrap();
        pool.write(PageId(1), page_of(2)).unwrap();
        pool.read(PageId(2)).unwrap(); // clean entry, must not be flushed
        let before = pager.stats();
        assert_eq!(pool.flush().unwrap(), 2);
        assert_eq!(pager.stats().delta(before).writes, 2);
        assert_eq!(pager.read(PageId(0)).unwrap()[0], 1);
        assert_eq!(pager.read(PageId(1)).unwrap()[0], 2);
        assert_eq!(pool.dirty(), 0);
        // Flushed pages stay cached (clean): re-reading them is a hit.
        let (hits_before, _) = pool.stats();
        pool.read(PageId(0)).unwrap();
        assert_eq!(pool.stats().0, hits_before + 1);
        // A second flush has nothing to do.
        assert_eq!(pool.flush().unwrap(), 0);
    }

    #[test]
    fn evicting_a_dirty_victim_writes_it_back() {
        // One slot per stripe: a second page in stripe 0 evicts the first.
        let (pager, pool) = setup(2 * PAGER_SHARDS as u32, PAGER_SHARDS);
        pool.write(same_stripe(0), page_of(9)).unwrap();
        pool.read(same_stripe(1)).unwrap(); // evicts the dirty page 0
        assert_eq!(
            pager.read(same_stripe(0)).unwrap()[0],
            9,
            "dirty victim must be written back, not dropped"
        );
        assert_eq!(pool.dirty(), 0);
    }
}

//! CRC-64 (ECMA-182 polynomial, as used by XZ) for durable-tier
//! checksums: WAL frames, written-back pages, and pager headers all
//! carry one so recovery can tell a torn or bit-rotted record from a
//! valid one with plain table lookups and no external crates.

/// Reflected ECMA-182 polynomial (the CRC-64/XZ parameterization).
const POLY: u64 = 0xC96C_5795_D787_0F42;

const TABLE: [u64; 256] = build_table();

const fn build_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-64/XZ of `bytes` (init and final XOR are all-ones).
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut crc = !0u64;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Continue a CRC across multiple slices: feed the previous return
/// value back as `seed` (start from [`crc64_begin`]).
pub fn crc64_update(seed: u64, bytes: &[u8]) -> u64 {
    let mut crc = seed;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

/// Initial accumulator for [`crc64_update`].
pub fn crc64_begin() -> u64 {
    !0u64
}

/// Finalize a [`crc64_update`] accumulator.
pub fn crc64_finish(seed: u64) -> u64 {
    !seed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // CRC-64/XZ check value from the catalogue of parametrised CRCs.
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let oneshot = crc64(data);
        let mut acc = crc64_begin();
        for chunk in data.chunks(7) {
            acc = crc64_update(acc, chunk);
        }
        assert_eq!(crc64_finish(acc), oneshot);
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0xA5u8; 256];
        let base = crc64(&data);
        for byte in [0usize, 100, 255] {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc64(&data), base, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}

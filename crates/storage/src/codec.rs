//! Row serialization and order-preserving key encoding.
//!
//! Two independent encodings live here:
//!
//! * **Row codec** ([`encode_row`] / [`decode_row`] / [`RowView`]) — the
//!   on-page tuple format used by heap pages. Self-describing (one tag
//!   byte per value) and cheap to project: [`RowView::value`] walks tag
//!   bytes instead of materializing the whole row, which is what keeps
//!   full-table scans with a single-column predicate fast.
//!
//! * **Memcomparable key codec** ([`encode_key`] / [`decode_key`]) — the
//!   B+-tree key format. Encoded keys compare with plain byte
//!   comparison in the same order as the decoded [`Value`] tuples, and
//!   the encoding of a tuple *prefix* is a byte-prefix of the full
//!   encoding, so a composite index `I(a,b)` can be seeked with just an
//!   `a` value. Integers are tagged and offset-flipped big-endian;
//!   strings are `0x00`-escaped and double-zero terminated.

use cdpd_types::{Error, PageId, Result, Rid, Value};

const TAG_INT: u8 = 0x01;
const TAG_STR: u8 = 0x02;

// --- Row codec ---------------------------------------------------------

/// Append the row encoding of `values` to `out`.
pub fn encode_row(values: &[Value], out: &mut Vec<u8>) {
    for v in values {
        match v {
            Value::Int(i) => {
                out.push(TAG_INT);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(TAG_STR);
                let len = u16::try_from(s.len()).expect("string too long for row codec");
                out.extend_from_slice(&len.to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }
}

/// Decode a full row.
pub fn decode_row(mut bytes: &[u8]) -> Result<Vec<Value>> {
    let mut out = Vec::new();
    while !bytes.is_empty() {
        out.push(decode_value(&mut bytes)?);
    }
    Ok(out)
}

fn decode_value(bytes: &mut &[u8]) -> Result<Value> {
    let (&tag, rest) = bytes
        .split_first()
        .ok_or_else(|| Error::Corrupt("truncated row: missing tag".into()))?;
    *bytes = rest;
    match tag {
        TAG_INT => {
            let (head, rest) = bytes
                .split_first_chunk::<8>()
                .ok_or_else(|| Error::Corrupt("truncated row: short int".into()))?;
            *bytes = rest;
            Ok(Value::Int(i64::from_le_bytes(*head)))
        }
        TAG_STR => {
            let (head, rest) = bytes
                .split_first_chunk::<2>()
                .ok_or_else(|| Error::Corrupt("truncated row: short str len".into()))?;
            let len = u16::from_le_bytes(*head) as usize;
            if rest.len() < len {
                return Err(Error::Corrupt("truncated row: short str body".into()));
            }
            let s = std::str::from_utf8(&rest[..len])
                .map_err(|_| Error::Corrupt("row string is not UTF-8".into()))?
                .to_owned();
            *bytes = &rest[len..];
            Ok(Value::Str(s))
        }
        tag => Err(Error::Corrupt(format!("unknown value tag {tag:#x}"))),
    }
}

/// Zero-copy accessor over an encoded row.
///
/// `value(i)` skips `i` encoded values by reading tags and lengths —
/// no allocation until the requested value is materialized, and for
/// integer columns [`RowView::int`] allocates nothing at all.
#[derive(Clone, Copy)]
pub struct RowView<'a> {
    bytes: &'a [u8],
}

impl<'a> RowView<'a> {
    /// Wrap encoded row bytes.
    pub fn new(bytes: &'a [u8]) -> RowView<'a> {
        RowView { bytes }
    }

    /// The raw encoded bytes.
    pub fn bytes(&self) -> &'a [u8] {
        self.bytes
    }

    fn offset_of(&self, col: usize) -> Result<usize> {
        let mut off = 0usize;
        for _ in 0..col {
            let tag = *self
                .bytes
                .get(off)
                .ok_or_else(|| Error::Corrupt("row too short for column".into()))?;
            off += 1;
            match tag {
                TAG_INT => off += 8,
                TAG_STR => {
                    let len = self
                        .bytes
                        .get(off..off + 2)
                        .map(|b| u16::from_le_bytes([b[0], b[1]]) as usize)
                        .ok_or_else(|| Error::Corrupt("row too short for str len".into()))?;
                    off += 2 + len;
                }
                t => return Err(Error::Corrupt(format!("unknown value tag {t:#x}"))),
            }
        }
        Ok(off)
    }

    /// Decode the value of column `col`.
    pub fn value(&self, col: usize) -> Result<Value> {
        let off = self.offset_of(col)?;
        let mut rest = &self.bytes[off..];
        decode_value(&mut rest)
    }

    /// Fast path: column `col` as an integer without allocating.
    pub fn int(&self, col: usize) -> Result<i64> {
        let off = self.offset_of(col)?;
        match self.bytes.get(off) {
            Some(&TAG_INT) => {
                let b = self
                    .bytes
                    .get(off + 1..off + 9)
                    .ok_or_else(|| Error::Corrupt("truncated int column".into()))?;
                Ok(i64::from_le_bytes(b.try_into().expect("slice is 8 bytes")))
            }
            Some(_) => Err(Error::TypeMismatch("column is not INT".into())),
            None => Err(Error::Corrupt("row too short".into())),
        }
    }

    /// Decode every value.
    pub fn decode_all(&self) -> Result<Vec<Value>> {
        decode_row(self.bytes)
    }
}

// --- Memcomparable key codec -------------------------------------------

const KEY_TAG_INT: u8 = 0x10;
const KEY_TAG_STR: u8 = 0x20;

/// Append the memcomparable encoding of one value to `out`.
pub fn encode_key_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Int(i) => {
            out.push(KEY_TAG_INT);
            // Flip the sign bit so two's-complement order becomes
            // unsigned byte order, then big-endian for memcmp.
            out.extend_from_slice(&(((*i as u64) ^ (1u64 << 63)).to_be_bytes()));
        }
        Value::Str(s) => {
            out.push(KEY_TAG_STR);
            for &b in s.as_bytes() {
                if b == 0x00 {
                    out.extend_from_slice(&[0x00, 0xFF]);
                } else {
                    out.push(b);
                }
            }
            out.extend_from_slice(&[0x00, 0x00]);
        }
    }
}

/// Memcomparable encoding of a value tuple.
///
/// Guarantees: `encode_key(a) < encode_key(b)` (byte order) iff `a < b`
/// (tuple order), and `encode_key(&t[..k])` is a byte-prefix of
/// `encode_key(t)`.
pub fn encode_key(values: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 9);
    for v in values {
        encode_key_value(v, &mut out);
    }
    out
}

/// Decode a memcomparable key back into values.
pub fn decode_key(mut bytes: &[u8]) -> Result<Vec<Value>> {
    let mut out = Vec::new();
    while !bytes.is_empty() {
        match bytes[0] {
            KEY_TAG_INT => {
                let b = bytes
                    .get(1..9)
                    .ok_or_else(|| Error::Corrupt("truncated int key".into()))?;
                let raw = u64::from_be_bytes(b.try_into().expect("slice is 8 bytes"));
                out.push(Value::Int((raw ^ (1u64 << 63)) as i64));
                bytes = &bytes[9..];
            }
            KEY_TAG_STR => {
                bytes = &bytes[1..];
                let mut s = Vec::new();
                loop {
                    match bytes {
                        [0x00, 0x00, rest @ ..] => {
                            bytes = rest;
                            break;
                        }
                        [0x00, 0xFF, rest @ ..] => {
                            s.push(0x00);
                            bytes = rest;
                        }
                        [b, rest @ ..] => {
                            s.push(*b);
                            bytes = rest;
                        }
                        [] => return Err(Error::Corrupt("unterminated string key".into())),
                    }
                }
                out.push(Value::Str(
                    String::from_utf8(s)
                        .map_err(|_| Error::Corrupt("key string is not UTF-8".into()))?,
                ));
            }
            t => return Err(Error::Corrupt(format!("unknown key tag {t:#x}"))),
        }
    }
    Ok(out)
}

// --- Rid codec ----------------------------------------------------------

/// Byte length of an encoded [`Rid`].
pub const RID_LEN: usize = 6;

/// Append the order-preserving 6-byte encoding of `rid`.
pub fn encode_rid(rid: Rid, out: &mut Vec<u8>) {
    out.extend_from_slice(&rid.page.raw().to_be_bytes());
    out.extend_from_slice(&rid.slot.to_be_bytes());
}

/// Decode a 6-byte rid.
pub fn decode_rid(bytes: &[u8]) -> Result<Rid> {
    if bytes.len() < RID_LEN {
        return Err(Error::Corrupt("truncated rid".into()));
    }
    let page = u32::from_be_bytes(bytes[..4].try_into().expect("4 bytes"));
    let slot = u16::from_be_bytes(bytes[4..6].try_into().expect("2 bytes"));
    Ok(Rid::new(PageId(page), slot))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(i: i64) -> Value {
        Value::Int(i)
    }

    #[test]
    fn row_roundtrip() {
        let row = vec![iv(-5), Value::from("héllo"), iv(i64::MAX), Value::from("")];
        let mut bytes = Vec::new();
        encode_row(&row, &mut bytes);
        assert_eq!(decode_row(&bytes).unwrap(), row);
    }

    #[test]
    fn row_view_projects_columns() {
        let row = vec![iv(10), Value::from("abc"), iv(30)];
        let mut bytes = Vec::new();
        encode_row(&row, &mut bytes);
        let view = RowView::new(&bytes);
        assert_eq!(view.int(0).unwrap(), 10);
        assert_eq!(view.value(1).unwrap(), Value::from("abc"));
        assert_eq!(view.int(2).unwrap(), 30);
        assert!(view.int(1).is_err(), "str column is not int");
        assert!(view.value(3).is_err(), "out of range column");
        assert_eq!(view.decode_all().unwrap(), row);
    }

    #[test]
    fn corrupt_rows_error_cleanly() {
        assert!(decode_row(&[0x01, 0x00]).is_err()); // short int
        assert!(decode_row(&[0x99]).is_err()); // bad tag
        assert!(decode_row(&[0x02, 0x05, 0x00, b'a']).is_err()); // short str
    }

    #[test]
    fn int_keys_order_preserving() {
        let samples = [i64::MIN, -1_000_000, -1, 0, 1, 42, 500_000, i64::MAX];
        for &a in &samples {
            for &b in &samples {
                let ka = encode_key(&[iv(a)]);
                let kb = encode_key(&[iv(b)]);
                assert_eq!(a.cmp(&b), ka.cmp(&kb), "order mismatch for {a} vs {b}");
            }
        }
    }

    #[test]
    fn str_keys_order_preserving_with_nuls() {
        let samples = ["", "a", "a\0", "a\0b", "a!", "ab", "b", "ba"];
        for a in samples {
            for b in samples {
                let ka = encode_key(&[Value::from(a)]);
                let kb = encode_key(&[Value::from(b)]);
                assert_eq!(a.cmp(b), ka.cmp(&kb), "order mismatch for {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn composite_key_prefix_property() {
        let full = encode_key(&[iv(7), Value::from("x")]);
        let prefix = encode_key(&[iv(7)]);
        assert!(full.starts_with(&prefix));
    }

    #[test]
    fn composite_key_order_is_lexicographic() {
        let k = |a: i64, b: i64| encode_key(&[iv(a), iv(b)]);
        assert!(k(1, 9) < k(2, 0));
        assert!(k(2, 0) < k(2, 1));
    }

    #[test]
    fn key_roundtrip() {
        let tuple = vec![iv(-3), Value::from("a\0b"), iv(99)];
        assert_eq!(decode_key(&encode_key(&tuple)).unwrap(), tuple);
    }

    #[test]
    fn rid_roundtrip_and_order() {
        let a = Rid::new(PageId(1), 65535);
        let b = Rid::new(PageId(2), 0);
        let mut ea = Vec::new();
        let mut eb = Vec::new();
        encode_rid(a, &mut ea);
        encode_rid(b, &mut eb);
        assert_eq!(decode_rid(&ea).unwrap(), a);
        assert!(ea < eb, "rid encoding must preserve order");
        assert!(decode_rid(&[0, 1]).is_err());
    }
}

//! Instrumented in-memory storage engine.
//!
//! This crate is the substrate that stands in for the paper's
//! SQL Server 2005 installation: a paged storage manager whose *logical
//! page I/O counts* drive both the measured execution costs (Figure 3)
//! and the what-if cost model's estimates.
//!
//! Layers, bottom to top:
//!
//! * [`Pager`] — fixed-size (8 KiB) pages behind a lock-striped page
//!   table ([`PAGER_SHARDS`] stripes, per-stripe free lists) with an
//!   exact atomic I/O ledger; every page access anywhere in the system
//!   is accounted here, which is what makes measured costs
//!   deterministic. [`ThreadIoScope`] attributes I/O to the current
//!   thread so per-statement accounting stays exact under concurrency.
//! * [`BufferPool`] — per-stripe LRU caches in front of a pager that
//!   distinguish *logical* accesses from *physical* fetches (hit/miss
//!   statistics).
//! * slotted pages ([`slotted`]) — variable-length record layout used by
//!   heap pages.
//! * [`codec`] — row serialization and an order-preserving
//!   ("memcomparable") key encoding, so B+-tree pages can compare keys
//!   with plain `memcmp`.
//! * [`HeapFile`] — unordered tuple storage with record ids.
//! * [`BTree`] — a paged B+-tree over memcomparable keys supporting
//!   point seeks, ordered range cursors, full leaf scans (for index-only
//!   plans), incremental inserts with node splits, deletes, and sorted
//!   bulk loading (used by `CREATE INDEX`).
//!
//! # Durability
//!
//! [`Pager::new`] stays purely in-memory (the configuration every
//! experiment and historical test runs). [`Pager::open_durable`] backs
//! the same pager with files behind a [`Vfs`] — a checksummed data
//! file, a write-ahead log with group commit, and ping-pong checkpoint
//! headers — so a database survives a crash at any point and recovers
//! to the last committed transaction. See [`vfs`] for the backend seam
//! ([`DiskVfs`] for real directories, [`MemVfs`] for tests) and
//! [`DurableOptions`] for the cache/fsync/checkpoint knobs.

#![warn(missing_docs)]

pub mod codec;
pub mod slotted;
pub mod vfs;

mod btree;
mod crc;
mod durable;
mod heap;
mod pager;
mod pool;
mod wal;

pub use btree::{BTree, BTreeCursor};
pub use crc::crc64;
pub use durable::{DurableOpen, DurableOptions, DurableStats};
pub use heap::{HeapFile, HeapScan};
pub use pager::{IoStats, Page, Pager, ThreadIoScope, PAGER_SHARDS, PAGE_SIZE};
pub use pool::BufferPool;
pub use vfs::{DiskVfs, MemVfs, Vfs, VfsFile};

use cdpd_types::{Error, PageId, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex;

/// Size of a page in bytes. 8 KiB matches the SQL Server page size used
/// in the paper's experiments, so page-count arithmetic (≈200 rows per
/// heap page at 2.5 M rows ⇒ ≈12.5 k heap pages) lines up with the
/// magnitudes the paper's cost ratios imply.
pub const PAGE_SIZE: usize = 8192;

/// An immutable snapshot of one page's bytes.
///
/// Pages are shared via `Arc`, so "reading" a page is a refcount bump and
/// mutation is copy-on-write through [`Pager::update`]. This gives the
/// executor cheap, lock-free access to page contents while keeping the
/// pager the single point where I/O is counted.
pub type Page = Arc<[u8; PAGE_SIZE]>;

fn blank_page() -> Page {
    Arc::new([0u8; PAGE_SIZE])
}

/// Cumulative I/O counters, readable at any time.
///
/// `reads`/`writes` are *logical* page accesses — the quantity the
/// paper's cost model predicts and the quantity we report in the
/// Figure 3 reproduction. Subtracting two snapshots ([`IoStats::delta`])
/// scopes the counters to one query or one index build.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct IoStats {
    /// Logical page reads.
    pub reads: u64,
    /// Logical page writes.
    pub writes: u64,
    /// Pages allocated.
    pub allocs: u64,
}

impl IoStats {
    /// Process-wide totals, summed over every pager instance, read from
    /// the `cdpd-obs` metrics registry (counters `storage.pager.reads`
    /// / `.writes` / `.allocs`). Per-instance [`Pager::stats`] remains
    /// the scoped view; this is the registry view of the same ledger.
    pub fn global() -> IoStats {
        let r = cdpd_obs::registry();
        IoStats {
            reads: r.counter_value("storage.pager.reads"),
            writes: r.counter_value("storage.pager.writes"),
            allocs: r.counter_value("storage.pager.allocs"),
        }
    }

    /// Counter increase from `earlier` to `self`.
    pub fn delta(self, earlier: IoStats) -> IoStats {
        IoStats {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            allocs: self.allocs - earlier.allocs,
        }
    }

    /// Total page accesses (reads + writes).
    pub fn total(self) -> u64 {
        self.reads + self.writes
    }
}

/// The page store: allocates, reads, and writes fixed-size pages, and
/// counts every access.
///
/// All methods take `&self`; the page table is behind a mutex and the
/// counters are atomics, so a `Pager` can be shared (`Arc<Pager>`)
/// between a table's heap file and all of its indexes — mirroring one
/// database file holding many objects, with one I/O ledger.
pub struct Pager {
    pages: Mutex<Vec<Page>>,
    free: Mutex<Vec<PageId>>,
    reads: AtomicU64,
    writes: AtomicU64,
    allocs: AtomicU64,
}

impl Default for Pager {
    fn default() -> Self {
        Self::new()
    }
}

impl Pager {
    /// An empty pager.
    pub fn new() -> Pager {
        Pager {
            pages: Mutex::new(Vec::new()),
            free: Mutex::new(Vec::new()),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            allocs: AtomicU64::new(0),
        }
    }

    /// Allocate a zeroed page and return its id, reusing a freed page
    /// when one is available.
    pub fn allocate(&self) -> PageId {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        cdpd_obs::tracked_counter!("storage.pager.allocs").inc();
        if let Some(id) = self.free.lock().expect("pager lock poisoned").pop() {
            let mut pages = self.pages.lock().expect("pager lock poisoned");
            pages[id.index()] = blank_page();
            return id;
        }
        let mut pages = self.pages.lock().expect("pager lock poisoned");
        let id = PageId(u32::try_from(pages.len()).expect("page count exceeds u32"));
        pages.push(blank_page());
        id
    }

    /// Return pages to the allocator (e.g. after `DROP INDEX`). The
    /// caller must guarantee nothing references them any more; the
    /// bytes are zeroed on reuse, not on free.
    pub fn free(&self, ids: &[PageId]) {
        let page_count = self.pages.lock().expect("pager lock poisoned").len();
        let mut free = self.free.lock().expect("pager lock poisoned");
        for &id in ids {
            debug_assert!(id.index() < page_count, "freeing unallocated page {id}");
            debug_assert!(!free.contains(&id), "double free of page {id}");
            free.push(id);
        }
    }

    /// Number of pages currently on the free list.
    pub fn free_count(&self) -> u64 {
        self.free.lock().expect("pager lock poisoned").len() as u64
    }

    /// Read a page (counted as one logical read).
    pub fn read(&self, id: PageId) -> Result<Page> {
        let pages = self.pages.lock().expect("pager lock poisoned");
        let page = pages
            .get(id.index())
            .ok_or_else(|| Error::Corrupt(format!("page {id} out of range")))?
            .clone();
        self.reads.fetch_add(1, Ordering::Relaxed);
        cdpd_obs::tracked_counter!("storage.pager.reads").inc();
        Ok(page)
    }

    /// Replace a page's contents (counted as one logical write).
    pub fn write(&self, id: PageId, page: Page) -> Result<()> {
        let mut pages = self.pages.lock().expect("pager lock poisoned");
        let slot = pages
            .get_mut(id.index())
            .ok_or_else(|| Error::Corrupt(format!("page {id} out of range")))?;
        *slot = page;
        self.writes.fetch_add(1, Ordering::Relaxed);
        cdpd_obs::tracked_counter!("storage.pager.writes").inc();
        Ok(())
    }

    /// Read-modify-write a page in place (one read + one write).
    ///
    /// Copy-on-write: if the page is shared with readers the buffer is
    /// cloned before mutation, so outstanding [`Page`] handles never see
    /// torn updates.
    pub fn update<R>(&self, id: PageId, f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R) -> Result<R> {
        let mut pages = self.pages.lock().expect("pager lock poisoned");
        let slot = pages
            .get_mut(id.index())
            .ok_or_else(|| Error::Corrupt(format!("page {id} out of range")))?;
        let buf = Arc::make_mut(slot);
        let r = f(buf);
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.writes.fetch_add(1, Ordering::Relaxed);
        cdpd_obs::tracked_counter!("storage.pager.reads").inc();
        cdpd_obs::tracked_counter!("storage.pager.writes").inc();
        Ok(r)
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> u64 {
        self.pages.lock().expect("pager lock poisoned").len() as u64
    }

    /// Snapshot of the I/O counters.
    pub fn stats(&self) -> IoStats {
        IoStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            allocs: self.allocs.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_read_write_roundtrip() {
        let pager = Pager::new();
        let id = pager.allocate();
        let mut buf = [0u8; PAGE_SIZE];
        buf[0] = 0xAB;
        pager.write(id, Arc::new(buf)).unwrap();
        let page = pager.read(id).unwrap();
        assert_eq!(page[0], 0xAB);
    }

    #[test]
    fn counters_track_each_access() {
        let pager = Pager::new();
        let id = pager.allocate();
        let before = pager.stats();
        pager.read(id).unwrap();
        pager.read(id).unwrap();
        pager.update(id, |b| b[1] = 7).unwrap();
        let d = pager.stats().delta(before);
        assert_eq!(
            d,
            IoStats {
                reads: 3,
                writes: 1,
                allocs: 0
            }
        );
        assert_eq!(d.total(), 4);
    }

    #[test]
    fn update_is_copy_on_write() {
        let pager = Pager::new();
        let id = pager.allocate();
        let held = pager.read(id).unwrap();
        pager.update(id, |b| b[0] = 9).unwrap();
        assert_eq!(held[0], 0, "outstanding handle must not see the update");
        assert_eq!(pager.read(id).unwrap()[0], 9);
    }

    #[test]
    fn out_of_range_is_corruption_error() {
        let pager = Pager::new();
        assert!(pager.read(PageId(3)).is_err());
        assert!(pager.write(PageId(0), blank_page()).is_err());
        assert!(pager.update(PageId(1), |_| ()).is_err());
    }

    #[test]
    fn page_ids_are_dense() {
        let pager = Pager::new();
        assert_eq!(pager.allocate(), PageId(0));
        assert_eq!(pager.allocate(), PageId(1));
        assert_eq!(pager.page_count(), 2);
    }

    #[test]
    fn freed_pages_are_reused_zeroed() {
        let pager = Pager::new();
        let a = pager.allocate();
        let b = pager.allocate();
        pager.update(a, |buf| buf[0] = 0xEE).unwrap();
        pager.free(&[a]);
        assert_eq!(pager.free_count(), 1);
        let c = pager.allocate();
        assert_eq!(c, a, "free list is reused first");
        assert_eq!(pager.read(c).unwrap()[0], 0, "reused page is zeroed");
        assert_eq!(pager.free_count(), 0);
        assert_eq!(pager.page_count(), 2);
        let _ = b;
    }
}

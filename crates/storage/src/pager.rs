use crate::durable::{
    encode_header, encode_meta, recover_base, CommittedMeta, Durable, DurableOpen, DurableOptions,
    DurableStats, FILE_DATA, FILE_HDR, FILE_SUMS, FILE_WAL,
};
use crate::vfs::Vfs;
use crate::wal::WalWriter;
use cdpd_types::{Error, PageId, Result};
use std::cell::Cell;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Size of a page in bytes. 8 KiB matches the SQL Server page size used
/// in the paper's experiments, so page-count arithmetic (≈200 rows per
/// heap page at 2.5 M rows ⇒ ≈12.5 k heap pages) lines up with the
/// magnitudes the paper's cost ratios imply.
pub const PAGE_SIZE: usize = 8192;

/// Number of lock stripes in the page table (power of two). Page `p`
/// lives in stripe `p mod SHARDS`, so sequentially allocated pages —
/// a heap chain, a bulk-loaded index — spread round-robin across
/// stripes and concurrent scans/seeks on different pages almost never
/// contend on the same lock.
pub const PAGER_SHARDS: usize = 16;
const SHARD_MASK: u32 = (PAGER_SHARDS as u32) - 1;
const SHARD_BITS: u32 = PAGER_SHARDS.trailing_zeros();

#[inline]
fn shard_of(id: PageId) -> usize {
    (id.raw() & SHARD_MASK) as usize
}

#[inline]
fn slot_of(id: PageId) -> usize {
    (id.raw() >> SHARD_BITS) as usize
}

#[inline]
fn id_of(shard: usize, slot: usize) -> PageId {
    PageId(((slot as u32) << SHARD_BITS) | shard as u32)
}

/// An immutable snapshot of one page's bytes.
///
/// Pages are shared via `Arc`, so "reading" a page is a refcount bump and
/// mutation is copy-on-write through [`Pager::update`]. This gives the
/// executor cheap, lock-free access to page contents while keeping the
/// pager the single point where I/O is counted.
pub type Page = Arc<[u8; PAGE_SIZE]>;

fn blank_page() -> Page {
    Arc::new([0u8; PAGE_SIZE])
}

/// Cumulative I/O counters, readable at any time.
///
/// `reads`/`writes` are *logical* page accesses — the quantity the
/// paper's cost model predicts and the quantity we report in the
/// Figure 3 reproduction. They are identical whether the pager is
/// in-memory or file-backed (cache misses, WAL appends, and writebacks
/// live in the separate *physical* ledger, [`DurableStats`]).
/// Subtracting two snapshots ([`IoStats::delta`]) scopes the counters
/// to one query or one index build — but only while a single thread is
/// driving the pager. Under concurrent execution use a
/// [`ThreadIoScope`], which counts exactly the accesses performed by
/// the current thread.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct IoStats {
    /// Logical page reads.
    pub reads: u64,
    /// Logical page writes.
    pub writes: u64,
    /// Pages allocated.
    pub allocs: u64,
}

impl IoStats {
    /// Process-wide totals, summed over every pager instance, read from
    /// the `cdpd-obs` metrics registry (counters `storage.pager.reads`
    /// / `.writes` / `.allocs`). Per-instance [`Pager::stats`] remains
    /// the scoped view; this is the registry view of the same ledger.
    pub fn global() -> IoStats {
        let r = cdpd_obs::registry();
        IoStats {
            reads: r.counter_value("storage.pager.reads"),
            writes: r.counter_value("storage.pager.writes"),
            allocs: r.counter_value("storage.pager.allocs"),
        }
    }

    /// Counter increase from `earlier` to `self`.
    pub fn delta(self, earlier: IoStats) -> IoStats {
        IoStats {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            allocs: self.allocs - earlier.allocs,
        }
    }

    /// Total page accesses (reads + writes).
    pub fn total(self) -> u64 {
        self.reads + self.writes
    }
}

thread_local! {
    /// Per-thread logical-I/O ledger, incremented in lockstep with every
    /// pager's atomic counters. One statement executes entirely on one
    /// thread, so a [`ThreadIoScope`] around it measures exactly that
    /// statement's I/O even while sibling threads hammer the same pager.
    static THREAD_IO: Cell<IoStats> = const {
        Cell::new(IoStats {
            reads: 0,
            writes: 0,
            allocs: 0,
        })
    };
}

#[inline]
fn note_thread_io(reads: u64, writes: u64, allocs: u64) {
    THREAD_IO.with(|c| {
        let mut v = c.get();
        v.reads += reads;
        v.writes += writes;
        v.allocs += allocs;
        c.set(v);
    });
}

/// Measures the logical I/O performed **by the current thread** between
/// [`ThreadIoScope::start`] and [`ThreadIoScope::delta`].
///
/// This is the concurrency-safe replacement for diffing a pager's
/// global [`Pager::stats`] around a statement: global deltas conflate
/// the work of every concurrently executing thread, while the
/// thread-local ledger attributes each access to the thread that made
/// it. Per-pager atomics, the `cdpd-obs` tracked counters, and the
/// thread-local ledger are all incremented at the same call sites, so
/// summing per-thread deltas over a partition of the work reproduces
/// the global ledger exactly.
///
/// Scopes cover *all* pager instances touched by the thread; execution
/// paths that interleave two pagers within one scope see the sum.
#[derive(Clone, Copy, Debug)]
pub struct ThreadIoScope {
    start: IoStats,
}

impl ThreadIoScope {
    /// Begin measuring at the thread's current ledger position.
    pub fn start() -> ThreadIoScope {
        ThreadIoScope {
            start: THREAD_IO.with(Cell::get),
        }
    }

    /// I/O performed by this thread since [`ThreadIoScope::start`].
    pub fn delta(&self) -> IoStats {
        THREAD_IO.with(Cell::get).delta(self.start)
    }
}

/// One cache frame: the page image (absent when evicted to the file
/// backend), its durable-tier dirty bits, and a clock-LRU stamp.
///
/// `dirty_log` — modified since the last [`Pager::commit`]; the next
/// commit appends the image to the WAL and clears it.
/// `dirty_page` — modified since the last [`Pager::checkpoint`]; the
/// next checkpoint writes the image back to the data file and clears
/// it. `dirty_log ⊆ dirty_page` always, and dirty frames are pinned
/// (never evicted), so an evicted frame can always be refetched from
/// the data file.
struct Frame {
    page: Option<Page>,
    dirty_log: bool,
    dirty_page: bool,
    stamp: AtomicU64,
}

impl Frame {
    fn empty() -> Frame {
        Frame {
            page: None,
            dirty_log: false,
            dirty_page: false,
            stamp: AtomicU64::new(0),
        }
    }
}

/// One lock stripe of the page table: a slice of the frame array plus
/// the stripe's free list. Stripe `s` holds pages `s, s+16, s+32, …` at
/// slots `0, 1, 2, …`.
struct PageShard {
    frames: RwLock<Vec<Frame>>,
    free: Mutex<Vec<PageId>>,
    /// Clock for LRU stamps (durable mode only).
    clock: AtomicU64,
    /// Resident (cached) frames in this stripe; maintained under the
    /// frame write lock.
    resident: AtomicUsize,
}

impl PageShard {
    fn new() -> PageShard {
        PageShard {
            frames: RwLock::new(Vec::new()),
            free: Mutex::new(Vec::new()),
            clock: AtomicU64::new(0),
            resident: AtomicUsize::new(0),
        }
    }
}

/// The page store: allocates, reads, and writes fixed-size pages, and
/// counts every access.
///
/// All methods take `&self`. The page table is **lock-striped**:
/// [`PAGER_SHARDS`] stripes each guard `1/SHARDS` of the pages behind
/// their own `RwLock`, with per-stripe free lists, so concurrent reads
/// of different pages proceed in parallel (reads of pages in the same
/// stripe still share a read lock, which `RwLock` grants concurrently).
/// The I/O ledger is kept in atomics and stays *exact* under any
/// interleaving; a `Pager` can be shared (`Arc<Pager>`) between a
/// table's heap file and all of its indexes — mirroring one database
/// file holding many objects, with one ledger.
///
/// Page ids are dense (`0, 1, 2, …` in allocation order) regardless of
/// striping; [`Pager::free`] returns pages to their stripe's free list
/// and [`Pager::allocate`] reuses free pages (scanning stripes in index
/// order) before growing the table, so repeated index build/drop cycles
/// keep a bounded footprint.
///
/// # Storage backends
///
/// [`Pager::new`] is the in-memory pager every existing test and
/// experiment uses: all pages stay resident and nothing persists.
/// [`Pager::open_durable`] opens (or recovers) a **file-backed** pager
/// on a [`Vfs`]: the frame table becomes a cache in front of a
/// checksummed data file, mutations are redo-logged by
/// [`Pager::commit`] into a write-ahead log, and [`Pager::checkpoint`]
/// writes dirty pages back and truncates the log. The *logical* I/O
/// ledger is identical across backends; the durable tier keeps its own
/// physical ledger ([`Pager::durable_stats`]).
pub struct Pager {
    shards: [PageShard; PAGER_SHARDS],
    /// Next fresh page id; also the dense page count.
    next: AtomicU32,
    /// Total pages on all free lists (fast-path gate for reuse).
    free_len: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    allocs: AtomicU64,
    /// File-backed state; `None` for the in-memory pager.
    durable: Option<Durable>,
}

impl Default for Pager {
    fn default() -> Self {
        Self::new()
    }
}

impl Pager {
    /// An empty in-memory pager.
    pub fn new() -> Pager {
        Pager::build(None)
    }

    fn build(durable: Option<Durable>) -> Pager {
        Pager {
            shards: std::array::from_fn(|_| PageShard::new()),
            next: AtomicU32::new(0),
            free_len: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            allocs: AtomicU64::new(0),
            durable,
        }
    }

    /// Open (or recover) a file-backed pager inside `vfs`.
    ///
    /// A blank namespace initializes a fresh database (and immediately
    /// makes an empty checkpoint header durable). Otherwise recovery
    /// runs: the newest valid ping-pong header is adopted, the WAL is
    /// scanned, every committed transaction newer than the header is
    /// replayed into the cache (its pages pinned dirty until the next
    /// checkpoint), and any torn tail past the last valid commit frame
    /// is truncated. Headers, WAL frames, and data pages are all
    /// checksummed, so torn or corrupted state is detected and reported
    /// as [`Error::Corrupt`] — never silently adopted.
    pub fn open_durable(vfs: Arc<dyn Vfs>, opts: DurableOptions) -> Result<DurableOpen> {
        let _span = cdpd_obs::span!("storage.recover");
        let base = recover_base(&*vfs)?;
        let fresh = base.is_none();
        let hdr0 = vfs.open(FILE_HDR[0])?;
        let hdr1 = vfs.open(FILE_HDR[1])?;
        let data = vfs.open(FILE_DATA)?;
        let sums = vfs.open(FILE_SUMS)?;
        let wal_file = vfs.open(FILE_WAL)?;

        let (mut meta, hdr_seq, ckpt_no) = match base {
            Some(h) => (h.meta, h.seq, h.ckpt_no),
            None => (
                CommittedMeta {
                    next: 0,
                    free: vec![Vec::new(); PAGER_SHARDS],
                    app_meta: Vec::new(),
                },
                0,
                0,
            ),
        };

        // Replay the committed WAL suffix on top of the header state.
        // Transactions at or below the header's sequence predate the
        // checkpoint that wrote it (the crash hit between header fsync
        // and WAL truncation) and are skipped.
        let (txns, valid_len) = crate::wal::scan(&*wal_file)?;
        let mut seq = hdr_seq;
        let mut overlay: std::collections::HashMap<u32, Page> = std::collections::HashMap::new();
        let mut replayed = 0u64;
        for txn in txns {
            if txn.seq <= hdr_seq {
                continue;
            }
            for (id, page) in txn.pages {
                overlay.insert(id.raw(), page);
            }
            meta = crate::durable::decode_meta(&txn.meta)?;
            seq = txn.seq;
            replayed += 1;
        }

        if fresh {
            // Make the empty state durable so a later open can always
            // find a valid header once transactions start committing.
            let bytes = encode_header(0, 0, &meta);
            hdr0.write_at(0, &bytes)?;
            hdr0.truncate(bytes.len() as u64)?;
            hdr0.sync()?;
        }

        let durable = Durable {
            data,
            sums,
            hdr: [hdr0, hdr1],
            wal: Mutex::new(WalWriter::new(wal_file, valid_len)?),
            opts,
            seq: AtomicU64::new(seq),
            ckpt_no: AtomicU64::new(ckpt_no),
            committed: Mutex::new(meta.clone()),
            commit_serial: Mutex::new(()),
            wal_appends: AtomicU64::new(0),
            wal_commits: AtomicU64::new(0),
            wal_fsyncs: AtomicU64::new(0),
            writeback_pages: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            backend_fetches: AtomicU64::new(0),
        };
        let pager = Pager::build(Some(durable));
        pager.next.store(meta.next, Ordering::Relaxed);
        let mut free_total = 0u64;
        for (s, list) in meta.free.iter().enumerate() {
            free_total += list.len() as u64;
            *pager.shards[s].free.lock().expect("pager lock poisoned") = list.clone();
        }
        pager.free_len.store(free_total, Ordering::Release);

        // Install replayed page images, pinned dirty: they are durable
        // in the WAL but not yet in the data file, so they must survive
        // in cache until the next checkpoint writes them back.
        for (raw, page) in overlay {
            let id = PageId(raw);
            let shard = &pager.shards[shard_of(id)];
            let mut frames = shard.frames.write().expect("pager lock poisoned");
            let slot = slot_of(id);
            if frames.len() <= slot {
                frames.resize_with(slot + 1, Frame::empty);
            }
            let frame = &mut frames[slot];
            frame.page = Some(page);
            frame.dirty_page = true;
            shard.resident.fetch_add(1, Ordering::Relaxed);
        }

        cdpd_obs::counter!("storage.recovery.opens").inc();
        cdpd_obs::counter!("storage.recovery.replayed_txns").add(replayed);
        Ok(DurableOpen {
            app_meta: meta.app_meta.clone(),
            committed_seq: seq,
            pager,
        })
    }

    /// Whether this pager has a file backend.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// Snapshot of the durable tier's physical ledger (all zeros for an
    /// in-memory pager).
    pub fn durable_stats(&self) -> DurableStats {
        match &self.durable {
            None => DurableStats::default(),
            Some(d) => DurableStats {
                wal_appends: d.wal_appends.load(Ordering::Relaxed),
                wal_commits: d.wal_commits.load(Ordering::Relaxed),
                wal_fsyncs: d.wal_fsyncs.load(Ordering::Relaxed),
                writeback_pages: d.writeback_pages.load(Ordering::Relaxed),
                checkpoints: d.checkpoints.load(Ordering::Relaxed),
                backend_fetches: d.backend_fetches.load(Ordering::Relaxed),
            },
        }
    }

    /// Sequence number of the newest committed transaction (0 for an
    /// in-memory pager or a fresh database).
    pub fn committed_seq(&self) -> u64 {
        self.durable
            .as_ref()
            .map_or(0, |d| d.seq.load(Ordering::Relaxed))
    }

    /// Current WAL length in bytes (0 for an in-memory pager).
    pub fn wal_bytes(&self) -> u64 {
        self.durable
            .as_ref()
            .map_or(0, |d| d.wal.lock().expect("pager lock poisoned").len())
    }

    /// Pages currently resident in the cache (for an in-memory pager,
    /// every allocated page is resident).
    pub fn resident_pages(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.resident.load(Ordering::Relaxed))
            .sum()
    }

    /// Allocate a zeroed page and return its id, reusing a freed page
    /// when one is available (stripes are scanned in index order, each
    /// stripe's list popped LIFO).
    pub fn allocate(&self) -> PageId {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        note_thread_io(0, 0, 1);
        cdpd_obs::tracked_counter!("storage.pager.allocs").inc();
        if self.free_len.load(Ordering::Acquire) > 0 {
            for shard in &self.shards {
                let popped = shard.free.lock().expect("pager lock poisoned").pop();
                if let Some(id) = popped {
                    self.free_len.fetch_sub(1, Ordering::Release);
                    let mut frames = shard.frames.write().expect("pager lock poisoned");
                    let slot = slot_of(id);
                    if frames.len() <= slot {
                        // A recovered free-list page may predate any
                        // frame this process has materialized.
                        frames.resize_with(slot + 1, Frame::empty);
                    }
                    self.install(shard, &mut frames, slot, blank_page());
                    return id;
                }
            }
        }
        let raw = self.next.fetch_add(1, Ordering::Relaxed);
        assert!(raw != u32::MAX, "page count exceeds u32");
        let id = PageId(raw);
        let shard = &self.shards[shard_of(id)];
        let mut frames = shard.frames.write().expect("pager lock poisoned");
        let slot = slot_of(id);
        if frames.len() <= slot {
            frames.resize_with(slot + 1, Frame::empty);
        }
        self.install(shard, &mut frames, slot, blank_page());
        id
    }

    /// Put `page` into a frame, marking it dirty in durable mode and
    /// keeping the stripe's resident count exact.
    fn install(&self, shard: &PageShard, frames: &mut [Frame], slot: usize, page: Page) {
        let frame = &mut frames[slot];
        if frame.page.is_none() {
            shard.resident.fetch_add(1, Ordering::Relaxed);
        }
        frame.page = Some(page);
        if self.durable.is_some() {
            frame.dirty_log = true;
            frame.dirty_page = true;
            frame.stamp.store(
                shard.clock.fetch_add(1, Ordering::Relaxed) + 1,
                Ordering::Relaxed,
            );
        }
    }

    /// Return pages to the allocator (e.g. after `DROP INDEX`). The
    /// caller must guarantee nothing references them any more; the
    /// bytes are zeroed on reuse, not on free.
    pub fn free(&self, ids: &[PageId]) {
        let page_count = self.next.load(Ordering::Relaxed);
        for &id in ids {
            debug_assert!(id.raw() < page_count, "freeing unallocated page {id}");
            let mut free = self.shards[shard_of(id)]
                .free
                .lock()
                .expect("pager lock poisoned");
            debug_assert!(!free.contains(&id), "double free of page {id}");
            free.push(id);
            self.free_len.fetch_add(1, Ordering::Release);
        }
    }

    /// Number of pages currently on the free lists.
    pub fn free_count(&self) -> u64 {
        self.free_len.load(Ordering::Acquire)
    }

    fn out_of_range(id: PageId) -> Error {
        Error::Corrupt(format!("page {id} out of range"))
    }

    /// Read a page (counted as one logical read).
    ///
    /// On a durable pager a cache miss fetches (and checksum-verifies)
    /// the page from the data file, counted in the physical ledger; the
    /// logical cost is one read either way.
    pub fn read(&self, id: PageId) -> Result<Page> {
        let shard = &self.shards[shard_of(id)];
        let cached = {
            let frames = shard.frames.read().expect("pager lock poisoned");
            frames.get(slot_of(id)).and_then(|f| {
                let page = f.page.clone()?;
                if self.durable.is_some() {
                    f.stamp.store(
                        shard.clock.fetch_add(1, Ordering::Relaxed) + 1,
                        Ordering::Relaxed,
                    );
                }
                Some(page)
            })
        };
        let page = match cached {
            Some(page) => {
                if id.raw() >= self.next.load(Ordering::Relaxed) {
                    return Err(Self::out_of_range(id));
                }
                page
            }
            None => {
                if id.raw() >= self.next.load(Ordering::Relaxed) {
                    return Err(Self::out_of_range(id));
                }
                let Some(d) = &self.durable else {
                    return Err(Self::out_of_range(id));
                };
                self.load_miss(d, id)?
            }
        };
        self.reads.fetch_add(1, Ordering::Relaxed);
        note_thread_io(1, 0, 0);
        cdpd_obs::tracked_counter!("storage.pager.reads").inc();
        Ok(page)
    }

    /// Fetch an evicted (or never-resident) page from the file backend
    /// and cache it clean, evicting a clean LRU frame if the stripe is
    /// over budget.
    fn load_miss(&self, d: &Durable, id: PageId) -> Result<Page> {
        let page = d.fetch(id)?;
        d.backend_fetches.fetch_add(1, Ordering::Relaxed);
        cdpd_obs::tracked_counter!("storage.backend.fetches").inc();
        let shard = &self.shards[shard_of(id)];
        let mut frames = shard.frames.write().expect("pager lock poisoned");
        let slot = slot_of(id);
        if frames.len() <= slot {
            frames.resize_with(slot + 1, Frame::empty);
        }
        if let Some(raced) = frames[slot].page.clone() {
            // Another thread cached it while we fetched.
            return Ok(raced);
        }
        Self::evict_over_budget(shard, &mut frames, d.stripe_capacity(), 1);
        let frame = &mut frames[slot];
        frame.page = Some(page.clone());
        frame.stamp.store(
            shard.clock.fetch_add(1, Ordering::Relaxed) + 1,
            Ordering::Relaxed,
        );
        shard.resident.fetch_add(1, Ordering::Relaxed);
        Ok(page)
    }

    /// Drop clean least-recently-stamped frames until the stripe has
    /// room for `reserve` more residents within its budget. Dirty
    /// frames are pinned; if nothing is evictable the stripe
    /// temporarily exceeds its budget.
    fn evict_over_budget(shard: &PageShard, frames: &mut [Frame], capacity: usize, reserve: usize) {
        while shard.resident.load(Ordering::Relaxed) + reserve > capacity.max(1) {
            let victim = frames
                .iter_mut()
                .enumerate()
                .filter(|(_, f)| f.page.is_some() && !f.dirty_page && !f.dirty_log)
                .min_by_key(|(_, f)| f.stamp.load(Ordering::Relaxed))
                .map(|(i, _)| i);
            let Some(i) = victim else { break };
            frames[i].page = None;
            shard.resident.fetch_sub(1, Ordering::Relaxed);
            cdpd_obs::counter!("storage.pager.evictions").inc();
        }
    }

    /// Replace a page's contents (counted as one logical write).
    pub fn write(&self, id: PageId, page: Page) -> Result<()> {
        if id.raw() >= self.next.load(Ordering::Relaxed) {
            return Err(Self::out_of_range(id));
        }
        let shard = &self.shards[shard_of(id)];
        let mut frames = shard.frames.write().expect("pager lock poisoned");
        let slot = slot_of(id);
        if frames.get(slot).is_none() {
            if self.durable.is_some() {
                frames.resize_with(slot + 1, Frame::empty);
            } else {
                return Err(Self::out_of_range(id));
            }
        }
        self.install(shard, &mut frames, slot, page);
        self.writes.fetch_add(1, Ordering::Relaxed);
        note_thread_io(0, 1, 0);
        cdpd_obs::tracked_counter!("storage.pager.writes").inc();
        Ok(())
    }

    /// Read-modify-write a page in place (one read + one write).
    ///
    /// Copy-on-write: if the page is shared with readers the buffer is
    /// cloned before mutation, so outstanding [`Page`] handles never see
    /// torn updates.
    pub fn update<R>(&self, id: PageId, f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R) -> Result<R> {
        if id.raw() >= self.next.load(Ordering::Relaxed) {
            return Err(Self::out_of_range(id));
        }
        let shard = &self.shards[shard_of(id)];
        let mut frames = shard.frames.write().expect("pager lock poisoned");
        let slot = slot_of(id);
        if frames.get(slot).is_none() {
            if self.durable.is_some() {
                frames.resize_with(slot + 1, Frame::empty);
            } else {
                return Err(Self::out_of_range(id));
            }
        }
        if frames[slot].page.is_none() {
            // Evicted: refetch before mutating. The frame write lock is
            // held across the fetch, which is fine for the single-writer
            // workloads that mutate through `update`.
            let Some(d) = &self.durable else {
                return Err(Self::out_of_range(id));
            };
            let page = d.fetch(id)?;
            d.backend_fetches.fetch_add(1, Ordering::Relaxed);
            cdpd_obs::tracked_counter!("storage.backend.fetches").inc();
            let frame = &mut frames[slot];
            frame.page = Some(page);
            shard.resident.fetch_add(1, Ordering::Relaxed);
        }
        let frame = &mut frames[slot];
        let buf = Arc::make_mut(frame.page.as_mut().expect("frame resident"));
        let r = f(buf);
        if self.durable.is_some() {
            frame.dirty_log = true;
            frame.dirty_page = true;
            frame.stamp.store(
                shard.clock.fetch_add(1, Ordering::Relaxed) + 1,
                Ordering::Relaxed,
            );
        }
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.writes.fetch_add(1, Ordering::Relaxed);
        note_thread_io(1, 1, 0);
        cdpd_obs::tracked_counter!("storage.pager.reads").inc();
        cdpd_obs::tracked_counter!("storage.pager.writes").inc();
        Ok(r)
    }

    /// Commit every mutation since the last commit: append the dirty
    /// page images plus a commit frame carrying the allocation state
    /// and `app_meta` (the caller's catalog blob) to the WAL, fsyncing
    /// per the group-commit policy. Returns the commit's sequence
    /// number. No-op (returning 0) on an in-memory pager.
    ///
    /// Commits are serialized internally (racing callers queue on a
    /// commit mutex), and readers may run concurrently — but a commit
    /// snapshots *every* page dirtied since the last commit, so the
    /// caller must ensure no mutation is mid-flight when it commits
    /// (the engine holds its commit-phase lock exclusively here, and
    /// shared during statement mutation, for exactly this reason).
    pub fn commit(&self, app_meta: &[u8]) -> Result<u64> {
        let Some(d) = &self.durable else {
            return Ok(0);
        };
        let _serial = d.commit_serial.lock().expect("pager lock poisoned");
        let _span = cdpd_obs::span!("storage.commit");
        let mut dirty: Vec<(PageId, Page)> = Vec::new();
        for (s, shard) in self.shards.iter().enumerate() {
            let mut frames = shard.frames.write().expect("pager lock poisoned");
            for (slot, frame) in frames.iter_mut().enumerate() {
                if frame.dirty_log {
                    let page = frame.page.clone().expect("dirty frame is pinned resident");
                    dirty.push((id_of(s, slot), page));
                    frame.dirty_log = false;
                }
            }
        }
        dirty.sort_by_key(|(id, _)| id.raw());

        let meta = CommittedMeta {
            next: self.next.load(Ordering::Relaxed),
            free: self
                .shards
                .iter()
                .map(|s| s.free.lock().expect("pager lock poisoned").clone())
                .collect(),
            app_meta: app_meta.to_vec(),
        };
        let encoded = encode_meta(&meta);
        let seq = d.seq.load(Ordering::Relaxed) + 1;
        {
            let mut wal = d.wal.lock().expect("pager lock poisoned");
            for (id, page) in &dirty {
                wal.append_page(*id, page)?;
                d.wal_appends.fetch_add(1, Ordering::Relaxed);
                cdpd_obs::tracked_counter!("storage.wal.appends").inc();
            }
            let synced = wal.append_commit(seq, &encoded, d.opts.group_commit)?;
            d.wal_commits.fetch_add(1, Ordering::Relaxed);
            cdpd_obs::tracked_counter!("storage.wal.commits").inc();
            if synced {
                d.wal_fsyncs.fetch_add(1, Ordering::Relaxed);
                cdpd_obs::tracked_counter!("storage.wal.fsyncs").inc();
            }
        }
        d.seq.store(seq, Ordering::Relaxed);
        *d.committed.lock().expect("pager lock poisoned") = meta;

        if d.opts.checkpoint_wal_bytes > 0 && self.wal_bytes() > d.opts.checkpoint_wal_bytes {
            self.checkpoint()?;
        }
        Ok(seq)
    }

    /// Flush every dirty page to the checksummed data file, make the
    /// committed state durable in a ping-pong header, and truncate the
    /// WAL. No-op on an in-memory pager.
    ///
    /// # Errors
    /// [`Error::InvalidArgument`] if uncommitted mutations exist —
    /// writing them back would bypass the write-ahead rule; call
    /// [`Pager::commit`] first.
    pub fn checkpoint(&self) -> Result<()> {
        let Some(d) = &self.durable else {
            return Ok(());
        };
        let _span = cdpd_obs::span!("storage.checkpoint");
        let started = std::time::Instant::now();

        // The write-ahead rule requires every page we are about to
        // write back to be durable in the log first: sync any
        // group-commit debt, and refuse if uncommitted mutations exist.
        for shard in &self.shards {
            let frames = shard.frames.read().expect("pager lock poisoned");
            if frames.iter().any(|f| f.dirty_log) {
                return Err(Error::InvalidArgument(
                    "checkpoint with uncommitted pages — commit first".into(),
                ));
            }
        }
        {
            let mut wal = d.wal.lock().expect("pager lock poisoned");
            wal.sync()?;
            d.wal_fsyncs.fetch_add(1, Ordering::Relaxed);
            cdpd_obs::tracked_counter!("storage.wal.fsyncs").inc();
        }

        let mut written = 0u64;
        for (s, shard) in self.shards.iter().enumerate() {
            let mut frames = shard.frames.write().expect("pager lock poisoned");
            for (slot, frame) in frames.iter_mut().enumerate() {
                if frame.dirty_page {
                    let page = frame.page.as_ref().expect("dirty frame is pinned resident");
                    d.write_back(id_of(s, slot), page)?;
                    frame.dirty_page = false;
                    written += 1;
                }
            }
            Self::evict_over_budget(shard, &mut frames, d.stripe_capacity(), 0);
        }
        d.data.sync()?;
        d.sums.sync()?;

        let ckpt_no = d.ckpt_no.load(Ordering::Relaxed) + 1;
        let seq = d.seq.load(Ordering::Relaxed);
        let meta = d.committed.lock().expect("pager lock poisoned").clone();
        let bytes = encode_header(ckpt_no, seq, &meta);
        let slot = (ckpt_no % 2) as usize;
        d.hdr[slot].write_at(0, &bytes)?;
        d.hdr[slot].truncate(bytes.len() as u64)?;
        d.hdr[slot].sync()?;
        d.ckpt_no.store(ckpt_no, Ordering::Relaxed);

        d.wal.lock().expect("pager lock poisoned").reset()?;

        d.writeback_pages.fetch_add(written, Ordering::Relaxed);
        cdpd_obs::tracked_counter!("storage.writeback.pages").add(written);
        d.checkpoints.fetch_add(1, Ordering::Relaxed);
        cdpd_obs::tracked_counter!("storage.checkpoint.completed").inc();
        cdpd_obs::histogram!("storage.checkpoint.nanos")
            .record(started.elapsed().as_nanos() as u64);
        Ok(())
    }

    /// Number of allocated pages (live + free-listed; ids are dense).
    pub fn page_count(&self) -> u64 {
        self.next.load(Ordering::Relaxed) as u64
    }

    /// Snapshot of the I/O counters.
    pub fn stats(&self) -> IoStats {
        IoStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            allocs: self.allocs.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;

    #[test]
    fn allocate_read_write_roundtrip() {
        let pager = Pager::new();
        let id = pager.allocate();
        let mut buf = [0u8; PAGE_SIZE];
        buf[0] = 0xAB;
        pager.write(id, Arc::new(buf)).unwrap();
        let page = pager.read(id).unwrap();
        assert_eq!(page[0], 0xAB);
    }

    #[test]
    fn counters_track_each_access() {
        let pager = Pager::new();
        let id = pager.allocate();
        let before = pager.stats();
        pager.read(id).unwrap();
        pager.read(id).unwrap();
        pager.update(id, |b| b[1] = 7).unwrap();
        let d = pager.stats().delta(before);
        assert_eq!(
            d,
            IoStats {
                reads: 3,
                writes: 1,
                allocs: 0
            }
        );
        assert_eq!(d.total(), 4);
    }

    #[test]
    fn thread_scope_tracks_this_thread_only() {
        let pager = Arc::new(Pager::new());
        let id = pager.allocate();
        let scope = ThreadIoScope::start();
        pager.read(id).unwrap();
        pager.update(id, |b| b[0] = 1).unwrap();
        // A sibling thread's I/O must not leak into this scope.
        let sibling = pager.clone();
        std::thread::spawn(move || {
            for _ in 0..100 {
                sibling.read(id).unwrap();
            }
        })
        .join()
        .unwrap();
        assert_eq!(
            scope.delta(),
            IoStats {
                reads: 2,
                writes: 1,
                allocs: 0
            }
        );
    }

    #[test]
    fn update_is_copy_on_write() {
        let pager = Pager::new();
        let id = pager.allocate();
        let held = pager.read(id).unwrap();
        pager.update(id, |b| b[0] = 9).unwrap();
        assert_eq!(held[0], 0, "outstanding handle must not see the update");
        assert_eq!(pager.read(id).unwrap()[0], 9);
    }

    #[test]
    fn out_of_range_is_corruption_error() {
        let pager = Pager::new();
        assert!(pager.read(PageId(3)).is_err());
        assert!(pager.write(PageId(0), blank_page()).is_err());
        assert!(pager.update(PageId(1), |_| ()).is_err());
    }

    #[test]
    fn page_ids_are_dense() {
        let pager = Pager::new();
        assert_eq!(pager.allocate(), PageId(0));
        assert_eq!(pager.allocate(), PageId(1));
        assert_eq!(pager.page_count(), 2);
    }

    #[test]
    fn freed_pages_are_reused_zeroed() {
        let pager = Pager::new();
        let a = pager.allocate();
        let b = pager.allocate();
        pager.update(a, |buf| buf[0] = 0xEE).unwrap();
        pager.free(&[a]);
        assert_eq!(pager.free_count(), 1);
        let c = pager.allocate();
        assert_eq!(c, a, "free list is reused first");
        assert_eq!(pager.read(c).unwrap()[0], 0, "reused page is zeroed");
        assert_eq!(pager.free_count(), 0);
        assert_eq!(pager.page_count(), 2);
        let _ = b;
    }

    #[test]
    fn cross_stripe_frees_all_reused_before_growth() {
        let pager = Pager::new();
        // Allocate enough pages to populate several stripes.
        let ids: Vec<PageId> = (0..PAGER_SHARDS as u32 * 3)
            .map(|_| pager.allocate())
            .collect();
        let grown = pager.page_count();
        // Free a scattering of pages across stripes, then re-allocate
        // exactly that many: every one must come from a free list.
        let victims: Vec<PageId> = ids.iter().copied().step_by(5).collect();
        pager.free(&victims);
        assert_eq!(pager.free_count(), victims.len() as u64);
        for _ in &victims {
            pager.allocate();
        }
        assert_eq!(pager.free_count(), 0);
        assert_eq!(pager.page_count(), grown, "no growth while pages are free");
    }

    #[test]
    fn concurrent_reads_and_allocs_keep_exact_ledger() {
        let pager = Arc::new(Pager::new());
        let seed: Vec<PageId> = (0..64).map(|_| pager.allocate()).collect();
        let before = pager.stats();
        const THREADS: u64 = 8;
        const READS: u64 = 500;
        const ALLOCS: u64 = 50;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let pager = &pager;
                let seed = &seed;
                s.spawn(move || {
                    let scope = ThreadIoScope::start();
                    for i in 0..READS {
                        pager.read(seed[((t * 31 + i) % 64) as usize]).unwrap();
                    }
                    for _ in 0..ALLOCS {
                        pager.allocate();
                    }
                    let d = scope.delta();
                    assert_eq!(d.reads, READS);
                    assert_eq!(d.allocs, ALLOCS);
                });
            }
        });
        let d = pager.stats().delta(before);
        assert_eq!(d.reads, THREADS * READS, "no read lost or double-counted");
        assert_eq!(d.allocs, THREADS * ALLOCS);
        assert_eq!(pager.page_count(), 64 + THREADS * ALLOCS);
    }

    // ------------------------------------------------------------------
    // Durable tier

    fn open(vfs: &MemVfs, opts: DurableOptions) -> DurableOpen {
        Pager::open_durable(Arc::new(vfs.clone()), opts).unwrap()
    }

    #[test]
    fn durable_commit_survives_reopen() {
        let vfs = MemVfs::new();
        let opened = open(&vfs, DurableOptions::default());
        let pager = opened.pager;
        let a = pager.allocate();
        let b = pager.allocate();
        pager.update(a, |p| p[0] = 0x11).unwrap();
        pager.update(b, |p| p[0] = 0x22).unwrap();
        let seq = pager.commit(b"app state").unwrap();
        assert_eq!(seq, 1);
        drop(pager); // "crash" — nothing checkpointed, only the WAL holds state

        let reopened = open(&vfs, DurableOptions::default());
        assert_eq!(reopened.committed_seq, 1);
        assert_eq!(reopened.app_meta, b"app state");
        assert_eq!(reopened.pager.page_count(), 2);
        assert_eq!(reopened.pager.read(a).unwrap()[0], 0x11);
        assert_eq!(reopened.pager.read(b).unwrap()[0], 0x22);
    }

    #[test]
    fn uncommitted_mutations_do_not_survive() {
        let vfs = MemVfs::new();
        let pager = open(&vfs, DurableOptions::default()).pager;
        let a = pager.allocate();
        pager.update(a, |p| p[0] = 1).unwrap();
        pager.commit(b"v1").unwrap();
        pager.update(a, |p| p[0] = 2).unwrap(); // never committed
        drop(pager);

        let reopened = open(&vfs, DurableOptions::default());
        assert_eq!(reopened.app_meta, b"v1");
        assert_eq!(
            reopened.pager.read(a).unwrap()[0],
            1,
            "uncommitted write must roll back"
        );
    }

    #[test]
    fn checkpoint_truncates_wal_and_survives() {
        let vfs = MemVfs::new();
        let pager = open(&vfs, DurableOptions::default()).pager;
        let ids: Vec<PageId> = (0..40).map(|_| pager.allocate()).collect();
        for (i, &id) in ids.iter().enumerate() {
            pager.update(id, |p| p[0] = i as u8).unwrap();
        }
        pager.commit(b"loaded").unwrap();
        assert!(pager.wal_bytes() > 0);
        pager.checkpoint().unwrap();
        assert_eq!(pager.wal_bytes(), 0, "checkpoint truncates the log");
        let stats = pager.durable_stats();
        assert_eq!(stats.checkpoints, 1);
        assert_eq!(stats.writeback_pages, 40);
        drop(pager);

        let reopened = open(&vfs, DurableOptions::default()).pager;
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(reopened.pager_read_byte(id), i as u8);
        }
        assert_eq!(reopened.page_count(), 40);
    }

    impl Pager {
        fn pager_read_byte(&self, id: PageId) -> u8 {
            self.read(id).unwrap()[0]
        }
    }

    #[test]
    fn checkpoint_requires_commit_first() {
        let vfs = MemVfs::new();
        let pager = open(&vfs, DurableOptions::default()).pager;
        let a = pager.allocate();
        pager.update(a, |p| p[0] = 1).unwrap();
        let err = pager.checkpoint().unwrap_err();
        assert!(matches!(err, Error::InvalidArgument(_)), "{err}");
        pager.commit(b"").unwrap();
        pager.checkpoint().unwrap();
    }

    #[test]
    fn free_lists_survive_reopen() {
        let vfs = MemVfs::new();
        let pager = open(&vfs, DurableOptions::default()).pager;
        let ids: Vec<PageId> = (0..10).map(|_| pager.allocate()).collect();
        pager.free(&ids[2..5]);
        pager.commit(b"").unwrap();
        drop(pager);

        let pager = open(&vfs, DurableOptions::default()).pager;
        assert_eq!(pager.free_count(), 3);
        assert_eq!(pager.page_count(), 10);
        // Reuse drains the recovered free lists before growing.
        for _ in 0..3 {
            let id = pager.allocate();
            assert!(id.raw() < 10);
        }
        assert_eq!(pager.page_count(), 10);
    }

    #[test]
    fn cache_evicts_clean_pages_and_refetches() {
        let vfs = MemVfs::new();
        let opts = DurableOptions {
            cache_pages: PAGER_SHARDS, // one resident page per stripe
            ..DurableOptions::default()
        };
        let pager = open(&vfs, opts.clone()).pager;
        let n = 4 * PAGER_SHARDS as u32;
        let ids: Vec<PageId> = (0..n).map(|_| pager.allocate()).collect();
        for &id in &ids {
            pager.update(id, |p| p[0] = id.raw() as u8).unwrap();
        }
        pager.commit(b"").unwrap();
        pager.checkpoint().unwrap(); // pages become clean ⇒ evictable
        assert!(
            pager.resident_pages() <= PAGER_SHARDS,
            "checkpoint enforces the budget ({} resident)",
            pager.resident_pages()
        );
        let logical_before = pager.stats();
        let physical_before = pager.durable_stats();
        for &id in &ids {
            assert_eq!(pager.read(id).unwrap()[0], id.raw() as u8);
        }
        let logical = pager.stats().delta(logical_before);
        let physical = pager.durable_stats().delta(physical_before);
        assert_eq!(logical.reads, n as u64, "logical ledger unchanged by cache");
        assert!(
            physical.backend_fetches > 0,
            "a 1-page-per-stripe cache must miss"
        );
        assert!(pager.resident_pages() <= 2 * PAGER_SHARDS);
    }

    #[test]
    fn auto_checkpoint_bounds_wal_growth() {
        let vfs = MemVfs::new();
        let opts = DurableOptions {
            checkpoint_wal_bytes: 64 * 1024,
            ..DurableOptions::default()
        };
        let pager = open(&vfs, opts).pager;
        let id = pager.allocate();
        for i in 0..40u8 {
            pager.update(id, |p| p[0] = i).unwrap();
            pager.commit(b"").unwrap();
        }
        assert!(
            pager.durable_stats().checkpoints > 0,
            "WAL growth must trigger checkpoints"
        );
        assert!(pager.wal_bytes() <= 64 * 1024 + 9000);
    }

    #[test]
    fn corrupt_data_page_is_detected_not_ub() {
        let vfs = MemVfs::new();
        let pager = open(&vfs, DurableOptions::default()).pager;
        let id = pager.allocate();
        pager.update(id, |p| p[0] = 7).unwrap();
        pager.commit(b"").unwrap();
        pager.checkpoint().unwrap();
        drop(pager);

        let mut data = vfs.snapshot(FILE_DATA).unwrap();
        data[100] ^= 0xFF;
        vfs.overwrite(FILE_DATA, data);

        // Recovery itself succeeds (pages load lazily); the read of the
        // corrupted page fails with a clean checksum error.
        let pager = open(&vfs, DurableOptions::default()).pager;
        let err = pager.read(id).unwrap_err();
        assert!(
            err.to_string().contains("checksum"),
            "expected checksum error, got {err}"
        );
    }

    #[test]
    fn corrupt_headers_fail_closed() {
        let vfs = MemVfs::new();
        let pager = open(&vfs, DurableOptions::default()).pager;
        let id = pager.allocate();
        pager.update(id, |p| p[0] = 1).unwrap();
        pager.commit(b"").unwrap();
        pager.checkpoint().unwrap();
        drop(pager);

        for name in FILE_HDR {
            if let Some(mut bytes) = vfs.snapshot(name) {
                if !bytes.is_empty() {
                    bytes[0] ^= 0xFF;
                    vfs.overwrite(name, bytes);
                }
            }
        }
        let err = match Pager::open_durable(Arc::new(vfs), DurableOptions::default()) {
            Err(e) => e,
            Ok(_) => panic!("open must fail closed on corrupt headers"),
        };
        assert!(matches!(err, Error::Corrupt(_)), "{err}");
    }

    #[test]
    fn stale_wal_transactions_are_skipped_after_checkpoint() {
        // Simulate a crash between header fsync and WAL truncation: the
        // WAL still holds transactions the header already covers.
        let vfs = MemVfs::new();
        let pager = open(&vfs, DurableOptions::default()).pager;
        let id = pager.allocate();
        pager.update(id, |p| p[0] = 5).unwrap();
        pager.commit(b"v1").unwrap();
        let wal_before_ckpt = vfs.snapshot(FILE_WAL).unwrap();
        pager.checkpoint().unwrap();
        drop(pager);
        // Put the pre-checkpoint WAL back (as if truncation never hit disk).
        vfs.overwrite(FILE_WAL, wal_before_ckpt);

        let reopened = open(&vfs, DurableOptions::default());
        assert_eq!(reopened.committed_seq, 1, "stale txn must not double-apply");
        assert_eq!(reopened.app_meta, b"v1");
        assert_eq!(reopened.pager.read(id).unwrap()[0], 5);
        // And committing again continues the sequence.
        assert_eq!(reopened.pager.commit(b"v2").unwrap(), 2);
    }

    #[test]
    fn in_memory_pager_reports_no_durable_state() {
        let pager = Pager::new();
        assert!(!pager.is_durable());
        assert_eq!(pager.commit(b"ignored").unwrap(), 0);
        pager.checkpoint().unwrap();
        assert_eq!(pager.durable_stats(), DurableStats::default());
        assert_eq!(pager.wal_bytes(), 0);
        assert_eq!(pager.committed_seq(), 0);
    }
}

use cdpd_types::{Error, PageId, Result};
use std::cell::Cell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Size of a page in bytes. 8 KiB matches the SQL Server page size used
/// in the paper's experiments, so page-count arithmetic (≈200 rows per
/// heap page at 2.5 M rows ⇒ ≈12.5 k heap pages) lines up with the
/// magnitudes the paper's cost ratios imply.
pub const PAGE_SIZE: usize = 8192;

/// Number of lock stripes in the page table (power of two). Page `p`
/// lives in stripe `p mod SHARDS`, so sequentially allocated pages —
/// a heap chain, a bulk-loaded index — spread round-robin across
/// stripes and concurrent scans/seeks on different pages almost never
/// contend on the same lock.
pub const PAGER_SHARDS: usize = 16;
const SHARD_MASK: u32 = (PAGER_SHARDS as u32) - 1;
const SHARD_BITS: u32 = PAGER_SHARDS.trailing_zeros();

#[inline]
fn shard_of(id: PageId) -> usize {
    (id.raw() & SHARD_MASK) as usize
}

#[inline]
fn slot_of(id: PageId) -> usize {
    (id.raw() >> SHARD_BITS) as usize
}

/// An immutable snapshot of one page's bytes.
///
/// Pages are shared via `Arc`, so "reading" a page is a refcount bump and
/// mutation is copy-on-write through [`Pager::update`]. This gives the
/// executor cheap, lock-free access to page contents while keeping the
/// pager the single point where I/O is counted.
pub type Page = Arc<[u8; PAGE_SIZE]>;

fn blank_page() -> Page {
    Arc::new([0u8; PAGE_SIZE])
}

/// Cumulative I/O counters, readable at any time.
///
/// `reads`/`writes` are *logical* page accesses — the quantity the
/// paper's cost model predicts and the quantity we report in the
/// Figure 3 reproduction. Subtracting two snapshots ([`IoStats::delta`])
/// scopes the counters to one query or one index build — but only while
/// a single thread is driving the pager. Under concurrent execution use
/// a [`ThreadIoScope`], which counts exactly the accesses performed by
/// the current thread.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct IoStats {
    /// Logical page reads.
    pub reads: u64,
    /// Logical page writes.
    pub writes: u64,
    /// Pages allocated.
    pub allocs: u64,
}

impl IoStats {
    /// Process-wide totals, summed over every pager instance, read from
    /// the `cdpd-obs` metrics registry (counters `storage.pager.reads`
    /// / `.writes` / `.allocs`). Per-instance [`Pager::stats`] remains
    /// the scoped view; this is the registry view of the same ledger.
    pub fn global() -> IoStats {
        let r = cdpd_obs::registry();
        IoStats {
            reads: r.counter_value("storage.pager.reads"),
            writes: r.counter_value("storage.pager.writes"),
            allocs: r.counter_value("storage.pager.allocs"),
        }
    }

    /// Counter increase from `earlier` to `self`.
    pub fn delta(self, earlier: IoStats) -> IoStats {
        IoStats {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            allocs: self.allocs - earlier.allocs,
        }
    }

    /// Total page accesses (reads + writes).
    pub fn total(self) -> u64 {
        self.reads + self.writes
    }
}

thread_local! {
    /// Per-thread logical-I/O ledger, incremented in lockstep with every
    /// pager's atomic counters. One statement executes entirely on one
    /// thread, so a [`ThreadIoScope`] around it measures exactly that
    /// statement's I/O even while sibling threads hammer the same pager.
    static THREAD_IO: Cell<IoStats> = const {
        Cell::new(IoStats {
            reads: 0,
            writes: 0,
            allocs: 0,
        })
    };
}

#[inline]
fn note_thread_io(reads: u64, writes: u64, allocs: u64) {
    THREAD_IO.with(|c| {
        let mut v = c.get();
        v.reads += reads;
        v.writes += writes;
        v.allocs += allocs;
        c.set(v);
    });
}

/// Measures the logical I/O performed **by the current thread** between
/// [`ThreadIoScope::start`] and [`ThreadIoScope::delta`].
///
/// This is the concurrency-safe replacement for diffing a pager's
/// global [`Pager::stats`] around a statement: global deltas conflate
/// the work of every concurrently executing thread, while the
/// thread-local ledger attributes each access to the thread that made
/// it. Per-pager atomics, the `cdpd-obs` tracked counters, and the
/// thread-local ledger are all incremented at the same call sites, so
/// summing per-thread deltas over a partition of the work reproduces
/// the global ledger exactly.
///
/// Scopes cover *all* pager instances touched by the thread; execution
/// paths that interleave two pagers within one scope see the sum.
#[derive(Clone, Copy, Debug)]
pub struct ThreadIoScope {
    start: IoStats,
}

impl ThreadIoScope {
    /// Begin measuring at the thread's current ledger position.
    pub fn start() -> ThreadIoScope {
        ThreadIoScope {
            start: THREAD_IO.with(Cell::get),
        }
    }

    /// I/O performed by this thread since [`ThreadIoScope::start`].
    pub fn delta(&self) -> IoStats {
        THREAD_IO.with(Cell::get).delta(self.start)
    }
}

/// One lock stripe of the page table: a slice of the page array plus
/// the stripe's free list. Stripe `s` holds pages `s, s+16, s+32, …` at
/// slots `0, 1, 2, …`.
struct PageShard {
    pages: RwLock<Vec<Page>>,
    free: Mutex<Vec<PageId>>,
}

impl PageShard {
    fn new() -> PageShard {
        PageShard {
            pages: RwLock::new(Vec::new()),
            free: Mutex::new(Vec::new()),
        }
    }
}

/// The page store: allocates, reads, and writes fixed-size pages, and
/// counts every access.
///
/// All methods take `&self`. The page table is **lock-striped**:
/// [`PAGER_SHARDS`] stripes each guard `1/SHARDS` of the pages behind
/// their own `RwLock`, with per-stripe free lists, so concurrent reads
/// of different pages proceed in parallel (reads of pages in the same
/// stripe still share a read lock, which `RwLock` grants concurrently).
/// The I/O ledger is kept in atomics and stays *exact* under any
/// interleaving; a `Pager` can be shared (`Arc<Pager>`) between a
/// table's heap file and all of its indexes — mirroring one database
/// file holding many objects, with one ledger.
///
/// Page ids are dense (`0, 1, 2, …` in allocation order) regardless of
/// striping; [`Pager::free`] returns pages to their stripe's free list
/// and [`Pager::allocate`] reuses free pages (scanning stripes in index
/// order) before growing the table, so repeated index build/drop cycles
/// keep a bounded footprint.
pub struct Pager {
    shards: [PageShard; PAGER_SHARDS],
    /// Next fresh page id; also the dense page count.
    next: AtomicU32,
    /// Total pages on all free lists (fast-path gate for reuse).
    free_len: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    allocs: AtomicU64,
}

impl Default for Pager {
    fn default() -> Self {
        Self::new()
    }
}

impl Pager {
    /// An empty pager.
    pub fn new() -> Pager {
        Pager {
            shards: std::array::from_fn(|_| PageShard::new()),
            next: AtomicU32::new(0),
            free_len: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            allocs: AtomicU64::new(0),
        }
    }

    /// Allocate a zeroed page and return its id, reusing a freed page
    /// when one is available (stripes are scanned in index order, each
    /// stripe's list popped LIFO).
    pub fn allocate(&self) -> PageId {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        note_thread_io(0, 0, 1);
        cdpd_obs::tracked_counter!("storage.pager.allocs").inc();
        if self.free_len.load(Ordering::Acquire) > 0 {
            for shard in &self.shards {
                let popped = shard.free.lock().expect("pager lock poisoned").pop();
                if let Some(id) = popped {
                    self.free_len.fetch_sub(1, Ordering::Release);
                    let mut pages = shard.pages.write().expect("pager lock poisoned");
                    pages[slot_of(id)] = blank_page();
                    return id;
                }
            }
        }
        let raw = self.next.fetch_add(1, Ordering::Relaxed);
        assert!(raw != u32::MAX, "page count exceeds u32");
        let id = PageId(raw);
        let mut pages = self.shards[shard_of(id)]
            .pages
            .write()
            .expect("pager lock poisoned");
        let slot = slot_of(id);
        if pages.len() <= slot {
            pages.resize_with(slot + 1, blank_page);
        } else {
            pages[slot] = blank_page();
        }
        id
    }

    /// Return pages to the allocator (e.g. after `DROP INDEX`). The
    /// caller must guarantee nothing references them any more; the
    /// bytes are zeroed on reuse, not on free.
    pub fn free(&self, ids: &[PageId]) {
        let page_count = self.next.load(Ordering::Relaxed);
        for &id in ids {
            debug_assert!(id.raw() < page_count, "freeing unallocated page {id}");
            let mut free = self.shards[shard_of(id)]
                .free
                .lock()
                .expect("pager lock poisoned");
            debug_assert!(!free.contains(&id), "double free of page {id}");
            free.push(id);
            self.free_len.fetch_add(1, Ordering::Release);
        }
    }

    /// Number of pages currently on the free lists.
    pub fn free_count(&self) -> u64 {
        self.free_len.load(Ordering::Acquire)
    }

    fn out_of_range(id: PageId) -> Error {
        Error::Corrupt(format!("page {id} out of range"))
    }

    /// Read a page (counted as one logical read).
    pub fn read(&self, id: PageId) -> Result<Page> {
        let page = self.shards[shard_of(id)]
            .pages
            .read()
            .expect("pager lock poisoned")
            .get(slot_of(id))
            .cloned()
            .ok_or_else(|| Self::out_of_range(id))?;
        if id.raw() >= self.next.load(Ordering::Relaxed) {
            return Err(Self::out_of_range(id));
        }
        self.reads.fetch_add(1, Ordering::Relaxed);
        note_thread_io(1, 0, 0);
        cdpd_obs::tracked_counter!("storage.pager.reads").inc();
        Ok(page)
    }

    /// Replace a page's contents (counted as one logical write).
    pub fn write(&self, id: PageId, page: Page) -> Result<()> {
        if id.raw() >= self.next.load(Ordering::Relaxed) {
            return Err(Self::out_of_range(id));
        }
        let mut pages = self.shards[shard_of(id)]
            .pages
            .write()
            .expect("pager lock poisoned");
        let slot = pages
            .get_mut(slot_of(id))
            .ok_or_else(|| Self::out_of_range(id))?;
        *slot = page;
        self.writes.fetch_add(1, Ordering::Relaxed);
        note_thread_io(0, 1, 0);
        cdpd_obs::tracked_counter!("storage.pager.writes").inc();
        Ok(())
    }

    /// Read-modify-write a page in place (one read + one write).
    ///
    /// Copy-on-write: if the page is shared with readers the buffer is
    /// cloned before mutation, so outstanding [`Page`] handles never see
    /// torn updates.
    pub fn update<R>(&self, id: PageId, f: impl FnOnce(&mut [u8; PAGE_SIZE]) -> R) -> Result<R> {
        if id.raw() >= self.next.load(Ordering::Relaxed) {
            return Err(Self::out_of_range(id));
        }
        let mut pages = self.shards[shard_of(id)]
            .pages
            .write()
            .expect("pager lock poisoned");
        let slot = pages
            .get_mut(slot_of(id))
            .ok_or_else(|| Self::out_of_range(id))?;
        let buf = Arc::make_mut(slot);
        let r = f(buf);
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.writes.fetch_add(1, Ordering::Relaxed);
        note_thread_io(1, 1, 0);
        cdpd_obs::tracked_counter!("storage.pager.reads").inc();
        cdpd_obs::tracked_counter!("storage.pager.writes").inc();
        Ok(r)
    }

    /// Number of allocated pages (live + free-listed; ids are dense).
    pub fn page_count(&self) -> u64 {
        self.next.load(Ordering::Relaxed) as u64
    }

    /// Snapshot of the I/O counters.
    pub fn stats(&self) -> IoStats {
        IoStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            allocs: self.allocs.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_read_write_roundtrip() {
        let pager = Pager::new();
        let id = pager.allocate();
        let mut buf = [0u8; PAGE_SIZE];
        buf[0] = 0xAB;
        pager.write(id, Arc::new(buf)).unwrap();
        let page = pager.read(id).unwrap();
        assert_eq!(page[0], 0xAB);
    }

    #[test]
    fn counters_track_each_access() {
        let pager = Pager::new();
        let id = pager.allocate();
        let before = pager.stats();
        pager.read(id).unwrap();
        pager.read(id).unwrap();
        pager.update(id, |b| b[1] = 7).unwrap();
        let d = pager.stats().delta(before);
        assert_eq!(
            d,
            IoStats {
                reads: 3,
                writes: 1,
                allocs: 0
            }
        );
        assert_eq!(d.total(), 4);
    }

    #[test]
    fn thread_scope_tracks_this_thread_only() {
        let pager = Arc::new(Pager::new());
        let id = pager.allocate();
        let scope = ThreadIoScope::start();
        pager.read(id).unwrap();
        pager.update(id, |b| b[0] = 1).unwrap();
        // A sibling thread's I/O must not leak into this scope.
        let sibling = pager.clone();
        std::thread::spawn(move || {
            for _ in 0..100 {
                sibling.read(id).unwrap();
            }
        })
        .join()
        .unwrap();
        assert_eq!(
            scope.delta(),
            IoStats {
                reads: 2,
                writes: 1,
                allocs: 0
            }
        );
    }

    #[test]
    fn update_is_copy_on_write() {
        let pager = Pager::new();
        let id = pager.allocate();
        let held = pager.read(id).unwrap();
        pager.update(id, |b| b[0] = 9).unwrap();
        assert_eq!(held[0], 0, "outstanding handle must not see the update");
        assert_eq!(pager.read(id).unwrap()[0], 9);
    }

    #[test]
    fn out_of_range_is_corruption_error() {
        let pager = Pager::new();
        assert!(pager.read(PageId(3)).is_err());
        assert!(pager.write(PageId(0), blank_page()).is_err());
        assert!(pager.update(PageId(1), |_| ()).is_err());
    }

    #[test]
    fn page_ids_are_dense() {
        let pager = Pager::new();
        assert_eq!(pager.allocate(), PageId(0));
        assert_eq!(pager.allocate(), PageId(1));
        assert_eq!(pager.page_count(), 2);
    }

    #[test]
    fn freed_pages_are_reused_zeroed() {
        let pager = Pager::new();
        let a = pager.allocate();
        let b = pager.allocate();
        pager.update(a, |buf| buf[0] = 0xEE).unwrap();
        pager.free(&[a]);
        assert_eq!(pager.free_count(), 1);
        let c = pager.allocate();
        assert_eq!(c, a, "free list is reused first");
        assert_eq!(pager.read(c).unwrap()[0], 0, "reused page is zeroed");
        assert_eq!(pager.free_count(), 0);
        assert_eq!(pager.page_count(), 2);
        let _ = b;
    }

    #[test]
    fn cross_stripe_frees_all_reused_before_growth() {
        let pager = Pager::new();
        // Allocate enough pages to populate several stripes.
        let ids: Vec<PageId> = (0..PAGER_SHARDS as u32 * 3)
            .map(|_| pager.allocate())
            .collect();
        let grown = pager.page_count();
        // Free a scattering of pages across stripes, then re-allocate
        // exactly that many: every one must come from a free list.
        let victims: Vec<PageId> = ids.iter().copied().step_by(5).collect();
        pager.free(&victims);
        assert_eq!(pager.free_count(), victims.len() as u64);
        for _ in &victims {
            pager.allocate();
        }
        assert_eq!(pager.free_count(), 0);
        assert_eq!(pager.page_count(), grown, "no growth while pages are free");
    }

    #[test]
    fn concurrent_reads_and_allocs_keep_exact_ledger() {
        let pager = Arc::new(Pager::new());
        let seed: Vec<PageId> = (0..64).map(|_| pager.allocate()).collect();
        let before = pager.stats();
        const THREADS: u64 = 8;
        const READS: u64 = 500;
        const ALLOCS: u64 = 50;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let pager = &pager;
                let seed = &seed;
                s.spawn(move || {
                    let scope = ThreadIoScope::start();
                    for i in 0..READS {
                        pager.read(seed[((t * 31 + i) % 64) as usize]).unwrap();
                    }
                    for _ in 0..ALLOCS {
                        pager.allocate();
                    }
                    let d = scope.delta();
                    assert_eq!(d.reads, READS);
                    assert_eq!(d.allocs, ALLOCS);
                });
            }
        });
        let d = pager.stats().delta(before);
        assert_eq!(d.reads, THREADS * READS, "no read lost or double-counted");
        assert_eq!(d.allocs, THREADS * ALLOCS);
        assert_eq!(pager.page_count(), 64 + THREADS * ALLOCS);
    }
}
